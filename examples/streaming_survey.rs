//! A continuous survey feed served live: batches of simulated health-survey
//! responses stream into a [`pka::stream::StreamingEngine`] while a reader
//! thread keeps answering conditional-probability queries from the latest
//! published snapshot.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example streaming_survey
//! ```

use pka::contingency::Assignment;
use pka::datagen::sampler::{sample_dataset, seeded_rng};
use pka::stream::{RefitOutcome, RefreshPolicy, StreamConfig, StreamingEngine};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    // The simulated survey: a ground-truth joint with planted interactions
    // (see pka-datagen), from which respondent batches are drawn.
    let truth = pka::datagen::survey::ground_truth();
    let schema = pka::datagen::survey::schema();
    let mut rng = seeded_rng(7);

    // Engine: 4 count shards, automatic refresh on 20 % data growth.
    let config =
        StreamConfig::new().with_shard_count(4).with_policy(RefreshPolicy::DirtyFraction(0.2));
    let mut engine =
        StreamingEngine::new(Arc::clone(&schema), config).expect("streaming engine configuration");

    // A reader thread pretending to be live query traffic.  It holds only a
    // SnapshotHandle; refits never block it, it just sees fresher versions.
    let handle = engine.handle();
    let stop = Arc::new(AtomicBool::new(false));
    let reader_stop = Arc::clone(&stop);
    let query_target = Assignment::single(1, 0);
    let query_evidence = Assignment::single(0, 0);
    let reader = std::thread::spawn(move || {
        let mut answered: u64 = 0;
        let mut last_seen = 0;
        while !reader_stop.load(Ordering::Relaxed) {
            if let Some(snapshot) = handle.load() {
                let p = snapshot
                    .knowledge_base()
                    .conditional(&query_target, &query_evidence)
                    .expect("snapshot query");
                answered += 1;
                if snapshot.version() != last_seen {
                    last_seen = snapshot.version();
                    println!(
                        "  [reader] now on snapshot v{} ({} tuples): P(q|e) = {:.4}",
                        snapshot.version(),
                        snapshot.observations(),
                        p
                    );
                }
            }
            std::thread::yield_now();
        }
        answered
    });

    // The feed: 20 batches of 2 000 respondents each.
    println!("streaming 20 batches of 2,000 survey responses…");
    for batch_number in 1..=20 {
        let batch = sample_dataset(&truth, 2_000, &mut rng);
        let report = engine.ingest_dataset(&batch).expect("ingest");
        if let RefitOutcome::Completed(refit) = report.refit {
            println!(
                "batch {batch_number:2}: refit v{} ({}) over {} tuples — {} constraints, \
                 {} solver sweeps, {:?}",
                refit.version,
                if refit.warm_started { "warm" } else { "cold" },
                refit.observations,
                refit.constraints,
                refit.solver_iterations,
                refit.wall_time,
            );
        } else {
            println!(
                "batch {batch_number:2}: ingested, {} tuples pending refresh",
                engine.pending()
            );
        }
    }

    // Drain anything the policy hasn't picked up yet, then stop the reader.
    if engine.pending() > 0 {
        let refit = engine.refresh().expect("final refresh");
        println!(
            "final refresh: v{} over {} tuples ({} solver sweeps)",
            refit.version, refit.observations, refit.solver_iterations
        );
    }
    stop.store(true, Ordering::Relaxed);
    let answered = reader.join().expect("reader thread");

    let snapshot = engine.snapshot().expect("at least one snapshot");
    let kb = snapshot.knowledge_base();
    println!(
        "\ndone: {} tuples ingested, {} refits, reader answered {} queries live",
        engine.total_ingested(),
        engine.refit_count(),
        answered
    );
    println!(
        "final knowledge base: v{}, constraint orders {:?}, entropy {:.4} nats",
        snapshot.version(),
        kb.order_histogram(),
        kb.entropy()
    );

    // Show that the discovered structure tracks the planted interactions.
    println!("\nplanted interactions vs discovered constraints:");
    for planted in pka::datagen::survey::true_interactions() {
        let found = kb.constraints().contains(&planted);
        println!(
            "  {} — {}",
            planted.describe(kb.schema()),
            if found { "discovered" } else { "not promoted (may be implied)" }
        );
    }
}
