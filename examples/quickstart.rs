//! Quickstart: acquire a probabilistic knowledge base from a small survey
//! and query it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pka::contingency::{Attribute, Dataset, Schema};
use pka::core::{report, Acquisition, Query};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the questionnaire: every attribute with its exhaustive
    //    value list (add an "other" value if your data needs one).
    let schema = Schema::new(vec![
        Attribute::new("coffee", ["heavy", "light", "none"]),
        Attribute::yes_no("works-late"),
        Attribute::yes_no("sleeps-well"),
    ])?;

    // 2. Collect observations.  Here we synthesise a small survey in which
    //    heavy coffee drinkers disproportionately work late and sleep badly.
    let mut data = Dataset::new(schema);
    for (coffee, late, sleep, copies) in [
        ("heavy", "yes", "no", 28),
        ("heavy", "yes", "yes", 7),
        ("heavy", "no", "no", 10),
        ("heavy", "no", "yes", 9),
        ("light", "yes", "no", 12),
        ("light", "yes", "yes", 16),
        ("light", "no", "no", 14),
        ("light", "no", "yes", 42),
        ("none", "yes", "no", 6),
        ("none", "yes", "yes", 12),
        ("none", "no", "no", 10),
        ("none", "no", "yes", 34),
    ] {
        for _ in 0..copies {
            data.push_named(&[("coffee", coffee), ("works-late", late), ("sleeps-well", sleep)])?;
        }
    }
    let table = data.to_table();
    println!("collected {} responses over {} cells\n", table.total(), table.cell_count());

    // 3. Run the acquisition procedure: first-order marginals are always
    //    modelled; significant higher-order cells are discovered and added.
    let outcome = Acquisition::with_defaults().run(&table)?;
    let kb = outcome.knowledge_base;
    println!("{}", report::render_summary(&kb));

    // 4. Ask questions.  Any conditional probability can be computed from
    //    the stored joint probabilities.
    let question = Query::from_names(
        kb.schema(),
        &[("sleeps-well", "no")],
        &[("coffee", "heavy"), ("works-late", "yes")],
    )?;
    let answer = kb.query(&question)?;
    println!("{}", answer.describe(kb.schema()));

    let simpler = kb.conditional_by_names(&[("sleeps-well", "no")], &[("coffee", "none")])?;
    println!("P(sleeps-well=no | coffee=none) = {simpler:.3}");

    // 5. Or turn the knowledge base into IF-THEN rules for an expert system.
    let rules = pka::core::induce_rules(&kb, &pka::core::RuleInductionConfig::default())?;
    println!("\ntop rules:");
    for rule in rules.iter().take(5) {
        println!("  {}", rule.format(kb.schema()));
    }
    Ok(())
}
