//! The memo's own worked example end to end: the smoking/cancer survey of
//! Figure 1, the Table-1 significance screen, the discovered constraints,
//! and the conditional probabilities / rules they support.
//!
//! ```text
//! cargo run --example smoking_cancer
//! ```

use pka::contingency::display;
use pka::core::{report, Acquisition, AcquisitionConfig};
use pka::datagen::smoking;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The survey exactly as printed in Figure 1 of NASA TM-88224.
    let table = smoking::table();
    println!("Figure 1 data (N = {}):", table.total());
    println!("{}", display::render_two_way(&table, smoking::SMOKING, smoking::CANCER));

    // Run the full acquisition procedure with the evaluation trace on so the
    // Table-1 rows can be shown.
    let outcome = Acquisition::new(AcquisitionConfig::new().with_evaluation_trace()).run(&table)?;

    let first_round =
        outcome.trace.first_round_at_order(2).expect("the second order is always searched");
    println!("Table 1 — second-order cells scored against the independence model:");
    println!("{}", report::render_table1(table.schema(), first_round));

    let kb = &outcome.knowledge_base;
    println!("{}", report::render_summary(kb));

    // The memo's motivating output: conditional probabilities usable as
    // IF-THEN rules.
    println!("conditional probabilities of cancer by smoking history:");
    for smoking_value in ["smoker", "non-smoker", "non-smoker-married-to-smoker"] {
        let p = kb.conditional_by_names(&[("cancer", "yes")], &[("smoking", smoking_value)])?;
        println!("  P(cancer=yes | smoking={smoking_value}) = {p:.4}");
    }
    let p_base = kb
        .probability(&pka::contingency::Assignment::from_names(kb.schema(), &[("cancer", "yes")])?);
    println!("  P(cancer=yes) unconditionally              = {p_base:.4}");

    println!("\nwith family history as additional evidence:");
    for fh in ["yes", "no"] {
        let p = kb.conditional_by_names(
            &[("cancer", "yes")],
            &[("smoking", "smoker"), ("family-history", fh)],
        )?;
        println!("  P(cancer=yes | smoker, family-history={fh}) = {p:.4}");
    }

    println!("\nIF-THEN rules (as in the memo's introduction):");
    let rules = pka::core::induce_rules(
        kb,
        &pka::core::RuleInductionConfig::default().with_min_support(0.05),
    )?;
    for rule in rules.iter().take(8) {
        println!("  {}", rule.format(kb.schema()));
    }
    Ok(())
}
