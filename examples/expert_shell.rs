//! A small consultation with the probabilistic expert-system shell: assert
//! evidence incrementally, watch the posterior move, ask for an explanation.
//!
//! ```text
//! cargo run --example expert_shell
//! ```

use pka::contingency::Assignment;
use pka::core::Acquisition;
use pka::datagen::smoking;
use pka::expert::{explain_query, ExpertSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = smoking::table();
    let kb = Acquisition::with_defaults().run(&table)?.knowledge_base;
    let mut shell = ExpertSystem::new(kb);

    println!("consultation about the `cancer` attribute\n");

    println!("no evidence yet:");
    print!("{}", shell.consultation_report(smoking::CANCER)?);

    shell.assert_named("smoking", "smoker")?;
    println!("\nafter asserting smoking=smoker:");
    print!("{}", shell.consultation_report(smoking::CANCER)?);

    shell.assert_named("family-history", "yes")?;
    println!("\nafter also asserting family-history=yes:");
    print!("{}", shell.consultation_report(smoking::CANCER)?);

    shell.retract_named("smoking")?;
    println!("\nafter retracting the smoking evidence:");
    print!("{}", shell.consultation_report(smoking::CANCER)?);

    // Why does the answer look the way it does?
    shell.assert_named("smoking", "smoker")?;
    let explanation = explain_query(
        shell.knowledge_base(),
        &Assignment::single(smoking::CANCER, 0),
        shell.evidence().assignment(),
    )?;
    println!("\nexplanation of the current belief in cancer=yes:");
    print!("{}", explanation.render(shell.knowledge_base().schema()));
    Ok(())
}
