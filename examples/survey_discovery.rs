//! Structure discovery on a larger synthetic "health survey": sample data
//! from a known ground-truth distribution, run acquisition, and check how
//! much of the built-in dependency structure was recovered.
//!
//! This is the workload the memo motivates — "masses of undigested data"
//! where nobody has yet decided which correlations matter.
//!
//! ```text
//! cargo run --release --example survey_discovery
//! ```

use pka::contingency::VarSet;
use pka::core::{report, Acquisition, AcquisitionConfig};
use pka::datagen::{sample_table, sampler::seeded_rng, survey};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let truth = survey::ground_truth();
    let mut rng = seeded_rng(2026);
    let n = 50_000;
    let table = sample_table(&truth, n, &mut rng);
    println!(
        "sampled {} respondents over {} attributes ({} cells)\n",
        n,
        table.schema().len(),
        table.cell_count()
    );

    let outcome = Acquisition::new(AcquisitionConfig::new().with_max_order(3)).run(&table)?;
    let kb = outcome.knowledge_base;
    println!("{}", report::render_summary(&kb));

    // Compare what was discovered against the structure that was actually
    // built into the simulator.
    let discovered_varsets: Vec<VarSet> =
        kb.significant_constraints().iter().map(|c| c.assignment.vars()).collect();
    println!("ground-truth interactions and whether acquisition found them:");
    for interaction in survey::true_interactions() {
        let found = discovered_varsets.iter().any(|&v| v == interaction.vars());
        println!(
            "  {:<55} {}",
            interaction.describe(kb.schema()),
            if found { "FOUND" } else { "missed" }
        );
    }
    let spurious = discovered_varsets
        .iter()
        .filter(|&&v| !survey::true_interactions().iter().any(|i| i.vars() == v))
        .count();
    println!("\nconstraints over variable sets with no true interaction: {spurious}");

    // A few of the conditional probabilities the acquired model supports.
    println!("\nexample queries:");
    for (target, evidence) in [
        (("cancer", "yes"), vec![("smoking", "smoker")]),
        (("cancer", "yes"), vec![("smoking", "non-smoker")]),
        (("condition", "present"), vec![("smoking", "smoker"), ("exposure", "exposed")]),
        (("condition", "present"), vec![("smoking", "non-smoker"), ("exposure", "not-exposed")]),
        (("exercise", "regular"), vec![("age", "under-40")]),
        (("exercise", "regular"), vec![("age", "over-60")]),
    ] {
        let p = kb.conditional_by_names(&[target], &evidence)?;
        println!("  P({target:?} | {evidence:?}) = {p:.4}");
    }
    Ok(())
}
