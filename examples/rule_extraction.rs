//! Turning an acquired knowledge base into an explicit IF-THEN rule base
//! and persisting both to disk.
//!
//! ```text
//! cargo run --example rule_extraction
//! ```

use pka::contingency::VarSet;
use pka::core::{serialize, Acquisition, RuleInductionConfig};
use pka::datagen::smoking;
use pka::expert::RuleBase;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = smoking::table();
    let kb = Acquisition::with_defaults().run(&table)?.knowledge_base;

    // Rules about cancer only, with at most two conditions, firing on at
    // least 5% of the population.
    let config = RuleInductionConfig::default()
        .with_target_attributes(VarSet::singleton(smoking::CANCER))
        .with_max_conditions(2)
        .with_min_support(0.05)
        .with_min_lift_deviation(0.02);
    let rule_base = RuleBase::compile(&kb, &config)?;

    println!("rule base about `cancer` ({} rules):\n", rule_base.len());
    println!("{}", rule_base.render(kb.schema()));

    // Persist the knowledge base itself (the compact representation the memo
    // recommends storing) and show it round-trips.
    let json = serialize::to_json(&kb)?;
    let path = std::env::temp_dir().join("smoking_knowledge_base.json");
    std::fs::write(&path, &json)?;
    let restored = serialize::from_json(&std::fs::read_to_string(&path)?)?;
    println!(
        "knowledge base serialised to {} ({} bytes); restored copy has {} constraints",
        path.display(),
        json.len(),
        restored.constraints().len()
    );

    // The restored knowledge base answers the same queries.
    let p = restored.conditional_by_names(&[("cancer", "yes")], &[("smoking", "smoker")])?;
    println!("restored KB: P(cancer=yes | smoking=smoker) = {p:.4}");
    Ok(())
}
