//! Integration tests on synthetic ground-truth data: structure recovery,
//! baseline comparisons, and behaviour of the pipeline on null (independent)
//! data.

use pka::baselines::{EmpiricalModel, IndependenceModel, NaiveBayes};
use pka::contingency::Schema;
use pka::core::{Acquisition, AcquisitionConfig};
use pka::datagen::{sample_dataset, sample_table, sampler::seeded_rng, survey, PlantedExperiment};
use pka::maxent::metrics;
use std::sync::Arc;

/// Acquisition on data sampled from an independence distribution finds
/// (almost) nothing; on data with planted structure it finds the structure.
#[test]
fn null_vs_planted_data() {
    let schema = Schema::uniform(&[3, 2, 2]).unwrap().into_shared();
    let mut rng = seeded_rng(101);

    // Null data.
    let independent = pka::datagen::synthetic::random_independent(Arc::clone(&schema), &mut rng);
    let null_table = sample_table(&independent, 20_000, &mut rng);
    let null_outcome = Acquisition::new(AcquisitionConfig::new().with_max_order(2))
        .run(&null_table)
        .expect("acquisition succeeds");
    let null_found = null_outcome.knowledge_base.significant_constraints().len();

    // Planted data of the same size.
    let planted = PlantedExperiment::generate(Arc::clone(&schema), 2, 2, 6.0, &mut rng);
    let planted_table = sample_table(&planted.joint, 20_000, &mut rng);
    let planted_outcome = Acquisition::new(AcquisitionConfig::new().with_max_order(2))
        .run(&planted_table)
        .expect("acquisition succeeds");
    let discovered: Vec<_> = planted_outcome
        .knowledge_base
        .significant_constraints()
        .iter()
        .map(|c| c.assignment.clone())
        .collect();

    assert!(
        planted.varset_recovery(&discovered) > 0.0,
        "planted structure was not recovered at all"
    );
    assert!(
        discovered.len() > null_found,
        "planted data ({}) should yield more constraints than null data ({null_found})",
        discovered.len()
    );
    // Null data should yield very little: allow a couple of noise findings.
    assert!(null_found <= 2, "found {null_found} constraints in independent data");
}

/// Recovery improves with sample size (the X2 curve, coarse version).
#[test]
fn recovery_curve_is_monotone_in_n() {
    let small = pka_bench::recovery_experiment(400, 6.0, 2, 7);
    let medium = pka_bench::recovery_experiment(4_000, 6.0, 2, 7);
    let large = pka_bench::recovery_experiment(40_000, 6.0, 2, 7);
    assert!(medium.varset_recovery >= small.varset_recovery);
    assert!(large.varset_recovery >= medium.varset_recovery);
    assert!(large.varset_recovery >= 0.5, "large-sample recovery {}", large.varset_recovery);
}

/// On held-out data from the survey simulator the acquired model beats the
/// independence baseline and is competitive with the (smoothed) empirical
/// model, while using far fewer parameters.
#[test]
fn acquired_model_beats_independence_baseline() {
    let truth = survey::ground_truth();
    let mut rng = seeded_rng(55);
    let train = sample_table(&truth, 6_000, &mut rng);
    let test = sample_dataset(&truth, 2_000, &mut rng);

    let outcome = Acquisition::new(AcquisitionConfig::new().with_max_order(2))
        .run(&train)
        .expect("acquisition succeeds");
    let acquired = outcome.knowledge_base.joint();
    let independence = IndependenceModel::fit(&train);
    let empirical = EmpiricalModel::fit_smoothed(&train, 0.5);

    let ll_acquired = metrics::log_loss(&acquired, &test).unwrap();
    let ll_independence = metrics::log_loss(independence.joint(), &test).unwrap();
    let ll_empirical = metrics::log_loss(empirical.joint(), &test).unwrap();

    assert!(
        ll_acquired < ll_independence,
        "acquired {ll_acquired:.4} should beat independence {ll_independence:.4}"
    );
    // The empirical model has 144 free cells; the acquired model should be
    // within a small margin of it despite its compactness.
    assert!(ll_acquired < ll_empirical + 0.05);

    // Divergence from the truth orders the same way.
    let kl = |j: &pka::maxent::JointDistribution| {
        pka::maxent::entropy::kl_divergence(truth.probabilities(), j.probabilities())
    };
    assert!(kl(&acquired) < kl(independence.joint()));
}

/// The acquired model, used as a classifier, is at least comparable to naive
/// Bayes on the simulator's `cancer` attribute.
#[test]
fn classification_is_competitive_with_naive_bayes() {
    let truth = survey::ground_truth();
    let mut rng = seeded_rng(77);
    let train = sample_table(&truth, 6_000, &mut rng);
    let test = sample_table(&truth, 3_000, &mut rng);
    let target = survey::attrs::CANCER;

    let nb = NaiveBayes::fit(&train, target, 1.0).accuracy(&test);
    let rows = pka_bench::classification_comparison(6_000, 3_000, 77);
    let maxent = rows.iter().find(|(m, _)| m == "maxent-acquisition").unwrap().1;
    // Both classifiers predict the majority class most of the time on this
    // imbalanced target; the acquired model must not be meaningfully worse.
    assert!(maxent >= nb - 0.02, "maxent {maxent:.4} vs naive bayes {nb:.4}");
}

/// The ablation harness: all three selection rules run on the same paper
/// data and each honours its own promoted constraints.
#[test]
fn ablation_selection_rules_all_run() {
    let table = pka::datagen::smoking::table();
    let rows = pka_bench::ablation_selection(&table, 0.001);
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].rule, "minimum-message-length");
    // Every selection rule promotes at least one constraint on this data,
    // and every rule's findings include the smoking attribute (index 0),
    // which carries the real structure.
    for row in &rows {
        assert!(!row.selected.is_empty(), "{} selected nothing", row.rule);
        assert!(row.selected.iter().any(|a| a.vars().contains(0)));
    }
}
