//! Cross-crate property tests: invariants that must hold for any acquired
//! knowledge base, checked over randomly generated tables.

use pka::contingency::{Assignment, ContingencyTable, Schema, VarSet};
use pka::core::{Acquisition, AcquisitionConfig};
use pka::maxent::FactorGraph;
use proptest::prelude::*;
use std::sync::Arc;

fn random_table(counts: Vec<u64>) -> ContingencyTable {
    let schema = Schema::uniform(&[3, 2, 2]).unwrap().into_shared();
    ContingencyTable::from_counts(Arc::clone(&schema), counts).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any table: the acquired model is a proper distribution, honours
    /// the first-order marginals, and its conditionals are consistent with
    /// its joints.
    #[test]
    fn acquired_model_is_a_consistent_distribution(
        counts in proptest::collection::vec(1u64..60, 12),
    ) {
        let table = random_table(counts);
        let outcome = Acquisition::new(AcquisitionConfig::new().with_max_order(2))
            .run(&table)
            .expect("acquisition succeeds");
        let kb = outcome.knowledge_base;

        // Joint sums to one.
        let joint = kb.joint();
        prop_assert!((joint.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-8);

        // First-order marginals are honoured (they are always constrained).
        for attr in 0..3 {
            for v in 0..table.schema().cardinality(attr).unwrap() {
                let a = Assignment::single(attr, v);
                prop_assert!((kb.probability(&a) - table.frequency(&a)).abs() < 1e-4);
            }
        }

        // Law of total probability: P(B=j) = sum_i P(B=j | A=i) P(A=i).
        for j in 0..2 {
            let direct = kb.probability(&Assignment::single(1, j));
            let mut total = 0.0;
            for i in 0..3 {
                let pa = kb.probability(&Assignment::single(0, i));
                if pa > 0.0 {
                    total += kb
                        .conditional(&Assignment::single(1, j), &Assignment::single(0, i))
                        .unwrap()
                        * pa;
                }
            }
            prop_assert!((direct - total).abs() < 1e-6);
        }
    }

    /// The Appendix-B factored evaluation agrees with the dense model on the
    /// acquired knowledge base for every marginal query.
    #[test]
    fn factor_graph_matches_dense_model(
        counts in proptest::collection::vec(1u64..40, 12),
    ) {
        let table = random_table(counts);
        let kb = Acquisition::new(AcquisitionConfig::new().with_max_order(2))
            .run(&table)
            .expect("acquisition succeeds")
            .knowledge_base;
        let graph = FactorGraph::from_model(kb.model());
        let schema = kb.shared_schema();
        for vars_bits in [0b001u32, 0b010, 0b100, 0b011, 0b101, 0b110, 0b111] {
            let vars = VarSet::from_bits(vars_bits);
            for values in schema.configurations(vars) {
                let q = Assignment::new(vars, values);
                prop_assert!((graph.probability(&q) - kb.probability(&q)).abs() < 1e-8);
            }
        }
    }

    /// Acquisition is deterministic: two runs on the same table produce the
    /// same constraints and the same query answers.
    #[test]
    fn acquisition_is_deterministic(
        counts in proptest::collection::vec(1u64..50, 12),
    ) {
        let table = random_table(counts);
        let config = AcquisitionConfig::new().with_max_order(2);
        let a = Acquisition::new(config).run(&table).expect("first run");
        let b = Acquisition::new(config).run(&table).expect("second run");
        let ca: Vec<_> = a.knowledge_base.constraints().constraints().to_vec();
        let cb: Vec<_> = b.knowledge_base.constraints().constraints().to_vec();
        prop_assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(cb.iter()) {
            prop_assert_eq!(&x.assignment, &y.assignment);
            prop_assert!((x.probability - y.probability).abs() < 1e-15);
        }
        let q = Assignment::single(1, 0);
        let e = Assignment::single(0, 0);
        if a.knowledge_base.probability(&e) > 0.0 {
            prop_assert!(
                (a.knowledge_base.conditional(&q, &e).unwrap()
                    - b.knowledge_base.conditional(&q, &e).unwrap())
                .abs()
                    < 1e-12
            );
        }
    }

    /// Adding constraints never lowers the fit to the data: the acquired
    /// model's log-likelihood of the training table is at least the
    /// independence model's.
    #[test]
    fn acquisition_never_fits_worse_than_independence(
        counts in proptest::collection::vec(1u64..60, 12),
    ) {
        let table = random_table(counts);
        let acquired = Acquisition::new(AcquisitionConfig::new().with_max_order(3))
            .run(&table)
            .expect("acquisition succeeds")
            .knowledge_base
            .joint();
        let independence = pka::baselines::IndependenceModel::fit(&table);
        let ll_acquired = pka::maxent::metrics::log_loss_table(&acquired, &table).unwrap();
        let ll_independence =
            pka::maxent::metrics::log_loss_table(independence.joint(), &table).unwrap();
        prop_assert!(ll_acquired <= ll_independence + 1e-6);
    }
}
