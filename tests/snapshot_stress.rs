//! Stress test for the lock-free snapshot slot: many readers load while a
//! writer publishes thousands of versions.
//!
//! The guarantees under test (see `pka_stream::snapshot`):
//!
//! * every loaded snapshot is fully consistent — a load yields one `Arc` to
//!   one immutable `Snapshot`, so its fields can never mix two versions;
//! * versions are monotone per reader — once a handle clone has observed
//!   version `v`, it never observes a smaller one;
//! * a pinned snapshot stays intact across arbitrarily many later swaps.

use pka::contingency::{ContingencyTable, Schema};
use pka::core::Acquisition;
use pka::stream::{Snapshot, SnapshotHandle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const PUBLISHES: u64 = 10_000;
const READERS: usize = 6;

#[test]
fn readers_observe_consistent_monotone_snapshots_under_10k_publishes() {
    // One small knowledge base shared by every version: the stress is on
    // the slot, not the solver.
    let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
    let table = ContingencyTable::from_counts(schema, vec![40, 10, 10, 40]).unwrap();
    let kb = Acquisition::with_defaults().run(&table).unwrap().knowledge_base;

    let handle = SnapshotHandle::new();
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let handle = handle.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut last = 0u64;
                let mut observed = 0u64;
                loop {
                    if let Some(snapshot) = handle.load() {
                        let version = snapshot.version();
                        // Monotone versions per reader.
                        assert!(version >= last, "version regressed: {last} -> {version}");
                        last = version;
                        // Full consistency: the fields of a loaded snapshot
                        // agree with each other (the writer derives both
                        // from the version below), and the knowledge base
                        // is queryable.
                        assert_eq!(snapshot.observations(), version * 7 + 1);
                        assert_eq!(snapshot.warm_started(), version % 2 == 0);
                        observed += 1;
                    }
                    if done.load(Ordering::Acquire) {
                        // One final load must see the last version.
                        let final_version = handle.load().unwrap().version();
                        assert_eq!(final_version, PUBLISHES);
                        return (last, observed);
                    }
                    if observed.is_multiple_of(64) {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();

    for version in 1..=PUBLISHES {
        handle.publish(Snapshot::new(kb.clone(), version, version * 7 + 1, version % 2 == 0));
    }
    done.store(true, Ordering::Release);

    for reader in readers {
        let (last, observed) = reader.join().expect("reader panicked");
        assert!(last <= PUBLISHES);
        assert!(observed > 0, "reader never saw a snapshot");
    }

    // A pinned snapshot loaded now is the final version and stays valid.
    let pinned = handle.load().unwrap();
    assert_eq!(pinned.version(), PUBLISHES);
    handle.publish(Snapshot::new(kb, PUBLISHES + 1, (PUBLISHES + 1) * 7 + 1, false));
    assert_eq!(pinned.version(), PUBLISHES, "pinned snapshot changed under a later publish");
    assert_eq!(handle.version(), Some(PUBLISHES + 1));
}
