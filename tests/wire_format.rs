//! Hostile-payload properties of the fabric wire format.
//!
//! The `shard-push` / `snapshot-sync` payloads cross machine boundaries,
//! so everything a corrupted or adversarial peer could send must be
//! rejected with a structured error — never absorbed, never a panic.
//! These properties drive [`CountShard::from_json`] and
//! [`SnapshotMeta::from_value`] with forged counts (cardinality
//! mismatches, negative and overflowing cells, inconsistent totals),
//! forged format stamps, and truncated payloads.

use pka::contingency::Schema;
use pka::stream::{CountShard, SnapshotMeta, StreamError, WIRE_FORMAT_VERSION};
use proptest::prelude::*;
use serde::Value;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::uniform(&[3, 2, 2]).unwrap().into_shared()
}

fn shard_from_cells(cells: &[usize]) -> CountShard {
    let s = schema();
    let mut shard = CountShard::new(Arc::clone(&s));
    for &cell in cells {
        let values = s.cell_values(cell % s.cell_count());
        shard.record(&values).unwrap();
    }
    shard
}

/// Navigates to the `counts` array inside a serialised shard value.
fn counts_mut(value: &mut Value) -> &mut Vec<Value> {
    let Value::Object(fields) = value else { panic!("shard is not an object") };
    let table = fields
        .iter_mut()
        .find(|(name, _)| name == "table")
        .map(|(_, v)| v)
        .expect("shard without table");
    let Value::Object(table_fields) = table else { panic!("table is not an object") };
    let counts = table_fields
        .iter_mut()
        .find(|(name, _)| name == "counts")
        .map(|(_, v)| v)
        .expect("table without counts");
    match counts {
        Value::Array(entries) => entries,
        _ => panic!("counts is not an array"),
    }
}

fn set_field(value: &mut Value, path: &[&str], new_value: Value) {
    let mut current = value;
    for (i, segment) in path.iter().enumerate() {
        let Value::Object(fields) = current else { panic!("not an object at {segment}") };
        let slot = fields
            .iter_mut()
            .find(|(name, _)| name == segment)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field {segment}"));
        if i == path.len() - 1 {
            *slot = new_value;
            return;
        }
        current = slot;
    }
}

fn reject(value: &Value) -> StreamError {
    CountShard::from_value(value).expect_err("hostile payload must be rejected")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Valid shards survive the wire bit-for-bit.
    #[test]
    fn prop_round_trip_is_exact(cells in proptest::collection::vec(0usize..12, 0..60)) {
        let shard = shard_from_cells(&cells);
        let json = shard.to_json().unwrap();
        prop_assert!(json.contains(&format!("\"format_version\":{WIRE_FORMAT_VERSION}")));
        let back = CountShard::from_json(&json).unwrap();
        prop_assert_eq!(back, shard);
    }

    /// Truncating a payload anywhere produces an error, never a panic or a
    /// silently-absorbed shard.
    #[test]
    fn prop_truncated_payloads_are_rejected(
        cells in proptest::collection::vec(0usize..12, 1..30),
        fraction in 0.0f64..1.0,
    ) {
        let json = shard_from_cells(&cells).to_json().unwrap();
        let cut = ((json.len() as f64) * fraction) as usize;
        // Cut on a char boundary strictly inside the payload.
        let cut = (0..=cut.min(json.len() - 1)).rev().find(|&i| json.is_char_boundary(i)).unwrap();
        prop_assert!(CountShard::from_json(&json[..cut]).is_err());
    }

    /// A counts array of the wrong cardinality is rejected.
    #[test]
    fn prop_cardinality_mismatch_is_rejected(
        cells in proptest::collection::vec(0usize..12, 0..30),
        extra in 1usize..4,
        grow in any::<bool>(),
    ) {
        let mut value: Value =
            serde_json::from_str(&shard_from_cells(&cells).to_json().unwrap()).unwrap();
        let counts = counts_mut(&mut value);
        if grow {
            for _ in 0..extra {
                counts.push(Value::U64(0));
            }
        } else {
            for _ in 0..extra.min(counts.len()) {
                counts.pop();
            }
        }
        reject(&value);
    }

    /// Negative cell counts are rejected.
    #[test]
    fn prop_negative_counts_are_rejected(
        cells in proptest::collection::vec(0usize..12, 0..30),
        cell in 0usize..12,
        magnitude in 1i64..1_000_000,
    ) {
        let mut value: Value =
            serde_json::from_str(&shard_from_cells(&cells).to_json().unwrap()).unwrap();
        counts_mut(&mut value)[cell] = Value::I64(-magnitude);
        reject(&value);
    }

    /// Cell counts that overflow the 64-bit total are rejected by the
    /// checked sum, not wrapped into a small "consistent" table.
    #[test]
    fn prop_overflowing_counts_are_rejected(
        cells in proptest::collection::vec(0usize..12, 0..30),
        first in 0usize..12,
        second in 0usize..12,
    ) {
        let mut value: Value =
            serde_json::from_str(&shard_from_cells(&cells).to_json().unwrap()).unwrap();
        {
            let counts = counts_mut(&mut value);
            counts[first] = Value::U64(u64::MAX);
            counts[second.min(11).max((first + 1) % 12)] = Value::U64(u64::MAX);
        }
        reject(&value);
    }

    /// A forged total that disagrees with the counts is rejected.
    #[test]
    fn prop_inconsistent_totals_are_rejected(
        cells in proptest::collection::vec(0usize..12, 1..30),
        forged_delta in 1u64..1_000,
    ) {
        let shard = shard_from_cells(&cells);
        let mut value: Value = serde_json::from_str(&shard.to_json().unwrap()).unwrap();
        set_field(
            &mut value,
            &["table", "total"],
            Value::U64(shard.tuple_count() + forged_delta),
        );
        reject(&value);
    }

    /// Any format stamp but the current one is refused with the structured
    /// error, for shards and snapshot metadata alike.
    #[test]
    fn prop_foreign_format_versions_are_refused(stamp in any::<u64>()) {
        prop_assume!(stamp != WIRE_FORMAT_VERSION);
        let mut value: Value =
            serde_json::from_str(&shard_from_cells(&[1, 2, 3]).to_json().unwrap()).unwrap();
        set_field(&mut value, &["format_version"], Value::U64(stamp));
        prop_assert!(matches!(
            CountShard::from_value(&value),
            Err(StreamError::FormatVersion { found: Some(found) }) if found == stamp
        ));

        let meta = SnapshotMeta {
            format_version: stamp,
            version: 1,
            observations: 10,
            warm_started: false,
            constraints: 4,
            attributes: 3,
        };
        prop_assert!(matches!(
            meta.validate_format(),
            Err(StreamError::FormatVersion { found: Some(found) }) if found == stamp
        ));
        let forged = serde::Serialize::serialize(&meta);
        prop_assert!(SnapshotMeta::from_value(&forged).is_err());
    }
}
