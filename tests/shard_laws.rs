//! Algebraic laws of sharded ingestion, checked as properties.
//!
//! The streaming engine's correctness rests on two facts:
//!
//! 1. count-shard `merge` is associative and commutative (cell counts form
//!    a commutative monoid under addition), so *any* partition of a stream
//!    tabulated in *any* order reproduces the one-shot contingency table
//!    exactly, and
//! 2. a warm-started refit converges to the same knowledge base as a cold
//!    run over the same data (the maximum-entropy solution per constraint
//!    set is unique; the warm start only changes where the solver starts).

use pka::contingency::{ContingencyTable, Dataset, Sample, Schema};
use pka::core::{Acquisition, AcquisitionConfig};
use pka::maxent::ConvergenceCriteria;
use pka::stream::CountShard;
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::uniform(&[3, 2, 2]).unwrap().into_shared()
}

/// Decodes a list of cell indices into a shard over `schema`.
fn shard_from_cells(schema: &Arc<Schema>, cells: &[usize]) -> CountShard {
    let mut shard = CountShard::new(Arc::clone(schema));
    for &cell in cells {
        let values = schema.cell_values(cell % schema.cell_count());
        shard.record(&values).unwrap();
    }
    shard
}

proptest! {
    /// merge is commutative: a ⊕ b == b ⊕ a.
    #[test]
    fn prop_merge_commutative(
        a in proptest::collection::vec(0usize..12, 0..40),
        b in proptest::collection::vec(0usize..12, 0..40),
    ) {
        let s = schema();
        let ab = shard_from_cells(&s, &a).merge(shard_from_cells(&s, &b)).unwrap();
        let ba = shard_from_cells(&s, &b).merge(shard_from_cells(&s, &a)).unwrap();
        prop_assert_eq!(ab, ba);
    }

    /// merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn prop_merge_associative(
        a in proptest::collection::vec(0usize..12, 0..30),
        b in proptest::collection::vec(0usize..12, 0..30),
        c in proptest::collection::vec(0usize..12, 0..30),
    ) {
        let s = schema();
        let left = shard_from_cells(&s, &a)
            .merge(shard_from_cells(&s, &b)).unwrap()
            .merge(shard_from_cells(&s, &c)).unwrap();
        let right = shard_from_cells(&s, &a)
            .merge(shard_from_cells(&s, &b).merge(shard_from_cells(&s, &c)).unwrap())
            .unwrap();
        prop_assert_eq!(left, right);
    }

    /// The empty shard is the identity: a ⊕ 0 == a.
    #[test]
    fn prop_empty_shard_is_identity(
        a in proptest::collection::vec(0usize..12, 0..40),
    ) {
        let s = schema();
        let shard = shard_from_cells(&s, &a);
        let merged = shard.clone().merge(CountShard::new(Arc::clone(&s))).unwrap();
        prop_assert_eq!(merged, shard);
    }

    /// Ingesting a dataset in k shards — any k, any assignment of samples
    /// to shards — yields a contingency table identical to one-shot
    /// construction.
    #[test]
    fn prop_sharded_ingest_matches_one_shot(
        cells in proptest::collection::vec(0usize..12, 1..120),
        assignment_seed in proptest::collection::vec(0usize..16, 1..120),
        k in 1usize..16,
    ) {
        let s = schema();

        // One-shot: a single sequential table.
        let mut one_shot = ContingencyTable::zeros(Arc::clone(&s));
        let mut dataset = Dataset::with_shared_schema(Arc::clone(&s));
        for &cell in &cells {
            let values = s.cell_values(cell % s.cell_count());
            one_shot.increment(&values).unwrap();
            dataset.push(Sample::new(values)).unwrap();
        }

        // Sharded: samples dealt to k shards by an arbitrary assignment.
        let mut shards: Vec<CountShard> =
            (0..k).map(|_| CountShard::new(Arc::clone(&s))).collect();
        for (i, sample) in dataset.samples().iter().enumerate() {
            let pick = assignment_seed[i % assignment_seed.len()] % k;
            shards[pick].record_sample(sample).unwrap();
        }
        let merged = shards
            .into_iter()
            .try_fold(CountShard::new(Arc::clone(&s)), CountShard::merge)
            .unwrap();
        prop_assert_eq!(merged.into_table(), one_shot);
    }
}

/// A warm-started refit converges to the same knowledge base as a cold run
/// on the same data: same constraints, same joint distribution.
#[test]
fn warm_started_refit_matches_cold_run() {
    // The memo's survey, split in half: acquire on the first half, then
    // refit on the full table warm-started from the half-data knowledge
    // base, and compare against a cold full-table run.
    let full = pka::datagen::smoking::table();
    let half_counts: Vec<u64> = full.counts().iter().map(|&c| c / 2).collect();
    let half = ContingencyTable::from_counts(full.shared_schema(), half_counts).unwrap();

    let tight = AcquisitionConfig::new().with_convergence(
        ConvergenceCriteria::new().with_tolerance(1e-13).with_max_iterations(5000),
    );
    let acquisition = Acquisition::new(tight);

    let first = acquisition.run(&half).expect("half-data acquisition");
    let warm =
        acquisition.run_warm_started(&full, &first.knowledge_base).expect("warm-started refit");
    let cold = acquisition.run(&full).expect("cold full-data acquisition");

    // Same constraint cells (order may differ: the warm run inherits its
    // prior constraints before searching).
    let mut warm_cells: Vec<_> = warm
        .knowledge_base
        .constraints()
        .constraints()
        .iter()
        .map(|c| c.assignment.clone())
        .collect();
    let mut cold_cells: Vec<_> = cold
        .knowledge_base
        .constraints()
        .constraints()
        .iter()
        .map(|c| c.assignment.clone())
        .collect();
    warm_cells.sort_by_key(|a| format!("{a:?}"));
    cold_cells.sort_by_key(|a| format!("{a:?}"));
    assert_eq!(warm_cells, cold_cells, "warm and cold discover the same constraint set");

    // Same joint distribution, hence identical answers to every query.
    let warm_joint = warm.knowledge_base.joint();
    let cold_joint = cold.knowledge_base.joint();
    for (w, c) in warm_joint.probabilities().iter().zip(cold_joint.probabilities()) {
        assert!((w - c).abs() < 1e-9, "joint cells differ: warm {w} vs cold {c}");
    }
}
