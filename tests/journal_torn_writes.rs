//! Property test: journal recovery under arbitrary torn writes.
//!
//! A crash can leave a shard journal truncated at any byte (a torn tail)
//! or with any single byte damaged (a bad sector, a partial overwrite).
//! For *every* such damage point the recovery contract is the same:
//!
//! * [`pka_stream::ShardJournal::open`] never panics and never errors —
//!   damage is data loss to account for, not a reason to refuse boot;
//! * it recovers exactly the **longest prefix of intact records** (the
//!   length-prefix + CRC framing detects the first damaged record and
//!   discards it and everything after);
//! * recovered state never exceeds what was acknowledged — cumulative
//!   seqs mean replaying a recovered shard can only ever under-count,
//!   never double-count;
//! * recovery is idempotent (a second open finds a clean journal) and
//!   the repaired journal accepts fresh appends.

use pka_contingency::Schema;
use pka_stream::{CountShard, FsyncPolicy, ShardJournal};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::uniform(&[3, 2]).unwrap().into_shared()
}

fn temp_path(tag: u64) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("pka-torn-{}-{tag}-{n}.journal", std::process::id()))
}

/// Writes one journal of cumulative records and returns, per record, the
/// file length at which it ends and the seq it carries — the ground truth
/// for "longest intact prefix".
fn build_journal(path: &PathBuf, batches: &[usize]) -> Vec<(u64, u64)> {
    let (mut journal, recovery) = ShardJournal::open(path, FsyncPolicy::PerRecord).unwrap();
    assert_eq!(recovery.seq, None, "fresh journal must start empty");
    let mut shard = CountShard::new(schema());
    let mut total = 0usize;
    let mut boundaries = Vec::new();
    for &batch in batches {
        let rows: Vec<Vec<usize>> = (total..total + batch).map(|k| vec![k % 3, k % 2]).collect();
        shard.record_batch(&rows).unwrap();
        total += batch;
        journal.append(total as u64, &shard).unwrap();
        boundaries.push((journal.len_bytes(), total as u64));
    }
    boundaries
}

/// The seq of the longest record prefix fully contained in `intact_len`
/// bytes (None when even the header or first record is damaged).
fn expected_seq(boundaries: &[(u64, u64)], intact_len: u64) -> Option<u64> {
    boundaries.iter().rev().find(|(end, _)| *end <= intact_len).map(|(_, seq)| *seq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_torn_or_corrupt_tail_recovers_the_longest_valid_prefix(
        batches in proptest::collection::vec(1usize..12, 1..6),
        frac in 0.0f64..1.0,
        flip in any::<bool>(),
        mask in 1u8..=255,
    ) {
        let path = temp_path(if flip { 1 } else { 0 });
        let boundaries = build_journal(&path, &batches);
        let full_len = boundaries.last().unwrap().0;
        let full_seq = boundaries.last().unwrap().1;

        // Damage point anywhere in the file, header included.
        let pos = ((full_len as f64) * frac) as u64;
        let intact_len = if flip {
            // One byte damaged at `pos`: the record containing it is
            // unrecoverable, everything before it survives.
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[pos as usize] ^= mask;
            std::fs::write(&path, &bytes).unwrap();
            pos
        } else {
            // Torn write: the file simply ends at `pos`.
            let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            file.set_len(pos).unwrap();
            pos
        };
        let expected = expected_seq(&boundaries, intact_len);

        // Recovery: no panic, no error, exactly the longest valid prefix.
        let (journal, recovery) = ShardJournal::open(&path, FsyncPolicy::Off).unwrap();
        prop_assert_eq!(recovery.seq, expected, "wrong prefix for damage at byte {}", pos);
        // Cumulative records: recovered tuples equal the recovered seq —
        // never more than was acknowledged (no double counting).
        prop_assert_eq!(recovery.tuples(), expected.unwrap_or(0));
        prop_assert!(recovery.tuples() <= full_seq);
        if expected.is_some() {
            let shard = recovery.shard.as_ref().expect("a recovered seq carries its shard");
            prop_assert_eq!(shard.tuple_count(), recovery.tuples());
        }
        drop(journal);

        // Idempotence: recovery repaired the file, so a second open sees
        // a clean journal with the same state and nothing left to trim.
        let (mut journal, again) = ShardJournal::open(&path, FsyncPolicy::Off).unwrap();
        prop_assert_eq!(again.seq, expected);
        prop_assert_eq!(again.truncated_bytes, 0, "repair must be durable");

        // The repaired journal accepts fresh appends, and they win.
        let mut shard = CountShard::new(schema());
        shard.record_batch(&[[0usize, 0], [1, 1], [2, 0]]).unwrap();
        let next_seq = expected.unwrap_or(0) + 3;
        journal.append(next_seq, &shard).unwrap();
        drop(journal);
        let (_, resumed) = ShardJournal::open(&path, FsyncPolicy::Off).unwrap();
        prop_assert_eq!(resumed.seq, Some(next_seq));

        let _ = std::fs::remove_file(&path);
    }
}
