//! End-to-end pipeline tests: CSV ingestion → contingency table →
//! acquisition → knowledge base → queries, rules, expert shell and JSON
//! persistence, all through the public facade crate.

use pka::contingency::csv::{parse_csv, to_csv, CsvSchema};
use pka::contingency::{Assignment, Attribute, Schema, VarSet};
use pka::core::{induce_rules, serialize, Acquisition, Query, RuleInductionConfig};
use pka::datagen::smoking;
use pka::expert::{explain_query, Evidence, ExpertSystem, RuleBase};

/// Build a small CSV in memory, ingest it, acquire, and query.
#[test]
fn csv_to_knowledge_base_pipeline() {
    // A tiny survey where "training=yes" strongly predicts "cert=yes".
    let mut csv = String::from("training,cert,remote\n");
    let rows = [
        ("yes", "yes", "yes", 30),
        ("yes", "yes", "no", 28),
        ("yes", "no", "yes", 7),
        ("yes", "no", "no", 5),
        ("no", "yes", "yes", 6),
        ("no", "yes", "no", 8),
        ("no", "no", "yes", 27),
        ("no", "no", "no", 29),
    ];
    for (training, cert, remote, copies) in rows {
        for _ in 0..copies {
            csv.push_str(&format!("{training},{cert},{remote}\n"));
        }
    }

    let dataset = parse_csv(&csv, CsvSchema::Infer).expect("CSV parses");
    assert_eq!(dataset.len(), 140);
    // Round-trip through the CSV writer.
    let rewritten = to_csv(&dataset);
    let reparsed = parse_csv(&rewritten, CsvSchema::Infer).expect("round trip parses");
    assert_eq!(reparsed.to_table().counts(), dataset.to_table().counts());

    let table = dataset.to_table();
    let kb = Acquisition::with_defaults().run(&table).expect("acquisition succeeds").knowledge_base;

    // The training→cert association must be discovered…
    let training = kb.schema().attribute_index("training").unwrap();
    let cert = kb.schema().attribute_index("cert").unwrap();
    assert!(
        kb.significant_constraints()
            .iter()
            .any(|c| c.assignment.vars() == VarSet::from_indices([training, cert])),
        "no training × cert constraint discovered"
    );
    // …and reflected in the conditional probabilities.
    let with_training = kb
        .conditional_by_names(&[("cert", "yes")], &[("training", "yes")])
        .expect("query evaluates");
    let without_training = kb
        .conditional_by_names(&[("cert", "yes")], &[("training", "no")])
        .expect("query evaluates");
    assert!(with_training > 2.0 * without_training);
    // The "remote" attribute carries no signal, so conditioning on it moves
    // the belief very little.
    let with_remote =
        kb.conditional_by_names(&[("cert", "yes")], &[("remote", "yes")]).expect("query evaluates");
    let prior = kb.probability(&Assignment::from_names(kb.schema(), &[("cert", "yes")]).unwrap());
    assert!((with_remote - prior).abs() < 0.05);
}

/// The knowledge base survives JSON serialisation and keeps answering
/// queries identically; rules and the expert shell work off the restored
/// copy.
#[test]
fn persistence_and_downstream_consumers() {
    let table = smoking::table();
    let kb = Acquisition::with_defaults().run(&table).expect("acquisition succeeds").knowledge_base;

    let json = serialize::to_json(&kb).expect("serialises");
    let restored = serialize::from_json(&json).expect("deserialises");

    // Identical answers on a grid of conditional queries.
    let schema = kb.schema();
    for target_value in 0..schema.cardinality(1).unwrap() {
        for evidence_value in 0..schema.cardinality(0).unwrap() {
            let target = Assignment::single(1, target_value);
            let evidence = Assignment::single(0, evidence_value);
            let a = kb.conditional(&target, &evidence).unwrap();
            let b = restored.conditional(&target, &evidence).unwrap();
            assert!((a - b).abs() < 1e-12);
        }
    }

    // Rule induction and the rule base fire identically.
    let config = RuleInductionConfig::default();
    let rules_a = induce_rules(&kb, &config).unwrap();
    let rules_b = induce_rules(&restored, &config).unwrap();
    assert_eq!(rules_a.len(), rules_b.len());

    let rule_base = RuleBase::compile(&restored, &config).unwrap();
    let mut evidence = Evidence::none();
    evidence.assert_named(&restored.shared_schema(), "smoking", "smoker").unwrap();
    let fired = rule_base.fire(&evidence);
    assert!(!fired.is_empty());

    // The expert shell built on the restored knowledge base.
    let mut shell = ExpertSystem::new(restored);
    shell.assert_named("smoking", "smoker").unwrap();
    let hypotheses = shell.posterior_named("cancer").unwrap();
    assert!((hypotheses.iter().map(|h| h.posterior).sum::<f64>() - 1.0).abs() < 1e-9);
    assert!(hypotheses[0].posterior > hypotheses[0].prior);

    // And explanations reference the discovered constraints.
    let explanation = explain_query(
        shell.knowledge_base(),
        &Assignment::single(1, 0),
        shell.evidence().assignment(),
    )
    .unwrap();
    assert!(explanation.posterior > explanation.prior);
    assert!(!explanation.render(shell.knowledge_base().schema()).is_empty());
}

/// A user-declared schema (names, not indices) drives the whole pipeline.
#[test]
fn named_schema_pipeline() {
    let schema = Schema::new(vec![
        Attribute::new("sensor", ["nominal", "degraded", "failed"]),
        Attribute::new("thermal", ["cold", "normal", "hot"]),
        Attribute::yes_no("anomaly"),
    ])
    .expect("schema valid");
    let mut dataset = pka::contingency::Dataset::new(schema);
    // Failed sensors in hot conditions produce anomalies.
    for (sensor, thermal, anomaly, copies) in [
        ("nominal", "normal", "no", 300),
        ("nominal", "cold", "no", 80),
        ("nominal", "hot", "no", 70),
        ("nominal", "hot", "yes", 10),
        ("degraded", "normal", "no", 60),
        ("degraded", "hot", "yes", 25),
        ("degraded", "hot", "no", 15),
        ("failed", "hot", "yes", 40),
        ("failed", "normal", "yes", 12),
        ("failed", "normal", "no", 8),
        ("failed", "cold", "yes", 5),
        ("failed", "cold", "no", 5),
    ] {
        for _ in 0..copies {
            dataset
                .push_named(&[("sensor", sensor), ("thermal", thermal), ("anomaly", anomaly)])
                .unwrap();
        }
    }
    let kb = Acquisition::with_defaults()
        .run(&dataset.to_table())
        .expect("acquisition succeeds")
        .knowledge_base;

    let q = Query::from_names(kb.schema(), &[("anomaly", "yes")], &[("sensor", "failed")]).unwrap();
    let failed = kb.query(&q).unwrap();
    let nominal = kb.conditional_by_names(&[("anomaly", "yes")], &[("sensor", "nominal")]).unwrap();
    assert!(failed.probability > 0.5);
    assert!(nominal < 0.15);
    assert!(failed.lift() > 3.0);

    // Rules targeted at the anomaly attribute are induced and readable.
    let anomaly_attr = kb.schema().attribute_index("anomaly").unwrap();
    let rules = induce_rules(
        &kb,
        &RuleInductionConfig::default()
            .with_target_attributes(VarSet::singleton(anomaly_attr))
            .with_min_support(0.02),
    )
    .unwrap();
    assert!(!rules.is_empty());
    assert!(rules.iter().any(|r| r.format(kb.schema()).contains("sensor=failed")));
}
