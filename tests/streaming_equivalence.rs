//! End-to-end proof of the streaming engine: feeding the memo's
//! smoking/cancer survey as a stream of batches — across multiple count
//! shards, with multiple warm-started refits along the way — ends in a
//! knowledge base whose query answers match a one-shot
//! `Acquisition::run` over the full data to within 1e-9.

use pka::contingency::{Assignment, Dataset};
use pka::core::{Acquisition, AcquisitionConfig};
use pka::maxent::ConvergenceCriteria;
use pka::stream::{RefreshPolicy, StreamConfig, StreamingEngine};
use std::sync::Arc;

/// Solver settings tight enough that "same fixed point" is observable at
/// the 1e-9 level.
fn tight_config() -> AcquisitionConfig {
    AcquisitionConfig::new().with_convergence(
        ConvergenceCriteria::new().with_tolerance(1e-13).with_max_iterations(5000),
    )
}

/// Deals the memo's 3428 survey samples round-robin into `n` batches, so
/// every batch is a representative slice of the stream.
fn round_robin_batches(n: usize) -> Vec<Dataset> {
    let full = pka::datagen::smoking::dataset();
    let schema = full.shared_schema();
    let mut batches: Vec<Dataset> =
        (0..n).map(|_| Dataset::with_shared_schema(Arc::clone(&schema))).collect();
    for (i, sample) in full.iter().enumerate() {
        batches[i % n].push(sample.clone()).unwrap();
    }
    batches
}

#[test]
fn streamed_survey_matches_one_shot_acquisition() {
    let full_table = pka::datagen::smoking::table();
    let schema = full_table.shared_schema();

    // Manual policy: the test drives a refit after every batch, so the
    // stream goes through one cold fit and then ≥ 2 warm-started refits.
    let config = StreamConfig::new()
        .with_shard_count(4)
        .with_policy(RefreshPolicy::Manual)
        .with_acquisition(tight_config());
    let mut engine = StreamingEngine::new(Arc::clone(&schema), config).unwrap();
    assert!(engine.shard_count() >= 2, "acceptance requires ≥ 2 shards");

    let batches = round_robin_batches(3);
    assert!(batches.len() >= 3, "acceptance requires ≥ 3 batches");

    let mut warm_refits = 0;
    for batch in &batches {
        engine.ingest_dataset(batch).unwrap();
        let refit = engine.refresh().unwrap();
        if refit.warm_started {
            warm_refits += 1;
        }
    }
    assert!(warm_refits >= 2, "acceptance requires ≥ 2 warm refits, got {warm_refits}");
    assert_eq!(engine.total_ingested(), full_table.total());

    // The engine's accumulated counts are exactly the one-shot table.
    assert_eq!(engine.current_table().unwrap(), full_table);

    // One-shot acquisition over the full data, same configuration.
    let one_shot = Acquisition::new(tight_config()).run(&full_table).unwrap();
    let streamed = engine.snapshot().unwrap();
    let streamed_kb = streamed.knowledge_base();
    assert!(streamed.warm_started());
    assert_eq!(streamed.observations(), full_table.total());

    // Same discovered structure...
    assert_eq!(
        streamed_kb.order_histogram(),
        one_shot.knowledge_base.order_histogram(),
        "streamed and one-shot knowledge bases found different structure"
    );

    // ...and the same answer to every probability query: compare the full
    // joint cell by cell (every conditional is a ratio of such sums).
    let streamed_joint = streamed_kb.joint();
    let one_shot_joint = one_shot.knowledge_base.joint();
    for (i, (s, o)) in
        streamed_joint.probabilities().iter().zip(one_shot_joint.probabilities()).enumerate()
    {
        assert!((s - o).abs() < 1e-9, "joint cell {i}: streamed {s} vs one-shot {o}");
    }

    // Spot-check the memo's flagship conditional queries by name.
    for (target, evidence) in [
        (("cancer", "yes"), ("smoking", "smoker")),
        (("cancer", "yes"), ("smoking", "non-smoker")),
        (("family-history", "yes"), ("smoking", "smoker")),
        (("cancer", "no"), ("family-history", "no")),
    ] {
        let s = streamed_kb.conditional_by_names(&[target], &[evidence]).unwrap();
        let o = one_shot.knowledge_base.conditional_by_names(&[target], &[evidence]).unwrap();
        assert!((s - o).abs() < 1e-9, "P({target:?} | {evidence:?}): streamed {s} vs one-shot {o}");
    }

    // The discovered constraints are honoured exactly by the streamed model.
    let ac = Assignment::from_pairs([(0, 0), (2, 1)]);
    assert!((streamed_kb.probability(&ac) - full_table.frequency(&ac)).abs() < 1e-6);
}

#[test]
fn automatic_policy_stays_consistent_with_the_data() {
    // Same stream, but refits triggered by the dirty-counter policy instead
    // of manually: refresh whenever pending ≥ 25 % of the fitted data.
    //
    // Early refits see small noisy prefixes, and constraints they promote
    // are *retained* across warm refits (with their targets re-read from
    // the growing table).  The streamed knowledge base may therefore carry
    // strictly more structure than a one-shot run — the contract is not
    // bit-equality but consistency: every constraint it holds is honoured
    // against the full data, it contains at least the one-shot structure,
    // and its queries agree with the one-shot model to modelling accuracy.
    let full_table = pka::datagen::smoking::table();
    let schema = full_table.shared_schema();
    let config = StreamConfig::new()
        .with_shard_count(2)
        .with_policy(RefreshPolicy::DirtyFraction(0.25))
        .with_acquisition(tight_config());
    let mut engine = StreamingEngine::new(Arc::clone(&schema), config).unwrap();

    for batch in round_robin_batches(8) {
        engine.ingest_dataset(&batch).unwrap();
    }
    assert!(engine.refit_count() >= 2, "policy should have tripped repeatedly");

    // Catch up on whatever arrived after the last automatic refit.
    if engine.pending() > 0 {
        engine.refresh().unwrap();
    }
    let streamed = engine.snapshot().unwrap();
    let streamed_kb = streamed.knowledge_base();

    // Every constraint the streamed knowledge base holds is honoured and
    // matches the full data's frequency for that cell.
    for c in streamed_kb.constraints().constraints() {
        let fitted = streamed_kb.probability(&c.assignment);
        let empirical = full_table.frequency(&c.assignment);
        assert!((fitted - c.probability).abs() < 1e-6, "constraint not honoured");
        assert!((c.probability - empirical).abs() < 1e-9, "constraint target is stale");
    }

    // It found real higher-order structure.  (The exact cells — even the
    // attribute blocks — can legitimately differ from the one-shot run's:
    // search order matters to which of several equivalent descriptions is
    // promoted, e.g. one third-order cell can stand in for two second-order
    // ones.  What must agree is the distribution those descriptions pin
    // down, checked below.)
    assert!(!streamed_kb.significant_constraints().is_empty());
    let one_shot = Acquisition::new(tight_config()).run(&full_table).unwrap();

    // And the distributions the two descriptions pin down are close: both
    // honour the same first-order marginals and fit the same data, so their
    // joints may differ only in how unconstrained cells are smoothed.
    // Total variation is a sanity bound on that modelling slack, not a
    // bit-equality claim (the manual-policy test above makes that stronger
    // claim under identical refit schedules).
    let streamed_joint = streamed.knowledge_base().joint();
    let one_shot_joint = one_shot.knowledge_base.joint();
    let total_variation: f64 = streamed_joint
        .probabilities()
        .iter()
        .zip(one_shot_joint.probabilities())
        .map(|(s, o)| (s - o).abs())
        .sum::<f64>()
        / 2.0;
    assert!(total_variation < 0.02, "total variation {total_variation} too large");
}
