//! Cross-crate integration tests that pin the reproduction of the memo's
//! printed artefacts (Figures 1–2, Tables 1–2, the Eq. 57–62 fit).
//!
//! Tolerances follow the memo's own rounding: it prints probabilities to
//! 2–3 digits and message lengths to 2 decimals.

use pka::contingency::{Assignment, VarSet};
use pka::core::{Acquisition, AcquisitionConfig};
use pka::datagen::smoking;

/// Figure 1 / Figure 2: the embedded survey and all its marginals.
#[test]
fn figures_1_and_2_reproduce_exactly() {
    let table = smoking::table();
    assert_eq!(table.total(), 3428);

    // Figure 2a/2b margins (per family-history slice) via full-cell sums.
    let cell = |s: usize, c: usize, f: usize| table.count_values(&[s, c, f]);
    assert_eq!(cell(0, 0, 0), 130);
    assert_eq!(cell(0, 1, 0), 410);
    assert_eq!(cell(1, 0, 1), 31);
    assert_eq!(cell(2, 1, 1), 385);

    // Figure 2c: smoking × cancer marginal.
    let ab = table.marginal(VarSet::from_indices([0, 1]));
    let expected =
        [(0, 0, 240u64), (0, 1, 1050), (1, 0, 93), (1, 1, 1040), (2, 0, 100), (2, 1, 905)];
    for (i, j, n) in expected {
        assert_eq!(ab.count_by_values(&[i, j]), n, "N^AB_{}{}", i + 1, j + 1);
    }

    // First-order marginals and N.
    let a = table.marginal(VarSet::singleton(0));
    assert_eq!(
        (a.count_by_values(&[0]), a.count_by_values(&[1]), a.count_by_values(&[2])),
        (1290, 1133, 1005)
    );
    let b = table.marginal(VarSet::singleton(1));
    assert_eq!((b.count_by_values(&[0]), b.count_by_values(&[1])), (433, 2995));
    let c = table.marginal(VarSet::singleton(2));
    assert_eq!((c.count_by_values(&[0]), c.count_by_values(&[1])), (1780, 1648));
}

/// Eqs. 48–62: the first-order fit is the independence model and its
/// a-values equal the first-order probabilities (in the solver's gauge the
/// predictions, not the raw multipliers, are what the memo's Eq. 61 checks).
#[test]
fn eq_57_to_62_first_order_fit() {
    let table = smoking::table();
    let (model, report) = pka_bench::eq57_initial_model(&table);
    assert!(report.converged);

    let p = |pairs: &[(usize, usize)]| model.probability(&Assignment::from_pairs(pairs.to_vec()));
    let pa = [1290.0 / 3428.0, 1133.0 / 3428.0, 1005.0 / 3428.0];
    let pb = [433.0 / 3428.0, 2995.0 / 3428.0];
    let pc = [1780.0 / 3428.0, 1648.0 / 3428.0];

    // Eq. 61: third-order predictions are triple products.
    for (i, &pai) in pa.iter().enumerate() {
        for (j, &pbj) in pb.iter().enumerate() {
            for (k, &pck) in pc.iter().enumerate() {
                let predicted = model.cell_probability(&[i, j, k]);
                assert!((predicted - pai * pbj * pck).abs() < 1e-9);
            }
        }
    }
    // Eq. 62: second-order predictions are pair products (Table 1 column 1).
    assert!((p(&[(0, 0), (1, 0)]) - pa[0] * pb[0]).abs() < 1e-9);
    assert!((p(&[(0, 0), (2, 1)]) - pa[0] * pc[1]).abs() < 1e-9);
    assert!((p(&[(1, 0), (2, 0)]) - pb[0] * pc[0]).abs() < 1e-9);
}

/// Table 1: the m2 − m1 column, row by row, within ±0.5 of the memo's
/// printed values (the memo rounds its first-order probabilities before
/// computing the column, so exact agreement is not expected).
#[test]
fn table_1_message_lengths_match_the_memo() {
    let table = smoking::table();
    let round = pka_bench::table1_significance(&table);
    assert_eq!(round.evaluations.len(), 16);

    // (attribute pair, value pair, paper m2-m1)
    type PaperRow = ((usize, usize), (usize, usize), f64);
    let paper: &[PaperRow] = &[
        ((0, 1), (0, 0), -11.57),
        ((0, 1), (0, 1), 1.75),
        ((0, 1), (1, 0), -4.74),
        ((0, 1), (1, 1), 3.83),
        ((0, 1), (2, 0), 2.44),
        ((0, 1), (2, 1), 4.97),
        ((1, 2), (0, 0), 0.59),
        ((1, 2), (0, 1), -0.21),
        ((1, 2), (1, 0), 4.77),
        ((1, 2), (1, 1), 4.62),
        ((0, 2), (0, 0), -10.54),
        ((0, 2), (0, 1), -9.95),
        ((0, 2), (1, 0), 2.87),
        ((0, 2), (1, 1), 2.63),
        ((0, 2), (2, 0), -0.64),
        ((0, 2), (2, 1), -1.49),
    ];
    for &((a1, a2), (v1, v2), expected) in paper {
        let assignment = Assignment::from_pairs([(a1, v1), (a2, v2)]);
        let row = round
            .evaluations
            .iter()
            .find(|e| e.assignment == assignment)
            .unwrap_or_else(|| panic!("cell {assignment:?} missing from Table 1"));
        assert!(
            (row.delta - expected).abs() < 0.5,
            "cell {:?}: measured {:.2}, paper {:.2}",
            assignment,
            row.delta,
            expected
        );
        // The sign (and hence the significance verdict) must agree.
        assert_eq!(row.delta < 0.0, expected < 0.0, "verdict flipped for {assignment:?}");
    }
}

/// Table 2: adding the N^AC_12 constraint and iterating converges in a
/// handful of sweeps to the target 0.219, as the memo's hand iteration does.
#[test]
fn table_2_iteration_converges_like_the_memo() {
    let table = smoking::table();
    let report = pka_bench::table2_iteration(&table, 1e-3);
    assert!(report.converged);
    assert!(
        report.iterations <= 20,
        "memo converges in ~7 passes at 2-digit precision; we took {}",
        report.iterations
    );
    let last = report.last_record().expect("trace recorded");
    let fitted = *last.fitted.last().expect("constraint fitted value");
    assert!((fitted - 750.0 / 3428.0).abs() < 2e-3, "fitted {fitted}");
    // The violation decreases monotonically over the trace.
    for w in report.trace.windows(2) {
        assert!(w[1].max_violation <= w[0].max_violation * 1.5 + 1e-12);
    }
}

/// The overall procedure (Figure 3) discovers the smoking-related structure
/// and leaves the model consistent with every marginal it constrained.
#[test]
fn figure_3_procedure_on_the_paper_data() {
    let table = smoking::table();
    let outcome = Acquisition::new(AcquisitionConfig::new().with_evaluation_trace())
        .run(&table)
        .expect("acquisition succeeds");
    let kb = &outcome.knowledge_base;

    // Something was learned, and the first discovery is one of the memo's
    // strongly significant cells (AB_11, AC_11 or AC_12).
    let first = outcome.trace.selected_constraints()[0].clone();
    let strong = [
        Assignment::from_pairs([(0, 0), (1, 0)]),
        Assignment::from_pairs([(0, 0), (2, 0)]),
        Assignment::from_pairs([(0, 0), (2, 1)]),
    ];
    assert!(strong.contains(&first), "first discovery was {first:?}");

    // Every constraint is honoured and the joint sums to one.
    for c in kb.constraints().constraints() {
        assert!((kb.probability(&c.assignment) - c.probability).abs() < 1e-5);
    }
    let joint = kb.joint();
    assert!((joint.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-9);

    // The memo's headline conditional: smokers have an elevated cancer
    // probability (about .186 vs the base rate .126).
    let p = kb
        .conditional_by_names(&[("cancer", "yes")], &[("smoking", "smoker")])
        .expect("query evaluates");
    assert!((p - 240.0 / 1290.0).abs() < 0.01);
}
