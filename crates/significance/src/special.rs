//! Special functions used by the statistical tests.
//!
//! Everything in this crate reduces to three classical functions: the log
//! gamma function (for binomial coefficients), the regularised incomplete
//! gamma functions (for χ²/G-test p-values), and the error function (for the
//! normal CDF).  They are implemented here directly — the numerical recipes
//! are short, well understood and keep the workspace free of a heavyweight
//! statistics dependency.

use crate::error::SignificanceError;
use crate::Result;

/// Lanczos coefficients (g = 7, n = 9); standard double-precision set.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation; absolute error is far below anything the
/// message-length comparisons can resolve (≈1e-13 over the range used).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0 && x.is_finite(), "ln_gamma requires a positive finite argument, got {x}");
    if x < 0.5 {
        // Reflection formula keeps the Lanczos series in its accurate range.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln n!` for non-negative integers, exact for small `n` and via
/// [`ln_gamma`] otherwise.
pub fn ln_factorial(n: u64) -> f64 {
    // Small factorials are tabulated so ln C(n, k) is exact for the tiny
    // tables that dominate unit tests.
    const TABLE_LEN: usize = 21;
    static SMALL: [u64; TABLE_LEN] = [
        1,
        1,
        2,
        6,
        24,
        120,
        720,
        5_040,
        40_320,
        362_880,
        3_628_800,
        39_916_800,
        479_001_600,
        6_227_020_800,
        87_178_291_200,
        1_307_674_368_000,
        20_922_789_888_000,
        355_687_428_096_000,
        6_402_373_705_728_000,
        121_645_100_408_832_000,
        2_432_902_008_176_640_000,
    ];
    if (n as usize) < TABLE_LEN {
        (SMALL[n as usize] as f64).ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)`, the log binomial coefficient; zero when `k > n`would be
/// undefined, so that case is rejected.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose requires k <= n, got k={k}, n={n}");
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Regularised lower incomplete gamma function `P(a, x)`.
///
/// Implemented with the series expansion for `x < a + 1` and the continued
/// fraction for `x >= a + 1` (the classic Numerical-Recipes split).
pub fn gamma_p(a: f64, x: f64) -> Result<f64> {
    if !(a > 0.0) || !a.is_finite() {
        return Err(SignificanceError::InvalidParameter { name: "a", value: a });
    }
    if !(x >= 0.0) || !x.is_finite() {
        return Err(SignificanceError::InvalidParameter { name: "x", value: x });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        Ok(1.0 - gamma_q_continued_fraction(a, x)?)
    }
}

/// Regularised upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> Result<f64> {
    if !(a > 0.0) || !a.is_finite() {
        return Err(SignificanceError::InvalidParameter { name: "a", value: a });
    }
    if !(x >= 0.0) || !x.is_finite() {
        return Err(SignificanceError::InvalidParameter { name: "x", value: x });
    }
    if x == 0.0 {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_p_series(a, x)?)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

const MAX_ITERATIONS: usize = 500;
const EPSILON: f64 = 1e-14;

fn gamma_p_series(a: f64, x: f64) -> Result<f64> {
    let ln_prefix = a * x.ln() - x - ln_gamma(a);
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..MAX_ITERATIONS {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPSILON {
            return Ok((sum * ln_prefix.exp()).clamp(0.0, 1.0));
        }
    }
    Err(SignificanceError::NoConvergence { function: "gamma_p series" })
}

fn gamma_q_continued_fraction(a: f64, x: f64) -> Result<f64> {
    let ln_prefix = a * x.ln() - x - ln_gamma(a);
    // Modified Lentz's method.
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITERATIONS {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPSILON {
            return Ok((ln_prefix.exp() * h).clamp(0.0, 1.0));
        }
    }
    Err(SignificanceError::NoConvergence { function: "gamma_q continued fraction" })
}

/// The error function `erf(x)`, via the identity `erf(x) = P(1/2, x²)` for
/// `x ≥ 0` and oddness for `x < 0`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x).unwrap_or(1.0);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    if x <= 0.0 {
        // erfc(x) = 1 − erf(x) = 1 + erf(−x) = 1 + P(1/2, x²) for x ≤ 0.
        1.0 + gamma_p(0.5, x * x).unwrap_or(if x == 0.0 { 0.0 } else { 1.0 })
    } else {
        // Q(1/2, x²) keeps precision in the far right tail where 1 − erf(x)
        // would cancel catastrophically.
        gamma_q(0.5, x * x).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..15 {
            let expected: f64 = (1..n).map(|k| (k as f64).ln()).sum();
            assert!((ln_gamma(n as f64) - expected).abs() < 1e-10, "n = {n}");
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        let expected = 0.5 * std::f64::consts::PI.ln() - std::f64::consts::LN_2;
        assert!((ln_gamma(1.5) - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn ln_factorial_and_choose() {
        assert_eq!(ln_factorial(0), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(25) - ln_gamma(26.0)).abs() < 1e-9);
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_choose(10, 0)).abs() < 1e-12);
        assert!((ln_choose(10, 10)).abs() < 1e-12);
        // C(3428, 240) is huge but its log must be finite and positive.
        let big = ln_choose(3428, 240);
        assert!(big.is_finite() && big > 0.0);
    }

    #[test]
    #[should_panic]
    fn ln_choose_rejects_k_greater_than_n() {
        let _ = ln_choose(3, 4);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - exp(-x)
        for &x in &[0.1f64, 0.5, 1.0, 2.5, 7.0] {
            let expected = 1.0 - (-x).exp();
            assert!((gamma_p(1.0, x).unwrap() - expected).abs() < 1e-12, "x = {x}");
        }
        // Chi-square with 2 dof: CDF(x) = P(1, x/2); survival at the 95th
        // percentile 5.991 is 0.05.
        let sf = gamma_q(1.0, 5.991_464 / 2.0).unwrap();
        assert!((sf - 0.05).abs() < 1e-6);
        assert_eq!(gamma_p(1.0, 0.0).unwrap(), 0.0);
        assert_eq!(gamma_q(1.0, 0.0).unwrap(), 1.0);
    }

    #[test]
    fn gamma_p_rejects_bad_parameters() {
        assert!(gamma_p(-1.0, 1.0).is_err());
        assert!(gamma_p(1.0, -1.0).is_err());
        assert!(gamma_q(0.0, 1.0).is_err());
        assert!(gamma_q(1.0, f64::NAN).is_err());
    }

    #[test]
    fn erf_known_values() {
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(1.0) - 0.842_700_792_949_715).abs() < 1e-9);
        assert!((erf(-1.0) + 0.842_700_792_949_715).abs() < 1e-9);
        assert!((erf(2.0) - 0.995_322_265_018_953).abs() < 1e-9);
        assert!((erfc(1.0) - (1.0 - 0.842_700_792_949_715)).abs() < 1e-9);
        assert!((erfc(0.0) - 1.0).abs() < 1e-12);
        assert!((erfc(-1.0) - (1.0 + 0.842_700_792_949_715)).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_gamma_p_plus_q_is_one(a in 0.1f64..50.0, x in 0.0f64..100.0) {
            let p = gamma_p(a, x).unwrap();
            let q = gamma_q(a, x).unwrap();
            prop_assert!((p + q - 1.0).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn prop_gamma_p_monotone_in_x(a in 0.1f64..20.0, x in 0.0f64..50.0, dx in 0.0f64..10.0) {
            let p1 = gamma_p(a, x).unwrap();
            let p2 = gamma_p(a, x + dx).unwrap();
            prop_assert!(p2 + 1e-12 >= p1);
        }

        #[test]
        fn prop_ln_choose_symmetry(n in 0u64..500, k in 0u64..500) {
            prop_assume!(k <= n);
            let a = ln_choose(n, k);
            let b = ln_choose(n, n - k);
            prop_assert!((a - b).abs() < 1e-9);
        }

        #[test]
        fn prop_erf_is_odd_and_bounded(x in -5.0f64..5.0) {
            prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
            prop_assert!(erf(x).abs() <= 1.0);
        }
    }
}
