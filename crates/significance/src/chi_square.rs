//! Pearson χ² tests — the classical alternative to the memo's
//! message-length criterion, used by the ablation experiment (X5 in
//! DESIGN.md) and by the baseline association miner.

use crate::error::SignificanceError;
use crate::normal::Normal;
use crate::special::gamma_q;
use crate::Result;
use pka_contingency::{ContingencyTable, Marginal, VarSet};
use serde::{Deserialize, Serialize};

/// Outcome of a χ²-type test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChiSquareResult {
    /// The test statistic.
    pub statistic: f64,
    /// Degrees of freedom.
    pub degrees_of_freedom: f64,
    /// Upper-tail probability of the statistic under the χ² distribution.
    pub p_value: f64,
}

impl ChiSquareResult {
    /// True if the p-value is below the given significance level.
    pub fn is_significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Survival function of the χ² distribution with `dof` degrees of freedom.
pub fn chi_square_sf(statistic: f64, dof: f64) -> Result<f64> {
    if !(dof > 0.0) || !dof.is_finite() {
        return Err(SignificanceError::InvalidParameter { name: "degrees_of_freedom", value: dof });
    }
    if !(statistic >= 0.0) || !statistic.is_finite() {
        return Err(SignificanceError::InvalidParameter { name: "statistic", value: statistic });
    }
    gamma_q(dof / 2.0, statistic / 2.0)
}

/// Pearson χ² statistic for paired observed/expected count vectors.
///
/// Cells with zero expectation contribute nothing when the observation is
/// also zero and are otherwise rejected (the model claims the cell is
/// impossible but it was observed).
pub fn chi_square_statistic(
    observed: &[f64],
    expected: &[f64],
    dof: f64,
) -> Result<ChiSquareResult> {
    if observed.len() != expected.len() {
        return Err(SignificanceError::InvalidCount {
            reason: format!(
                "observed ({}) and expected ({}) vectors differ in length",
                observed.len(),
                expected.len()
            ),
        });
    }
    let mut statistic = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        if e <= 0.0 {
            if o > 0.0 {
                return Err(SignificanceError::InvalidCount {
                    reason: "observed count in a cell the model declares impossible".to_string(),
                });
            }
            continue;
        }
        let d = o - e;
        statistic += d * d / e;
    }
    let p_value = chi_square_sf(statistic, dof)?;
    Ok(ChiSquareResult { statistic, degrees_of_freedom: dof, p_value })
}

/// Classical χ² test of independence for a two-attribute marginal of a
/// contingency table: expected counts come from the product of the
/// single-attribute marginals, with `(I−1)(J−1)` degrees of freedom.
pub fn chi_square_independence(
    table: &ContingencyTable,
    first: usize,
    second: usize,
) -> Result<ChiSquareResult> {
    if first == second {
        return Err(SignificanceError::InvalidCount {
            reason: "independence test needs two distinct attributes".to_string(),
        });
    }
    let schema = table.schema();
    let card_a = schema.cardinality(first).map_err(|_| SignificanceError::InvalidParameter {
        name: "first attribute",
        value: first as f64,
    })?;
    let card_b = schema.cardinality(second).map_err(|_| SignificanceError::InvalidParameter {
        name: "second attribute",
        value: second as f64,
    })?;
    let pair: Marginal = table.marginal(VarSet::from_indices([first, second]));
    let ma = table.marginal(VarSet::singleton(first));
    let mb = table.marginal(VarSet::singleton(second));
    let n = table.total() as f64;
    if n == 0.0 {
        return Err(SignificanceError::InvalidCount { reason: "empty table".to_string() });
    }

    let mut observed = Vec::with_capacity(card_a * card_b);
    let mut expected = Vec::with_capacity(card_a * card_b);
    for i in 0..card_a {
        for j in 0..card_b {
            let o = if first < second {
                pair.count_by_values(&[i, j])
            } else {
                pair.count_by_values(&[j, i])
            } as f64;
            let e = ma.count_by_values(&[i]) as f64 * mb.count_by_values(&[j]) as f64 / n;
            observed.push(o);
            expected.push(e);
        }
    }
    let dof = ((card_a - 1) * (card_b - 1)) as f64;
    chi_square_statistic(&observed, &expected, dof.max(1.0))
}

/// Single-cell χ² test (1 degree of freedom): is the observed count of one
/// cell compatible with the model probability `p`?
///
/// This is the "score ≥ k standard deviations" criterion the memo's Table 1
/// implicitly contrasts with the message-length test; the ablation bench
/// uses it as the constraint-selection rule of the classical pipeline.
pub fn chi_square_cell_test(observed: u64, p: f64, n: u64) -> Result<ChiSquareResult> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(SignificanceError::InvalidProbability {
            value: p,
            context: "cell probability",
        });
    }
    if observed > n {
        return Err(SignificanceError::InvalidCount {
            reason: format!("observed {observed} exceeds sample size {n}"),
        });
    }
    let variance = n as f64 * p * (1.0 - p);
    if variance == 0.0 {
        // Degenerate model: any disagreement is infinitely significant.
        let agrees = (p == 0.0 && observed == 0) || (p == 1.0 && observed == n);
        return Ok(ChiSquareResult {
            statistic: if agrees { 0.0 } else { f64::INFINITY },
            degrees_of_freedom: 1.0,
            p_value: if agrees { 1.0 } else { 0.0 },
        });
    }
    let z = (observed as f64 - n as f64 * p) / variance.sqrt();
    Ok(ChiSquareResult {
        statistic: z * z,
        degrees_of_freedom: 1.0,
        p_value: Normal::two_sided_p(z),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{Attribute, Schema};
    use proptest::prelude::*;

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    #[test]
    fn sf_known_quantiles() {
        // 95th percentile of chi-square(1) is 3.841, of chi-square(4) is 9.488.
        assert!((chi_square_sf(3.841, 1.0).unwrap() - 0.05).abs() < 1e-3);
        assert!((chi_square_sf(9.488, 4.0).unwrap() - 0.05).abs() < 1e-3);
        assert!((chi_square_sf(0.0, 3.0).unwrap() - 1.0).abs() < 1e-12);
        assert!(chi_square_sf(1.0, 0.0).is_err());
        assert!(chi_square_sf(-1.0, 1.0).is_err());
    }

    #[test]
    fn statistic_simple_example() {
        // Classic die example: observed [22,17,21,13,17,30] vs uniform 20.
        let observed = [22.0, 17.0, 21.0, 13.0, 17.0, 30.0];
        let expected = [20.0; 6];
        let r = chi_square_statistic(&observed, &expected, 5.0).unwrap();
        assert!((r.statistic - 8.6).abs() < 1e-9);
        assert!(r.p_value > 0.1 && r.p_value < 0.2);
        assert!(!r.is_significant_at(0.05));
    }

    #[test]
    fn statistic_rejects_mismatched_and_impossible() {
        assert!(chi_square_statistic(&[1.0], &[1.0, 2.0], 1.0).is_err());
        assert!(chi_square_statistic(&[1.0], &[0.0], 1.0).is_err());
        // Zero-observed, zero-expected cells are allowed.
        let r = chi_square_statistic(&[0.0, 10.0], &[0.0, 10.0], 1.0).unwrap();
        assert_eq!(r.statistic, 0.0);
    }

    #[test]
    fn independence_detects_smoking_cancer_association() {
        // Smoking and family history are strongly associated in the paper's
        // data (that is the constraint the procedure discovers first), while
        // cancer and family history are much weaker.
        let t = paper_table();
        let ac = chi_square_independence(&t, 0, 2).unwrap();
        assert!(ac.is_significant_at(0.001), "p = {}", ac.p_value);
        assert_eq!(ac.degrees_of_freedom, 2.0);
        let ab = chi_square_independence(&t, 0, 1).unwrap();
        assert!(ab.is_significant_at(0.001));
        // Swapping the attribute order must not change the statistic.
        let ca = chi_square_independence(&t, 2, 0).unwrap();
        assert!((ac.statistic - ca.statistic).abs() < 1e-9);
        assert!(chi_square_independence(&t, 1, 1).is_err());
    }

    #[test]
    fn cell_test_tracks_z_score() {
        let r = chi_square_cell_test(240, 0.048, 3428).unwrap();
        assert!(r.statistic > 30.0); // ~6 sd
        assert!(r.p_value < 1e-8);
        let near = chi_square_cell_test(165, 0.048, 3428).unwrap();
        assert!(near.p_value > 0.5);
        assert!(chi_square_cell_test(10, 1.5, 20).is_err());
        assert!(chi_square_cell_test(30, 0.5, 20).is_err());
    }

    #[test]
    fn cell_test_degenerate_models() {
        let ok = chi_square_cell_test(0, 0.0, 100).unwrap();
        assert_eq!(ok.p_value, 1.0);
        let bad = chi_square_cell_test(5, 0.0, 100).unwrap();
        assert_eq!(bad.p_value, 0.0);
        let all = chi_square_cell_test(100, 1.0, 100).unwrap();
        assert_eq!(all.p_value, 1.0);
    }

    proptest! {
        #[test]
        fn prop_statistic_zero_when_observed_equals_expected(
            expected in proptest::collection::vec(0.5f64..50.0, 1..10),
        ) {
            let r = chi_square_statistic(&expected, &expected, expected.len() as f64).unwrap();
            prop_assert!(r.statistic.abs() < 1e-9);
            prop_assert!((r.p_value - 1.0).abs() < 1e-6);
        }

        #[test]
        fn prop_p_value_in_unit_interval(
            observed in proptest::collection::vec(0.0f64..100.0, 4),
            dof in 1.0f64..10.0,
        ) {
            let expected = vec![25.0; 4];
            let r = chi_square_statistic(&observed, &expected, dof).unwrap();
            prop_assert!((0.0..=1.0).contains(&r.p_value));
        }
    }
}
