//! The minimum-message-length significance test (Eqs. 35–47 of the memo).
//!
//! For every candidate cell the test compares two hypotheses:
//!
//! * **H1** — no more significant constraints exist at this order; the
//!   current maximum-entropy model explains the observed count, whose
//!   probability is the exact binomial of Eq. 32.
//! * **H2** — at least one more constraint exists (*H2′*) **and** this very
//!   cell is it (*H2″*); lacking other knowledge the count is uniform over
//!   the integer range still available to the cell (Eq. 41, computed by
//!   [`crate::bounds`]).
//!
//! The difference of the two message lengths, `m2 − m1`, is the log of the
//! posterior odds `p(H1|D)/p(H2|D)`; the cell is significant iff it is
//! negative (Eq. 47).  Table 1 of the memo lists exactly these quantities
//! for the smoking/cancer example.

use crate::binomial::Binomial;
use crate::bounds::CellRange;
use crate::error::SignificanceError;
use crate::Result;
use pka_contingency::Assignment;
use serde::{Deserialize, Serialize};

/// Prior probabilities of the two hypotheses.
///
/// The memo (Eq. 63) takes `p(H2′) = p(H1) = ½` so the prior terms cancel;
/// it also notes the effect of `p(H2′) = 0.6` (difference of −0.40 in
/// `m2 − m1`) and `p(H2′) = 0.8` (−1.39).  Both are expressible here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HypothesisPriors {
    /// `p(H2′)`: prior probability that at least one more significant
    /// constraint remains at the current order.  `p(H1) = 1 − p(H2′)`.
    p_more_constraints: f64,
}

impl HypothesisPriors {
    /// Creates priors with the given `p(H2′)`; must lie strictly inside
    /// `(0, 1)` so both message lengths are finite.
    pub fn new(p_more_constraints: f64) -> Result<Self> {
        if !(p_more_constraints > 0.0 && p_more_constraints < 1.0) {
            return Err(SignificanceError::InvalidProbability {
                value: p_more_constraints,
                context: "p(H2')",
            });
        }
        Ok(Self { p_more_constraints })
    }

    /// The memo's default: both hypotheses equally likely a priori
    /// (Eq. 63).
    pub fn even() -> Self {
        Self { p_more_constraints: 0.5 }
    }

    /// `p(H2′)`.
    pub fn p_more_constraints(&self) -> f64 {
        self.p_more_constraints
    }

    /// `p(H1) = 1 − p(H2′)`.
    pub fn p_no_more_constraints(&self) -> f64 {
        1.0 - self.p_more_constraints
    }

    /// The net contribution of the priors to `m2 − m1`,
    /// `ln p(H1) − ln p(H2′)`; zero for [`HypothesisPriors::even`].
    pub fn prior_delta(&self) -> f64 {
        self.p_no_more_constraints().ln() - self.p_more_constraints.ln()
    }
}

impl Default for HypothesisPriors {
    fn default() -> Self {
        Self::even()
    }
}

/// One cell under test: its identity, the count observed in the data, and
/// the probability the current model assigns it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateCell {
    /// Which marginal cell is being tested (e.g. `N^{AC}_{12}`).
    pub assignment: Assignment,
    /// The observed count `N_{S,c}`.
    pub observed: u64,
    /// The probability `p_{S,c}` the current maximum-entropy model predicts
    /// for the cell.
    pub predicted_p: f64,
}

/// Result of evaluating one candidate cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MessageLengths {
    /// `m1 = −ln p(H1) − ln B(observed; N, predicted_p)` (Eq. 46).
    pub m1: f64,
    /// `m2 = −ln p(H2′) + ln(cells − M) + ln(range + 1)` (Eq. 45).
    pub m2: f64,
    /// Predicted mean count under the model (Eq. 33) — Table 1 column 3.
    pub mean: f64,
    /// Predicted standard deviation (Eq. 34) — Table 1 column 4.
    pub std_dev: f64,
    /// Standardised deviation of the observation — Table 1 column 5.
    pub z_score: f64,
}

impl MessageLengths {
    /// `m2 − m1`, the log posterior odds of H1 over H2 — Table 1 column 6.
    pub fn delta(&self) -> f64 {
        self.m2 - self.m1
    }

    /// The posterior odds `p(H1|D)/p(H2|D) = exp(m2 − m1)` — Table 1
    /// column 7.
    pub fn likelihood_ratio(&self) -> f64 {
        self.delta().exp()
    }

    /// True iff the observation is statistically significant, i.e. H2 is
    /// more likely than H1 (Eq. 47: `m2 − m1 < 0`).
    pub fn is_significant(&self) -> bool {
        self.delta() < 0.0
    }
}

/// The significance test itself, parameterised by the hypothesis priors.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MessageLengthTest {
    priors: HypothesisPriors,
}

impl MessageLengthTest {
    /// Creates a test with the given priors.
    pub fn new(priors: HypothesisPriors) -> Self {
        Self { priors }
    }

    /// The priors in use.
    pub fn priors(&self) -> HypothesisPriors {
        self.priors
    }

    /// Evaluates one candidate cell.
    ///
    /// * `n_total` — the total sample size `N`.
    /// * `cells_at_order` — number of candidate cells at the current order
    ///   (the memo's `I·J·K·…` summed over the variable subsets of that
    ///   order; 16 for the example's second order).
    /// * `found_at_order` — the memo's `M`, the number of significant
    ///   constraints already accepted at this order.
    /// * `range` — the integer range available to the cell under H2
    ///   (computed by [`crate::bounds::RangeContext::range_of`]).
    pub fn evaluate(
        &self,
        candidate: &CandidateCell,
        n_total: u64,
        cells_at_order: usize,
        found_at_order: usize,
        range: &CellRange,
    ) -> Result<MessageLengths> {
        if candidate.observed > n_total {
            return Err(SignificanceError::InvalidCount {
                reason: format!(
                    "observed count {} exceeds the sample size {}",
                    candidate.observed, n_total
                ),
            });
        }
        if cells_at_order <= found_at_order {
            return Err(SignificanceError::InvalidCount {
                reason: format!(
                    "no candidate cells remain at this order ({cells_at_order} cells, {found_at_order} already found)"
                ),
            });
        }
        let binomial = Binomial::new(n_total, candidate.predicted_p)?;
        let ln_pmf = binomial.ln_pmf(candidate.observed)?;

        // Eq. 46: m1 = −ln p(H1) − ln B(N_obs; N, p).
        let m1 = -self.priors.p_no_more_constraints().ln() - ln_pmf;

        // Eq. 45: m2 = −ln p(H2') + ln(#cells − M) + (−ln p(D|H2)).
        let remaining_cells = (cells_at_order - found_at_order) as f64;
        let m2 =
            -self.priors.p_more_constraints().ln() + remaining_cells.ln() + range.message_length();

        Ok(MessageLengths {
            m1,
            m2,
            mean: binomial.mean(),
            std_dev: binomial.std_dev(),
            z_score: binomial.z_score(candidate.observed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::RangeContext;
    use pka_contingency::{Attribute, ContingencyTable, Schema};
    use proptest::prelude::*;

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    /// Helper reproducing one Table-1 row: all constraints are the first-order
    /// marginals, the model is the independence model, and there are 16
    /// second-order candidate cells.
    fn evaluate_paper_cell(pairs: [(usize, usize); 2], predicted_p: f64) -> MessageLengths {
        let t = paper_table();
        let ctx = RangeContext::new(&t, &[], &[]);
        let assignment = Assignment::from_pairs(pairs);
        let observed = t.count_matching(&assignment);
        let range = ctx.range_of(&assignment);
        let candidate = CandidateCell { assignment, observed, predicted_p };
        MessageLengthTest::new(HypothesisPriors::even())
            .evaluate(&candidate, t.total(), 16, 0, &range)
            .unwrap()
    }

    #[test]
    fn priors_validation() {
        assert!(HypothesisPriors::new(0.0).is_err());
        assert!(HypothesisPriors::new(1.0).is_err());
        assert!(HypothesisPriors::new(0.6).is_ok());
        assert_eq!(HypothesisPriors::even().prior_delta(), 0.0);
        assert_eq!(HypothesisPriors::default(), HypothesisPriors::even());
    }

    #[test]
    fn prior_sensitivity_matches_memo_notes() {
        // The memo: p(H2') = .6 shifts (m2 - m1) by about -0.40, and
        // p(H2') = .8 by about -1.39, relative to the even prior.
        let d6 = HypothesisPriors::new(0.6).unwrap().prior_delta();
        assert!((d6 - (-0.405)).abs() < 0.01);
        let d8 = HypothesisPriors::new(0.8).unwrap().prior_delta();
        assert!((d8 - (-1.386)).abs() < 0.01);
    }

    #[test]
    fn table1_row_ab11_is_significant() {
        // Table 1: p^AB_11 = .048, observed 240, mean 165, sd 12.5,
        // 6.03 sd, m2 - m1 = -11.57 (significant).
        let r = evaluate_paper_cell([(0, 0), (1, 0)], 0.376 * 0.126);
        assert!((r.mean - 162.0).abs() < 4.0);
        assert!((r.std_dev - 12.5).abs() < 0.2);
        assert!(r.z_score > 5.8 && r.z_score < 6.6);
        assert!(r.is_significant());
        assert!(r.delta() < -9.0 && r.delta() > -16.0, "delta = {}", r.delta());
        assert!(r.likelihood_ratio() < 0.1);
    }

    #[test]
    fn table1_row_ab12_is_not_significant() {
        // Table 1: p^AB_12 = .329, observed 1050, m2 - m1 = 1.75.
        let r = evaluate_paper_cell([(0, 0), (1, 1)], 0.376 * 0.874);
        assert!(!r.is_significant());
        assert!((r.delta() - 1.75).abs() < 0.6, "delta = {}", r.delta());
        assert!((r.z_score + 2.83).abs() < 0.3);
    }

    #[test]
    fn table1_rows_ac11_and_ac12_are_most_significant() {
        // Table 1: N^AC_11 (observed 540, p = .195) has m2 - m1 = -10.54 and
        // N^AC_12 (observed 750, p = .181) has -9.95; both significant.
        let ac11 = evaluate_paper_cell([(0, 0), (2, 0)], 0.376 * 0.519);
        let ac12 = evaluate_paper_cell([(0, 0), (2, 1)], 0.376 * 0.481);
        assert!(ac11.is_significant());
        assert!(ac12.is_significant());
        assert!(ac11.delta() < -8.0);
        assert!(ac12.delta() < -7.5);
        assert!((ac11.z_score + 5.54).abs() < 0.3);
        assert!((ac12.z_score - 5.75).abs() < 0.3);
    }

    #[test]
    fn table1_row_bc11_large_z_but_not_significant() {
        // The memo highlights that N^BC_11 sits 3.27 sd from its mean yet is
        // NOT significant under the message-length criterion (m2 - m1 = .59):
        // the classical z-score and the MML test genuinely disagree here.
        let r = evaluate_paper_cell([(1, 0), (2, 0)], 0.126 * 0.519);
        assert!(r.z_score > 3.0);
        assert!(!r.is_significant(), "delta = {}", r.delta());
        assert!(r.delta() < 1.6, "delta = {}", r.delta());
    }

    #[test]
    fn evaluate_rejects_inconsistent_inputs() {
        let t = paper_table();
        let ctx = RangeContext::new(&t, &[], &[]);
        let a = Assignment::from_pairs([(0, 0), (1, 0)]);
        let range = ctx.range_of(&a);
        let test = MessageLengthTest::default();
        let candidate = CandidateCell { assignment: a.clone(), observed: 99_999, predicted_p: 0.1 };
        assert!(test.evaluate(&candidate, t.total(), 16, 0, &range).is_err());
        let candidate = CandidateCell { assignment: a, observed: 240, predicted_p: 0.1 };
        assert!(test.evaluate(&candidate, t.total(), 16, 16, &range).is_err());
    }

    #[test]
    fn determined_cells_get_zero_data_message_length() {
        // A determined cell only pays the model-indexing cost under H2, so it
        // is *easier* to call significant — exactly the memo's ELSE branch.
        let range = CellRange { max_value: 100, min_free_cells: 1, determined: true };
        let candidate = CandidateCell {
            assignment: Assignment::from_pairs([(0, 0), (1, 0)]),
            observed: 240,
            predicted_p: 0.048,
        };
        let r = MessageLengthTest::default().evaluate(&candidate, 3428, 16, 0, &range).unwrap();
        // m2 = −ln p(H2′) + ln(16) with no data term.
        assert!((r.m2 - (-(0.5f64).ln() + (16f64).ln())).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_likelihood_ratio_is_exp_delta(
            observed in 0u64..1000,
            p in 0.01f64..0.5,
            max_value in 1u64..2000,
        ) {
            let range = CellRange { max_value, min_free_cells: 3, determined: false };
            let candidate = CandidateCell {
                assignment: Assignment::from_pairs([(0, 0), (1, 0)]),
                observed,
                predicted_p: p,
            };
            let r = MessageLengthTest::default().evaluate(&candidate, 2000, 16, 2, &range).unwrap();
            prop_assert!((r.likelihood_ratio() - r.delta().exp()).abs() < 1e-9);
            prop_assert_eq!(r.is_significant(), r.delta() < 0.0);
        }

        #[test]
        fn prop_larger_h2_prior_never_decreases_significance(
            observed in 0u64..500,
            p in 0.01f64..0.5,
        ) {
            // Raising p(H2') lowers m2 and leaves m1's data term unchanged, so
            // delta must not increase.
            let range = CellRange { max_value: 500, min_free_cells: 3, determined: false };
            let candidate = CandidateCell {
                assignment: Assignment::from_pairs([(0, 0), (1, 0)]),
                observed,
                predicted_p: p,
            };
            let low = MessageLengthTest::new(HypothesisPriors::new(0.3).unwrap())
                .evaluate(&candidate, 500, 16, 0, &range).unwrap();
            let high = MessageLengthTest::new(HypothesisPriors::new(0.8).unwrap())
                .evaluate(&candidate, 500, 16, 0, &range).unwrap();
            prop_assert!(high.delta() <= low.delta() + 1e-9);
        }

        #[test]
        fn prop_observation_at_mean_is_never_significant(
            n in 100u64..3000,
            p in 0.05f64..0.5,
        ) {
            // An observation exactly at the model's expectation carries no
            // evidence for a new constraint.
            let observed = (n as f64 * p).round() as u64;
            let range = CellRange { max_value: n, min_free_cells: 4, determined: false };
            let candidate = CandidateCell {
                assignment: Assignment::from_pairs([(0, 0), (1, 0)]),
                observed,
                predicted_p: p,
            };
            let r = MessageLengthTest::default().evaluate(&candidate, n, 16, 0, &range).unwrap();
            prop_assert!(!r.is_significant(), "delta = {}", r.delta());
        }
    }
}
