//! # pka-significance
//!
//! Statistical machinery for the knowledge-acquisition procedure of NASA
//! TM-88224: deciding which observed cell counts of a contingency table are
//! *significant* — i.e. cannot be explained by the maximum-entropy model
//! built from the constraints found so far and should therefore become new
//! constraints.
//!
//! The memo's test (Eqs. 32–47) is a Bayesian two-hypothesis comparison
//! phrased as a *minimum message length* criterion:
//!
//! * **H1** — the current model is adequate; the probability of the observed
//!   count `N_{ijk}` is the exact binomial `B(N_{ijk}; N, p_{ijk})` with
//!   `p_{ijk}` taken from the model (Eq. 32).
//! * **H2** — this cell is the next significant constraint; lacking any
//!   other information its count is uniform over the integer range still
//!   available to it given its marginals and the significant cells already
//!   found (Eq. 41).
//!
//! The message lengths `m1` and `m2` (Eqs. 45–46) are the negative log
//! posteriors of the two hypotheses; the cell is significant iff
//! `m2 − m1 < 0` (Eq. 47) and `exp(m2 − m1)` is the likelihood ratio
//! reported in Table 1 of the memo.
//!
//! The crate also provides the classical χ² and G-test alternatives used by
//! the ablation experiment (X5), and the special functions (`ln Γ`,
//! regularised incomplete gamma, normal CDF) everything is built on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binomial;
pub mod bounds;
pub mod chi_square;
pub mod error;
pub mod g_test;
pub mod message_length;
pub mod normal;
pub mod special;

pub use binomial::Binomial;
pub use bounds::{CellRange, RangeContext};
pub use chi_square::{chi_square_cell_test, chi_square_statistic, ChiSquareResult};
pub use error::SignificanceError;
pub use g_test::{g_statistic, g_test_cell, GTestResult};
pub use message_length::{CandidateCell, HypothesisPriors, MessageLengthTest, MessageLengths};
pub use normal::Normal;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SignificanceError>;
