//! The normal distribution, used for the `#sd` column of Table 1 and as the
//! reference approximation the exact binomial is compared against.

use crate::error::SignificanceError;
use crate::special::{erf, erfc};
use crate::Result;
use serde::{Deserialize, Serialize};

/// A normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation (`std_dev > 0`).
    pub fn new(mean: f64, std_dev: f64) -> Result<Self> {
        if !(std_dev > 0.0) || !std_dev.is_finite() || !mean.is_finite() {
            return Err(SignificanceError::InvalidParameter { name: "std_dev", value: std_dev });
        }
        Ok(Self { mean, std_dev })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self { mean: 0.0, std_dev: 1.0 }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Natural log of the density at `x`.
    pub fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        -0.5 * z * z - (self.std_dev * (2.0 * std::f64::consts::PI).sqrt()).ln()
    }

    /// Cumulative distribution function `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Survival function `P(X > x)`, computed with `erfc` so it stays
    /// accurate deep in the upper tail.
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * erfc(z)
    }

    /// Two-sided tail probability of a standardised score `z`:
    /// `P(|Z| ≥ |z|)`.
    pub fn two_sided_p(z: f64) -> f64 {
        erfc(z.abs() / std::f64::consts::SQRT_2).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(3.0, 2.0).is_ok());
    }

    #[test]
    fn standard_normal_known_values() {
        let n = Normal::standard();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((n.cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((n.cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!((n.pdf(0.0) - 0.398_942_280_401).abs() < 1e-9);
        assert!((n.sf(1.6449) - 0.05).abs() < 1e-4);
    }

    #[test]
    fn shifted_scaled_consistency() {
        let n = Normal::new(10.0, 2.0).unwrap();
        assert!((n.cdf(10.0) - 0.5).abs() < 1e-12);
        assert!((n.cdf(12.0) - Normal::standard().cdf(1.0)).abs() < 1e-12);
        assert!((n.ln_pdf(11.0) - n.pdf(11.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn two_sided_p_examples() {
        assert!((Normal::two_sided_p(1.96) - 0.05).abs() < 1e-3);
        assert!((Normal::two_sided_p(-1.96) - 0.05).abs() < 1e-3);
        assert!((Normal::two_sided_p(0.0) - 1.0).abs() < 1e-12);
        assert!(Normal::two_sided_p(6.0) < 1e-8);
    }

    proptest! {
        #[test]
        fn prop_cdf_plus_sf_is_one(mean in -50.0f64..50.0, sd in 0.1f64..10.0, x in -100.0f64..100.0) {
            let n = Normal::new(mean, sd).unwrap();
            prop_assert!((n.cdf(x) + n.sf(x) - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_cdf_monotone(x in -10.0f64..10.0, dx in 0.0f64..5.0) {
            let n = Normal::standard();
            prop_assert!(n.cdf(x + dx) + 1e-12 >= n.cdf(x));
        }
    }
}
