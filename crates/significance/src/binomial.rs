//! The binomial distribution of Eq. 32 of the memo.
//!
//! The probability of observing `N_{ijk}` occurrences of a cell out of `N`
//! samples, when the model assigns the cell probability `p_{ijk}`, is
//!
//! ```text
//! P(N_ijk | p_ijk, N) = C(N, N_ijk) · p_ijk^N_ijk · (1 − p_ijk)^(N − N_ijk)
//! ```
//!
//! with mean `N·p` (Eq. 33) and standard deviation `sqrt(N·p·(1−p))`
//! (Eq. 34).  The message-length test needs the **exact** log-pmf: the cells
//! that matter are many standard deviations from the mean, where the normal
//! approximation under-estimates the probability by an amount large enough
//! to flip significance decisions.

use crate::error::SignificanceError;
use crate::special::{ln_choose, ln_gamma};
use crate::Result;
use serde::{Deserialize, Serialize};

/// A binomial distribution `B(n, p)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution with `n` trials and success
    /// probability `p`.
    pub fn new(n: u64, p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(SignificanceError::InvalidProbability { value: p, context: "binomial p" });
        }
        Ok(Self { n, p })
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `N·p` (Eq. 33).
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Standard deviation `sqrt(N·p·(1−p))` (Eq. 34).
    pub fn std_dev(&self) -> f64 {
        (self.n as f64 * self.p * (1.0 - self.p)).sqrt()
    }

    /// Number of standard deviations the observation `k` lies from the mean
    /// (the `#sd` column of Table 1); `0` when the distribution is
    /// degenerate.
    pub fn z_score(&self, k: u64) -> f64 {
        let sd = self.std_dev();
        if sd == 0.0 {
            0.0
        } else {
            (k as f64 - self.mean()) / sd
        }
    }

    /// Exact natural log of the probability mass at `k`.
    ///
    /// Degenerate cases follow the distribution's support: with `p = 0` all
    /// mass is at `k = 0`, with `p = 1` all mass is at `k = n`.
    pub fn ln_pmf(&self, k: u64) -> Result<f64> {
        if k > self.n {
            return Err(SignificanceError::InvalidCount {
                reason: format!("observed count {k} exceeds the number of trials {}", self.n),
            });
        }
        if self.p == 0.0 {
            return Ok(if k == 0 { 0.0 } else { f64::NEG_INFINITY });
        }
        if self.p == 1.0 {
            return Ok(if k == self.n { 0.0 } else { f64::NEG_INFINITY });
        }
        let k_f = k as f64;
        let n_f = self.n as f64;
        Ok(ln_choose(self.n, k) + k_f * self.p.ln() + (n_f - k_f) * (1.0 - self.p).ln())
    }

    /// Probability mass at `k`.
    pub fn pmf(&self, k: u64) -> Result<f64> {
        Ok(self.ln_pmf(k)?.exp())
    }

    /// Cumulative probability `P(X ≤ k)` by direct summation around the
    /// dominant terms.  Exact (to summation round-off); adequate for the
    /// table sizes this system handles.
    pub fn cdf(&self, k: u64) -> Result<f64> {
        let k = k.min(self.n);
        let mut acc = 0.0;
        for i in 0..=k {
            acc += self.pmf(i)?;
        }
        Ok(acc.min(1.0))
    }

    /// Survival probability `P(X > k)`.
    pub fn sf(&self, k: u64) -> Result<f64> {
        Ok((1.0 - self.cdf(k)?).max(0.0))
    }

    /// The log-pmf of the normal approximation with the same mean and
    /// standard deviation.  Exposed so the documentation (and tests) can
    /// demonstrate how far the approximation drifts in the tails — the
    /// reason the exact pmf is used in the message-length test.
    pub fn ln_pmf_normal_approx(&self, k: u64) -> f64 {
        let sd = self.std_dev();
        if sd == 0.0 {
            return if (k as f64 - self.mean()).abs() < 0.5 { 0.0 } else { f64::NEG_INFINITY };
        }
        let z = self.z_score(k);
        -(sd * (2.0 * std::f64::consts::PI).sqrt()).ln() - 0.5 * z * z
    }

    /// Entropy (in nats) of the distribution, computed by summation.
    /// Used by the model-quality metrics in the benchmark harness.
    pub fn entropy(&self) -> f64 {
        if self.p == 0.0 || self.p == 1.0 {
            return 0.0;
        }
        let mut h = 0.0;
        for k in 0..=self.n {
            let lp = self.ln_pmf(k).expect("k <= n");
            if lp.is_finite() {
                h -= lp.exp() * lp;
            }
        }
        h
    }

    /// Stirling-approximation check value for `ln n!`; exposed for the
    /// numeric tests of the special-function layer.
    pub fn ln_factorial_stirling(n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        ln_gamma(n as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_invalid_p() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
        assert!(Binomial::new(10, 0.0).is_ok());
        assert!(Binomial::new(10, 1.0).is_ok());
    }

    #[test]
    fn mean_and_sd_match_eq_33_34() {
        // Table 1, row N^AB_11: p = .048, N = 3428 -> mean 165, sd 12.5.
        let b = Binomial::new(3428, 0.048).unwrap();
        assert!((b.mean() - 164.5).abs() < 0.1);
        assert!((b.std_dev() - 12.5).abs() < 0.02);
        // Row N^AB_12: p = .329 -> mean 1128, sd 27.5.
        let b = Binomial::new(3428, 0.329).unwrap();
        assert!((b.mean() - 1127.8).abs() < 0.1);
        assert!((b.std_dev() - 27.5).abs() < 0.05);
    }

    #[test]
    fn z_scores_match_table_1() {
        // Observed 240 in cell AB_11: 6.03 sd above the mean.
        let b = Binomial::new(3428, 0.048).unwrap();
        assert!((b.z_score(240) - 6.03).abs() < 0.05);
        // Observed 1050 in cell AB_12: -2.83 sd.
        let b = Binomial::new(3428, 0.329).unwrap();
        assert!((b.z_score(1050) + 2.83).abs() < 0.05);
    }

    #[test]
    fn pmf_sums_to_one_small_n() {
        let b = Binomial::new(12, 0.3).unwrap();
        let total: f64 = (0..=12).map(|k| b.pmf(k).unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_known_values() {
        let b = Binomial::new(4, 0.5).unwrap();
        assert!((b.pmf(2).unwrap() - 0.375).abs() < 1e-12);
        assert!((b.pmf(0).unwrap() - 0.0625).abs() < 1e-12);
        let b = Binomial::new(10, 0.2).unwrap();
        // C(10,3) * .2^3 * .8^7 = 120 * .008 * .2097152
        assert!((b.pmf(3).unwrap() - 0.201_326_592).abs() < 1e-9);
    }

    #[test]
    fn degenerate_distributions() {
        let b0 = Binomial::new(5, 0.0).unwrap();
        assert_eq!(b0.pmf(0).unwrap(), 1.0);
        assert_eq!(b0.pmf(3).unwrap(), 0.0);
        assert_eq!(b0.std_dev(), 0.0);
        assert_eq!(b0.z_score(0), 0.0);
        let b1 = Binomial::new(5, 1.0).unwrap();
        assert_eq!(b1.pmf(5).unwrap(), 1.0);
        assert_eq!(b1.pmf(0).unwrap(), 0.0);
        assert_eq!(b0.entropy(), 0.0);
    }

    #[test]
    fn ln_pmf_rejects_k_above_n() {
        let b = Binomial::new(5, 0.4).unwrap();
        assert!(b.ln_pmf(6).is_err());
    }

    #[test]
    fn cdf_and_sf_are_complementary() {
        let b = Binomial::new(20, 0.35).unwrap();
        for k in 0..=20 {
            let c = b.cdf(k).unwrap();
            let s = b.sf(k).unwrap();
            assert!((c + s - 1.0).abs() < 1e-9);
        }
        assert!((b.cdf(20).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_tail_is_heavier_than_normal_approximation() {
        // This is the numerical fact that makes the exact pmf necessary for
        // reproducing Table 1: at ~6 sd above the mean of a low-p binomial,
        // the exact pmf exceeds the normal approximation substantially.
        let b = Binomial::new(3428, 0.048).unwrap();
        let exact = b.ln_pmf(240).unwrap();
        let approx = b.ln_pmf_normal_approx(240);
        assert!(exact > approx + 0.5, "exact {exact} should exceed normal approx {approx}");
    }

    #[test]
    fn entropy_positive_for_nondegenerate() {
        let b = Binomial::new(30, 0.4).unwrap();
        let h = b.entropy();
        assert!(h > 0.0 && h.is_finite());
    }

    proptest! {
        #[test]
        fn prop_pmf_in_unit_interval(n in 1u64..200, p in 0.0f64..1.0, k in 0u64..200) {
            prop_assume!(k <= n);
            let b = Binomial::new(n, p).unwrap();
            let pm = b.pmf(k).unwrap();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&pm));
        }

        #[test]
        fn prop_pmf_sums_to_one(n in 1u64..80, p in 0.01f64..0.99) {
            let b = Binomial::new(n, p).unwrap();
            let total: f64 = (0..=n).map(|k| b.pmf(k).unwrap()).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_cdf_monotone(n in 1u64..60, p in 0.01f64..0.99, k in 0u64..60) {
            prop_assume!(k < n);
            let b = Binomial::new(n, p).unwrap();
            prop_assert!(b.cdf(k + 1).unwrap() + 1e-12 >= b.cdf(k).unwrap());
        }

        #[test]
        fn prop_mean_within_support(n in 1u64..1000, p in 0.0f64..1.0) {
            let b = Binomial::new(n, p).unwrap();
            prop_assert!(b.mean() >= 0.0 && b.mean() <= n as f64);
            prop_assert!(b.std_dev() >= 0.0);
        }
    }
}
