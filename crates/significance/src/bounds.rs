//! The integer range available to a candidate cell under the "chance"
//! hypothesis H2 (Eq. 41 of the memo).
//!
//! Under H2 the cell's count is *a priori* uniform over the integer values it
//! could still take.  That range is bounded by every **known marginal** of
//! the cell (the first-order marginals are always known; a higher-order
//! marginal is known only if it was itself found significant or given),
//! minus the counts already committed to other significant cells under the
//! same marginal.  If, for some marginal, the candidate is the *only*
//! remaining free cell, its value is completely determined and
//! `p(D | H2) = 1`.

use pka_contingency::{Assignment, ContingencyTable, VarSet};
use serde::{Deserialize, Serialize};

/// Everything needed to bound candidate cells at one order of the
/// acquisition loop.
#[derive(Debug, Clone, Copy)]
pub struct RangeContext<'a> {
    table: &'a ContingencyTable,
    /// Constraints known before this order started (any order): the
    /// first-order marginals are implicit and never need to be listed; this
    /// slice carries the *higher-order* constraints (found significant or
    /// supplied as prior knowledge).
    known_constraints: &'a [Assignment],
    /// Cells already found significant at the *current* order.
    found_at_order: &'a [Assignment],
}

impl<'a> RangeContext<'a> {
    /// Creates a context for one order of the acquisition loop.
    pub fn new(
        table: &'a ContingencyTable,
        known_constraints: &'a [Assignment],
        found_at_order: &'a [Assignment],
    ) -> Self {
        Self { table, known_constraints, found_at_order }
    }

    /// True if the marginal of `candidate` onto `subset` is a known
    /// constraint: every first-order marginal is (the memo always constrains
    /// them), a higher-order one only if it appears among the known
    /// constraints.
    fn marginal_is_known(&self, candidate: &Assignment, subset: VarSet) -> bool {
        if subset.len() == 1 {
            return true;
        }
        let projected = candidate.restrict(subset);
        self.known_constraints.contains(&projected)
    }

    /// Computes the available range for a candidate cell (Eq. 41).
    pub fn range_of(&self, candidate: &Assignment) -> CellRange {
        let vars = candidate.vars();
        let order = vars.len();
        let schema = self.table.schema();

        let mut max_value = self.table.total();
        let mut min_free_cells = usize::MAX;

        for subset_size in 1..order {
            for subset in vars.subsets_of_size(subset_size) {
                if !self.marginal_is_known(candidate, subset) {
                    continue;
                }
                let projected = candidate.restrict(subset);
                let marginal_count = self.table.count_matching(&projected);

                // Other significant cells at this order, over the same
                // variable set, that fall under the same marginal slice.
                let mut committed = 0u64;
                let mut committed_cells = 0usize;
                for f in self.found_at_order {
                    if f.vars() != vars || f == candidate {
                        continue;
                    }
                    if f.restrict(subset) == projected {
                        committed += self.table.count_matching(f);
                        committed_cells += 1;
                    }
                }

                let bound = marginal_count.saturating_sub(committed);
                max_value = max_value.min(bound);

                // Number of cells of `vars` lying in this marginal slice: the
                // free attributes are vars \ subset.
                let slice_cells: usize = vars
                    .difference(subset)
                    .iter()
                    .map(|a| schema.cardinality(a).unwrap_or(1))
                    .product();
                let free = slice_cells.saturating_sub(committed_cells);
                min_free_cells = min_free_cells.min(free);
            }
        }

        if min_free_cells == usize::MAX {
            // Order-0 or order-1 candidate: no proper marginal bounds it
            // other than the grand total.
            min_free_cells = usize::MAX;
        }

        CellRange { max_value, min_free_cells, determined: min_free_cells <= 1 }
    }
}

/// The integer range a candidate cell could occupy under H2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellRange {
    /// Largest value the cell could take (its tightest marginal bound minus
    /// counts already committed to other significant cells).
    pub max_value: u64,
    /// Smallest number of still-free cells across the known marginal slices
    /// containing the candidate.
    pub min_free_cells: usize,
    /// True if the cell's value is completely determined by the marginals
    /// and the cells already found (`min_free_cells <= 1`), in which case
    /// `p(D | H2) = 1`.
    pub determined: bool,
}

impl CellRange {
    /// The message length `−ln p(D | H2)` contributed by the data under H2:
    /// `ln(max_value + 1)` when the cell is free, `0` when it is
    /// determined (Eq. 41's ELSE branch).
    pub fn message_length(&self) -> f64 {
        if self.determined {
            0.0
        } else {
            ((self.max_value + 1) as f64).ln()
        }
    }

    /// Number of equally-likely integer values under H2 (1 when determined).
    pub fn values_available(&self) -> u64 {
        if self.determined {
            1
        } else {
            self.max_value + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{Attribute, ContingencyTable, Schema};

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    #[test]
    fn second_order_range_with_no_prior_findings() {
        let t = paper_table();
        let ctx = RangeContext::new(&t, &[], &[]);
        // N^AB_11 is bounded by min(N^A_1, N^B_1) = min(1290, 433) = 433.
        let r = ctx.range_of(&Assignment::from_pairs([(0, 0), (1, 0)]));
        assert_eq!(r.max_value, 433);
        assert!(!r.determined);
        assert_eq!(r.min_free_cells, 2); // slice over the other attribute has >= 2 cells
        assert!((r.message_length() - 434f64.ln()).abs() < 1e-12);
        // N^AB_12 is bounded by min(N^A_1, N^B_2) = 1290.
        let r = ctx.range_of(&Assignment::from_pairs([(0, 0), (1, 1)]));
        assert_eq!(r.max_value, 1290);
        assert_eq!(r.values_available(), 1291);
    }

    #[test]
    fn found_cells_reduce_the_range() {
        let t = paper_table();
        // Suppose N^AC_12 (count 750) has already been found significant.
        let found = vec![Assignment::from_pairs([(0, 0), (2, 1)])];
        let ctx = RangeContext::new(&t, &[], &found);
        // Candidate N^AC_11 shares the A=smoker marginal (1290) with the
        // found cell, so its bound drops to 1290 - 750 = 540; the C=yes
        // marginal gives 1780, so the minimum is 540.
        let r = ctx.range_of(&Assignment::from_pairs([(0, 0), (2, 0)]));
        assert_eq!(r.max_value, 540);
        // Only one free cell remains in the A=smoker slice of the AC table
        // (the candidate itself), so the cell is determined.
        assert!(r.determined);
        assert_eq!(r.message_length(), 0.0);
        assert_eq!(r.values_available(), 1);
    }

    #[test]
    fn found_cells_over_other_varsets_do_not_interfere() {
        let t = paper_table();
        // A found AB cell must not tighten an AC candidate's bounds: the
        // memo's Eq. 41 only subtracts same-table cells.
        let found = vec![Assignment::from_pairs([(0, 0), (1, 0)])];
        let ctx = RangeContext::new(&t, &[], &found);
        let r = ctx.range_of(&Assignment::from_pairs([(0, 0), (2, 0)]));
        // The bound stays at min(N^A_1 = 1290, N^C_1 = 1780) = 1290 because
        // the found cell lives in the AB table, not the AC table.
        assert_eq!(r.max_value, 1290);
        assert!(!r.determined);
    }

    #[test]
    fn third_order_range_uses_known_second_order_marginals() {
        let t = paper_table();
        // N^ABC_111 = 130.
        let candidate = Assignment::from_pairs([(0, 0), (1, 0), (2, 0)]);
        // Without any known second-order constraints, only the first-order
        // marginals bound the cell: min(1290, 433, 1780) = 433.
        let ctx = RangeContext::new(&t, &[], &[]);
        assert_eq!(ctx.range_of(&candidate).max_value, 433);
        // Once N^AB_11 = 240 is a known constraint, it also bounds the cell.
        let known = vec![Assignment::from_pairs([(0, 0), (1, 0)])];
        let ctx = RangeContext::new(&t, &known, &[]);
        assert_eq!(ctx.range_of(&candidate).max_value, 240);
    }

    #[test]
    fn first_order_candidate_is_only_bounded_by_n() {
        let t = paper_table();
        let ctx = RangeContext::new(&t, &[], &[]);
        let r = ctx.range_of(&Assignment::single(0, 0));
        assert_eq!(r.max_value, t.total());
        assert!(!r.determined);
    }
}
