//! The likelihood-ratio (G) test, the second classical alternative used in
//! the constraint-selection ablation.
//!
//! `G = 2 Σ O·ln(O/E)` is asymptotically χ²-distributed with the same
//! degrees of freedom as the Pearson statistic; unlike Pearson it is an
//! information-theoretic quantity (twice the Kullback-Leibler divergence
//! between observed and expected counts), which makes it the closest
//! classical relative of the memo's message-length criterion.

use crate::chi_square::chi_square_sf;
use crate::error::SignificanceError;
use crate::Result;
use pka_contingency::{ContingencyTable, VarSet};
use serde::{Deserialize, Serialize};

/// Outcome of a G-test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GTestResult {
    /// The G statistic (`2 Σ O ln(O/E)`).
    pub statistic: f64,
    /// Degrees of freedom used for the p-value.
    pub degrees_of_freedom: f64,
    /// Upper-tail χ² probability of the statistic.
    pub p_value: f64,
}

impl GTestResult {
    /// True if the p-value is below the given significance level.
    pub fn is_significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// G statistic for paired observed/expected count vectors.
pub fn g_statistic(observed: &[f64], expected: &[f64], dof: f64) -> Result<GTestResult> {
    if observed.len() != expected.len() {
        return Err(SignificanceError::InvalidCount {
            reason: format!(
                "observed ({}) and expected ({}) vectors differ in length",
                observed.len(),
                expected.len()
            ),
        });
    }
    let mut statistic = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        if o == 0.0 {
            // lim_{o->0} o ln(o/e) = 0.
            continue;
        }
        if e <= 0.0 {
            return Err(SignificanceError::InvalidCount {
                reason: "observed count in a cell the model declares impossible".to_string(),
            });
        }
        statistic += 2.0 * o * (o / e).ln();
    }
    let statistic = statistic.max(0.0);
    let p_value = chi_square_sf(statistic, dof)?;
    Ok(GTestResult { statistic, degrees_of_freedom: dof, p_value })
}

/// G-test of independence for a pair of attributes of a contingency table.
pub fn g_test_independence(
    table: &ContingencyTable,
    first: usize,
    second: usize,
) -> Result<GTestResult> {
    if first == second {
        return Err(SignificanceError::InvalidCount {
            reason: "independence test needs two distinct attributes".to_string(),
        });
    }
    let schema = table.schema();
    let card_a = schema.cardinality(first).map_err(|_| SignificanceError::InvalidParameter {
        name: "first attribute",
        value: first as f64,
    })?;
    let card_b = schema.cardinality(second).map_err(|_| SignificanceError::InvalidParameter {
        name: "second attribute",
        value: second as f64,
    })?;
    let pair = table.marginal(VarSet::from_indices([first, second]));
    let ma = table.marginal(VarSet::singleton(first));
    let mb = table.marginal(VarSet::singleton(second));
    let n = table.total() as f64;
    if n == 0.0 {
        return Err(SignificanceError::InvalidCount { reason: "empty table".to_string() });
    }
    let mut observed = Vec::with_capacity(card_a * card_b);
    let mut expected = Vec::with_capacity(card_a * card_b);
    for i in 0..card_a {
        for j in 0..card_b {
            let o = if first < second {
                pair.count_by_values(&[i, j])
            } else {
                pair.count_by_values(&[j, i])
            } as f64;
            let e = ma.count_by_values(&[i]) as f64 * mb.count_by_values(&[j]) as f64 / n;
            observed.push(o);
            expected.push(e);
        }
    }
    let dof = (((card_a - 1) * (card_b - 1)) as f64).max(1.0);
    g_statistic(&observed, &expected, dof)
}

/// Single-cell G-test (1 degree of freedom) of an observed count against a
/// model probability, the per-cell selection rule of the classical ablation
/// pipeline.
pub fn g_test_cell(observed: u64, p: f64, n: u64) -> Result<GTestResult> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(SignificanceError::InvalidProbability {
            value: p,
            context: "cell probability",
        });
    }
    if observed > n {
        return Err(SignificanceError::InvalidCount {
            reason: format!("observed {observed} exceeds sample size {n}"),
        });
    }
    // Two-cell decomposition (in the cell vs. outside it) keeps the statistic
    // well defined for every observed value.
    let o = [observed as f64, (n - observed) as f64];
    let e = [n as f64 * p, n as f64 * (1.0 - p)];
    if e[0] == 0.0 || e[1] == 0.0 {
        let agrees = (p == 0.0 && observed == 0) || (p == 1.0 && observed == n);
        return Ok(GTestResult {
            statistic: if agrees { 0.0 } else { f64::INFINITY },
            degrees_of_freedom: 1.0,
            p_value: if agrees { 1.0 } else { 0.0 },
        });
    }
    g_statistic(&o, &e, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chi_square::chi_square_independence;
    use pka_contingency::{Attribute, Schema};
    use proptest::prelude::*;

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    #[test]
    fn g_statistic_zero_for_perfect_fit() {
        let e = [10.0, 20.0, 30.0];
        let r = g_statistic(&e, &e, 2.0).unwrap();
        assert!(r.statistic.abs() < 1e-12);
        assert!((r.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn g_statistic_handles_zero_observed() {
        let r = g_statistic(&[0.0, 10.0], &[5.0, 5.0], 1.0).unwrap();
        assert!(r.statistic > 0.0 && r.statistic.is_finite());
        assert!(g_statistic(&[1.0, 2.0], &[1.0], 1.0).is_err());
        assert!(g_statistic(&[1.0], &[0.0], 1.0).is_err());
    }

    #[test]
    fn g_and_chi_square_agree_on_paper_data() {
        // For the fairly large counts of the smoking survey the two
        // statistics should be close and lead to the same decisions.
        let t = paper_table();
        let g = g_test_independence(&t, 0, 2).unwrap();
        let x2 = chi_square_independence(&t, 0, 2).unwrap();
        assert!((g.statistic - x2.statistic).abs() / x2.statistic < 0.1);
        assert!(g.is_significant_at(0.001));
        let g_ab = g_test_independence(&t, 0, 1).unwrap();
        assert!(g_ab.is_significant_at(0.001));
        assert!(g_test_independence(&t, 0, 0).is_err());
    }

    #[test]
    fn cell_test_behaviour() {
        let strong = g_test_cell(240, 0.048, 3428).unwrap();
        assert!(strong.p_value < 1e-6);
        let weak = g_test_cell(165, 0.048, 3428).unwrap();
        assert!(weak.p_value > 0.5);
        assert!(g_test_cell(10, 2.0, 20).is_err());
        assert!(g_test_cell(30, 0.5, 20).is_err());
        assert_eq!(g_test_cell(0, 0.0, 50).unwrap().p_value, 1.0);
        assert_eq!(g_test_cell(3, 0.0, 50).unwrap().p_value, 0.0);
    }

    proptest! {
        #[test]
        fn prop_g_nonnegative(
            observed in proptest::collection::vec(0.0f64..60.0, 4),
        ) {
            let expected = vec![15.0; 4];
            let r = g_statistic(&observed, &expected, 3.0).unwrap();
            prop_assert!(r.statistic >= 0.0);
            prop_assert!((0.0..=1.0).contains(&r.p_value));
        }

        #[test]
        fn prop_cell_test_p_small_for_large_deviation(n in 500u64..3000, p in 0.1f64..0.4) {
            // An observation at 3x the expectation should essentially always
            // be rejected at the 1% level for these sample sizes.
            let observed = ((n as f64 * p) * 3.0).min(n as f64) as u64;
            let r = g_test_cell(observed, p, n).unwrap();
            prop_assert!(r.p_value < 0.01);
        }
    }
}
