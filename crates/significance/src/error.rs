//! Error type for statistical computations.

use std::fmt;

/// Errors produced by the significance machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum SignificanceError {
    /// A probability parameter was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// The offending value.
        value: f64,
        /// Which parameter it was supplied for.
        context: &'static str,
    },
    /// A count parameter was inconsistent (e.g. observed count exceeding the
    /// sample size).
    InvalidCount {
        /// Description of the inconsistency.
        reason: String,
    },
    /// A distribution parameter (degrees of freedom, shape, …) was not
    /// positive and finite.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An iterative special-function evaluation failed to converge.
    NoConvergence {
        /// Which function was being evaluated.
        function: &'static str,
    },
}

impl fmt::Display for SignificanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidProbability { value, context } => {
                write!(f, "invalid probability {value} for {context}; must lie in [0, 1]")
            }
            Self::InvalidCount { reason } => write!(f, "invalid count: {reason}"),
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            Self::NoConvergence { function } => {
                write!(f, "iterative evaluation of {function} failed to converge")
            }
        }
    }
}

impl std::error::Error for SignificanceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SignificanceError::InvalidProbability { value: 1.5, context: "binomial p" };
        assert!(e.to_string().contains("1.5"));
        assert!(e.to_string().contains("binomial p"));
        let e = SignificanceError::NoConvergence { function: "gamma_p" };
        assert!(e.to_string().contains("gamma_p"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: std::error::Error>(_: &E) {}
        takes_err(&SignificanceError::InvalidCount { reason: "x".into() });
    }
}
