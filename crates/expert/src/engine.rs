//! The consultation engine: posterior beliefs over query attributes given
//! the evidence asserted so far.

use crate::evidence::Evidence;
use pka_contingency::{Assignment, Schema};
use pka_core::{CoreError, KnowledgeBase, Result};

/// One candidate value of a query attribute with its posterior probability.
#[derive(Debug, Clone, PartialEq)]
pub struct Hypothesis {
    /// The attribute the hypothesis is about.
    pub attribute: usize,
    /// The value index.
    pub value: usize,
    /// Posterior probability given the current evidence.
    pub posterior: f64,
    /// Prior (no-evidence) probability, for contrast.
    pub prior: f64,
}

impl Hypothesis {
    /// Lift of the hypothesis under the current evidence.
    pub fn lift(&self) -> f64 {
        if self.prior <= 0.0 {
            f64::INFINITY
        } else {
            self.posterior / self.prior
        }
    }

    /// Human-readable rendering.
    pub fn describe(&self, schema: &Schema) -> String {
        let attr = schema.attribute(self.attribute).expect("attribute in schema");
        format!(
            "{}={}: {:.4} (prior {:.4}, lift {:.2})",
            attr.name(),
            attr.value_name(self.value).unwrap_or("?"),
            self.posterior,
            self.prior,
            self.lift()
        )
    }
}

/// A consultation session: a knowledge base plus the evidence asserted so
/// far.
#[derive(Debug, Clone)]
pub struct ExpertSystem {
    kb: KnowledgeBase,
    evidence: Evidence,
}

impl ExpertSystem {
    /// Starts a consultation with no evidence.
    pub fn new(kb: KnowledgeBase) -> Self {
        Self { kb, evidence: Evidence::none() }
    }

    /// The underlying knowledge base.
    pub fn knowledge_base(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// The evidence asserted so far.
    pub fn evidence(&self) -> &Evidence {
        &self.evidence
    }

    /// Asserts `attribute = value` by name.
    pub fn assert_named(&mut self, attribute: &str, value: &str) -> Result<()> {
        let schema = self.kb.shared_schema();
        self.evidence.assert_named(&schema, attribute, value)
    }

    /// Asserts `attribute = value` by index.
    pub fn assert_value(&mut self, attribute: usize, value: usize) {
        self.evidence.assert_value(attribute, value);
    }

    /// Retracts whatever was asserted about the named attribute.
    pub fn retract_named(&mut self, attribute: &str) -> Result<bool> {
        let schema = self.kb.shared_schema();
        self.evidence.retract_named(&schema, attribute)
    }

    /// Clears all evidence.
    pub fn reset(&mut self) {
        self.evidence = Evidence::none();
    }

    /// Posterior distribution over the values of `attribute` given the
    /// current evidence.  Evidence asserted on the query attribute itself is
    /// ignored for this computation (the question is what the *rest* of the
    /// evidence implies).
    pub fn posterior(&self, attribute: usize) -> Result<Vec<Hypothesis>> {
        let schema = self.kb.schema();
        let card = schema.cardinality(attribute).map_err(CoreError::from)?;
        let relevant_evidence = Assignment::from_pairs(
            self.evidence.assignment().pairs().filter(|&(a, _)| a != attribute),
        );
        let mut hypotheses = Vec::with_capacity(card);
        for value in 0..card {
            let target = Assignment::single(attribute, value);
            let posterior = if relevant_evidence.vars().is_empty() {
                self.kb.probability(&target)
            } else {
                self.kb.conditional(&target, &relevant_evidence)?
            };
            let prior = self.kb.probability(&target);
            hypotheses.push(Hypothesis { attribute, value, posterior, prior });
        }
        Ok(hypotheses)
    }

    /// Posterior distribution over a named attribute.
    pub fn posterior_named(&self, attribute: &str) -> Result<Vec<Hypothesis>> {
        let attr = self.kb.schema().attribute_index(attribute).map_err(CoreError::from)?;
        self.posterior(attr)
    }

    /// The most probable value of `attribute` given the current evidence.
    pub fn best_hypothesis(&self, attribute: usize) -> Result<Hypothesis> {
        let mut hypotheses = self.posterior(attribute)?;
        hypotheses.sort_by(|a, b| {
            b.posterior.partial_cmp(&a.posterior).unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(hypotheses.into_iter().next().expect("attribute has at least one value"))
    }

    /// A consultation transcript: the evidence and the ranked hypotheses for
    /// one query attribute.
    pub fn consultation_report(&self, attribute: usize) -> Result<String> {
        let schema = self.kb.schema();
        let mut hypotheses = self.posterior(attribute)?;
        hypotheses.sort_by(|a, b| {
            b.posterior.partial_cmp(&a.posterior).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut out = String::new();
        out.push_str(&format!("evidence: {}\n", self.evidence.describe(schema)));
        out.push_str(&format!(
            "query: {}\n",
            schema.attribute(attribute).map_err(CoreError::from)?.name()
        ));
        for h in &hypotheses {
            out.push_str(&format!("  {}\n", h.describe(schema)));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{Attribute, ContingencyTable};
    use pka_core::Acquisition;
    use std::sync::Arc;

    fn kb() -> KnowledgeBase {
        let schema = pka_contingency::Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        let t = ContingencyTable::from_counts(
            Arc::clone(&schema),
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap();
        Acquisition::with_defaults().run(&t).unwrap().knowledge_base
    }

    #[test]
    fn posteriors_sum_to_one_and_track_evidence() {
        let mut es = ExpertSystem::new(kb());
        let prior: Vec<Hypothesis> = es.posterior_named("cancer").unwrap();
        assert!((prior.iter().map(|h| h.posterior).sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((prior[0].posterior - 433.0 / 3428.0).abs() < 1e-6);
        assert!((prior[0].lift() - 1.0).abs() < 1e-9);

        es.assert_named("smoking", "smoker").unwrap();
        let posterior = es.posterior_named("cancer").unwrap();
        assert!((posterior.iter().map(|h| h.posterior).sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            posterior[0].posterior > prior[0].posterior,
            "evidence of smoking should raise the cancer belief"
        );
        assert!(posterior[0].lift() > 1.0);
    }

    #[test]
    fn retraction_restores_the_prior() {
        let mut es = ExpertSystem::new(kb());
        let prior = es.posterior_named("cancer").unwrap()[0].posterior;
        es.assert_named("smoking", "smoker").unwrap();
        assert!(es.posterior_named("cancer").unwrap()[0].posterior > prior);
        es.retract_named("smoking").unwrap();
        let restored = es.posterior_named("cancer").unwrap()[0].posterior;
        assert!((restored - prior).abs() < 1e-12);
        es.assert_named("smoking", "smoker").unwrap();
        es.reset();
        assert!(es.evidence().is_empty());
    }

    #[test]
    fn best_hypothesis_and_report() {
        let mut es = ExpertSystem::new(kb());
        es.assert_named("smoking", "smoker").unwrap();
        es.assert_named("family-history", "yes").unwrap();
        let best = es.best_hypothesis(1).unwrap();
        // Cancer prevalence is low even among smokers, so "no" remains the
        // most probable value — but the report must show both hypotheses.
        assert_eq!(best.value, 1);
        let report = es.consultation_report(1).unwrap();
        assert!(report.contains("evidence: smoking=smoker, family-history=yes"));
        assert!(report.contains("cancer=yes"));
        assert!(report.contains("cancer=no"));
    }

    #[test]
    fn evidence_on_query_attribute_is_ignored() {
        let mut es = ExpertSystem::new(kb());
        es.assert_named("cancer", "yes").unwrap();
        let posterior = es.posterior_named("cancer").unwrap();
        assert!((posterior.iter().map(|h| h.posterior).sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((posterior[0].posterior - 433.0 / 3428.0).abs() < 1e-6);
    }

    #[test]
    fn unknown_attributes_error() {
        let es = ExpertSystem::new(kb());
        assert!(es.posterior_named("age").is_err());
        let mut es = es;
        assert!(es.assert_named("age", "old").is_err());
    }
}
