//! # pka-expert
//!
//! A small probabilistic expert-system shell driven by an acquired
//! [`pka_core::KnowledgeBase`] — the downstream consumer the memo builds its
//! knowledge bases *for*.
//!
//! The shell supports the classic consultation loop:
//!
//! 1. the user asserts **evidence** (observed attribute values, possibly
//!    incrementally, see [`Evidence`]);
//! 2. the engine reports the **posterior** distribution of any query
//!    attribute given that evidence, ranks hypotheses, and updates as
//!    evidence is added or retracted ([`ExpertSystem`]);
//! 3. answers can be **explained** in terms of the discovered constraints
//!    that link the evidence to the conclusion ([`explain`]);
//! 4. alternatively the knowledge base can be compiled to an explicit
//!    IF–THEN [`RuleBase`] (the memo's "condition–conclusion rules with
//!    associated probability") and consulted by forward matching.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod evidence;
pub mod explain;
pub mod rulebase;

pub use engine::{ExpertSystem, Hypothesis};
pub use evidence::Evidence;
pub use explain::{explain_query, Explanation};
pub use rulebase::{FiredRule, RuleBase};
