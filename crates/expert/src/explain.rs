//! Explanations: *why* did the engine give that answer?
//!
//! A probabilistic knowledge base can justify an answer by pointing at the
//! discovered constraints that connect the evidence to the conclusion and by
//! showing how the belief moved from the prior to the posterior as each
//! piece of evidence was taken into account.

use pka_contingency::{Assignment, Schema};
use pka_core::{KnowledgeBase, Result};
use serde::{Deserialize, Serialize};

/// One step of an explanation: the belief in the target after conditioning
/// on one more piece of evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplanationStep {
    /// The evidence considered so far (cumulative).
    pub evidence_so_far: Assignment,
    /// `P(target | evidence_so_far)`.
    pub probability: f64,
}

/// A full explanation of a conditional query.
///
/// Serialisable, so a query server can ship the rule trace to remote
/// clients; attribute/value indices are resolved against the schema on the
/// receiving side (or pre-rendered with [`Explanation::render`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// The queried proposition.
    pub target: Assignment,
    /// The complete evidence.
    pub evidence: Assignment,
    /// The unconditional prior of the target.
    pub prior: f64,
    /// The final posterior.
    pub posterior: f64,
    /// Belief trajectory as evidence is added one fact at a time (in
    /// ascending attribute order).
    pub steps: Vec<ExplanationStep>,
    /// The discovered (higher-order) constraints that involve at least one
    /// evidence attribute together with at least one target attribute —
    /// the stored knowledge that makes the answer differ from the prior.
    pub supporting_constraints: Vec<(Assignment, f64)>,
}

impl Explanation {
    /// Lift of the final posterior over the prior.
    pub fn lift(&self) -> f64 {
        if self.prior <= 0.0 {
            f64::INFINITY
        } else {
            self.posterior / self.prior
        }
    }

    /// Human-readable rendering of the explanation.
    pub fn render(&self, schema: &Schema) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "P({} | {}) = {:.4}\n",
            self.target.describe(schema),
            self.evidence.describe(schema),
            self.posterior
        ));
        out.push_str(&format!(
            "  prior P({}) = {:.4} (lift {:.2})\n",
            self.target.describe(schema),
            self.prior,
            self.lift()
        ));
        out.push_str("  belief trajectory:\n");
        for step in &self.steps {
            out.push_str(&format!(
                "    after {}: {:.4}\n",
                step.evidence_so_far.describe(schema),
                step.probability
            ));
        }
        if self.supporting_constraints.is_empty() {
            out.push_str("  no discovered constraint links this evidence to the target; the answer follows from the first-order marginals alone\n");
        } else {
            out.push_str("  supporting discovered constraints:\n");
            for (assignment, p) in &self.supporting_constraints {
                out.push_str(&format!("    P[{}] = {:.4}\n", assignment.describe(schema), p));
            }
        }
        out
    }
}

/// Explains `P(target | evidence)` under a knowledge base.
pub fn explain_query(
    kb: &KnowledgeBase,
    target: &Assignment,
    evidence: &Assignment,
) -> Result<Explanation> {
    let prior = kb.probability(target);
    let posterior =
        if evidence.vars().is_empty() { prior } else { kb.conditional(target, evidence)? };

    // Belief trajectory: add evidence facts one at a time.
    let mut steps = Vec::new();
    let mut so_far = Assignment::empty();
    for (attr, value) in evidence.pairs() {
        so_far = so_far.with(attr, value);
        let probability = kb.conditional(target, &so_far)?;
        steps.push(ExplanationStep { evidence_so_far: so_far.clone(), probability });
    }

    // Constraints linking evidence attributes to target attributes.
    let supporting_constraints = kb
        .significant_constraints()
        .into_iter()
        .filter(|c| {
            let vars = c.assignment.vars();
            !vars.intersection(evidence.vars()).is_empty()
                && !vars.intersection(target.vars()).is_empty()
        })
        .map(|c| (c.assignment.clone(), c.probability))
        .collect();

    Ok(Explanation {
        target: target.clone(),
        evidence: evidence.clone(),
        prior,
        posterior,
        steps,
        supporting_constraints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{Attribute, ContingencyTable, Schema};
    use pka_core::Acquisition;
    use std::sync::Arc;

    fn kb() -> KnowledgeBase {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        let t = ContingencyTable::from_counts(
            Arc::clone(&schema),
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap();
        Acquisition::with_defaults().run(&t).unwrap().knowledge_base
    }

    #[test]
    fn explanation_tracks_the_belief_trajectory() {
        let kb = kb();
        let target = Assignment::single(1, 0); // cancer = yes
        let evidence = Assignment::from_pairs([(0, 0), (2, 0)]); // smoker, family history
        let e = explain_query(&kb, &target, &evidence).unwrap();
        assert_eq!(e.steps.len(), 2);
        // The final step's probability equals the posterior.
        assert!((e.steps.last().unwrap().probability - e.posterior).abs() < 1e-12);
        // Smoking raises the belief above the prior.
        assert!(e.posterior > e.prior);
        assert!(e.lift() > 1.0);
        let text = e.render(kb.schema());
        assert!(text.contains("belief trajectory"));
        assert!(text.contains("after smoking=smoker"));
    }

    #[test]
    fn supporting_constraints_link_evidence_and_target() {
        let kb = kb();
        let target = Assignment::single(1, 0);
        let evidence = Assignment::single(0, 0);
        let e = explain_query(&kb, &target, &evidence).unwrap();
        for (assignment, _) in &e.supporting_constraints {
            let vars = assignment.vars();
            assert!(!vars.intersection(evidence.vars()).is_empty());
            assert!(!vars.intersection(target.vars()).is_empty());
        }
    }

    #[test]
    fn empty_evidence_explanation_is_the_prior() {
        let kb = kb();
        let target = Assignment::single(1, 0);
        let e = explain_query(&kb, &target, &Assignment::empty()).unwrap();
        assert_eq!(e.posterior, e.prior);
        assert!(e.steps.is_empty());
        assert!((e.lift() - 1.0).abs() < 1e-12);
        let text = e.render(kb.schema());
        assert!(!text.is_empty());
    }

    #[test]
    fn unlinked_evidence_reports_no_supporting_constraints() {
        let kb = kb();
        // If family-history and cancer are not linked by any discovered
        // constraint (they are linked only through smoking in this data),
        // the explanation must say so.
        let target = Assignment::single(1, 0);
        let evidence = Assignment::single(2, 0);
        let e = explain_query(&kb, &target, &evidence).unwrap();
        let directly_linked = kb.significant_constraints().iter().any(|c| {
            let vars = c.assignment.vars();
            vars.contains(1) && vars.contains(2)
        });
        if !directly_linked {
            assert!(e.supporting_constraints.is_empty());
            assert!(e.render(kb.schema()).contains("first-order marginals alone"));
        }
    }
}
