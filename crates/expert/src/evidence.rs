//! Incrementally-built evidence for a consultation.

use pka_contingency::{Assignment, Schema};
use pka_core::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// The facts asserted so far in a consultation: at most one observed value
/// per attribute, assertable and retractable by attribute/value name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evidence {
    assignment: Assignment,
}

impl Default for Evidence {
    fn default() -> Self {
        Self::none()
    }
}

impl Evidence {
    /// No facts asserted.
    pub fn none() -> Self {
        Self { assignment: Assignment::empty() }
    }

    /// Starts from an existing assignment.
    pub fn from_assignment(assignment: Assignment) -> Self {
        Self { assignment }
    }

    /// The facts as a partial assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Number of facts asserted.
    pub fn len(&self) -> usize {
        self.assignment.order()
    }

    /// True if nothing has been asserted.
    pub fn is_empty(&self) -> bool {
        self.assignment.vars().is_empty()
    }

    /// Asserts `attribute = value` (by index), replacing any previous value
    /// for that attribute.
    pub fn assert_value(&mut self, attribute: usize, value: usize) {
        self.assignment = self.assignment.with(attribute, value);
    }

    /// Asserts `attribute = value` by name.
    pub fn assert_named(&mut self, schema: &Schema, attribute: &str, value: &str) -> Result<()> {
        let single = Assignment::from_names(schema, &[(attribute, value)])?;
        let (attr, v) = single.pairs().next().expect("one pair by construction");
        self.assert_value(attr, v);
        Ok(())
    }

    /// Retracts whatever was asserted about `attribute`; returns `true` if
    /// something was removed.
    pub fn retract(&mut self, attribute: usize) -> bool {
        if self.assignment.value_of(attribute).is_none() {
            return false;
        }
        self.assignment =
            Assignment::from_pairs(self.assignment.pairs().filter(|&(a, _)| a != attribute));
        true
    }

    /// Retracts by attribute name.
    pub fn retract_named(&mut self, schema: &Schema, attribute: &str) -> Result<bool> {
        let attr = schema.attribute_index(attribute).map_err(CoreError::from)?;
        Ok(self.retract(attr))
    }

    /// The asserted value for an attribute, if any.
    pub fn value_of(&self, attribute: usize) -> Option<usize> {
        self.assignment.value_of(attribute)
    }

    /// Human-readable listing of the asserted facts.
    pub fn describe(&self, schema: &Schema) -> String {
        if self.is_empty() {
            "(no evidence)".to_string()
        } else {
            self.assignment.describe(schema)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
    }

    #[test]
    fn assert_and_replace() {
        let s = schema();
        let mut e = Evidence::none();
        assert!(e.is_empty());
        e.assert_named(&s, "smoking", "smoker").unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e.value_of(0), Some(0));
        // Re-asserting the same attribute replaces the value.
        e.assert_named(&s, "smoking", "non-smoker").unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e.value_of(0), Some(1));
        e.assert_value(2, 0);
        assert_eq!(e.len(), 2);
        assert_eq!(e.describe(&s), "smoking=non-smoker, family-history=yes");
    }

    #[test]
    fn retract_removes_facts() {
        let s = schema();
        let mut e = Evidence::none();
        e.assert_named(&s, "smoking", "smoker").unwrap();
        e.assert_named(&s, "family-history", "no").unwrap();
        assert!(e.retract_named(&s, "smoking").unwrap());
        assert_eq!(e.len(), 1);
        assert_eq!(e.value_of(0), None);
        assert!(!e.retract(0));
        assert!(e.retract_named(&s, "unknown").is_err());
        assert_eq!(Evidence::none().describe(&s), "(no evidence)");
    }

    #[test]
    fn unknown_names_error() {
        let s = schema();
        let mut e = Evidence::none();
        assert!(e.assert_named(&s, "smoking", "vaper").is_err());
        assert!(e.assert_named(&s, "age", "old").is_err());
        assert!(e.is_empty());
    }

    #[test]
    fn from_assignment_roundtrip() {
        let a = Assignment::from_pairs([(0, 1), (2, 0)]);
        let e = Evidence::from_assignment(a.clone());
        assert_eq!(e.assignment(), &a);
        assert_eq!(e.len(), 2);
    }
}
