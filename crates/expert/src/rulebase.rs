//! Explicit IF–THEN rule bases compiled from a knowledge base.
//!
//! The memo notes its system "does not generate rules explicitly" but that
//! the stored probabilities "can be transformed into IF-THEN rules (with
//! associated probability) found useful in expert systems".  `RuleBase` is
//! that transformation plus the forward-matching consultation over it.

use crate::evidence::Evidence;
use pka_contingency::Schema;
use pka_core::{induce_rules, KnowledgeBase, Result, Rule, RuleInductionConfig};

/// A rule that matched the current evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct FiredRule {
    /// The matching rule.
    pub rule: Rule,
    /// How many of its conditions were satisfied by the evidence (always
    /// equal to the rule's condition count for a fired rule).
    pub matched_conditions: usize,
}

/// A compiled set of IF–THEN rules.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleBase {
    rules: Vec<Rule>,
}

impl RuleBase {
    /// Compiles a rule base from a knowledge base under the given induction
    /// filters.
    pub fn compile(kb: &KnowledgeBase, config: &RuleInductionConfig) -> Result<Self> {
        Ok(Self { rules: induce_rules(kb, config)? })
    }

    /// Builds a rule base from explicit rules.
    pub fn from_rules(rules: Vec<Rule>) -> Self {
        Self { rules }
    }

    /// All rules, most informative first.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if no rules were induced.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rules whose conditions are all satisfied by the evidence,
    /// ordered by decreasing conditional probability.
    pub fn fire(&self, evidence: &Evidence) -> Vec<FiredRule> {
        let asserted = evidence.assignment();
        let mut fired: Vec<FiredRule> = self
            .rules
            .iter()
            .filter(|rule| {
                rule.conditions.pairs().all(|(attr, value)| asserted.value_of(attr) == Some(value))
            })
            .map(|rule| FiredRule {
                rule: rule.clone(),
                matched_conditions: rule.condition_count(),
            })
            .collect();
        fired.sort_by(|a, b| {
            b.rule.probability.partial_cmp(&a.rule.probability).unwrap_or(std::cmp::Ordering::Equal)
        });
        fired
    }

    /// Rules concluding about a specific attribute.
    pub fn rules_about(&self, attribute: usize) -> Vec<&Rule> {
        self.rules.iter().filter(|r| r.conclusion.value_of(attribute).is_some()).collect()
    }

    /// Renders the whole rule base in the memo's IF–THEN syntax.
    pub fn render(&self, schema: &Schema) -> String {
        let mut out = String::new();
        for rule in &self.rules {
            out.push_str(&rule.format(schema));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{Attribute, ContingencyTable, Schema, VarSet};
    use pka_core::Acquisition;
    use std::sync::Arc;

    fn kb() -> KnowledgeBase {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        let t = ContingencyTable::from_counts(
            Arc::clone(&schema),
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap();
        Acquisition::with_defaults().run(&t).unwrap().knowledge_base
    }

    #[test]
    fn compile_and_render() {
        let kb = kb();
        let rb = RuleBase::compile(&kb, &RuleInductionConfig::default()).unwrap();
        assert!(!rb.is_empty());
        let text = rb.render(kb.schema());
        assert!(text.contains("IF "));
        assert!(text.contains(" THEN "));
        assert!(text.contains("probability"));
        assert_eq!(text.lines().count(), rb.len());
    }

    #[test]
    fn firing_respects_evidence() {
        let kb = kb();
        let rb = RuleBase::compile(&kb, &RuleInductionConfig::default()).unwrap();
        let schema = kb.shared_schema();
        let mut evidence = Evidence::none();
        assert!(rb.fire(&evidence).is_empty());
        evidence.assert_named(&schema, "smoking", "smoker").unwrap();
        let fired = rb.fire(&evidence);
        assert!(!fired.is_empty());
        // Every fired rule's conditions mention only asserted attributes
        // with the asserted values.
        for f in &fired {
            for (attr, value) in f.rule.conditions.pairs() {
                assert_eq!(evidence.value_of(attr), Some(value));
            }
        }
        // Fired rules are sorted by probability.
        for pair in fired.windows(2) {
            assert!(pair[0].rule.probability + 1e-12 >= pair[1].rule.probability);
        }
    }

    #[test]
    fn rules_about_filters_by_conclusion() {
        let kb = kb();
        let rb = RuleBase::compile(&kb, &RuleInductionConfig::default()).unwrap();
        let about_cancer = rb.rules_about(1);
        assert!(about_cancer.iter().all(|r| r.conclusion.vars() == VarSet::singleton(1)));
        let from_rules = RuleBase::from_rules(about_cancer.into_iter().cloned().collect());
        assert!(from_rules.len() <= rb.len());
    }
}
