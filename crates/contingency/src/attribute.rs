//! Named categorical attributes.
//!
//! An attribute corresponds to one question of the memo's questionnaire
//! (e.g. *SMOKING HISTORY* with values *Smoker*, *Non smoker not married to a
//! smoker*, *Non smoker married to a smoker*).  The memo requires the value
//! range of every attribute to be **complete** — "made so by adding the value
//! `other`, if necessary" — so that the per-attribute counts always sum to
//! the total sample size `N`.  [`Attribute::with_other`] adds that catch-all
//! value explicitly.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A categorical attribute: a name plus an ordered, exhaustive list of value
/// names.
///
/// The position of a value in the list is its *value index*; the memo's
/// subscripts (`i`, `j`, `k`, …, numbered from 1) map to indices `0, 1, 2, …`
/// here.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    name: String,
    values: Vec<String>,
}

impl Attribute {
    /// Creates an attribute from a name and its value names.
    ///
    /// Empty value lists are accepted here and rejected when the attribute is
    /// placed into a [`Schema`](crate::Schema), where the error can carry
    /// more context.
    pub fn new<N, I, V>(name: N, values: I) -> Self
    where
        N: Into<String>,
        I: IntoIterator<Item = V>,
        V: Into<String>,
    {
        Self { name: name.into(), values: values.into_iter().map(Into::into).collect() }
    }

    /// Creates a two-valued (boolean-like) attribute with values `yes`/`no`,
    /// the shape of the memo's *CANCER* and *FAMILY HISTORY* questions.
    pub fn yes_no<N: Into<String>>(name: N) -> Self {
        Self::new(name, ["yes", "no"])
    }

    /// Returns a copy with the catch-all value `other` appended, making the
    /// value range exhaustive as the memo requires.
    ///
    /// If a value named `other` is already present the attribute is returned
    /// unchanged.
    pub fn with_other(mut self) -> Self {
        if !self.values.iter().any(|v| v == "other") {
            self.values.push("other".to_string());
        }
        self
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of values (the memo's `I`, `J`, `K`, …).
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// The value names in index order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Name of the value with the given index, if in range.
    pub fn value_name(&self, index: usize) -> Option<&str> {
        self.values.get(index).map(String::as_str)
    }

    /// Index of the value with the given name, if present.
    pub fn value_index(&self, name: &str) -> Option<usize> {
        self.values.iter().position(|v| v == name)
    }

    /// True if two values share a name (which a [`Schema`](crate::Schema)
    /// rejects).
    pub fn has_duplicate_values(&self) -> Option<&str> {
        for (i, v) in self.values.iter().enumerate() {
            if self.values[..i].iter().any(|w| w == v) {
                return Some(v);
            }
        }
        None
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.values.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let a = Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]);
        assert_eq!(a.name(), "smoking");
        assert_eq!(a.cardinality(), 3);
        assert_eq!(a.value_index("non-smoker"), Some(1));
        assert_eq!(a.value_name(2), Some("married-to-smoker"));
        assert_eq!(a.value_index("nope"), None);
        assert_eq!(a.value_name(3), None);
    }

    #[test]
    fn yes_no_shape() {
        let a = Attribute::yes_no("cancer");
        assert_eq!(a.cardinality(), 2);
        assert_eq!(a.value_index("yes"), Some(0));
        assert_eq!(a.value_index("no"), Some(1));
    }

    #[test]
    fn with_other_appends_once() {
        let a = Attribute::new("colour", ["red", "green"]).with_other();
        assert_eq!(a.cardinality(), 3);
        assert_eq!(a.value_index("other"), Some(2));
        let again = a.with_other();
        assert_eq!(again.cardinality(), 3);
    }

    #[test]
    fn duplicate_detection() {
        let a = Attribute::new("x", ["a", "b", "a"]);
        assert_eq!(a.has_duplicate_values(), Some("a"));
        let b = Attribute::new("x", ["a", "b"]);
        assert_eq!(b.has_duplicate_values(), None);
    }

    #[test]
    fn display_contains_values() {
        let a = Attribute::new("cancer", ["yes", "no"]);
        let s = a.to_string();
        assert!(s.contains("cancer") && s.contains("yes") && s.contains("no"));
    }
}
