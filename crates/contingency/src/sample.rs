//! Individual observations in attribute-tuple form (Figure 5 / Figure 6 of
//! the memo).

use crate::schema::Schema;
use crate::{ContingencyError, Result};
use serde::{Deserialize, Serialize};

/// One observation: a value index for every attribute of a schema, in
/// attribute order.
///
/// This is the memo's "attribute R-tuple form" (Figure 6): sample number 1 of
/// the example, a smoker with cancer and a family history of cancer, is
/// `Sample::new(vec![0, 0, 0])`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Sample(Vec<usize>);

impl Sample {
    /// Wraps a vector of value indices.  Validation against a schema happens
    /// in [`Sample::validated`] or when the sample is pushed into a
    /// [`Dataset`](crate::Dataset).
    pub fn new(values: Vec<usize>) -> Self {
        Self(values)
    }

    /// Wraps and validates a vector of value indices against a schema.
    pub fn validated(schema: &Schema, values: Vec<usize>) -> Result<Self> {
        if values.len() != schema.len() {
            return Err(ContingencyError::SampleArity {
                got: values.len(),
                expected: schema.len(),
            });
        }
        for (i, &v) in values.iter().enumerate() {
            let card = schema.cardinality(i)?;
            if v >= card {
                return Err(ContingencyError::ValueIndexOutOfRange {
                    attribute: i,
                    value: v,
                    cardinality: card,
                });
            }
        }
        Ok(Self(values))
    }

    /// Builds a sample from `(attribute name, value name)` pairs; every
    /// attribute of the schema must be mentioned exactly once.
    pub fn from_named(schema: &Schema, pairs: &[(&str, &str)]) -> Result<Self> {
        if pairs.len() != schema.len() {
            return Err(ContingencyError::SampleArity { got: pairs.len(), expected: schema.len() });
        }
        let mut values = vec![usize::MAX; schema.len()];
        for &(attr_name, value_name) in pairs {
            let attr = schema.attribute_index(attr_name)?;
            let value = schema.attribute(attr)?.value_index(value_name).ok_or_else(|| {
                ContingencyError::UnknownValue {
                    attribute: attr_name.to_string(),
                    value: value_name.to_string(),
                }
            })?;
            values[attr] = value;
        }
        if values.contains(&usize::MAX) {
            return Err(ContingencyError::InvalidAssignment {
                reason: "sample does not cover every attribute".to_string(),
            });
        }
        Ok(Self(values))
    }

    /// The value indices in attribute order.
    pub fn values(&self) -> &[usize] {
        &self.0
    }

    /// The value index for one attribute.
    pub fn value(&self, attribute: usize) -> Option<usize> {
        self.0.get(attribute).copied()
    }

    /// Number of attributes covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the zero-attribute sample (only possible if constructed by
    /// hand; datasets never contain it).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Consumes the sample, returning its value indices.
    pub fn into_values(self) -> Vec<usize> {
        self.0
    }
}

impl From<Vec<usize>> for Sample {
    fn from(values: Vec<usize>) -> Self {
        Self(values)
    }
}

impl AsRef<[usize]> for Sample {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
        ])
        .unwrap()
    }

    #[test]
    fn validated_accepts_good_samples() {
        let s = schema();
        assert!(Sample::validated(&s, vec![2, 1]).is_ok());
    }

    #[test]
    fn validated_rejects_bad_samples() {
        let s = schema();
        assert!(matches!(
            Sample::validated(&s, vec![2]),
            Err(ContingencyError::SampleArity { .. })
        ));
        assert!(matches!(
            Sample::validated(&s, vec![3, 0]),
            Err(ContingencyError::ValueIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn from_named_resolves_in_any_order() {
        let s = schema();
        let a = Sample::from_named(&s, &[("cancer", "no"), ("smoking", "smoker")]).unwrap();
        assert_eq!(a.values(), &[0, 1]);
        assert!(Sample::from_named(&s, &[("cancer", "no")]).is_err());
        assert!(Sample::from_named(&s, &[("cancer", "no"), ("cancer", "yes")]).is_err());
    }

    #[test]
    fn accessors() {
        let smp = Sample::new(vec![1, 0]);
        assert_eq!(smp.value(0), Some(1));
        assert_eq!(smp.value(5), None);
        assert_eq!(smp.len(), 2);
        assert!(!smp.is_empty());
        assert_eq!(smp.clone().into_values(), vec![1, 0]);
        assert_eq!(smp.as_ref(), &[1, 0]);
    }
}
