//! The questionnaire: an ordered collection of attributes.

use crate::attribute::Attribute;
use crate::config::Assignment;
use crate::error::ContingencyError;
use crate::varset::{VarSet, MAX_VARS};
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Largest dense table the crate will build (number of cells).
///
/// The memo's examples are tiny (12 cells); the synthetic sweeps in the
/// benchmark harness stay well under this bound.  The limit exists so a typo
/// in a schema produces an error instead of an allocation failure.
pub const MAX_CELLS: u128 = 1 << 28;

/// An ordered set of categorical [`Attribute`]s.
///
/// The schema fixes the meaning of attribute indices (`0, 1, 2, …` for the
/// memo's `A, B, C, …`) and of the mixed-radix cell indexing used by
/// [`ContingencyTable`](crate::ContingencyTable).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
    /// Stride of each attribute in the dense cell index (last attribute
    /// varies fastest, mirroring the memo's `i, j, k` nesting in Figure 3).
    strides: Vec<usize>,
    cells: usize,
}

/// Deserialisation rebuilds the schema through [`Schema::new`] from the
/// attributes alone: `strides` and `cells` are *derived* state, and
/// trusting them from the payload would let a forged document smuggle in
/// an index layout inconsistent with the attributes (out-of-bounds dense
/// indices, or every cell aliased onto one slot).
impl Deserialize for Schema {
    fn deserialize(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let attributes: Vec<Attribute> = serde::de_field(value, "attributes")?;
        Schema::new(attributes).map_err(|e| serde::Error::custom(e.to_string()))
    }
}

impl Schema {
    /// Builds a schema from attributes, validating names and sizes.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self> {
        if attributes.is_empty() {
            return Err(ContingencyError::EmptySchema);
        }
        if attributes.len() > MAX_VARS {
            return Err(ContingencyError::TableTooLarge { cells: u128::MAX, max: MAX_CELLS });
        }
        for (i, a) in attributes.iter().enumerate() {
            if a.cardinality() == 0 {
                return Err(ContingencyError::EmptySchema);
            }
            if attributes[..i].iter().any(|b| b.name() == a.name()) {
                return Err(ContingencyError::DuplicateName { name: a.name().to_string() });
            }
            if let Some(v) = a.has_duplicate_values() {
                return Err(ContingencyError::DuplicateName {
                    name: format!("{}.{}", a.name(), v),
                });
            }
        }
        let mut cells: u128 = 1;
        for a in &attributes {
            cells = cells.saturating_mul(a.cardinality() as u128);
        }
        if cells > MAX_CELLS {
            return Err(ContingencyError::TableTooLarge { cells, max: MAX_CELLS });
        }
        let cells = cells as usize;
        // Row-major strides with the last attribute varying fastest.
        let mut strides = vec![1usize; attributes.len()];
        for i in (0..attributes.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * attributes[i + 1].cardinality();
        }
        Ok(Self { attributes, strides, cells })
    }

    /// Convenience constructor used in tests and benchmarks: `n` anonymous
    /// attributes with the given cardinalities.
    pub fn uniform(cardinalities: &[usize]) -> Result<Self> {
        let attributes = cardinalities
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                Attribute::new(
                    format!("attr{i}"),
                    (0..k).map(|v| format!("v{v}")).collect::<Vec<_>>(),
                )
            })
            .collect();
        Self::new(attributes)
    }

    /// Number of attributes (the memo's `R`).
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True if the schema holds no attributes (never true for a constructed
    /// schema; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// The attributes in index order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// The attribute at `index`.
    pub fn attribute(&self, index: usize) -> Result<&Attribute> {
        self.attributes
            .get(index)
            .ok_or(ContingencyError::AttributeIndexOutOfRange { index, len: self.attributes.len() })
    }

    /// Index of the attribute with the given name.
    pub fn attribute_index(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name() == name)
            .ok_or_else(|| ContingencyError::UnknownAttribute { name: name.to_string() })
    }

    /// Cardinality of the attribute at `index`.
    pub fn cardinality(&self, index: usize) -> Result<usize> {
        Ok(self.attribute(index)?.cardinality())
    }

    /// Cardinalities of all attributes in index order.
    pub fn cardinalities(&self) -> Vec<usize> {
        self.attributes.iter().map(Attribute::cardinality).collect()
    }

    /// Total number of cells in the full contingency table
    /// (`I · J · K · …`).
    pub fn cell_count(&self) -> usize {
        self.cells
    }

    /// Number of cells in the marginal table over the given variable set,
    /// i.e. the product of the members' cardinalities.
    pub fn cell_count_of(&self, vars: VarSet) -> usize {
        vars.iter().map(|i| self.attributes[i].cardinality()).product()
    }

    /// The set of all attribute indices.
    pub fn all_vars(&self) -> VarSet {
        VarSet::full(self.attributes.len())
    }

    /// Dense cell index of a full value assignment (one value index per
    /// attribute, in attribute order).
    ///
    /// # Panics
    /// Panics if `values` has the wrong length or any value index is out of
    /// range; use [`Schema::checked_cell_index`] for fallible indexing.
    pub fn cell_index(&self, values: &[usize]) -> usize {
        debug_assert_eq!(values.len(), self.attributes.len());
        let mut idx = 0usize;
        for (i, &v) in values.iter().enumerate() {
            debug_assert!(v < self.attributes[i].cardinality());
            idx += v * self.strides[i];
        }
        idx
    }

    /// Fallible version of [`Schema::cell_index`].
    pub fn checked_cell_index(&self, values: &[usize]) -> Result<usize> {
        if values.len() != self.attributes.len() {
            return Err(ContingencyError::SampleArity {
                got: values.len(),
                expected: self.attributes.len(),
            });
        }
        let mut idx = 0usize;
        for (i, &v) in values.iter().enumerate() {
            let card = self.attributes[i].cardinality();
            if v >= card {
                return Err(ContingencyError::ValueIndexOutOfRange {
                    attribute: i,
                    value: v,
                    cardinality: card,
                });
            }
            idx += v * self.strides[i];
        }
        Ok(idx)
    }

    /// The value one attribute takes in the cell at `index` — the
    /// single-attribute inverse of [`Schema::cell_index`], without the
    /// allocation of [`Schema::cell_values`].
    pub fn cell_value(&self, index: usize, attribute: usize) -> usize {
        (index / self.strides[attribute]) % self.attributes[attribute].cardinality()
    }

    /// Inverse of [`Schema::cell_index`]: the full value assignment of a
    /// dense cell index.
    pub fn cell_values(&self, mut index: usize) -> Vec<usize> {
        debug_assert!(index < self.cells);
        let mut values = vec![0usize; self.attributes.len()];
        for (value, &stride) in values.iter_mut().zip(&self.strides) {
            *value = index / stride;
            index %= stride;
        }
        values
    }

    /// Iterates over every full value assignment in dense-index order.
    pub fn cells(&self) -> CellIter<'_> {
        CellIter { schema: self, next: 0 }
    }

    /// Iterates over every partial value assignment on the attributes in
    /// `vars`, in lexicographic order of the member values.
    pub fn configurations(&self, vars: VarSet) -> ConfigIter<'_> {
        let members: Vec<usize> = vars.iter().collect();
        let total = members.iter().map(|&i| self.attributes[i].cardinality()).product();
        ConfigIter { schema: self, members, next: 0, total }
    }

    /// Row-major dense-index strides, one per attribute (the last attribute
    /// varies fastest): `cell_index(values) = Σ values[i] · strides[i]`.
    /// Exposed so dense-vector consumers can enumerate marginal cells
    /// without materialising each cell's value tuple.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Iterates the dense indices of the cells a partial assignment covers,
    /// in ascending order — the same cells `assignment.matches` selects from
    /// a full scan, enumerated by stride arithmetic in
    /// `O(matching cells)` instead of `O(all cells × order)` and without
    /// materialising any value tuple.
    ///
    /// Assignments mentioning an unknown attribute or an out-of-range value
    /// cover no cells and yield an empty iterator, mirroring `matches`.
    pub fn matching_cells(&self, assignment: &Assignment) -> MatchingCells {
        let mut base = 0usize;
        for (attr, value) in assignment.pairs() {
            let Some(a) = self.attributes.get(attr) else {
                return MatchingCells { free: Vec::new(), counters: Vec::new(), next: None };
            };
            if value >= a.cardinality() {
                return MatchingCells { free: Vec::new(), counters: Vec::new(), next: None };
            }
            base += value * self.strides[attr];
        }
        let mut free = Vec::with_capacity(self.attributes.len() - assignment.order());
        for (attr, a) in self.attributes.iter().enumerate() {
            if assignment.value_of(attr).is_none() {
                free.push((a.cardinality(), self.strides[attr]));
            }
        }
        let counters = vec![0usize; free.len()];
        MatchingCells { free, counters, next: Some(base) }
    }

    /// Wraps the schema in an [`Arc`] for cheap sharing between tables,
    /// models and knowledge bases.
    pub fn into_shared(self) -> Arc<Schema> {
        Arc::new(self)
    }

    /// Human-readable label for a partial assignment, e.g.
    /// `smoking=smoker, cancer=yes`.
    pub fn describe(&self, vars: VarSet, values: &[usize]) -> String {
        let mut parts = Vec::with_capacity(values.len());
        for (rank, attr) in vars.iter().enumerate() {
            let a = &self.attributes[attr];
            let v = values.get(rank).copied().unwrap_or(0);
            let vn = a.value_name(v).unwrap_or("?");
            parts.push(format!("{}={}", a.name(), vn));
        }
        parts.join(", ")
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schema with {} attributes, {} cells:", self.len(), self.cell_count())?;
        for a in &self.attributes {
            writeln!(f, "  {a}")?;
        }
        Ok(())
    }
}

/// Iterator over every full cell assignment of a schema.
#[derive(Debug)]
pub struct CellIter<'a> {
    schema: &'a Schema,
    next: usize,
}

impl Iterator for CellIter<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.next >= self.schema.cell_count() {
            return None;
        }
        let v = self.schema.cell_values(self.next);
        self.next += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.schema.cell_count() - self.next;
        (n, Some(n))
    }
}

impl ExactSizeIterator for CellIter<'_> {}

/// Iterator over every partial assignment on a [`VarSet`].
#[derive(Debug)]
pub struct ConfigIter<'a> {
    schema: &'a Schema,
    members: Vec<usize>,
    next: usize,
    total: usize,
}

impl Iterator for ConfigIter<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.next >= self.total {
            return None;
        }
        let mut rem = self.next;
        let mut values = vec![0usize; self.members.len()];
        // Last member varies fastest, mirroring full-cell ordering.
        for (pos, &attr) in self.members.iter().enumerate().rev() {
            let card = self.schema.attributes[attr].cardinality();
            values[pos] = rem % card;
            rem /= card;
        }
        self.next += 1;
        Some(values)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.total - self.next;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ConfigIter<'_> {}

/// Iterator over the dense indices of the cells covered by a partial
/// assignment (see [`Schema::matching_cells`]): an odometer over the free
/// (unassigned) attributes, last attribute fastest, so indices come out in
/// ascending order.
#[derive(Debug)]
pub struct MatchingCells {
    /// `(cardinality, stride)` per free attribute, in attribute order.
    free: Vec<(usize, usize)>,
    /// Current odometer digit per free attribute.
    counters: Vec<usize>,
    /// The next index to yield, or `None` once exhausted.
    next: Option<usize>,
}

impl Iterator for MatchingCells {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let current = self.next?;
        let mut index = current;
        let mut pos = self.free.len();
        loop {
            if pos == 0 {
                self.next = None;
                return Some(current);
            }
            pos -= 1;
            let (card, stride) = self.free[pos];
            self.counters[pos] += 1;
            if self.counters[pos] < card {
                self.next = Some(index + stride);
                return Some(current);
            }
            self.counters[pos] = 0;
            index -= (card - 1) * stride;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn smoking_schema() -> Schema {
        Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
    }

    #[test]
    fn deserialisation_ignores_forged_derived_state() {
        // Serialise, then tamper with the derived fields: deserialisation
        // must rebuild strides/cells from the attributes, not trust them.
        let schema = smoking_schema();
        let mut value = Serialize::serialize(&schema);
        let serde::Value::Object(ref mut fields) = value else { panic!("schema is an object") };
        for (key, v) in fields.iter_mut() {
            if key == "strides" {
                *v = serde::Value::Array(vec![
                    serde::Value::U64(100),
                    serde::Value::U64(0),
                    serde::Value::U64(0),
                ]);
            }
            if key == "cells" {
                *v = serde::Value::U64(1);
            }
        }
        let restored = Schema::deserialize(&value).unwrap();
        assert_eq!(restored, schema, "derived state must be recomputed, not copied");
        assert_eq!(restored.strides(), schema.strides());
        assert_eq!(restored.cell_count(), 12);
        // Invalid attributes are rejected through Schema::new's checks.
        let dup = serde::Value::Object(vec![(
            "attributes".to_string(),
            Serialize::serialize(&vec![Attribute::yes_no("a"), Attribute::yes_no("a")]),
        )]);
        assert!(Schema::deserialize(&dup).is_err());
        assert!(Schema::deserialize(&serde::Value::Object(vec![])).is_err());
    }

    #[test]
    fn rejects_empty_schema() {
        assert_eq!(Schema::new(vec![]), Err(ContingencyError::EmptySchema));
        assert_eq!(
            Schema::new(vec![Attribute::new("a", Vec::<String>::new())]),
            Err(ContingencyError::EmptySchema)
        );
    }

    #[test]
    fn rejects_duplicate_attribute_names() {
        let e = Schema::new(vec![Attribute::yes_no("a"), Attribute::yes_no("a")]);
        assert!(matches!(e, Err(ContingencyError::DuplicateName { .. })));
    }

    #[test]
    fn rejects_duplicate_value_names() {
        let e = Schema::new(vec![Attribute::new("a", ["x", "x"])]);
        assert!(matches!(e, Err(ContingencyError::DuplicateName { .. })));
    }

    #[test]
    fn rejects_oversized_tables() {
        // 2^40 cells is far beyond MAX_CELLS.
        let attrs: Vec<Attribute> =
            (0..20).map(|i| Attribute::new(format!("a{i}"), ["0", "1", "2", "3"])).collect();
        assert!(matches!(Schema::new(attrs), Err(ContingencyError::TableTooLarge { .. })));
    }

    #[test]
    fn cell_count_matches_paper_example() {
        let s = smoking_schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.cell_count(), 12);
        assert_eq!(s.cardinalities(), vec![3, 2, 2]);
    }

    #[test]
    fn cell_index_roundtrip() {
        let s = smoking_schema();
        for idx in 0..s.cell_count() {
            let values = s.cell_values(idx);
            assert_eq!(s.cell_index(&values), idx);
            assert_eq!(s.checked_cell_index(&values).unwrap(), idx);
        }
    }

    #[test]
    fn checked_cell_index_errors() {
        let s = smoking_schema();
        assert!(matches!(s.checked_cell_index(&[0, 0]), Err(ContingencyError::SampleArity { .. })));
        assert!(matches!(
            s.checked_cell_index(&[3, 0, 0]),
            Err(ContingencyError::ValueIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn attribute_lookup_by_name() {
        let s = smoking_schema();
        assert_eq!(s.attribute_index("cancer").unwrap(), 1);
        assert!(s.attribute_index("age").is_err());
        assert_eq!(s.attribute(0).unwrap().name(), "smoking");
        assert!(s.attribute(7).is_err());
    }

    #[test]
    fn cells_iterator_covers_all_cells_once() {
        let s = smoking_schema();
        let cells: Vec<Vec<usize>> = s.cells().collect();
        assert_eq!(cells.len(), 12);
        let mut seen: Vec<usize> = cells.iter().map(|c| s.cell_index(c)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn configurations_over_subset() {
        let s = smoking_schema();
        let vars = VarSet::from_indices([0, 2]); // smoking × family-history
        let configs: Vec<Vec<usize>> = s.configurations(vars).collect();
        assert_eq!(configs.len(), 6);
        assert_eq!(configs[0], vec![0, 0]);
        assert_eq!(configs[5], vec![2, 1]);
        assert_eq!(s.cell_count_of(vars), 6);
    }

    #[test]
    fn describe_uses_names() {
        let s = smoking_schema();
        let d = s.describe(VarSet::from_indices([0, 1]), &[0, 1]);
        assert_eq!(d, "smoking=smoker, cancer=no");
    }

    #[test]
    fn uniform_builder() {
        let s = Schema::uniform(&[2, 3, 4]).unwrap();
        assert_eq!(s.cell_count(), 24);
        assert_eq!(s.attribute(1).unwrap().cardinality(), 3);
    }

    #[test]
    fn matching_cells_handles_edges() {
        let s = smoking_schema();
        // The empty assignment covers every cell, in dense order.
        let all: Vec<usize> = s.matching_cells(&Assignment::empty()).collect();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
        // A full assignment covers exactly its own cell.
        let full = Assignment::from_pairs([(0, 2), (1, 1), (2, 0)]);
        assert_eq!(s.matching_cells(&full).collect::<Vec<_>>(), vec![s.cell_index(&[2, 1, 0])]);
        // Out-of-schema attributes or values cover nothing.
        assert_eq!(s.matching_cells(&Assignment::single(9, 0)).count(), 0);
        assert_eq!(s.matching_cells(&Assignment::single(0, 99)).count(), 0);
    }

    proptest! {
        #[test]
        fn prop_matching_cells_equals_full_scan(
            cards in proptest::collection::vec(1usize..4, 1..5),
            mask in any::<u32>(),
            seed in any::<u64>(),
        ) {
            // The odometer enumeration must agree with the reference scan
            // (filter every cell through `matches`) for any assignment.
            let s = Schema::uniform(&cards).unwrap();
            let vars = VarSet::from_bits(mask).intersection(s.all_vars());
            let cell = (seed as usize) % s.cell_count();
            let a = Assignment::project(vars, &s.cell_values(cell));
            let fast: Vec<usize> = s.matching_cells(&a).collect();
            let scan: Vec<usize> = (0..s.cell_count())
                .filter(|&i| a.matches(&s.cell_values(i)))
                .collect();
            prop_assert_eq!(fast, scan);
        }

        #[test]
        fn prop_cell_index_bijective(cards in proptest::collection::vec(1usize..5, 1..5)) {
            let s = Schema::uniform(&cards).unwrap();
            let mut seen = vec![false; s.cell_count()];
            for values in s.cells() {
                let idx = s.cell_index(&values);
                prop_assert!(!seen[idx]);
                seen[idx] = true;
                prop_assert_eq!(s.cell_values(idx), values);
            }
            prop_assert!(seen.into_iter().all(|b| b));
        }

        #[test]
        fn prop_configurations_count(cards in proptest::collection::vec(1usize..4, 1..5), mask in any::<u32>()) {
            let s = Schema::uniform(&cards).unwrap();
            let vars = VarSet::from_bits(mask).intersection(s.all_vars());
            let configs: Vec<_> = s.configurations(vars).collect();
            prop_assert_eq!(configs.len(), s.cell_count_of(vars));
        }
    }
}
