//! Text rendering of contingency tables in the style of the memo's
//! Figures 1 and 2.
//!
//! The `reproduce` binary of the benchmark crate uses these helpers to print
//! the paper's figures; they are also handy for debugging acquired models.

use crate::marginal::Marginal;
use crate::table::ContingencyTable;
use crate::varset::VarSet;
use std::fmt::Write as _;

/// Renders a two-attribute marginal as a grid with row/column headers and
/// marginal sums — the layout of Figure 2c.
///
/// `rows` and `cols` are attribute indices; they must be distinct and in
/// range for the table's schema.
pub fn render_two_way(table: &ContingencyTable, rows: usize, cols: usize) -> String {
    let schema = table.schema();
    let row_attr = schema.attribute(rows).expect("row attribute in schema");
    let col_attr = schema.attribute(cols).expect("column attribute in schema");
    let m = table.marginal(VarSet::from_indices([rows, cols]));
    let row_m = table.marginal(VarSet::singleton(rows));
    let col_m = table.marginal(VarSet::singleton(cols));

    let mut out = String::new();
    let _ = writeln!(out, "{} \\ {}", row_attr.name(), col_attr.name());

    // Column widths: max of header and widest count.
    let col_headers: Vec<String> = col_attr.values().to_vec();
    let width = col_headers
        .iter()
        .map(String::len)
        .chain(std::iter::once(table.total().to_string().len()))
        .max()
        .unwrap_or(6)
        .max(6);
    let row_label_width = row_attr.values().iter().map(String::len).max().unwrap_or(8).max(8);

    let _ = write!(out, "{:row_label_width$} |", "");
    for h in &col_headers {
        let _ = write!(out, " {h:>width$}");
    }
    let _ = writeln!(out, " | {:>width$}", "total");
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(row_label_width + 3 + (width + 1) * (col_headers.len() + 1) + 2)
    );

    for (ri, rname) in row_attr.values().iter().enumerate() {
        let _ = write!(out, "{rname:row_label_width$} |");
        for ci in 0..col_attr.cardinality() {
            // Marginal stores values in ascending attribute order.
            let count = if rows < cols {
                m.count_by_values(&[ri, ci])
            } else {
                m.count_by_values(&[ci, ri])
            };
            let _ = write!(out, " {count:>width$}");
        }
        let _ = writeln!(out, " | {:>width$}", row_m.count_by_values(&[ri]));
    }
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(row_label_width + 3 + (width + 1) * (col_headers.len() + 1) + 2)
    );
    let _ = write!(out, "{:row_label_width$} |", "total");
    for ci in 0..col_attr.cardinality() {
        let _ = write!(out, " {:>width$}", col_m.count_by_values(&[ci]));
    }
    let _ = writeln!(out, " | {:>width$}", table.total());
    out
}

/// Renders a marginal (any order) as a flat list of labelled counts.
pub fn render_marginal(table: &ContingencyTable, marginal: &Marginal) -> String {
    let schema = table.schema();
    let mut out = String::new();
    for (assignment, count) in marginal.assignments() {
        let _ = writeln!(out, "  N[{}] = {}", assignment.describe(schema), count);
    }
    out
}

/// Renders the full table as a labelled cell list, the format of Figure 6's
/// bottom row.
pub fn render_cells(table: &ContingencyTable) -> String {
    let schema = table.schema();
    let mut out = String::new();
    for (values, count) in table.cells() {
        let label = schema.describe(schema.all_vars(), &values);
        let _ = writeln!(out, "  N[{label}] = {count}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::schema::Schema;

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    #[test]
    fn two_way_render_contains_figure_2c_numbers() {
        let t = paper_table();
        let s = render_two_way(&t, 0, 1);
        for expected in ["240", "1050", "93", "1040", "100", "905", "3428", "1290"] {
            assert!(s.contains(expected), "missing {expected} in:\n{s}");
        }
    }

    #[test]
    fn two_way_render_with_swapped_axes() {
        let t = paper_table();
        let s = render_two_way(&t, 1, 0);
        assert!(s.contains("240"));
        assert!(s.contains("cancer \\ smoking"));
    }

    #[test]
    fn marginal_render_labels_cells() {
        let t = paper_table();
        let m = t.marginal(VarSet::from_indices([0, 2]));
        let s = render_marginal(&t, &m);
        assert!(s.contains("smoking=smoker, family-history=no"));
        assert!(s.contains("750"));
    }

    #[test]
    fn cell_render_covers_all_cells() {
        let t = paper_table();
        let s = render_cells(&t);
        assert_eq!(s.lines().count(), 12);
        assert!(s.contains("130"));
        assert!(s.contains("385"));
    }
}
