//! Compact sets of attribute indices.
//!
//! Constraints in the memo are always statements about a *subset* of the
//! attributes — `N^A_i` is first order, `N^{AC}_{ik}` second order, and so
//! on.  [`VarSet`] is a bitmask over attribute indices used everywhere a
//! subset of attributes has to be named: marginalisation targets, constraint
//! scopes, rule conditions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of attributes a [`VarSet`] can address.
pub const MAX_VARS: usize = 32;

/// A set of attribute indices, stored as a 32-bit mask.
///
/// Attribute indices are the positions of attributes in a
/// [`Schema`](crate::Schema); the memo's attributes `A, B, C, …` map to
/// indices `0, 1, 2, …`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct VarSet(u32);

impl VarSet {
    /// The empty set.
    pub const EMPTY: VarSet = VarSet(0);

    /// Creates the empty set.
    #[inline]
    pub fn empty() -> Self {
        Self(0)
    }

    /// Creates the set `{0, 1, …, n-1}` of the first `n` attributes.
    ///
    /// # Panics
    /// Panics if `n > 32`.
    #[inline]
    pub fn full(n: usize) -> Self {
        assert!(n <= MAX_VARS, "VarSet supports at most {MAX_VARS} attributes, got {n}");
        if n == MAX_VARS {
            Self(u32::MAX)
        } else {
            Self((1u32 << n) - 1)
        }
    }

    /// Creates a set containing exactly one attribute index.
    ///
    /// # Panics
    /// Panics if `index >= 32`.
    #[inline]
    pub fn singleton(index: usize) -> Self {
        assert!(index < MAX_VARS, "attribute index {index} out of range for VarSet");
        Self(1u32 << index)
    }

    /// Builds a set from any iterator of attribute indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        let mut s = Self::empty();
        for i in indices {
            s = s.with(i);
        }
        s
    }

    /// Returns the raw bitmask.
    #[inline]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Reconstructs a set from a raw bitmask.
    #[inline]
    pub fn from_bits(bits: u32) -> Self {
        Self(bits)
    }

    /// Number of attributes in the set (the memo's "order" of a constraint).
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if `index` is a member.
    #[inline]
    pub fn contains(self, index: usize) -> bool {
        index < MAX_VARS && (self.0 >> index) & 1 == 1
    }

    /// Returns the set with `index` added.
    #[inline]
    pub fn with(self, index: usize) -> Self {
        assert!(index < MAX_VARS, "attribute index {index} out of range for VarSet");
        Self(self.0 | (1u32 << index))
    }

    /// Returns the set with `index` removed.
    #[inline]
    pub fn without(self, index: usize) -> Self {
        if index >= MAX_VARS {
            return self;
        }
        Self(self.0 & !(1u32 << index))
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(self, other: Self) -> Self {
        Self(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[inline]
    pub fn difference(self, other: Self) -> Self {
        Self(self.0 & !other.0)
    }

    /// True if every member of `self` is a member of `other`.
    #[inline]
    pub fn is_subset_of(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// True if the two sets have no members in common.
    #[inline]
    pub fn is_disjoint(self, other: Self) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates over member indices in ascending order.
    pub fn iter(self) -> VarSetIter {
        VarSetIter(self.0)
    }

    /// The smallest member, if any.
    pub fn first(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Position of `index` among the set members in ascending order.
    ///
    /// This is how [`Assignment`](crate::Assignment) aligns its value vector
    /// with the set: the value for the k-th smallest member is stored at
    /// position k.
    pub fn rank_of(self, index: usize) -> Option<usize> {
        if !self.contains(index) {
            return None;
        }
        let below = self.0 & ((1u32 << index) - 1);
        Some(below.count_ones() as usize)
    }

    /// Enumerates all subsets of `self` with exactly `k` members.
    pub fn subsets_of_size(self, k: usize) -> Vec<VarSet> {
        let members: Vec<usize> = self.iter().collect();
        let mut out = Vec::new();
        if k > members.len() {
            return out;
        }
        // Iterative combination enumeration over the member list.
        let n = members.len();
        if k == 0 {
            out.push(VarSet::empty());
            return out;
        }
        let mut idx: Vec<usize> = (0..k).collect();
        loop {
            out.push(VarSet::from_indices(idx.iter().map(|&i| members[i])));
            // advance
            let mut i = k;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if idx[i] != i + n - k {
                    idx[i] += 1;
                    for j in i + 1..k {
                        idx[j] = idx[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for VarSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        Self::from_indices(iter)
    }
}

/// Iterator over the members of a [`VarSet`] in ascending order.
#[derive(Debug, Clone)]
pub struct VarSetIter(u32);

impl Iterator for VarSetIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(i)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for VarSetIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_full() {
        assert!(VarSet::empty().is_empty());
        assert_eq!(VarSet::full(3).len(), 3);
        assert_eq!(VarSet::full(0), VarSet::empty());
        assert_eq!(VarSet::full(32).len(), 32);
    }

    #[test]
    fn singleton_membership() {
        let s = VarSet::singleton(5);
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 1);
        assert_eq!(s.first(), Some(5));
    }

    #[test]
    fn with_without_roundtrip() {
        let s = VarSet::empty().with(1).with(4).with(7);
        assert_eq!(s.len(), 3);
        assert_eq!(s.without(4).len(), 2);
        assert!(!s.without(4).contains(4));
        // removing something not present is a no-op
        assert_eq!(s.without(9), s);
        assert_eq!(s.without(100), s);
    }

    #[test]
    fn set_algebra() {
        let a = VarSet::from_indices([0, 1, 2]);
        let b = VarSet::from_indices([2, 3]);
        assert_eq!(a.union(b), VarSet::from_indices([0, 1, 2, 3]));
        assert_eq!(a.intersection(b), VarSet::singleton(2));
        assert_eq!(a.difference(b), VarSet::from_indices([0, 1]));
        assert!(VarSet::from_indices([0, 2]).is_subset_of(a));
        assert!(!a.is_subset_of(b));
        assert!(VarSet::singleton(0).is_disjoint(VarSet::singleton(1)));
        assert!(!a.is_disjoint(b));
    }

    #[test]
    fn iteration_is_ascending() {
        let s = VarSet::from_indices([7, 1, 4]);
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![1, 4, 7]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn rank_of_matches_iteration_order() {
        let s = VarSet::from_indices([2, 5, 9]);
        assert_eq!(s.rank_of(2), Some(0));
        assert_eq!(s.rank_of(5), Some(1));
        assert_eq!(s.rank_of(9), Some(2));
        assert_eq!(s.rank_of(3), None);
    }

    #[test]
    fn subsets_of_size_enumerates_combinations() {
        let s = VarSet::from_indices([0, 1, 2, 3]);
        assert_eq!(s.subsets_of_size(0), vec![VarSet::empty()]);
        assert_eq!(s.subsets_of_size(2).len(), 6);
        assert_eq!(s.subsets_of_size(4).len(), 1);
        assert_eq!(s.subsets_of_size(5).len(), 0);
        for sub in s.subsets_of_size(3) {
            assert_eq!(sub.len(), 3);
            assert!(sub.is_subset_of(s));
        }
    }

    #[test]
    fn display_lists_members() {
        assert_eq!(VarSet::from_indices([0, 2]).to_string(), "{0,2}");
        assert_eq!(VarSet::empty().to_string(), "{}");
    }

    #[test]
    #[should_panic]
    fn singleton_out_of_range_panics() {
        let _ = VarSet::singleton(32);
    }

    proptest! {
        #[test]
        fn prop_from_indices_roundtrip(indices in proptest::collection::vec(0usize..32, 0..10)) {
            let s = VarSet::from_indices(indices.iter().copied());
            for &i in &indices {
                prop_assert!(s.contains(i));
            }
            let collected: Vec<usize> = s.iter().collect();
            let mut expected: Vec<usize> = indices.clone();
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(collected, expected);
        }

        #[test]
        fn prop_union_is_commutative(a in any::<u32>(), b in any::<u32>()) {
            let (a, b) = (VarSet::from_bits(a), VarSet::from_bits(b));
            prop_assert_eq!(a.union(b), b.union(a));
            prop_assert_eq!(a.intersection(b), b.intersection(a));
        }

        #[test]
        fn prop_difference_disjoint_from_subtrahend(a in any::<u32>(), b in any::<u32>()) {
            let (a, b) = (VarSet::from_bits(a), VarSet::from_bits(b));
            prop_assert!(a.difference(b).is_disjoint(b));
            prop_assert!(a.difference(b).is_subset_of(a));
        }

        #[test]
        fn prop_len_consistent_with_iter(a in any::<u32>()) {
            let s = VarSet::from_bits(a);
            prop_assert_eq!(s.len(), s.iter().count());
        }
    }
}
