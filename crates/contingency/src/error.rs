//! Error type shared by the data-layer operations.

use std::fmt;

/// Errors produced while building schemas, datasets or contingency tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContingencyError {
    /// A schema was constructed with no attributes, or an attribute with no
    /// values; such a table has no cells and nothing can be estimated.
    EmptySchema,
    /// Two attributes (or two values of one attribute) share a name, which
    /// would make name-based lookup ambiguous.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// An attribute name was not found in the schema.
    UnknownAttribute {
        /// The requested attribute name.
        name: String,
    },
    /// A value name was not found among the attribute's declared values.
    UnknownValue {
        /// The attribute whose value list was consulted.
        attribute: String,
        /// The requested value name.
        value: String,
    },
    /// An attribute index was out of range for the schema.
    AttributeIndexOutOfRange {
        /// The requested index.
        index: usize,
        /// Number of attributes in the schema.
        len: usize,
    },
    /// A value index was out of range for the attribute's cardinality.
    ValueIndexOutOfRange {
        /// The attribute index.
        attribute: usize,
        /// The requested value index.
        value: usize,
        /// The attribute's cardinality.
        cardinality: usize,
    },
    /// A sample did not provide exactly one value per attribute.
    SampleArity {
        /// Number of values supplied.
        got: usize,
        /// Number of attributes expected.
        expected: usize,
    },
    /// Counts supplied to [`crate::ContingencyTable::from_counts`] did not
    /// match the schema's cell count.
    CountLength {
        /// Number of counts supplied.
        got: usize,
        /// Number of cells expected.
        expected: usize,
    },
    /// An assignment referred to attributes outside the variable set it was
    /// declared over, or supplied the wrong number of values.
    InvalidAssignment {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// Cell counts summed past `u64::MAX`.  Unreachable by counting real
    /// observations; it means a forged or corrupted payload supplied
    /// near-maximal counts, or two such tables were merged.
    CountOverflow,
    /// The schema would produce more cells than can be indexed.
    TableTooLarge {
        /// The (saturated) number of cells requested.
        cells: u128,
        /// The maximum supported.
        max: u128,
    },
    /// A CSV file could not be parsed.
    Csv {
        /// Line number (1-based) where the problem was found, if known.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for ContingencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptySchema => {
                write!(f, "schema must contain at least one attribute with at least one value")
            }
            Self::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            Self::UnknownAttribute { name } => write!(f, "unknown attribute `{name}`"),
            Self::UnknownValue { attribute, value } => {
                write!(f, "attribute `{attribute}` has no value named `{value}`")
            }
            Self::AttributeIndexOutOfRange { index, len } => {
                write!(f, "attribute index {index} out of range for schema with {len} attributes")
            }
            Self::ValueIndexOutOfRange { attribute, value, cardinality } => write!(
                f,
                "value index {value} out of range for attribute {attribute} with {cardinality} values"
            ),
            Self::SampleArity { got, expected } => {
                write!(f, "sample has {got} values but the schema has {expected} attributes")
            }
            Self::CountLength { got, expected } => {
                write!(f, "got {got} cell counts but the schema has {expected} cells")
            }
            Self::InvalidAssignment { reason } => write!(f, "invalid assignment: {reason}"),
            Self::CountOverflow => {
                write!(f, "cell counts overflow the 64-bit observation total")
            }
            Self::TableTooLarge { cells, max } => {
                write!(f, "table would have {cells} cells which exceeds the supported maximum {max}")
            }
            Self::Csv { line, reason } => write!(f, "CSV parse error at line {line}: {reason}"),
        }
    }
}

impl std::error::Error for ContingencyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_names() {
        let e =
            ContingencyError::UnknownValue { attribute: "cancer".into(), value: "maybe".into() };
        let msg = e.to_string();
        assert!(msg.contains("cancer"));
        assert!(msg.contains("maybe"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&ContingencyError::EmptySchema);
    }

    #[test]
    fn display_covers_all_variants() {
        let variants = vec![
            ContingencyError::EmptySchema,
            ContingencyError::DuplicateName { name: "x".into() },
            ContingencyError::UnknownAttribute { name: "x".into() },
            ContingencyError::UnknownValue { attribute: "a".into(), value: "v".into() },
            ContingencyError::AttributeIndexOutOfRange { index: 3, len: 2 },
            ContingencyError::ValueIndexOutOfRange { attribute: 0, value: 9, cardinality: 2 },
            ContingencyError::SampleArity { got: 1, expected: 3 },
            ContingencyError::CountLength { got: 4, expected: 12 },
            ContingencyError::InvalidAssignment { reason: "why".into() },
            ContingencyError::CountOverflow,
            ContingencyError::TableTooLarge { cells: 10, max: 5 },
            ContingencyError::Csv { line: 7, reason: "bad".into() },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
