//! Partial value assignments — the memo's `N^{AC}_{ik}`-style cell labels.

use crate::schema::Schema;
use crate::varset::VarSet;
use crate::{ContingencyError, Result};
use serde::{Deserialize, Serialize};

/// A value assignment on a subset of the attributes.
///
/// `Assignment { vars, values }` pairs a [`VarSet`] with one value index per
/// member, stored in ascending order of the member indices.  It names one
/// cell of a marginal table: the memo's `N^{AC}_{12}` is
/// `Assignment::new({0,2}, [0, 1])` for attributes `A = 0`, `C = 2`.
///
/// The *order* of an assignment is the number of attributes it mentions —
/// the same notion of order the acquisition procedure iterates over
/// (first-order marginals, second-order cells, …).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Assignment {
    vars: VarSet,
    values: Vec<usize>,
}

impl Assignment {
    /// Creates an assignment.  `values[k]` is the value index of the k-th
    /// smallest member of `vars`.
    ///
    /// # Panics
    /// Panics if `values.len() != vars.len()`; use
    /// [`Assignment::checked_new`] for fallible construction.
    pub fn new(vars: VarSet, values: Vec<usize>) -> Self {
        assert_eq!(
            values.len(),
            vars.len(),
            "assignment must supply exactly one value per variable"
        );
        Self { vars, values }
    }

    /// Fallible constructor that also validates value ranges against a
    /// schema.
    pub fn checked_new(schema: &Schema, vars: VarSet, values: Vec<usize>) -> Result<Self> {
        if values.len() != vars.len() {
            return Err(ContingencyError::InvalidAssignment {
                reason: format!("{} variables but {} values", vars.len(), values.len()),
            });
        }
        for (rank, attr) in vars.iter().enumerate() {
            let card = schema.cardinality(attr)?;
            if values[rank] >= card {
                return Err(ContingencyError::ValueIndexOutOfRange {
                    attribute: attr,
                    value: values[rank],
                    cardinality: card,
                });
            }
        }
        Ok(Self { vars, values })
    }

    /// The empty assignment (order 0); it matches every cell and names the
    /// normalisation constraint `Σ p = 1`.
    pub fn empty() -> Self {
        Self { vars: VarSet::empty(), values: Vec::new() }
    }

    /// A first-order assignment `attribute = value`.
    pub fn single(attribute: usize, value: usize) -> Self {
        Self { vars: VarSet::singleton(attribute), values: vec![value] }
    }

    /// Builds an assignment from `(attribute, value)` pairs in any order.
    pub fn from_pairs<I: IntoIterator<Item = (usize, usize)>>(pairs: I) -> Self {
        let mut pairs: Vec<(usize, usize)> = pairs.into_iter().collect();
        pairs.sort_unstable_by_key(|&(a, _)| a);
        pairs.dedup_by_key(|&mut (a, _)| a);
        let vars = VarSet::from_indices(pairs.iter().map(|&(a, _)| a));
        let values = pairs.into_iter().map(|(_, v)| v).collect();
        Self { vars, values }
    }

    /// Builds an assignment by looking up attribute and value names in a
    /// schema.
    pub fn from_names(schema: &Schema, pairs: &[(&str, &str)]) -> Result<Self> {
        let mut resolved = Vec::with_capacity(pairs.len());
        for &(attr_name, value_name) in pairs {
            let attr = schema.attribute_index(attr_name)?;
            let value = schema.attribute(attr)?.value_index(value_name).ok_or_else(|| {
                ContingencyError::UnknownValue {
                    attribute: attr_name.to_string(),
                    value: value_name.to_string(),
                }
            })?;
            resolved.push((attr, value));
        }
        Ok(Self::from_pairs(resolved))
    }

    /// Projects a full cell assignment (one value per attribute) onto `vars`.
    pub fn project(vars: VarSet, full_values: &[usize]) -> Self {
        let values = vars.iter().map(|i| full_values[i]).collect();
        Self { vars, values }
    }

    /// The variables this assignment mentions.
    pub fn vars(&self) -> VarSet {
        self.vars
    }

    /// The value indices, aligned with `vars().iter()`.
    pub fn values(&self) -> &[usize] {
        &self.values
    }

    /// The order (number of attributes mentioned).
    pub fn order(&self) -> usize {
        self.vars.len()
    }

    /// The value assigned to `attribute`, if it is mentioned.
    pub fn value_of(&self, attribute: usize) -> Option<usize> {
        self.vars.rank_of(attribute).map(|rank| self.values[rank])
    }

    /// Iterates over `(attribute, value)` pairs in ascending attribute order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.vars.iter().zip(self.values.iter().copied())
    }

    /// True if a full cell assignment agrees with this partial assignment on
    /// every mentioned attribute (i.e. the cell lies "inside" this marginal
    /// cell).
    pub fn matches(&self, full_values: &[usize]) -> bool {
        self.pairs().all(|(attr, value)| full_values.get(attr) == Some(&value))
    }

    /// True if `other` assigns the same values on every attribute both
    /// mention, i.e. the two constraints are simultaneously satisfiable by
    /// some cell.
    pub fn compatible_with(&self, other: &Assignment) -> bool {
        let shared = self.vars.intersection(other.vars);
        shared.iter().all(|attr| self.value_of(attr) == other.value_of(attr))
    }

    /// Restricts the assignment to `vars ∩ subset`.
    pub fn restrict(&self, subset: VarSet) -> Assignment {
        Assignment::from_pairs(self.pairs().filter(|&(a, _)| subset.contains(a)))
    }

    /// Extends the assignment with one more `(attribute, value)` pair.  If
    /// the attribute is already mentioned its value is replaced.
    pub fn with(&self, attribute: usize, value: usize) -> Assignment {
        let mut pairs: Vec<(usize, usize)> =
            self.pairs().filter(|&(a, _)| a != attribute).collect();
        pairs.push((attribute, value));
        Assignment::from_pairs(pairs)
    }

    /// Merges two assignments over disjoint or agreeing variable sets.
    /// Returns `None` if they disagree on a shared attribute.
    pub fn merge(&self, other: &Assignment) -> Option<Assignment> {
        if !self.compatible_with(other) {
            return None;
        }
        Some(Assignment::from_pairs(self.pairs().chain(other.pairs())))
    }

    /// Human-readable description using the schema's attribute/value names.
    pub fn describe(&self, schema: &Schema) -> String {
        if self.vars.is_empty() {
            return "(unconditional)".to_string();
        }
        schema.describe(self.vars, &self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
    }

    #[test]
    fn construction_orders_pairs() {
        let a = Assignment::from_pairs([(2, 1), (0, 2)]);
        assert_eq!(a.vars(), VarSet::from_indices([0, 2]));
        assert_eq!(a.values(), &[2, 1]);
        assert_eq!(a.order(), 2);
        assert_eq!(a.value_of(0), Some(2));
        assert_eq!(a.value_of(2), Some(1));
        assert_eq!(a.value_of(1), None);
    }

    #[test]
    fn checked_new_validates() {
        let s = schema();
        assert!(Assignment::checked_new(&s, VarSet::singleton(1), vec![1]).is_ok());
        assert!(Assignment::checked_new(&s, VarSet::singleton(1), vec![2]).is_err());
        assert!(Assignment::checked_new(&s, VarSet::singleton(1), vec![]).is_err());
    }

    #[test]
    fn from_names_resolves() {
        let s = schema();
        let a = Assignment::from_names(&s, &[("cancer", "yes"), ("smoking", "smoker")]).unwrap();
        assert_eq!(a, Assignment::from_pairs([(0, 0), (1, 0)]));
        assert!(Assignment::from_names(&s, &[("cancer", "maybe")]).is_err());
        assert!(Assignment::from_names(&s, &[("age", "old")]).is_err());
    }

    #[test]
    fn project_and_matches() {
        let full = vec![1, 0, 1];
        let a = Assignment::project(VarSet::from_indices([0, 2]), &full);
        assert_eq!(a.values(), &[1, 1]);
        assert!(a.matches(&full));
        assert!(!a.matches(&[0, 0, 1]));
        assert!(Assignment::empty().matches(&full));
    }

    #[test]
    fn compatibility_and_merge() {
        let a = Assignment::from_pairs([(0, 1), (1, 0)]);
        let b = Assignment::from_pairs([(1, 0), (2, 1)]);
        let c = Assignment::from_pairs([(1, 1)]);
        assert!(a.compatible_with(&b));
        assert!(!a.compatible_with(&c));
        let merged = a.merge(&b).unwrap();
        assert_eq!(merged, Assignment::from_pairs([(0, 1), (1, 0), (2, 1)]));
        assert!(a.merge(&c).is_none());
    }

    #[test]
    fn restrict_and_with() {
        let a = Assignment::from_pairs([(0, 1), (1, 0), (2, 1)]);
        assert_eq!(
            a.restrict(VarSet::from_indices([0, 2])),
            Assignment::from_pairs([(0, 1), (2, 1)])
        );
        assert_eq!(a.restrict(VarSet::empty()), Assignment::empty());
        assert_eq!(a.with(1, 1).value_of(1), Some(1));
        assert_eq!(Assignment::empty().with(3, 2), Assignment::single(3, 2));
    }

    #[test]
    fn describe_uses_schema_names() {
        let s = schema();
        let a = Assignment::from_names(&s, &[("smoking", "smoker"), ("family-history", "yes")])
            .unwrap();
        assert_eq!(a.describe(&s), "smoking=smoker, family-history=yes");
        assert_eq!(Assignment::empty().describe(&s), "(unconditional)");
    }

    #[test]
    #[should_panic]
    fn new_with_wrong_arity_panics() {
        let _ = Assignment::new(VarSet::from_indices([0, 1]), vec![0]);
    }

    proptest! {
        #[test]
        fn prop_project_always_matches_source(
            cards in proptest::collection::vec(1usize..4, 1..5),
            mask in any::<u32>(),
            seed in any::<u64>(),
        ) {
            let s = Schema::uniform(&cards).unwrap();
            let vars = VarSet::from_bits(mask).intersection(s.all_vars());
            // Pick a deterministic pseudo-random cell from the seed.
            let cell = (seed as usize) % s.cell_count();
            let full = s.cell_values(cell);
            let a = Assignment::project(vars, &full);
            prop_assert!(a.matches(&full));
            prop_assert_eq!(a.order(), vars.len());
        }

        #[test]
        fn prop_merge_of_projections_matches(
            cards in proptest::collection::vec(1usize..4, 1..5),
            m1 in any::<u32>(),
            m2 in any::<u32>(),
            seed in any::<u64>(),
        ) {
            let s = Schema::uniform(&cards).unwrap();
            let v1 = VarSet::from_bits(m1).intersection(s.all_vars());
            let v2 = VarSet::from_bits(m2).intersection(s.all_vars());
            let cell = (seed as usize) % s.cell_count();
            let full = s.cell_values(cell);
            let a = Assignment::project(v1, &full);
            let b = Assignment::project(v2, &full);
            // Projections of the same cell are always compatible and merge to
            // the projection onto the union.
            prop_assert!(a.compatible_with(&b));
            prop_assert_eq!(a.merge(&b).unwrap(), Assignment::project(v1.union(v2), &full));
        }
    }
}
