//! Collections of samples — the "original data form" of the memo's
//! Appendix A.

use crate::builder::TableBuilder;
use crate::sample::Sample;
use crate::schema::Schema;
use crate::table::ContingencyTable;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A set of observations over a fixed [`Schema`].
///
/// This is the memo's Figure 5: one row per respondent, one mark per
/// attribute.  The only operation the acquisition pipeline ever needs is the
/// reduction to a [`ContingencyTable`] ([`Dataset::to_table`]), but the raw
/// samples are kept so train/test splits and resampling experiments are
/// possible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    schema: Arc<Schema>,
    samples: Vec<Sample>,
}

impl Dataset {
    /// Creates an empty dataset over a schema.
    pub fn new(schema: Schema) -> Self {
        Self { schema: Arc::new(schema), samples: Vec::new() }
    }

    /// Creates an empty dataset over an already-shared schema.
    pub fn with_shared_schema(schema: Arc<Schema>) -> Self {
        Self { schema, samples: Vec::new() }
    }

    /// Creates a dataset from pre-validated samples.
    pub fn from_samples(schema: Schema, samples: Vec<Sample>) -> Result<Self> {
        let mut ds = Self::new(schema);
        for s in samples {
            ds.push(s)?;
        }
        Ok(ds)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The schema as a shareable handle.
    pub fn shared_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// The samples collected so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples (the memo's `N`).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Appends a sample after validating it against the schema.
    pub fn push(&mut self, sample: Sample) -> Result<()> {
        let validated = Sample::validated(&self.schema, sample.into_values())?;
        self.samples.push(validated);
        Ok(())
    }

    /// Appends a sample given by raw value indices.
    pub fn push_values(&mut self, values: Vec<usize>) -> Result<()> {
        self.push(Sample::new(values))
    }

    /// Appends a sample given by `(attribute name, value name)` pairs.
    pub fn push_named(&mut self, pairs: &[(&str, &str)]) -> Result<()> {
        let s = Sample::from_named(&self.schema, pairs)?;
        self.samples.push(s);
        Ok(())
    }

    /// Appends a whole batch of raw rows atomically: every row is validated
    /// first and the dataset is extended only if all of them pass, so a bad
    /// row in the middle of a feed cannot leave a half-ingested batch
    /// behind.  Returns the number of rows appended.
    pub fn push_batch<I, R>(&mut self, rows: I) -> Result<usize>
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[usize]>,
    {
        let validated: Vec<Sample> = rows
            .into_iter()
            .map(|r| Sample::validated(&self.schema, r.as_ref().to_vec()))
            .collect::<Result<_>>()?;
        let n = validated.len();
        self.samples.extend(validated);
        Ok(n)
    }

    /// Appends every sample of `other`.  Both datasets must share a schema.
    pub fn merge_from(&mut self, other: &Dataset) -> Result<()> {
        if self.schema.as_ref() != other.schema.as_ref() {
            return Err(crate::ContingencyError::InvalidAssignment {
                reason: "cannot merge datasets over different schemas".to_string(),
            });
        }
        self.samples.extend_from_slice(&other.samples);
        Ok(())
    }

    /// Splits the dataset into `count` contiguous parts of
    /// `ceil(len / count)` samples each: every part but the last is full,
    /// the last holds the remainder, and — when `count` does not divide the
    /// length generously enough — trailing parts are empty (e.g. 10 samples
    /// in 4 parts come out as 3/3/3/1).  Useful for replaying a recorded
    /// dataset as a stream of batches; `count` is clamped to at least 1 and
    /// no sample is ever dropped.
    pub fn split_chunks(&self, count: usize) -> Vec<Dataset> {
        let count = count.max(1);
        let per = self.samples.len().div_ceil(count).max(1);
        let mut parts: Vec<Dataset> = self
            .samples
            .chunks(per)
            .map(|chunk| Dataset { schema: Arc::clone(&self.schema), samples: chunk.to_vec() })
            .collect();
        while parts.len() < count {
            parts.push(Dataset::with_shared_schema(Arc::clone(&self.schema)));
        }
        parts
    }

    /// Reduces the dataset to contingency-table form (Appendix A: sum the
    /// attribute R-tuples to obtain the `N_{ijk…}` values).
    pub fn to_table(&self) -> ContingencyTable {
        let mut builder = TableBuilder::new(Arc::clone(&self.schema));
        for s in &self.samples {
            builder.add_sample(s);
        }
        builder.build()
    }

    /// Splits the dataset deterministically into a training and a test part:
    /// every `k`-th sample (by position, starting at `offset`) goes to the
    /// test part.  Used by the model-quality experiments; deterministic so
    /// benchmark runs are reproducible.
    pub fn split_every(&self, k: usize, offset: usize) -> (Dataset, Dataset) {
        let k = k.max(1);
        let mut train = Dataset::with_shared_schema(Arc::clone(&self.schema));
        let mut test = Dataset::with_shared_schema(Arc::clone(&self.schema));
        for (i, s) in self.samples.iter().enumerate() {
            if i % k == offset % k {
                test.samples.push(s.clone());
            } else {
                train.samples.push(s.clone());
            }
        }
        (train, test)
    }

    /// Keeps only the first `n` samples (useful for learning-curve sweeps).
    pub fn truncated(&self, n: usize) -> Dataset {
        Dataset {
            schema: Arc::clone(&self.schema),
            samples: self.samples.iter().take(n).cloned().collect(),
        }
    }

    /// Iterates over samples.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![Attribute::new("a", ["0", "1"]), Attribute::new("b", ["0", "1", "2"])])
            .unwrap()
    }

    #[test]
    fn push_and_count() {
        let mut d = Dataset::new(schema());
        d.push_values(vec![0, 2]).unwrap();
        d.push_values(vec![1, 1]).unwrap();
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert!(d.push_values(vec![0, 3]).is_err());
        assert!(d.push_values(vec![0]).is_err());
        assert_eq!(d.len(), 2, "failed pushes must not modify the dataset");
    }

    #[test]
    fn push_named_resolves() {
        let mut d = Dataset::new(schema());
        d.push_named(&[("b", "2"), ("a", "0")]).unwrap();
        assert_eq!(d.samples()[0].values(), &[0, 2]);
    }

    #[test]
    fn to_table_counts_cells() {
        let mut d = Dataset::new(schema());
        for _ in 0..3 {
            d.push_values(vec![0, 1]).unwrap();
        }
        d.push_values(vec![1, 2]).unwrap();
        let t = d.to_table();
        assert_eq!(t.total(), 4);
        assert_eq!(t.count_values(&[0, 1]), 3);
        assert_eq!(t.count_values(&[1, 2]), 1);
        assert_eq!(t.count_values(&[1, 1]), 0);
    }

    #[test]
    fn from_samples_validates_all() {
        let s = schema();
        let ok = Dataset::from_samples(s.clone(), vec![Sample::new(vec![0, 0])]);
        assert!(ok.is_ok());
        let bad = Dataset::from_samples(s, vec![Sample::new(vec![0, 9])]);
        assert!(bad.is_err());
    }

    #[test]
    fn split_every_partitions_without_loss() {
        let mut d = Dataset::new(schema());
        for i in 0..10 {
            d.push_values(vec![i % 2, i % 3]).unwrap();
        }
        let (train, test) = d.split_every(5, 0);
        assert_eq!(train.len() + test.len(), 10);
        assert_eq!(test.len(), 2);
        // offset shifts which samples land in the test split
        let (_, test2) = d.split_every(5, 1);
        assert_ne!(test.samples(), test2.samples());
    }

    #[test]
    fn push_batch_is_atomic() {
        let mut d = Dataset::new(schema());
        assert_eq!(d.push_batch([[0usize, 0], [1, 2]]).unwrap(), 2);
        assert_eq!(d.len(), 2);
        // One bad row rejects the whole batch.
        assert!(d.push_batch([[0usize, 0], [0, 9], [1, 1]]).is_err());
        assert_eq!(d.len(), 2, "failed batch must leave the dataset untouched");
    }

    #[test]
    fn merge_from_appends_and_checks_schema() {
        let mut a = Dataset::new(schema());
        a.push_values(vec![0, 0]).unwrap();
        let mut b = Dataset::with_shared_schema(a.shared_schema());
        b.push_values(vec![1, 2]).unwrap();
        a.merge_from(&b).unwrap();
        assert_eq!(a.len(), 2);
        let foreign = Dataset::new(Schema::uniform(&[4]).unwrap());
        assert!(a.merge_from(&foreign).is_err());
    }

    #[test]
    fn split_chunks_partitions_in_order() {
        let mut d = Dataset::new(schema());
        for i in 0..10 {
            d.push_values(vec![i % 2, i % 3]).unwrap();
        }
        let chunks = d.split_chunks(3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks.iter().map(Dataset::len).sum::<usize>(), 10);
        let rejoined: Vec<_> = chunks.iter().flat_map(|c| c.samples().iter().cloned()).collect();
        assert_eq!(rejoined, d.samples());
        // More chunks than samples: the extras are empty, none are lost.
        let many = d.split_chunks(20);
        assert_eq!(many.len(), 20);
        assert_eq!(many.iter().map(Dataset::len).sum::<usize>(), 10);
        // Degenerate request is clamped.
        assert_eq!(d.split_chunks(0).len(), 1);
    }

    #[test]
    fn truncated_takes_prefix() {
        let mut d = Dataset::new(schema());
        for i in 0..5 {
            d.push_values(vec![i % 2, 0]).unwrap();
        }
        let t = d.truncated(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.samples()[2].values(), d.samples()[2].values());
        assert_eq!(d.truncated(100).len(), 5);
    }
}
