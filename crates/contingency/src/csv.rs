//! Minimal CSV ingestion for survey-style files.
//!
//! The memo's data sources — questionnaires, test logs, telemetry summaries —
//! typically arrive as delimited text with a header row.  This module reads
//! such files into a [`Dataset`] without pulling in an external CSV crate:
//! values are comma-separated, a `#` line is a comment, whitespace around
//! fields is trimmed, and quoting is not supported (categorical survey codes
//! do not need it).

use crate::attribute::Attribute;
use crate::dataset::Dataset;
use crate::schema::Schema;
use crate::{ContingencyError, Result};

/// How the schema for a CSV file is obtained.
#[derive(Debug, Clone)]
pub enum CsvSchema {
    /// Use an explicit schema; rows containing unknown values are errors.
    Fixed(Schema),
    /// Infer the schema: attribute names from the header row, value lists
    /// from the distinct strings seen in each column (in order of first
    /// appearance).
    Infer,
}

/// Parses CSV text into a dataset.
///
/// The first non-comment line must be a header naming the attributes.  With
/// [`CsvSchema::Fixed`] the header order may differ from the schema order;
/// columns are matched by name.
pub fn parse_csv(text: &str, schema: CsvSchema) -> Result<Dataset> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|&(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (header_line_no, header) = lines
        .next()
        .ok_or(ContingencyError::Csv { line: 0, reason: "file contains no header row".into() })?;
    let columns: Vec<&str> = header.split(',').map(str::trim).collect();
    if columns.iter().any(|c| c.is_empty()) {
        return Err(ContingencyError::Csv {
            line: header_line_no,
            reason: "header contains an empty column name".into(),
        });
    }

    let rows: Vec<(usize, Vec<String>)> = lines
        .map(|(no, l)| (no, l.split(',').map(|f| f.trim().to_string()).collect::<Vec<_>>()))
        .collect();
    for (no, row) in &rows {
        if row.len() != columns.len() {
            return Err(ContingencyError::Csv {
                line: *no,
                reason: format!("expected {} fields, found {}", columns.len(), row.len()),
            });
        }
    }

    match schema {
        CsvSchema::Fixed(schema) => {
            // Map CSV column position -> schema attribute index.
            let mut col_to_attr = Vec::with_capacity(columns.len());
            for c in &columns {
                col_to_attr.push(schema.attribute_index(c)?);
            }
            let mut ds = Dataset::new(schema);
            for (no, row) in rows {
                let mut values = vec![usize::MAX; ds.schema().len()];
                for (col, field) in row.iter().enumerate() {
                    let attr = col_to_attr[col];
                    let v = ds.schema().attribute(attr)?.value_index(field).ok_or_else(|| {
                        ContingencyError::Csv {
                            line: no,
                            reason: format!(
                                "unknown value `{field}` for attribute `{}`",
                                columns[col]
                            ),
                        }
                    })?;
                    values[attr] = v;
                }
                if values.contains(&usize::MAX) {
                    return Err(ContingencyError::Csv {
                        line: no,
                        reason: "row does not cover every schema attribute".into(),
                    });
                }
                ds.push_values(values)?;
            }
            Ok(ds)
        }
        CsvSchema::Infer => {
            // First pass: collect distinct values per column.
            let mut value_lists: Vec<Vec<String>> = vec![Vec::new(); columns.len()];
            for (_, row) in &rows {
                for (col, field) in row.iter().enumerate() {
                    if !value_lists[col].iter().any(|v| v == field) {
                        value_lists[col].push(field.clone());
                    }
                }
            }
            if rows.is_empty() {
                return Err(ContingencyError::Csv {
                    line: header_line_no,
                    reason: "cannot infer a schema from a file with no data rows".into(),
                });
            }
            let attributes: Vec<Attribute> = columns
                .iter()
                .zip(value_lists.iter())
                .map(|(name, values)| Attribute::new(*name, values.clone()))
                .collect();
            let schema = Schema::new(attributes)?;
            let mut ds = Dataset::new(schema);
            for (_, row) in rows {
                let values: Vec<usize> = row
                    .iter()
                    .enumerate()
                    .map(|(col, field)| {
                        ds.schema()
                            .attribute(col)
                            .expect("column in schema")
                            .value_index(field)
                            .expect("value seen in first pass")
                    })
                    .collect();
                ds.push_values(values)?;
            }
            Ok(ds)
        }
    }
}

/// Serialises a dataset back to CSV text (header + one row per sample),
/// using the schema's value names.  Inverse of [`parse_csv`] with an inferred
/// schema, up to value-declaration order.
pub fn to_csv(dataset: &Dataset) -> String {
    let schema = dataset.schema();
    let mut out = String::new();
    let header: Vec<&str> = schema.attributes().iter().map(Attribute::name).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for sample in dataset.iter() {
        let row: Vec<&str> = sample
            .values()
            .iter()
            .enumerate()
            .map(|(attr, &v)| {
                schema.attribute(attr).expect("attr in schema").value_name(v).unwrap_or("?")
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;

    const SAMPLE_CSV: &str = "\
# hypothetical survey extract
smoking,cancer
smoker,yes
smoker,no
non-smoker,no
non-smoker , no
";

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker"]),
            Attribute::yes_no("cancer"),
        ])
        .unwrap()
    }

    #[test]
    fn parse_with_fixed_schema() {
        let ds = parse_csv(SAMPLE_CSV, CsvSchema::Fixed(schema())).unwrap();
        assert_eq!(ds.len(), 4);
        let t = ds.to_table();
        assert_eq!(t.count_values(&[0, 0]), 1);
        assert_eq!(t.count_values(&[1, 1]), 2);
    }

    #[test]
    fn parse_with_fixed_schema_and_reordered_columns() {
        let csv = "cancer,smoking\nyes,smoker\nno,non-smoker\n";
        let ds = parse_csv(csv, CsvSchema::Fixed(schema())).unwrap();
        assert_eq!(ds.samples()[0].values(), &[0, 0]);
        assert_eq!(ds.samples()[1].values(), &[1, 1]);
    }

    #[test]
    fn parse_with_inferred_schema() {
        let ds = parse_csv(SAMPLE_CSV, CsvSchema::Infer).unwrap();
        assert_eq!(ds.schema().len(), 2);
        assert_eq!(ds.schema().attribute(0).unwrap().cardinality(), 2);
        assert_eq!(ds.len(), 4);
    }

    #[test]
    fn parse_rejects_unknown_values_and_ragged_rows() {
        let unknown = "smoking,cancer\nvaper,yes\n";
        assert!(matches!(
            parse_csv(unknown, CsvSchema::Fixed(schema())),
            Err(ContingencyError::Csv { line: 2, .. })
        ));
        let ragged = "smoking,cancer\nsmoker\n";
        assert!(matches!(
            parse_csv(ragged, CsvSchema::Infer),
            Err(ContingencyError::Csv { line: 2, .. })
        ));
        let unknown_column = "smoking,age\nsmoker,12\n";
        assert!(parse_csv(unknown_column, CsvSchema::Fixed(schema())).is_err());
    }

    #[test]
    fn parse_rejects_empty_input() {
        assert!(parse_csv("", CsvSchema::Infer).is_err());
        assert!(parse_csv("# only a comment\n", CsvSchema::Infer).is_err());
        assert!(parse_csv("a,b\n", CsvSchema::Infer).is_err());
        assert!(parse_csv("a,,c\nx,y,z\n", CsvSchema::Infer).is_err());
    }

    #[test]
    fn to_csv_roundtrips_through_parse() {
        let ds = parse_csv(SAMPLE_CSV, CsvSchema::Fixed(schema())).unwrap();
        let text = to_csv(&ds);
        let back = parse_csv(&text, CsvSchema::Fixed(schema())).unwrap();
        assert_eq!(back.samples(), ds.samples());
        assert!(text.starts_with("smoking,cancer\n"));
    }
}
