//! Conversion of raw samples to contingency-table form (Appendix A,
//! Figures 5–6 of the memo).

use crate::dataset::Dataset;
use crate::sample::Sample;
use crate::schema::Schema;
use crate::table::ContingencyTable;
use std::sync::Arc;

/// Incremental builder that sums attribute R-tuples into cell counts.
///
/// This is the step pictured in Figure 6 of the memo: each sample is an
/// indicator over the cells (exactly one `x` per row), and summing the
/// indicators column-by-column yields the `N_{ijk…}` values of Figure 1.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    table: ContingencyTable,
    skipped: usize,
}

impl TableBuilder {
    /// Creates a builder over a schema.
    pub fn new(schema: Arc<Schema>) -> Self {
        Self { table: ContingencyTable::zeros(schema), skipped: 0 }
    }

    /// Adds one sample.  Samples that do not validate against the schema are
    /// counted in [`TableBuilder::skipped`] instead of aborting the whole
    /// build; large survey files routinely contain a few malformed rows.
    pub fn add_sample(&mut self, sample: &Sample) -> &mut Self {
        if self.table.increment(sample.values()).is_err() {
            self.skipped += 1;
        }
        self
    }

    /// Adds every sample of an iterator.
    pub fn add_samples<'a, I: IntoIterator<Item = &'a Sample>>(&mut self, samples: I) -> &mut Self {
        for s in samples {
            self.add_sample(s);
        }
        self
    }

    /// Number of samples rejected so far.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Number of samples accepted so far.
    pub fn accepted(&self) -> u64 {
        self.table.total()
    }

    /// Finishes the build and returns the table.
    pub fn build(self) -> ContingencyTable {
        self.table
    }
}

/// Builds a contingency table directly from a dataset.
///
/// Equivalent to [`Dataset::to_table`]; exposed as a free function so the
/// conversion step of Appendix A has an explicit name in the API.
pub fn tabulate(dataset: &Dataset) -> ContingencyTable {
    dataset.to_table()
}

/// Expands a contingency table back into a dataset with one sample per
/// counted observation (the inverse of Appendix A, useful for resampling
/// experiments and for round-trip tests).
///
/// The expansion is deterministic: cells are visited in dense-index order.
pub fn expand(table: &ContingencyTable) -> Dataset {
    let mut ds = Dataset::with_shared_schema(table.shared_schema());
    for (values, count) in table.nonzero_cells() {
        for _ in 0..count {
            ds.push_values(values.clone()).expect("cell values are valid by construction");
        }
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use proptest::prelude::*;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![Attribute::new("a", ["0", "1", "2"]), Attribute::new("b", ["0", "1"])])
            .unwrap()
            .into_shared()
    }

    #[test]
    fn builder_counts_samples() {
        let mut b = TableBuilder::new(schema());
        b.add_sample(&Sample::new(vec![0, 1]));
        b.add_sample(&Sample::new(vec![0, 1]));
        b.add_sample(&Sample::new(vec![2, 0]));
        assert_eq!(b.accepted(), 3);
        assert_eq!(b.skipped(), 0);
        let t = b.build();
        assert_eq!(t.count_values(&[0, 1]), 2);
        assert_eq!(t.count_values(&[2, 0]), 1);
    }

    #[test]
    fn builder_skips_malformed_samples() {
        let mut b = TableBuilder::new(schema());
        b.add_sample(&Sample::new(vec![0, 1]));
        b.add_sample(&Sample::new(vec![9, 9]));
        b.add_sample(&Sample::new(vec![0]));
        assert_eq!(b.accepted(), 1);
        assert_eq!(b.skipped(), 2);
    }

    #[test]
    fn expand_then_tabulate_roundtrips() {
        let t = ContingencyTable::from_counts(schema(), vec![3, 0, 1, 5, 0, 2]).unwrap();
        let ds = expand(&t);
        assert_eq!(ds.len() as u64, t.total());
        let back = tabulate(&ds);
        assert_eq!(back.counts(), t.counts());
    }

    proptest! {
        #[test]
        fn prop_tabulate_expand_roundtrip(counts in proptest::collection::vec(0u64..20, 6)) {
            let t = ContingencyTable::from_counts(schema(), counts).unwrap();
            let back = tabulate(&expand(&t));
            prop_assert_eq!(back.counts(), t.counts());
            prop_assert_eq!(back.total(), t.total());
        }
    }
}
