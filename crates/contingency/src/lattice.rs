//! Planning the marginal lattice: which variable subsets to materialise and
//! which parent each one is summed down from.
//!
//! A *marginal lattice* over a schema is the family of all marginal tables
//! on variable subsets up to a cutoff order `k` — the memo's Figure 2
//! margins, materialised once instead of being recomputed per query.  This
//! module plans the build; `pka-maxent` executes it against a dense joint
//! distribution.
//!
//! ## Build invariant
//!
//! Steps are emitted in **descending order** of subset size, so every
//! table's parent is materialised before the table itself:
//!
//! * Subsets of the top order `min(k, R)` have no materialised ancestor but
//!   the dense joint itself, so they (and only they) are summed straight
//!   off the joint ([`LatticeParent::Joint`]).
//! * Every smaller subset `S` is built by **single-axis summation** from an
//!   already-planned parent `S ∪ {v}` ([`LatticeParent::Table`]), never
//!   from the full joint: summing out one axis of a small table is
//!   `O(parent cells)` instead of `O(joint cells)`.
//! * Parent selection is deterministic and cheapest-first: among the
//!   candidate extra variables `v ∉ S`, pick the one with the smallest
//!   cardinality (the parent with the fewest cells), breaking ties on the
//!   smallest variable index.
//!
//! The publish-time cost of the whole build is therefore dominated by the
//! `C(R, k)` top-order sweeps over the joint; everything below the top
//! order costs the sum of the (much smaller) parent-table sizes.

use crate::schema::Schema;
use crate::varset::VarSet;

/// Where one lattice table's mass comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatticeParent {
    /// Summed straight off the dense joint (top-order tables only).
    Joint,
    /// Summed down from the already-materialised table over `vars` by
    /// summing out the single axis `sum_out` (`vars = child ∪ {sum_out}`).
    Table {
        /// The parent table's variable set.
        vars: VarSet,
        /// The one attribute summed out of the parent.
        sum_out: usize,
    },
}

/// One step of the lattice build: materialise the marginal table over
/// `vars` from `parent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatticeStep {
    /// The variable subset whose marginal table this step builds.
    pub vars: VarSet,
    /// Where its mass is summed from.
    pub parent: LatticeParent,
}

/// Plans the marginal lattice of a schema up to `max_order`: one
/// [`LatticeStep`] per subset of the schema's attributes with at most
/// `min(max_order, R)` members, in build (descending-size) order, ending
/// with the order-0 (grand-total) table.
///
/// The plan upholds the build invariant documented at the module level:
/// only top-order tables read the joint; everything else is a single-axis
/// summation from its cheapest already-planned parent.
pub fn lattice_plan(schema: &Schema, max_order: usize) -> Vec<LatticeStep> {
    let all = schema.all_vars();
    let top = max_order.min(schema.len());
    let mut steps = Vec::new();
    for order in (0..=top).rev() {
        for vars in all.subsets_of_size(order) {
            let parent = if order == top {
                LatticeParent::Joint
            } else {
                let sum_out = cheapest_extension(schema, vars, all);
                LatticeParent::Table { vars: vars.with(sum_out), sum_out }
            };
            steps.push(LatticeStep { vars, parent });
        }
    }
    steps
}

/// The extra variable whose addition to `vars` yields the cheapest parent:
/// smallest cardinality, ties broken on the smallest index.
fn cheapest_extension(schema: &Schema, vars: VarSet, all: VarSet) -> usize {
    all.difference(vars)
        .iter()
        .min_by_key(|&v| (schema.cardinality(v).expect("candidate is a schema attribute"), v))
        .expect("a below-top-order subset always has an extension")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plan_covers_every_subset_up_to_k_exactly_once() {
        let schema = Schema::uniform(&[3, 2, 2]).unwrap();
        let plan = lattice_plan(&schema, 2);
        // C(3,2) + C(3,1) + C(3,0) = 3 + 3 + 1.
        assert_eq!(plan.len(), 7);
        let mut seen: Vec<VarSet> = plan.iter().map(|s| s.vars).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 7, "no subset is planned twice");
        assert!(plan.iter().all(|s| s.vars.len() <= 2));
    }

    #[test]
    fn only_top_order_tables_read_the_joint() {
        let schema = Schema::uniform(&[3, 2, 4, 2]).unwrap();
        let plan = lattice_plan(&schema, 2);
        for step in &plan {
            match step.parent {
                LatticeParent::Joint => assert_eq!(step.vars.len(), 2),
                LatticeParent::Table { vars, sum_out } => {
                    assert!(step.vars.len() < 2);
                    assert_eq!(vars, step.vars.with(sum_out));
                    assert!(!step.vars.contains(sum_out));
                }
            }
        }
    }

    #[test]
    fn parent_selection_prefers_the_smallest_cardinality() {
        // Cards [5, 2, 3]: the order-0 table should be summed down from the
        // singleton over attribute 1 (cardinality 2), not 0 or 2.
        let schema = Schema::uniform(&[5, 2, 3]).unwrap();
        let plan = lattice_plan(&schema, 1);
        let empty = plan.iter().find(|s| s.vars.is_empty()).unwrap();
        assert_eq!(empty.parent, LatticeParent::Table { vars: VarSet::singleton(1), sum_out: 1 });
        // Ties break on the smallest index.
        let tied = Schema::uniform(&[2, 2]).unwrap();
        let plan = lattice_plan(&tied, 1);
        let empty = plan.iter().find(|s| s.vars.is_empty()).unwrap();
        assert_eq!(empty.parent, LatticeParent::Table { vars: VarSet::singleton(0), sum_out: 0 });
    }

    #[test]
    fn order_above_schema_size_is_capped() {
        let schema = Schema::uniform(&[2, 2]).unwrap();
        let plan = lattice_plan(&schema, 9);
        // Top order caps at R = 2: {0,1} from the joint, singletons from it.
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[0].vars, schema.all_vars());
        assert_eq!(plan[0].parent, LatticeParent::Joint);
        assert!(plan[1..].iter().all(|s| s.parent != LatticeParent::Joint));
    }

    #[test]
    fn order_zero_plan_is_the_grand_total_from_the_joint() {
        let schema = Schema::uniform(&[3, 2]).unwrap();
        let plan = lattice_plan(&schema, 0);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0], LatticeStep { vars: VarSet::empty(), parent: LatticeParent::Joint });
    }

    proptest! {
        #[test]
        fn prop_parents_precede_children_and_shrink_by_one(
            cards in proptest::collection::vec(1usize..5, 1..6),
            k in 0usize..4,
        ) {
            let schema = Schema::uniform(&cards).unwrap();
            let plan = lattice_plan(&schema, k);
            let top = k.min(schema.len());
            for (i, step) in plan.iter().enumerate() {
                match step.parent {
                    LatticeParent::Joint => prop_assert_eq!(step.vars.len(), top),
                    LatticeParent::Table { vars, sum_out } => {
                        prop_assert_eq!(vars, step.vars.with(sum_out));
                        prop_assert_eq!(vars.len(), step.vars.len() + 1);
                        // The parent was planned strictly earlier.
                        let parent_pos = plan.iter().position(|s| s.vars == vars);
                        prop_assert!(parent_pos.is_some() && parent_pos.unwrap() < i);
                    }
                }
            }
            // Every subset of size <= top appears exactly once.
            let expected: usize = (0..=top)
                .map(|m| schema.all_vars().subsets_of_size(m).len())
                .sum();
            prop_assert_eq!(plan.len(), expected);
        }
    }
}
