//! Marginal tables — the memo's Figure 2 and Eqs. 1–6.

use crate::config::Assignment;
use crate::table::ContingencyTable;
use crate::varset::VarSet;
use serde::{Deserialize, Serialize};

/// The counts of a contingency table summed down to a subset of the
/// attributes.
///
/// `Marginal` is itself a small dense table indexed by the member attributes
/// of its [`VarSet`] (in ascending order, last member varying fastest).  It
/// is what Figure 2 of the memo prints in the margins: `N^{AB}_{ij}`,
/// `N^{AC}_{ik}`, `N^A_i`, … down to the single number `N` for the empty
/// set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Marginal {
    vars: VarSet,
    /// Member attribute indices in ascending order.
    members: Vec<usize>,
    /// Cardinalities of the member attributes.
    cards: Vec<usize>,
    counts: Vec<u64>,
    total: u64,
}

impl Marginal {
    /// Computes the marginal of a table over `vars` by summing out all other
    /// attributes (Eqs. 1–5).
    pub fn from_table(table: &ContingencyTable, vars: VarSet) -> Self {
        let schema = table.schema();
        let vars = vars.intersection(schema.all_vars());
        let members: Vec<usize> = vars.iter().collect();
        let cards: Vec<usize> =
            members.iter().map(|&i| schema.cardinality(i).expect("member in schema")).collect();
        let cells: usize = cards.iter().product();
        let mut counts = vec![0u64; cells.max(1)];
        for (idx, &c) in table.counts().iter().enumerate() {
            if c == 0 {
                continue;
            }
            let values = schema.cell_values(idx);
            let mut m = 0usize;
            for (pos, &attr) in members.iter().enumerate() {
                m = m * cards[pos] + values[attr];
            }
            counts[m] += c;
        }
        Self { vars, members, cards, counts, total: table.total() }
    }

    /// The attribute subset this marginal is over.
    pub fn vars(&self) -> VarSet {
        self.vars
    }

    /// The order of the marginal (number of attributes retained).
    pub fn order(&self) -> usize {
        self.members.len()
    }

    /// Number of cells in the marginal table.
    pub fn cell_count(&self) -> usize {
        self.counts.len()
    }

    /// The grand total `N` (same as the source table's total).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for the marginal cell given by one value per member attribute
    /// (ascending attribute order).
    ///
    /// # Panics
    /// Panics if `values` has the wrong length or a value is out of range.
    pub fn count_by_values(&self, values: &[usize]) -> u64 {
        assert_eq!(values.len(), self.members.len(), "one value per member attribute required");
        let mut m = 0usize;
        for (pos, &v) in values.iter().enumerate() {
            assert!(v < self.cards[pos], "value index out of range");
            m = m * self.cards[pos] + v;
        }
        self.counts[m]
    }

    /// Count for the marginal cell named by an [`Assignment`] whose variable
    /// set equals this marginal's variable set.  Returns `None` on a
    /// mismatch.
    pub fn count(&self, assignment: &Assignment) -> Option<u64> {
        if assignment.vars() != self.vars {
            return None;
        }
        Some(self.count_by_values(assignment.values()))
    }

    /// Empirical probability of a marginal cell.
    pub fn frequency_by_values(&self, values: &[usize]) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count_by_values(values) as f64 / self.total as f64
    }

    /// Iterates over `(values, count)` for every marginal cell in
    /// lexicographic value order.
    pub fn cells(&self) -> impl Iterator<Item = (Vec<usize>, u64)> + '_ {
        (0..self.counts.len()).map(|mut idx| {
            let mut values = vec![0usize; self.members.len()];
            for pos in (0..self.members.len()).rev() {
                values[pos] = idx % self.cards[pos];
                idx /= self.cards[pos];
            }
            (values.clone(), self.counts[self.index_of(&values)])
        })
    }

    /// Iterates over `(Assignment, count)` for every marginal cell.
    pub fn assignments(&self) -> impl Iterator<Item = (Assignment, u64)> + '_ {
        self.cells().map(move |(values, c)| (Assignment::new(self.vars, values), c))
    }

    /// Sum of all marginal cells; always equals the grand total for a
    /// marginal computed from a table (Eqs. 4–6).
    pub fn sum(&self) -> u64 {
        self.counts.iter().sum()
    }

    fn index_of(&self, values: &[usize]) -> usize {
        let mut m = 0usize;
        for (pos, &v) in values.iter().enumerate() {
            m = m * self.cards[pos] + v;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::schema::Schema;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    #[test]
    fn figure_2c_smoking_by_cancer() {
        let t = paper_table();
        let m = t.marginal(VarSet::from_indices([0, 1]));
        assert_eq!(m.order(), 2);
        assert_eq!(m.cell_count(), 6);
        // Figure 2c of the memo.
        assert_eq!(m.count_by_values(&[0, 0]), 240);
        assert_eq!(m.count_by_values(&[0, 1]), 1050);
        assert_eq!(m.count_by_values(&[1, 0]), 93);
        assert_eq!(m.count_by_values(&[1, 1]), 1040);
        assert_eq!(m.count_by_values(&[2, 0]), 100);
        assert_eq!(m.count_by_values(&[2, 1]), 905);
        assert_eq!(m.sum(), 3428);
    }

    #[test]
    fn figure_2_ac_and_bc_marginals() {
        let t = paper_table();
        let ac = t.marginal(VarSet::from_indices([0, 2]));
        assert_eq!(ac.count_by_values(&[0, 0]), 540);
        assert_eq!(ac.count_by_values(&[0, 1]), 750);
        assert_eq!(ac.count_by_values(&[1, 0]), 642);
        assert_eq!(ac.count_by_values(&[1, 1]), 491);
        assert_eq!(ac.count_by_values(&[2, 0]), 598);
        assert_eq!(ac.count_by_values(&[2, 1]), 407);
        let bc = t.marginal(VarSet::from_indices([1, 2]));
        assert_eq!(bc.count_by_values(&[0, 0]), 270);
        assert_eq!(bc.count_by_values(&[0, 1]), 163);
        assert_eq!(bc.count_by_values(&[1, 0]), 1510);
        assert_eq!(bc.count_by_values(&[1, 1]), 1485);
    }

    #[test]
    fn first_order_and_empty_marginals() {
        let t = paper_table();
        let a = t.marginal(VarSet::singleton(0));
        assert_eq!(a.count_by_values(&[0]), 1290);
        assert_eq!(a.count_by_values(&[1]), 1133);
        assert_eq!(a.count_by_values(&[2]), 1005);
        assert!((a.frequency_by_values(&[0]) - 1290.0 / 3428.0).abs() < 1e-12);
        let empty = t.marginal(VarSet::empty());
        assert_eq!(empty.cell_count(), 1);
        assert_eq!(empty.count_by_values(&[]), 3428);
        assert_eq!(empty.order(), 0);
    }

    #[test]
    fn count_by_assignment() {
        let t = paper_table();
        let m = t.marginal(VarSet::from_indices([0, 2]));
        let a = Assignment::from_pairs([(0, 0), (2, 1)]);
        assert_eq!(m.count(&a), Some(750));
        let wrong_vars = Assignment::from_pairs([(0, 0), (1, 1)]);
        assert_eq!(m.count(&wrong_vars), None);
    }

    #[test]
    fn assignments_iterator_agrees_with_table() {
        let t = paper_table();
        let m = t.marginal(VarSet::from_indices([0, 1]));
        for (a, c) in m.assignments() {
            assert_eq!(c, t.count_matching(&a));
        }
        assert_eq!(m.assignments().count(), 6);
    }

    proptest! {
        #[test]
        fn prop_marginal_agrees_with_count_matching(
            counts in proptest::collection::vec(0u64..30, 12),
            mask in any::<u32>(),
        ) {
            let schema = Schema::uniform(&[3, 2, 2]).unwrap().into_shared();
            let t = ContingencyTable::from_counts(Arc::clone(&schema), counts).unwrap();
            let vars = VarSet::from_bits(mask).intersection(schema.all_vars());
            let m = t.marginal(vars);
            prop_assert_eq!(m.sum(), t.total());
            for (a, c) in m.assignments() {
                prop_assert_eq!(c, t.count_matching(&a));
            }
        }
    }
}
