//! Dense contingency tables — the memo's `N_{ijk…}` cell counts.

use crate::config::Assignment;
use crate::marginal::Marginal;
use crate::sample::Sample;
use crate::schema::Schema;
use crate::varset::VarSet;
use crate::{ContingencyError, Result};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A dense table of observation counts over the full attribute
/// cross-product.
///
/// Cell `N_{ijk…}` — the number of individuals with the *i*-th value of
/// attribute `A`, the *j*-th value of `B`, … — is stored at the mixed-radix
/// index computed by [`Schema::cell_index`].  All marginal counts
/// (Eqs. 1–6 of the memo) are obtained by summation, either one query at a
/// time ([`ContingencyTable::count_matching`]) or as a whole marginal table
/// ([`ContingencyTable::marginal`]).
///
/// Counts only ever grow (there is no decrement), so the table also keeps
/// `occupied` — the indices of every cell that has ever been observed, in
/// first-observation order.  Marginal queries sum over that sparse set, so
/// their cost scales with the number of *distinct observed cells*, not with
/// the joint's cell count: on a wide schema (2^20 cells, a few hundred
/// observed) a [`ContingencyTable::count_matching`] call touches hundreds of
/// cells, not a million.  `occupied` is derived state: it is skipped on
/// serialisation (the wire format is just `schema`/`counts`/`total`),
/// rebuilt on deserialisation, and excluded from equality.
#[derive(Debug, Clone, Serialize)]
pub struct ContingencyTable {
    schema: Arc<Schema>,
    counts: Vec<u64>,
    total: u64,
    #[serde(skip)]
    occupied: Vec<usize>,
}

impl PartialEq for ContingencyTable {
    fn eq(&self, other: &Self) -> bool {
        // `occupied` is derived (and order-sensitive to ingestion history);
        // two tables are equal iff their observable counts are.
        self.schema == other.schema && self.counts == other.counts && self.total == other.total
    }
}

impl Eq for ContingencyTable {}

impl Deserialize for ContingencyTable {
    fn deserialize(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        #[derive(Deserialize)]
        struct Raw {
            schema: Arc<Schema>,
            counts: Vec<u64>,
            total: u64,
        }
        let raw = Raw::deserialize(value)?;
        let occupied = occupied_of(&raw.counts);
        Ok(Self { schema: raw.schema, counts: raw.counts, total: raw.total, occupied })
    }
}

/// The nonzero cell indices of a dense count vector, in index order.
fn occupied_of(counts: &[u64]) -> Vec<usize> {
    counts.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(i, _)| i).collect()
}

impl ContingencyTable {
    /// Creates an all-zero table over a schema.
    pub fn zeros(schema: Arc<Schema>) -> Self {
        let cells = schema.cell_count();
        Self { schema, counts: vec![0; cells], total: 0, occupied: Vec::new() }
    }

    /// Creates a table from explicit cell counts in dense-index order.
    ///
    /// This is how the memo's Figure 1 data (which is only published in
    /// contingency form) enters the system.
    pub fn from_counts(schema: Arc<Schema>, counts: Vec<u64>) -> Result<Self> {
        if counts.len() != schema.cell_count() {
            return Err(ContingencyError::CountLength {
                got: counts.len(),
                expected: schema.cell_count(),
            });
        }
        // A checked sum: real observation streams cannot reach 2^64, so an
        // overflowing total only ever comes from a forged payload, and
        // wrapping would let it masquerade as a small, consistent table.
        let total = counts
            .iter()
            .try_fold(0u64, |acc, &c| acc.checked_add(c))
            .ok_or(ContingencyError::CountOverflow)?;
        let occupied = occupied_of(&counts);
        Ok(Self { schema, counts, total, occupied })
    }

    /// The schema the table is defined over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The schema as a shareable handle.
    pub fn shared_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Total number of observations (the memo's `N`, Eq. 6).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The raw cell counts in dense-index order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.counts.len()
    }

    /// Adds one observation with the given full value assignment.
    pub fn increment(&mut self, values: &[usize]) -> Result<()> {
        self.increment_by(values, 1)
    }

    /// Adds `by` observations with the given full value assignment.
    pub fn increment_by(&mut self, values: &[usize], by: u64) -> Result<()> {
        let idx = self.schema.checked_cell_index(values)?;
        if by > 0 && self.counts[idx] == 0 {
            self.occupied.push(idx);
        }
        self.counts[idx] += by;
        self.total += by;
        Ok(())
    }

    /// Count of the cell with the given full value assignment.
    ///
    /// # Panics
    /// Panics (in debug builds) if the assignment is malformed; use
    /// [`ContingencyTable::checked_count_values`] for fallible lookup.
    pub fn count_values(&self, values: &[usize]) -> u64 {
        self.counts[self.schema.cell_index(values)]
    }

    /// Fallible version of [`ContingencyTable::count_values`].
    pub fn checked_count_values(&self, values: &[usize]) -> Result<u64> {
        Ok(self.counts[self.schema.checked_cell_index(values)?])
    }

    /// Count of observations matching a partial assignment — the marginal
    /// count `N^{S}_{c}` of Eqs. 1–5.  The empty assignment returns `N`.
    pub fn count_matching(&self, assignment: &Assignment) -> u64 {
        if assignment.vars().is_empty() {
            return self.total;
        }
        if assignment.order() == self.schema.len() {
            // Full assignment: direct cell lookup.
            let mut full = vec![0usize; self.schema.len()];
            for (a, v) in assignment.pairs() {
                full[a] = v;
            }
            return self.count_values(&full);
        }
        // Sum over the observed cells only: with no decrements, `occupied`
        // is exactly the nonzero support, so the walk costs O(distinct
        // observed cells) however large the joint is.
        let mut sum = 0u64;
        for &idx in &self.occupied {
            if assignment.pairs().all(|(attr, v)| self.schema.cell_value(idx, attr) == v) {
                sum += self.counts[idx];
            }
        }
        sum
    }

    /// Empirical probability of a partial assignment, `N^{S}_{c} / N`
    /// (Eq. 48 generalised).  Returns 0 for an empty table.
    pub fn frequency(&self, assignment: &Assignment) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count_matching(assignment) as f64 / self.total as f64
    }

    /// Builds the whole marginal table over a variable subset (summing out
    /// everything else), the operation behind Figure 2 of the memo.
    pub fn marginal(&self, vars: VarSet) -> Marginal {
        Marginal::from_table(self, vars)
    }

    /// Iterates over `(full values, count)` for every cell, including empty
    /// ones.
    pub fn cells(&self) -> impl Iterator<Item = (Vec<usize>, u64)> + '_ {
        self.counts.iter().enumerate().map(|(i, &c)| (self.schema.cell_values(i), c))
    }

    /// Iterates over `(full values, count)` for the non-empty cells only, in
    /// dense-index order.  Walks the sparse occupancy set, so the cost is
    /// proportional to the distinct observed cells, not the joint size.
    pub fn nonzero_cells(&self) -> impl Iterator<Item = (Vec<usize>, u64)> + '_ {
        let mut occupied = self.occupied.clone();
        occupied.sort_unstable();
        occupied.into_iter().map(|i| (self.schema.cell_values(i), self.counts[i]))
    }

    /// The empirical joint distribution as a dense probability vector in
    /// cell-index order.  Returns an all-zero vector for an empty table.
    pub fn empirical_distribution(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let n = self.total as f64;
        self.counts.iter().map(|&c| c as f64 / n).collect()
    }

    /// Adds one observation given as a validated [`Sample`] — the
    /// tuple-at-a-time entry point used by streaming ingestion.
    pub fn increment_sample(&mut self, sample: &Sample) -> Result<()> {
        self.increment(sample.values())
    }

    /// Adds every cell of `other` into `self`.  Both tables must share a
    /// schema.
    pub fn merge(&mut self, other: &ContingencyTable) -> Result<()> {
        if self.schema.as_ref() != other.schema.as_ref() {
            return Err(ContingencyError::InvalidAssignment {
                reason: "cannot merge tables over different schemas".to_string(),
            });
        }
        // Checking the totals up front keeps merge all-or-nothing: each cell
        // is bounded by its table's total, so if the totals fit in a u64 the
        // per-cell additions cannot overflow either.
        let total = self.total.checked_add(other.total).ok_or(ContingencyError::CountOverflow)?;
        // Only `other`'s observed cells can change anything, so a sharded
        // merge costs O(cells the shard saw), not O(joint size).
        for &idx in &other.occupied {
            if self.counts[idx] == 0 {
                self.occupied.push(idx);
            }
            self.counts[idx] += other.counts[idx];
        }
        self.total = total;
        Ok(())
    }

    /// By-value form of [`ContingencyTable::merge`], convenient for folds:
    /// `shards.into_iter().try_fold(zero, ContingencyTable::combined)`.
    ///
    /// Cell counts are non-negative integers under addition, so this
    /// operation is associative and commutative — the algebraic fact that
    /// makes sharded, out-of-order ingestion exact rather than approximate.
    pub fn combined(mut self, other: ContingencyTable) -> Result<ContingencyTable> {
        self.merge(&other)?;
        Ok(self)
    }

    /// Folds any number of part-tables into one total table over `schema`.
    /// An empty iterator yields the all-zero table.
    pub fn merged<I>(schema: Arc<Schema>, parts: I) -> Result<ContingencyTable>
    where
        I: IntoIterator<Item = ContingencyTable>,
    {
        parts.into_iter().try_fold(ContingencyTable::zeros(schema), ContingencyTable::combined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use proptest::prelude::*;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared()
    }

    /// The paper's Figure 1 counts: index order is (smoking, cancer, family
    /// history) with the last attribute varying fastest.
    fn paper_counts() -> Vec<u64> {
        vec![
            130, 110, // A=1 B=1 C=1/2
            410, 640, // A=1 B=2 C=1/2
            62, 31, // A=2 B=1
            580, 460, // A=2 B=2
            78, 22, // A=3 B=1
            520, 385, // A=3 B=2
        ]
    }

    #[test]
    fn from_counts_validates_length() {
        let s = schema();
        assert!(ContingencyTable::from_counts(Arc::clone(&s), vec![0; 5]).is_err());
        let t = ContingencyTable::from_counts(s, paper_counts()).unwrap();
        assert_eq!(t.total(), 3428);
        assert_eq!(t.cell_count(), 12);
    }

    #[test]
    fn overflowing_counts_are_rejected() {
        let s = schema();
        let mut counts = vec![0u64; 12];
        counts[0] = u64::MAX;
        counts[1] = 1;
        assert_eq!(
            ContingencyTable::from_counts(Arc::clone(&s), counts).unwrap_err(),
            ContingencyError::CountOverflow,
        );
        // Merging two near-maximal tables must fail cleanly, leaving the
        // target untouched rather than wrapping its counts.
        let mut big = vec![0u64; 12];
        big[3] = u64::MAX - 5;
        let mut a = ContingencyTable::from_counts(Arc::clone(&s), big.clone()).unwrap();
        let b = ContingencyTable::from_counts(s, big).unwrap();
        let before = a.clone();
        assert_eq!(a.merge(&b).unwrap_err(), ContingencyError::CountOverflow);
        assert_eq!(a, before, "failed merge must not mutate the target");
    }

    #[test]
    fn increment_and_lookup() {
        let mut t = ContingencyTable::zeros(schema());
        t.increment(&[0, 1, 0]).unwrap();
        t.increment_by(&[0, 1, 0], 4).unwrap();
        t.increment(&[2, 0, 1]).unwrap();
        assert_eq!(t.count_values(&[0, 1, 0]), 5);
        assert_eq!(t.count_values(&[2, 0, 1]), 1);
        assert_eq!(t.total(), 6);
        assert!(t.increment(&[9, 0, 0]).is_err());
        assert_eq!(t.total(), 6, "failed increments must not change the total");
        assert_eq!(t.checked_count_values(&[0, 1, 0]).unwrap(), 5);
        assert!(t.checked_count_values(&[0, 1]).is_err());
    }

    #[test]
    fn count_matching_reproduces_paper_marginals() {
        let t = ContingencyTable::from_counts(schema(), paper_counts()).unwrap();
        // Figure 2c: smoking × cancer marginals.
        let n_ab_11 = Assignment::from_pairs([(0, 0), (1, 0)]);
        assert_eq!(t.count_matching(&n_ab_11), 240);
        let n_ab_12 = Assignment::from_pairs([(0, 0), (1, 1)]);
        assert_eq!(t.count_matching(&n_ab_12), 1050);
        // Figure 2: first-order marginals.
        assert_eq!(t.count_matching(&Assignment::single(0, 0)), 1290);
        assert_eq!(t.count_matching(&Assignment::single(0, 1)), 1133);
        assert_eq!(t.count_matching(&Assignment::single(0, 2)), 1005);
        assert_eq!(t.count_matching(&Assignment::single(1, 0)), 433);
        assert_eq!(t.count_matching(&Assignment::single(1, 1)), 2995);
        assert_eq!(t.count_matching(&Assignment::single(2, 0)), 1780);
        assert_eq!(t.count_matching(&Assignment::single(2, 1)), 1648);
        // The paper's N^AC_12 = 750 (smokers with no family history).
        let n_ac_12 = Assignment::from_pairs([(0, 0), (2, 1)]);
        assert_eq!(t.count_matching(&n_ac_12), 750);
        // Empty assignment returns N.
        assert_eq!(t.count_matching(&Assignment::empty()), 3428);
        // Full assignment is a plain cell lookup.
        let full = Assignment::from_pairs([(0, 0), (1, 1), (2, 0)]);
        assert_eq!(t.count_matching(&full), 410);
    }

    #[test]
    fn frequency_normalises() {
        let t = ContingencyTable::from_counts(schema(), paper_counts()).unwrap();
        let p = t.frequency(&Assignment::single(1, 0));
        assert!((p - 433.0 / 3428.0).abs() < 1e-12);
        let empty = ContingencyTable::zeros(schema());
        assert_eq!(empty.frequency(&Assignment::single(1, 0)), 0.0);
    }

    #[test]
    fn empirical_distribution_sums_to_one() {
        let t = ContingencyTable::from_counts(schema(), paper_counts()).unwrap();
        let p = t.empirical_distribution();
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ContingencyTable::from_counts(schema(), paper_counts()).unwrap();
        let b = ContingencyTable::from_counts(schema(), paper_counts()).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 2 * 3428);
        assert_eq!(a.count_values(&[0, 0, 0]), 260);
        let other_schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let c = ContingencyTable::zeros(other_schema);
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn increment_sample_matches_increment() {
        let mut by_values = ContingencyTable::zeros(schema());
        let mut by_sample = ContingencyTable::zeros(schema());
        by_values.increment(&[1, 0, 1]).unwrap();
        let sample = crate::Sample::validated(&schema(), vec![1, 0, 1]).unwrap();
        by_sample.increment_sample(&sample).unwrap();
        assert_eq!(by_values, by_sample);
    }

    #[test]
    fn combined_and_merged_fold_parts() {
        let s = schema();
        let a = ContingencyTable::from_counts(Arc::clone(&s), paper_counts()).unwrap();
        let b = ContingencyTable::from_counts(Arc::clone(&s), paper_counts()).unwrap();
        let c = ContingencyTable::zeros(Arc::clone(&s));
        let folded = ContingencyTable::merged(Arc::clone(&s), vec![a.clone(), b, c]).unwrap();
        assert_eq!(folded.total(), 2 * 3428);
        // combined is merge by value.
        let pair = a.clone().combined(a).unwrap();
        assert_eq!(pair, folded);
        // Empty iterator yields the zero table.
        let empty = ContingencyTable::merged(Arc::clone(&s), std::iter::empty()).unwrap();
        assert_eq!(empty.total(), 0);
        // Schema mismatches are rejected mid-fold.
        let other = ContingencyTable::zeros(Schema::uniform(&[2, 2]).unwrap().into_shared());
        assert!(ContingencyTable::merged(s, vec![other]).is_err());
    }

    #[test]
    fn nonzero_cells_skips_empty() {
        let mut t = ContingencyTable::zeros(schema());
        t.increment(&[1, 1, 1]).unwrap();
        assert_eq!(t.nonzero_cells().count(), 1);
        assert_eq!(t.cells().count(), 12);
    }

    #[test]
    fn nonzero_cells_come_out_in_dense_index_order() {
        let mut t = ContingencyTable::zeros(schema());
        // Observed out of index order; iteration must still be index order.
        t.increment(&[2, 0, 1]).unwrap();
        t.increment(&[0, 1, 0]).unwrap();
        t.increment(&[1, 0, 0]).unwrap();
        let cells: Vec<Vec<usize>> = t.nonzero_cells().map(|(v, _)| v).collect();
        assert_eq!(cells, vec![vec![0, 1, 0], vec![1, 0, 0], vec![2, 0, 1]]);
    }

    #[test]
    fn sparse_occupancy_survives_merge_and_serde() {
        let s = schema();
        let mut a = ContingencyTable::zeros(Arc::clone(&s));
        a.increment(&[0, 1, 0]).unwrap();
        let mut b = ContingencyTable::zeros(Arc::clone(&s));
        b.increment(&[0, 1, 0]).unwrap();
        b.increment(&[2, 0, 1]).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.count_matching(&Assignment::single(0, 0)), 2);
        assert_eq!(a.count_matching(&Assignment::single(0, 2)), 1);
        assert_eq!(a.nonzero_cells().count(), 2);
        // The wire format carries no derived state, and a round-trip
        // rebuilds the occupancy set the marginal queries walk.
        let json = serde_json::to_string(&a).unwrap();
        assert!(!json.contains("occupied"));
        let back: ContingencyTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.count_matching(&Assignment::single(0, 0)), 2);
        assert_eq!(back.nonzero_cells().count(), 2);
    }

    proptest! {
        #[test]
        fn prop_marginal_counts_sum_to_total(
            counts in proptest::collection::vec(0u64..50, 12),
            attr in 0usize..3,
        ) {
            let t = ContingencyTable::from_counts(schema(), counts).unwrap();
            let card = t.schema().cardinality(attr).unwrap();
            let sum: u64 = (0..card)
                .map(|v| t.count_matching(&Assignment::single(attr, v)))
                .sum();
            // Eq. 4/5 of the memo: summing a first-order marginal over all
            // values of the attribute recovers N.
            prop_assert_eq!(sum, t.total());
        }

        #[test]
        fn prop_second_order_consistent_with_first(
            counts in proptest::collection::vec(0u64..50, 12),
        ) {
            let t = ContingencyTable::from_counts(schema(), counts).unwrap();
            // Eq. 2: summing N^{AB}_{ij} over j gives N^A_i.
            for i in 0..3 {
                let direct = t.count_matching(&Assignment::single(0, i));
                let summed: u64 = (0..2)
                    .map(|j| t.count_matching(&Assignment::from_pairs([(0, i), (1, j)])))
                    .sum();
                prop_assert_eq!(direct, summed);
            }
        }
    }
}
