//! # pka-contingency
//!
//! The data layer of the probabilistic knowledge-acquisition system described
//! in NASA TM-88224 (*Automatic Probabilistic Knowledge Acquisition from
//! Data*, W. B. Gevarter, 1986).
//!
//! The memorandum assumes the raw observations — survey answers, telemetry,
//! simulation output — have been reduced to **contingency-table form**
//! (Appendix A of the memo): for `R` categorical attributes with `I, J, K, …`
//! possible values, a count `N_{ijk…}` is kept for every cell of the
//! attribute cross-product, and the lower-order *marginal* counts are
//! obtained by summation (Eqs. 1–6).
//!
//! This crate provides everything up to that point:
//!
//! * [`Attribute`] and [`Schema`] — the questionnaire: named attributes with
//!   named, exhaustive value lists (the memo's "made complete by adding the
//!   value *other*" convention is the caller's responsibility; helpers exist).
//! * [`Sample`] and [`Dataset`] — raw observations in attribute-tuple form
//!   (Figure 5 / Figure 6 of the memo).
//! * [`ContingencyTable`] — dense counts over the full cross-product with
//!   mixed-radix cell indexing, plus marginalisation ([`Marginal`],
//!   Figure 2 / Eqs. 1–6).
//! * [`VarSet`] and [`Assignment`] — compact descriptions of attribute
//!   subsets and value assignments on them; these are the vocabulary used by
//!   the maximum-entropy and significance crates to talk about constraints
//!   such as `N^{AC}_{12}`.
//! * A small CSV reader ([`csv`]) so realistic survey files can be ingested
//!   without external dependencies.
//!
//! ## Quick example
//!
//! ```
//! use pka_contingency::{Schema, Attribute, Dataset, VarSet};
//!
//! let schema = Schema::new(vec![
//!     Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
//!     Attribute::new("cancer", ["yes", "no"]),
//! ]).unwrap();
//!
//! let mut data = Dataset::new(schema);
//! data.push_named(&[("smoking", "smoker"), ("cancer", "yes")]).unwrap();
//! data.push_named(&[("smoking", "non-smoker"), ("cancer", "no")]).unwrap();
//!
//! let table = data.to_table();
//! assert_eq!(table.total(), 2);
//! let marginal = table.marginal(VarSet::singleton(1)); // over "cancer"
//! assert_eq!(marginal.count_by_values(&[0]), 1);       // one "yes"
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribute;
pub mod builder;
pub mod config;
pub mod csv;
pub mod dataset;
pub mod display;
pub mod error;
pub mod lattice;
pub mod marginal;
pub mod sample;
pub mod schema;
pub mod table;
pub mod varset;

pub use attribute::Attribute;
pub use config::Assignment;
pub use dataset::Dataset;
pub use error::ContingencyError;
pub use lattice::{lattice_plan, LatticeParent, LatticeStep};
pub use marginal::Marginal;
pub use sample::Sample;
pub use schema::Schema;
pub use table::ContingencyTable;
pub use varset::VarSet;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ContingencyError>;
