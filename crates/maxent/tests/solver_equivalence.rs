//! The fast solver kernel (deferred normalization, CSR incidence, scatter
//! init) must be numerically equivalent to the retained eagerly-normalised
//! reference implementation: same sweep counts, same convergence verdicts,
//! and per-cell probabilities within 1e-12 — across cold fits, warm starts,
//! zero-target constraints and boundary (non-converged) constraint sets.

use pka_contingency::{Assignment, ContingencyTable, Schema, VarSet};
use pka_maxent::solver::reference;
use pka_maxent::{
    Constraint, ConstraintSet, ConvergenceCriteria, IncidenceCache, LogLinearModel, Solver,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Per-cell tolerance between the kernel and the reference: both follow the
/// same trajectory, differing only in floating-point rounding.
const CELL_TOL: f64 = 1e-12;

/// Tolerance between the factored kernel's fixed point and the CSR kernel's.
/// The two kernels take different routes (variable elimination vs dense
/// sweeps) to the same unique maxent solution, so we compare destinations,
/// not trajectories.
const FIXED_POINT_TOL: f64 = 1e-9;

/// Runs both kernels from the same seed model and asserts sweep-for-sweep
/// equivalence plus per-cell agreement.
fn assert_kernels_match(
    criteria: ConvergenceCriteria,
    seed: &LogLinearModel,
    constraints: &ConstraintSet,
    context: &str,
) {
    let (fast, fast_report) =
        Solver::new(criteria).fit_from(seed.clone(), constraints).expect("fast kernel fit");
    let (slow, slow_report) =
        reference::fit_from(criteria, seed.clone(), constraints).expect("reference fit");
    assert_eq!(fast_report.iterations, slow_report.iterations, "{context}: sweep counts diverged");
    assert_eq!(
        fast_report.converged, slow_report.converged,
        "{context}: convergence verdicts diverged"
    );
    let fast_dense = fast.dense_probabilities();
    let slow_dense = slow.dense_probabilities();
    for (i, (a, b)) in fast_dense.iter().zip(&slow_dense).enumerate() {
        assert!(
            (a - b).abs() <= CELL_TOL,
            "{context}: cell {i} diverged: kernel {a} vs reference {b}"
        );
    }
}

/// Runs the CSR kernel and the factored (variable-elimination) kernel on the
/// same problem and asserts they reach the same fixed point: identical
/// convergence verdicts and per-cell probabilities within [`FIXED_POINT_TOL`].
/// `with_dense_ceiling(0)` forces every joint onto the factored path.
fn assert_factored_matches_csr(
    criteria: ConvergenceCriteria,
    seed: &LogLinearModel,
    constraints: &ConstraintSet,
    context: &str,
) {
    let (dense, dense_report) =
        Solver::new(criteria).fit_from(seed.clone(), constraints).expect("dense kernel fit");
    let (factored, factored_report) = Solver::new(criteria)
        .with_dense_ceiling(0)
        .fit_from(seed.clone(), constraints)
        .expect("factored kernel fit");
    assert_eq!(
        dense_report.converged, factored_report.converged,
        "{context}: convergence verdicts diverged"
    );
    assert!(
        dense_report.converged,
        "{context}: fixed-point comparison needs a converging constraint set"
    );
    let a = dense.dense_probabilities();
    let b = factored.dense_probabilities();
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert!(
            (x - y).abs() <= FIXED_POINT_TOL,
            "{context}: cell {i} fixed points diverged: dense {x} vs factored {y}"
        );
    }
}

fn correlated_table(schema: &Arc<Schema>) -> ContingencyTable {
    ContingencyTable::from_counts(Arc::clone(schema), vec![200, 0, 0, 200]).unwrap()
}

#[test]
fn zero_target_constraints_match_reference() {
    let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
    let mut constraints = ConstraintSet::new(Arc::clone(&schema));
    constraints.add(Constraint::new(Assignment::single(0, 0), 0.5).unwrap()).unwrap();
    constraints.add(Constraint::new(Assignment::single(0, 1), 0.5).unwrap()).unwrap();
    constraints
        .add(Constraint::new(Assignment::from_pairs([(0, 0), (1, 0)]), 0.0).unwrap())
        .unwrap();
    let seed = LogLinearModel::uniform(Arc::clone(&schema));
    assert_kernels_match(ConvergenceCriteria::new(), &seed, &constraints, "zero-target");
}

#[test]
fn boundary_sets_match_reference_over_the_full_budget() {
    // Perfect correlation forces two cells to zero: neither kernel
    // converges, both run the whole budget, and the near-boundary models
    // must still agree cell for cell.
    let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
    let t = correlated_table(&schema);
    let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
    constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (1, 0)])).unwrap();
    let seed = LogLinearModel::uniform(Arc::clone(&schema));
    assert_kernels_match(ConvergenceCriteria::new(), &seed, &constraints, "boundary");
}

#[test]
fn traces_match_reference_sweep_for_sweep() {
    let schema = Schema::uniform(&[3, 2, 2]).unwrap().into_shared();
    let t = ContingencyTable::from_counts(
        Arc::clone(&schema),
        vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
    )
    .unwrap();
    let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
    constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (2, 1)])).unwrap();
    let criteria = ConvergenceCriteria::new().with_trace();
    let seed = LogLinearModel::uniform(Arc::clone(&schema));
    let (_, fast) = Solver::new(criteria).fit_from(seed.clone(), &constraints).unwrap();
    let (_, slow) = reference::fit_from(criteria, seed, &constraints).unwrap();
    assert_eq!(fast.trace.len(), slow.trace.len());
    for (f, s) in fast.trace.iter().zip(&slow.trace) {
        assert_eq!(f.iteration, s.iteration);
        assert!((f.max_violation - s.max_violation).abs() <= CELL_TOL);
        assert!((f.a0 - s.a0).abs() <= CELL_TOL * s.a0.abs().max(1.0));
        for (ff, sf) in f.fitted.iter().zip(&s.fitted) {
            assert!((ff - sf).abs() <= CELL_TOL, "trace fitted diverged: {ff} vs {sf}");
        }
    }
}

#[test]
fn factored_kernel_reaches_the_csr_fixed_point() {
    let schema = Schema::uniform(&[3, 2, 2]).unwrap().into_shared();
    let t = ContingencyTable::from_counts(
        Arc::clone(&schema),
        vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
    )
    .unwrap();
    let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
    constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (2, 1)])).unwrap();
    constraints.add_from_table(&t, Assignment::from_pairs([(1, 1), (2, 0)])).unwrap();
    let seed = LogLinearModel::uniform(Arc::clone(&schema));
    // Overlapping pair constraints converge slowly; widen the sweep budget.
    let criteria = ConvergenceCriteria::new().with_max_iterations(5000);
    assert_factored_matches_csr(criteria, &seed, &constraints, "fixed cells");
}

#[test]
fn factored_kernel_handles_zero_targets_like_the_csr_kernel() {
    let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
    let mut constraints = ConstraintSet::new(Arc::clone(&schema));
    constraints.add(Constraint::new(Assignment::single(0, 0), 0.5).unwrap()).unwrap();
    constraints.add(Constraint::new(Assignment::single(0, 1), 0.5).unwrap()).unwrap();
    constraints
        .add(Constraint::new(Assignment::from_pairs([(0, 0), (1, 0)]), 0.0).unwrap())
        .unwrap();
    let seed = LogLinearModel::uniform(Arc::clone(&schema));
    assert_factored_matches_csr(ConvergenceCriteria::new(), &seed, &constraints, "zero-target");
}

#[test]
fn auto_selection_routes_through_the_factored_kernel_above_the_ceiling() {
    // A 12-cell joint with the ceiling set just below it: fit_from must take
    // the factored route and still land on the CSR fixed point.
    let schema = Schema::uniform(&[3, 2, 2]).unwrap().into_shared();
    let t = ContingencyTable::from_counts(
        Arc::clone(&schema),
        vec![30, 11, 41, 64, 62, 31, 58, 46, 78, 22, 52, 38],
    )
    .unwrap();
    let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
    constraints.add_from_table(&t, Assignment::from_pairs([(0, 2), (1, 0)])).unwrap();
    let seed = LogLinearModel::uniform(Arc::clone(&schema));
    let (dense, _) =
        Solver::new(ConvergenceCriteria::new()).fit_from(seed.clone(), &constraints).unwrap();
    let (routed, report) = Solver::new(ConvergenceCriteria::new())
        .with_dense_ceiling(11)
        .fit_from(seed, &constraints)
        .unwrap();
    assert!(report.converged);
    for (x, y) in dense.dense_probabilities().iter().zip(&routed.dense_probabilities()) {
        assert!((x - y).abs() <= FIXED_POINT_TOL);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_factored_fixed_point_matches_csr(
        counts in proptest::collection::vec(1u64..60, 12),
        extra_cell in 0usize..12,
        pair_mask in 0usize..3,
    ) {
        // Strictly positive tables converge on both kernels; the unique
        // maxent solution means their fixed points must agree ≤1e-9.
        let schema = Schema::uniform(&[3, 2, 2]).unwrap().into_shared();
        let t = ContingencyTable::from_counts(Arc::clone(&schema), counts).unwrap();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        let pairs = [[0usize, 1], [0, 2], [1, 2]];
        let vars = VarSet::from_indices(pairs[pair_mask]);
        let cell_values = schema.cell_values(extra_cell);
        constraints.add_from_table(&t, Assignment::project(vars, &cell_values)).unwrap();
        let seed = LogLinearModel::uniform(Arc::clone(&schema));
        assert_factored_matches_csr(ConvergenceCriteria::new(), &seed, &constraints, "prop");
    }

    #[test]
    fn prop_cold_fits_match_reference(
        counts in proptest::collection::vec(1u64..60, 12),
        extra_cell in 0usize..12,
        pair_mask in 0usize..3,
    ) {
        // Any strictly positive table, first-order marginals plus one
        // second-order cell on a random attribute pair.
        let schema = Schema::uniform(&[3, 2, 2]).unwrap().into_shared();
        let t = ContingencyTable::from_counts(Arc::clone(&schema), counts).unwrap();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        let pairs = [[0usize, 1], [0, 2], [1, 2]];
        let vars = VarSet::from_indices(pairs[pair_mask]);
        let cell_values = schema.cell_values(extra_cell);
        constraints.add_from_table(&t, Assignment::project(vars, &cell_values)).unwrap();
        let seed = LogLinearModel::uniform(Arc::clone(&schema));
        assert_kernels_match(ConvergenceCriteria::new(), &seed, &constraints, "cold");
    }

    #[test]
    fn prop_warm_fits_match_reference(
        counts in proptest::collection::vec(1u64..60, 12),
        shift in proptest::collection::vec(0u64..20, 12),
        extra_cell in 0usize..12,
    ) {
        // Warm start: fit the original table, perturb the counts, refit
        // both kernels from the first fit's a-values.
        let schema = Schema::uniform(&[3, 2, 2]).unwrap().into_shared();
        let t = ContingencyTable::from_counts(Arc::clone(&schema), counts.clone()).unwrap();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        let cell_values = schema.cell_values(extra_cell);
        let pair = Assignment::project(VarSet::from_indices([0, 1]), &cell_values);
        constraints.add_from_table(&t, pair.clone()).unwrap();
        let (warm_seed, _) = reference::fit_from(
            ConvergenceCriteria::new(),
            LogLinearModel::uniform(Arc::clone(&schema)),
            &constraints,
        ).unwrap();

        let shifted: Vec<u64> = counts.iter().zip(&shift).map(|(c, s)| c + s).collect();
        let t2 = ContingencyTable::from_counts(Arc::clone(&schema), shifted).unwrap();
        let mut refit = ConstraintSet::first_order_from_table(&t2).unwrap();
        refit.add_from_table(&t2, pair).unwrap();
        assert_kernels_match(ConvergenceCriteria::new(), &warm_seed, &refit, "warm");
    }

    #[test]
    fn prop_csr_cache_matches_reference_lists(
        counts in proptest::collection::vec(1u64..40, 12),
        promote in proptest::collection::vec(0usize..12, 0..4),
        truncate_after in 0usize..4,
    ) {
        // Drive a cache through rebuild → extensions → truncation →
        // re-extension and compare every CSR row with the naive per-cell
        // scan after each operation.
        let schema = Schema::uniform(&[3, 2, 2]).unwrap().into_shared();
        let t = ContingencyTable::from_counts(Arc::clone(&schema), counts).unwrap();
        let base = ConstraintSet::first_order_from_table(&t).unwrap();
        let mut cache = IncidenceCache::new();

        let check = |cache: &mut IncidenceCache, set: &ConstraintSet| {
            let expected = reference::incidence_lists(&schema, set.constraints());
            let csr = cache.ensure(&set.shared_schema(), set.constraints());
            prop_assert_eq!(csr.len(), expected.len());
            for (ci, list) in expected.iter().enumerate() {
                prop_assert_eq!(csr.list(ci), &list[..]);
            }
        };

        check(&mut cache, &base); // rebuild
        let mut grown = base.clone();
        for &cell in &promote {
            let values = schema.cell_values(cell);
            let pair = Assignment::project(VarSet::from_indices([0, 2]), &values);
            if !grown.contains(&pair) {
                grown.add_from_table(&t, pair).unwrap();
                check(&mut cache, &grown); // extension by one
            }
        }
        if truncate_after == 0 {
            check(&mut cache, &base); // truncation back to the prefix
        }
        check(&mut cache, &grown); // full hit or re-extension
    }
}
