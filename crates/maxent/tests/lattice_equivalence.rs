//! Property tests pinning the marginal lattice to the stride walk and the
//! reference full scan: for any random schema, weight vector and partial
//! assignment of order ≤ k the three evaluation paths agree to 1e-12;
//! every materialised table is a probability distribution; and varsets
//! above the cutoff order are *not* covered, so callers exercise the
//! stride-walk fallback there.

use pka_contingency::{Assignment, Schema, VarSet};
use pka_maxent::{FactorGraph, JointDistribution, LogLinearModel, MarginalLattice};
use proptest::prelude::*;
use std::sync::Arc;

/// Tolerance between the factored paths and the dense ground truth.
const FACTORED_TOL: f64 = 1e-9;

/// Reference implementation: scan every cell and test membership.
fn probability_by_scan(joint: &JointDistribution, assignment: &Assignment) -> f64 {
    joint
        .schema()
        .cells()
        .zip(joint.probabilities().iter())
        .filter(|(values, _)| assignment.matches(values))
        .map(|(_, &p)| p)
        .sum()
}

proptest! {
    #[test]
    fn prop_lattice_agrees_with_stride_walk_and_full_scan(
        cards in proptest::collection::vec(1usize..4, 1..5),
        weights in proptest::collection::vec(0.0f64..10.0, 128),
        k in 0usize..4,
        mask in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let schema = Schema::uniform(&cards).unwrap().into_shared();
        let n = schema.cell_count();
        let joint = JointDistribution::from_unnormalized(
            Arc::clone(&schema),
            weights.into_iter().cycle().take(n).collect(),
        );
        let lattice = MarginalLattice::build(&joint, k);
        let vars = VarSet::from_bits(mask).intersection(schema.all_vars());
        let cell = (seed as usize) % n;
        let a = Assignment::project(vars, &schema.cell_values(cell));
        match lattice.probability(&a) {
            Some(p) => {
                // Covered ⇒ the varset is within the cutoff, and all three
                // paths agree.
                prop_assert!(a.order() <= lattice.max_order());
                prop_assert!((p - joint.probability(&a)).abs() < 1e-12);
                prop_assert!((p - probability_by_scan(&joint, &a)).abs() < 1e-12);
            }
            None => {
                // Uncovered ⇒ strictly above the cutoff: the fallback path
                // (the stride walk) is what answers these.
                prop_assert!(a.order() > lattice.max_order());
                prop_assert!(!lattice.covers(a.vars()));
            }
        }
        // The empty assignment is always covered and sums to 1.
        let total = lattice.probability(&Assignment::empty()).unwrap();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prop_every_lattice_table_is_a_distribution(
        cards in proptest::collection::vec(1usize..4, 1..5),
        weights in proptest::collection::vec(0.0f64..10.0, 128),
        k in 0usize..4,
    ) {
        let schema = Schema::uniform(&cards).unwrap().into_shared();
        let n = schema.cell_count();
        let joint = JointDistribution::from_unnormalized(
            Arc::clone(&schema),
            weights.into_iter().cycle().take(n).collect(),
        );
        let lattice = MarginalLattice::build(&joint, k);
        // All C(R, ≤k) tables are materialised …
        let expected: usize = (0..=k.min(schema.len()))
            .map(|m| schema.all_vars().subsets_of_size(m).len())
            .sum();
        prop_assert_eq!(lattice.table_count(), expected);
        // … and each one sums to 1 with non-negative cells.
        for m in 0..=k.min(schema.len()) {
            for vars in schema.all_vars().subsets_of_size(m) {
                let table = lattice.table(vars).unwrap();
                prop_assert_eq!(table.vars(), vars);
                prop_assert!(table.probabilities().iter().all(|&p| p >= 0.0));
                let total: f64 = table.probabilities().iter().sum();
                prop_assert!((total - 1.0).abs() < 1e-9, "table {} sums to {}", vars, total);
            }
        }
    }

    #[test]
    fn prop_fallback_is_exercised_above_the_cutoff(
        cards in proptest::collection::vec(2usize..4, 3..5),
        seed in any::<u64>(),
    ) {
        // k = 1 on a ≥3-attribute schema: every pairwise query must miss
        // the lattice and be answerable by the stride walk.
        let schema = Schema::uniform(&cards).unwrap().into_shared();
        let joint = JointDistribution::uniform(Arc::clone(&schema));
        let lattice = MarginalLattice::build(&joint, 1);
        let cell = (seed as usize) % schema.cell_count();
        let pair = VarSet::from_indices([0, 1]);
        let a = Assignment::project(pair, &schema.cell_values(cell));
        prop_assert_eq!(lattice.probability(&a), None);
        // The fallback still answers.
        let walked = joint.probability(&a);
        prop_assert!((walked - probability_by_scan(&joint, &a)).abs() < 1e-12);
    }

    /// Random log-linear models: `FactorGraph` marginals and conditionals,
    /// both lattice builds (dense and factored), and the dense joint must
    /// all agree on every marginal cell of order ≤ 2.
    #[test]
    fn prop_graph_lattice_and_joint_agree(
        factor_values in proptest::collection::vec(0.05f64..8.0, 5),
        a0 in 0.2f64..3.0,
    ) {
        let schema = Schema::uniform(&[3, 2, 2]).unwrap().into_shared();
        let factors = vec![
            (Assignment::single(0, 1), factor_values[0]),
            (Assignment::single(1, 0), factor_values[1]),
            (Assignment::single(2, 1), factor_values[2]),
            (Assignment::from_pairs([(0, 0), (1, 1)]), factor_values[3]),
            (Assignment::from_pairs([(1, 0), (2, 0)]), factor_values[4]),
        ];
        let mut model =
            LogLinearModel::from_factors(Arc::clone(&schema), a0, factors).unwrap();
        model.normalize().unwrap();

        let joint = model.to_joint();
        let graph = FactorGraph::from_model(&model);
        let from_joint = MarginalLattice::build(&joint, 2);
        let from_graph = MarginalLattice::build_factored(&graph, 2);

        for bits in 1u32..(1 << schema.len()) {
            let vars = VarSet::from_bits(bits);
            if vars.len() > 2 {
                continue;
            }
            // Whole-table comparison: elimination vs both lattice builds.
            let table = graph.marginal(vars);
            let dense_table = from_joint.table(vars).expect("covered");
            let factored_table = from_graph.table(vars).expect("covered");
            for ((g, d), f) in table
                .iter()
                .zip(dense_table.probabilities())
                .zip(factored_table.probabilities())
            {
                prop_assert!((g - d).abs() <= FACTORED_TOL, "graph {} vs dense lattice {}", g, d);
                prop_assert!((g - f).abs() <= FACTORED_TOL, "graph {} vs factored lattice {}", g, f);
            }
            // Cell by cell against the dense joint's stride walk.
            for values in schema.configurations(vars) {
                let probe = Assignment::from_pairs(vars.iter().zip(values.iter().copied()));
                let truth = joint.probability(&probe);
                prop_assert!((graph.probability(&probe) - truth).abs() <= FACTORED_TOL);
                prop_assert!(
                    (from_joint.probability(&probe).unwrap() - truth).abs() <= FACTORED_TOL
                );
                prop_assert!(
                    (from_graph.probability(&probe).unwrap() - truth).abs() <= FACTORED_TOL
                );
            }
        }

        // Conditionals p(attr0 = v | attr2 = w): elimination vs the joint.
        for v in 0..3usize {
            for w in 0..2usize {
                let target = Assignment::single(0, v);
                let given = Assignment::single(2, w);
                let via_graph = graph.conditional(&target, &given).unwrap();
                let via_joint = joint.conditional(&target, &given).unwrap();
                prop_assert!(
                    (via_graph - via_joint).abs() <= FACTORED_TOL,
                    "conditional diverged: {} vs {}", via_graph, via_joint
                );
            }
        }
    }

    /// Varying schema shapes: the factored lattice build must match the
    /// dense build table-for-table at every planned varset and order.
    #[test]
    fn prop_factored_lattice_build_matches_dense_build(
        shape_pick in 0usize..3,
        factor_values in proptest::collection::vec(0.1f64..5.0, 3),
        order in 1usize..3,
    ) {
        let shapes: [&[usize]; 3] = [&[2, 2, 2, 2], &[3, 3, 2], &[4, 2, 3]];
        let cards = shapes[shape_pick];
        let schema = Schema::uniform(cards).unwrap().into_shared();
        let factors = vec![
            (Assignment::single(0, 0), factor_values[0]),
            (Assignment::single(cards.len() - 1, 1), factor_values[1]),
            (Assignment::from_pairs([(0, 1), (1, 0)]), factor_values[2]),
        ];
        let mut model =
            LogLinearModel::from_factors(Arc::clone(&schema), 1.0, factors).unwrap();
        model.normalize().unwrap();

        let joint = model.to_joint();
        let graph = FactorGraph::from_model(&model);
        let dense = MarginalLattice::build(&joint, order);
        let factored = MarginalLattice::build_factored(&graph, order);
        prop_assert_eq!(dense.table_count(), factored.table_count());
        prop_assert_eq!(dense.total_cells(), factored.total_cells());

        for bits in 0u32..(1 << cards.len()) {
            let vars = VarSet::from_bits(bits);
            prop_assert_eq!(dense.covers(vars), factored.covers(vars));
            let (Some(a), Some(b)) = (dense.table(vars), factored.table(vars)) else {
                continue;
            };
            for (x, y) in a.probabilities().iter().zip(b.probabilities()) {
                prop_assert!((x - y).abs() <= FACTORED_TOL, "table {}: {} vs {}", vars, x, y);
            }
        }
    }
}
