//! Property tests pinning the marginal lattice to the stride walk and the
//! reference full scan: for any random schema, weight vector and partial
//! assignment of order ≤ k the three evaluation paths agree to 1e-12;
//! every materialised table is a probability distribution; and varsets
//! above the cutoff order are *not* covered, so callers exercise the
//! stride-walk fallback there.

use pka_contingency::{Assignment, Schema, VarSet};
use pka_maxent::{JointDistribution, MarginalLattice};
use proptest::prelude::*;
use std::sync::Arc;

/// Reference implementation: scan every cell and test membership.
fn probability_by_scan(joint: &JointDistribution, assignment: &Assignment) -> f64 {
    joint
        .schema()
        .cells()
        .zip(joint.probabilities().iter())
        .filter(|(values, _)| assignment.matches(values))
        .map(|(_, &p)| p)
        .sum()
}

proptest! {
    #[test]
    fn prop_lattice_agrees_with_stride_walk_and_full_scan(
        cards in proptest::collection::vec(1usize..4, 1..5),
        weights in proptest::collection::vec(0.0f64..10.0, 128),
        k in 0usize..4,
        mask in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let schema = Schema::uniform(&cards).unwrap().into_shared();
        let n = schema.cell_count();
        let joint = JointDistribution::from_unnormalized(
            Arc::clone(&schema),
            weights.into_iter().cycle().take(n).collect(),
        );
        let lattice = MarginalLattice::build(&joint, k);
        let vars = VarSet::from_bits(mask).intersection(schema.all_vars());
        let cell = (seed as usize) % n;
        let a = Assignment::project(vars, &schema.cell_values(cell));
        match lattice.probability(&a) {
            Some(p) => {
                // Covered ⇒ the varset is within the cutoff, and all three
                // paths agree.
                prop_assert!(a.order() <= lattice.max_order());
                prop_assert!((p - joint.probability(&a)).abs() < 1e-12);
                prop_assert!((p - probability_by_scan(&joint, &a)).abs() < 1e-12);
            }
            None => {
                // Uncovered ⇒ strictly above the cutoff: the fallback path
                // (the stride walk) is what answers these.
                prop_assert!(a.order() > lattice.max_order());
                prop_assert!(!lattice.covers(a.vars()));
            }
        }
        // The empty assignment is always covered and sums to 1.
        let total = lattice.probability(&Assignment::empty()).unwrap();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prop_every_lattice_table_is_a_distribution(
        cards in proptest::collection::vec(1usize..4, 1..5),
        weights in proptest::collection::vec(0.0f64..10.0, 128),
        k in 0usize..4,
    ) {
        let schema = Schema::uniform(&cards).unwrap().into_shared();
        let n = schema.cell_count();
        let joint = JointDistribution::from_unnormalized(
            Arc::clone(&schema),
            weights.into_iter().cycle().take(n).collect(),
        );
        let lattice = MarginalLattice::build(&joint, k);
        // All C(R, ≤k) tables are materialised …
        let expected: usize = (0..=k.min(schema.len()))
            .map(|m| schema.all_vars().subsets_of_size(m).len())
            .sum();
        prop_assert_eq!(lattice.table_count(), expected);
        // … and each one sums to 1 with non-negative cells.
        for m in 0..=k.min(schema.len()) {
            for vars in schema.all_vars().subsets_of_size(m) {
                let table = lattice.table(vars).unwrap();
                prop_assert_eq!(table.vars(), vars);
                prop_assert!(table.probabilities().iter().all(|&p| p >= 0.0));
                let total: f64 = table.probabilities().iter().sum();
                prop_assert!((total - 1.0).abs() < 1e-9, "table {} sums to {}", vars, total);
            }
        }
    }

    #[test]
    fn prop_fallback_is_exercised_above_the_cutoff(
        cards in proptest::collection::vec(2usize..4, 3..5),
        seed in any::<u64>(),
    ) {
        // k = 1 on a ≥3-attribute schema: every pairwise query must miss
        // the lattice and be answerable by the stride walk.
        let schema = Schema::uniform(&cards).unwrap().into_shared();
        let joint = JointDistribution::uniform(Arc::clone(&schema));
        let lattice = MarginalLattice::build(&joint, 1);
        let cell = (seed as usize) % schema.cell_count();
        let pair = VarSet::from_indices([0, 1]);
        let a = Assignment::project(pair, &schema.cell_values(cell));
        prop_assert_eq!(lattice.probability(&a), None);
        // The fallback still answers.
        let walked = joint.probability(&a);
        prop_assert!((walked - probability_by_scan(&joint, &a)).abs() < 1e-12);
    }
}
