//! Constraints: the "known probabilities" the maximum-entropy distribution
//! must honour.
//!
//! A constraint fixes the probability of one marginal cell — `p^A_i` for a
//! first-order constraint, `p^{AC}_{ik}` for a second-order one, and so on.
//! The memo always constrains **all** first-order marginals (Eq. 48) and
//! adds higher-order cells one at a time as the significance test promotes
//! them.

use crate::error::MaxEntError;
use crate::Result;
use pka_contingency::{Assignment, ContingencyTable, Schema};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A single known probability: `P(assignment) = probability`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// The marginal cell being constrained.
    pub assignment: Assignment,
    /// Its target probability.
    pub probability: f64,
}

impl Constraint {
    /// Creates a constraint, validating the probability.
    pub fn new(assignment: Assignment, probability: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&probability) || !probability.is_finite() {
            return Err(MaxEntError::InvalidProbability {
                value: probability,
                constraint: format!("{assignment:?}"),
            });
        }
        Ok(Self { assignment, probability })
    }

    /// The order of the constraint (number of attributes it mentions).
    pub fn order(&self) -> usize {
        self.assignment.order()
    }
}

/// An ordered collection of constraints over one schema.
///
/// Insertion order is preserved — the solver cycles through constraints in
/// this order, and the acquisition loop's reports list them in the order
/// they were discovered.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConstraintSet {
    schema: Arc<Schema>,
    constraints: Vec<Constraint>,
    #[serde(skip)]
    index: HashMap<Assignment, usize>,
}

impl ConstraintSet {
    /// Creates an empty constraint set over a schema.
    pub fn new(schema: Arc<Schema>) -> Self {
        Self { schema, constraints: Vec::new(), index: HashMap::new() }
    }

    /// Creates a constraint set holding every first-order marginal
    /// probability of a contingency table (Eq. 48): the starting point of
    /// the acquisition procedure.
    pub fn first_order_from_table(table: &ContingencyTable) -> Result<Self> {
        let schema = table.shared_schema();
        let mut set = Self::new(Arc::clone(&schema));
        for attr in 0..schema.len() {
            for value in 0..schema.cardinality(attr)? {
                let a = Assignment::single(attr, value);
                let p = table.frequency(&a);
                set.add(Constraint::new(a, p)?)?;
            }
        }
        Ok(set)
    }

    /// The schema the constraints refer to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The schema as a shareable handle.
    pub fn shared_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Adds a constraint.  Re-adding the same cell with the same probability
    /// is a no-op; a different probability is an error.
    pub fn add(&mut self, constraint: Constraint) -> Result<()> {
        // Validate the assignment against the schema up front.
        Assignment::checked_new(
            &self.schema,
            constraint.assignment.vars(),
            constraint.assignment.values().to_vec(),
        )?;
        if let Some(&i) = self.index.get(&constraint.assignment) {
            let existing = self.constraints[i].probability;
            if (existing - constraint.probability).abs() > 1e-12 {
                return Err(MaxEntError::ConflictingConstraint {
                    cell: constraint.assignment.describe(&self.schema),
                    existing,
                    new: constraint.probability,
                });
            }
            return Ok(());
        }
        self.index.insert(constraint.assignment.clone(), self.constraints.len());
        self.constraints.push(constraint);
        Ok(())
    }

    /// Adds the empirical probability of a cell taken from a table — the way
    /// the acquisition loop promotes a significant cell to a constraint.
    pub fn add_from_table(
        &mut self,
        table: &ContingencyTable,
        assignment: Assignment,
    ) -> Result<()> {
        let p = table.frequency(&assignment);
        self.add(Constraint::new(assignment, p)?)
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True if no constraints are present.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The constraints in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The target probability registered for a cell, if any.
    pub fn probability_of(&self, assignment: &Assignment) -> Option<f64> {
        self.index.get(assignment).map(|&i| self.constraints[i].probability)
    }

    /// True if the cell is constrained.
    pub fn contains(&self, assignment: &Assignment) -> bool {
        self.index.contains_key(assignment)
    }

    /// The constraints of exactly the given order.
    pub fn of_order(&self, order: usize) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter().filter(move |c| c.order() == order)
    }

    /// The constraints of order two and above (the "discovered" knowledge;
    /// first-order marginals are considered background).
    pub fn higher_order(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter().filter(|c| c.order() >= 2)
    }

    /// The highest constraint order present (0 for an empty set).
    pub fn max_order(&self) -> usize {
        self.constraints.iter().map(Constraint::order).max().unwrap_or(0)
    }

    /// Assignments of all higher-order constraints, in insertion order.
    /// Used as the "known constraints" input of the significance bounds.
    pub fn higher_order_assignments(&self) -> Vec<Assignment> {
        self.higher_order().map(|c| c.assignment.clone()).collect()
    }

    /// Quick feasibility checks that catch the common inconsistencies before
    /// the solver runs:
    ///
    /// * the first-order probabilities of every fully-constrained attribute
    ///   must sum to 1 (within `tol`);
    /// * a higher-order cell must not exceed any of its constrained
    ///   marginals.
    pub fn check_feasibility(&self, tol: f64) -> Result<()> {
        // Per-attribute first-order sums.
        for attr in 0..self.schema.len() {
            let card = self.schema.cardinality(attr)?;
            let mut sum = 0.0;
            let mut count = 0;
            for v in 0..card {
                if let Some(p) = self.probability_of(&Assignment::single(attr, v)) {
                    sum += p;
                    count += 1;
                }
            }
            if count == card && (sum - 1.0).abs() > tol {
                return Err(MaxEntError::InfeasibleConstraints {
                    reason: format!(
                        "first-order probabilities of attribute {} sum to {sum:.6}, not 1",
                        self.schema.attribute(attr)?.name()
                    ),
                });
            }
        }
        // Higher-order cells vs. their constrained marginals.
        for c in self.higher_order() {
            for sub_size in 1..c.order() {
                for sub in c.assignment.vars().subsets_of_size(sub_size) {
                    let projected = c.assignment.restrict(sub);
                    if let Some(marginal_p) = self.probability_of(&projected) {
                        if c.probability > marginal_p + tol {
                            return Err(MaxEntError::InfeasibleConstraints {
                                reason: format!(
                                    "cell {} has probability {:.6} exceeding its marginal {} = {:.6}",
                                    c.assignment.describe(&self.schema),
                                    c.probability,
                                    projected.describe(&self.schema),
                                    marginal_p
                                ),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Rebuilds the internal index; needed after deserialisation (the index
    /// is not serialised).
    pub fn rebuild_index(&mut self) {
        self.index =
            self.constraints.iter().enumerate().map(|(i, c)| (c.assignment.clone(), i)).collect();
    }
}

impl PartialEq for ConstraintSet {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.constraints == other.constraints
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::Attribute;

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    #[test]
    fn constraint_validation() {
        let a = Assignment::single(0, 0);
        assert!(Constraint::new(a.clone(), 0.5).is_ok());
        assert!(Constraint::new(a.clone(), -0.1).is_err());
        assert!(Constraint::new(a.clone(), 1.5).is_err());
        assert!(Constraint::new(a, f64::NAN).is_err());
    }

    #[test]
    fn first_order_from_table_matches_eq_48() {
        let t = paper_table();
        let set = ConstraintSet::first_order_from_table(&t).unwrap();
        // 3 + 2 + 2 first-order cells.
        assert_eq!(set.len(), 7);
        assert_eq!(set.max_order(), 1);
        let p = set.probability_of(&Assignment::single(0, 0)).unwrap();
        assert!((p - 1290.0 / 3428.0).abs() < 1e-12); // p^A_1 = .376
        let p = set.probability_of(&Assignment::single(1, 0)).unwrap();
        assert!((p - 433.0 / 3428.0).abs() < 1e-12); // p^B_1 = .126
        assert!(set.check_feasibility(1e-9).is_ok());
        assert_eq!(set.higher_order().count(), 0);
    }

    #[test]
    fn add_rejects_conflicts_and_accepts_duplicates() {
        let t = paper_table();
        let mut set = ConstraintSet::first_order_from_table(&t).unwrap();
        let cell = Assignment::from_pairs([(0, 0), (2, 1)]);
        set.add(Constraint::new(cell.clone(), 0.219).unwrap()).unwrap();
        assert_eq!(set.len(), 8);
        // Same probability again: no-op.
        set.add(Constraint::new(cell.clone(), 0.219).unwrap()).unwrap();
        assert_eq!(set.len(), 8);
        // Different probability: conflict.
        let err = set.add(Constraint::new(cell.clone(), 0.3).unwrap());
        assert!(matches!(err, Err(MaxEntError::ConflictingConstraint { .. })));
        assert!(set.contains(&cell));
        assert_eq!(set.higher_order_assignments(), vec![cell]);
    }

    #[test]
    fn add_rejects_out_of_schema_cells() {
        let t = paper_table();
        let mut set = ConstraintSet::new(t.shared_schema());
        let bad = Assignment::single(0, 9);
        assert!(set.add(Constraint::new(bad, 0.1).unwrap()).is_err());
        let bad_attr = Assignment::single(7, 0);
        assert!(set.add(Constraint::new(bad_attr, 0.1).unwrap()).is_err());
    }

    #[test]
    fn add_from_table_uses_empirical_frequency() {
        let t = paper_table();
        let mut set = ConstraintSet::first_order_from_table(&t).unwrap();
        let cell = Assignment::from_pairs([(0, 0), (2, 1)]);
        set.add_from_table(&t, cell.clone()).unwrap();
        let p = set.probability_of(&cell).unwrap();
        assert!((p - 750.0 / 3428.0).abs() < 1e-12); // the memo's 0.219
    }

    #[test]
    fn feasibility_detects_bad_first_order_sums() {
        let t = paper_table();
        let mut set = ConstraintSet::new(t.shared_schema());
        set.add(Constraint::new(Assignment::single(1, 0), 0.7).unwrap()).unwrap();
        set.add(Constraint::new(Assignment::single(1, 1), 0.7).unwrap()).unwrap();
        assert!(matches!(
            set.check_feasibility(1e-6),
            Err(MaxEntError::InfeasibleConstraints { .. })
        ));
    }

    #[test]
    fn feasibility_detects_cell_exceeding_marginal() {
        let t = paper_table();
        let mut set = ConstraintSet::first_order_from_table(&t).unwrap();
        // p^B_1 = .126 but we claim p^AB_11 = .2 > .126.
        let cell = Assignment::from_pairs([(0, 0), (1, 0)]);
        set.add(Constraint::new(cell, 0.2).unwrap()).unwrap();
        assert!(matches!(
            set.check_feasibility(1e-6),
            Err(MaxEntError::InfeasibleConstraints { .. })
        ));
    }

    #[test]
    fn of_order_filters() {
        let t = paper_table();
        let mut set = ConstraintSet::first_order_from_table(&t).unwrap();
        set.add_from_table(&t, Assignment::from_pairs([(0, 0), (2, 1)])).unwrap();
        assert_eq!(set.of_order(1).count(), 7);
        assert_eq!(set.of_order(2).count(), 1);
        assert_eq!(set.of_order(3).count(), 0);
        assert_eq!(set.max_order(), 2);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let t = paper_table();
        let mut set = ConstraintSet::first_order_from_table(&t).unwrap();
        set.index.clear();
        assert!(set.probability_of(&Assignment::single(0, 0)).is_none());
        set.rebuild_index();
        assert!(set.probability_of(&Assignment::single(0, 0)).is_some());
    }
}
