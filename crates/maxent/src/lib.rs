//! # pka-maxent
//!
//! The maximum-entropy modelling layer of NASA TM-88224.
//!
//! The memo estimates the joint probability distribution of the attributes
//! as the distribution of **maximum entropy** (Eq. 7) subject to a set of
//! *constraints* — known probabilities of marginal cells.  Lagrange duality
//! (Eqs. 8–13) shows the solution has a product form
//!
//! ```text
//! p_{ijk…} = a0 · a_i · a_j · a_k · a_{ij} · …
//! ```
//!
//! with one multiplier ("a-value") per constraint.  This crate provides:
//!
//! * [`Constraint`] / [`ConstraintSet`] — the known probabilities: always
//!   the first-order marginals, plus whatever higher-order cells the
//!   significance machinery promotes.
//! * [`LogLinearModel`] — the a-value product form, the memo's "general
//!   formula for calculating any probability relation associated with the
//!   data".
//! * [`solver`] — the iterative procedure of Figure 4 / Table 2 that
//!   computes the a-values from the constraints (a cyclic multiplicative
//!   update, the general form of the memo's hand-derived iteration in
//!   Eqs. 75–87).
//! * [`elimination`] — the Appendix-B sum-of-products evaluation: marginal
//!   probabilities computed directly from the factors by variable
//!   elimination, never materialising the full joint.
//! * [`JointDistribution`], [`entropy`], [`metrics`] — dense distributions,
//!   entropy / divergence / log-loss utilities used by the evaluation
//!   harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraint;
pub mod convergence;
pub mod elimination;
pub mod entropy;
pub mod error;
pub mod joint;
pub mod lattice;
pub mod metrics;
pub mod model;
pub mod solver;

pub use constraint::{Constraint, ConstraintSet};
pub use convergence::{ConvergenceCriteria, IterationRecord, SolveReport};
pub use elimination::FactorGraph;
pub use error::MaxEntError;
pub use joint::JointDistribution;
pub use lattice::{MarginalLattice, MarginalTable, DEFAULT_LATTICE_ORDER};
pub use model::LogLinearModel;
pub use solver::{
    fit, fit_with_initial, CacheStats, CsrIncidence, IncidenceCache, Solver, DEFAULT_DENSE_CEILING,
};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MaxEntError>;
