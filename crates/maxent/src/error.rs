//! Error type for the maximum-entropy layer.

use pka_contingency::ContingencyError;
use std::fmt;

/// Errors produced while building constraints or fitting models.
#[derive(Debug, Clone, PartialEq)]
pub enum MaxEntError {
    /// A constraint probability was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// The offending value.
        value: f64,
        /// Which constraint it was attached to (human-readable).
        constraint: String,
    },
    /// Two constraints over the same cell were given different target
    /// probabilities.
    ConflictingConstraint {
        /// Human-readable description of the cell.
        cell: String,
        /// The probability already registered.
        existing: f64,
        /// The probability that conflicted with it.
        new: f64,
    },
    /// The constraints cannot all be satisfied by any distribution (e.g. a
    /// cell constrained above its marginal, or first-order marginals of an
    /// attribute not summing to one).
    InfeasibleConstraints {
        /// Explanation of the inconsistency detected.
        reason: String,
    },
    /// The iterative solver exhausted its iteration budget before reaching
    /// the requested tolerance.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// The worst remaining violation of a constraint.
        max_violation: f64,
        /// The tolerance that was requested.
        tolerance: f64,
    },
    /// A query mentioned attributes or values outside the schema.
    Data(ContingencyError),
    /// A conditional query's conditioning event has zero probability under
    /// the model.
    ZeroProbabilityEvidence {
        /// Human-readable description of the evidence.
        evidence: String,
    },
}

impl fmt::Display for MaxEntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidProbability { value, constraint } => {
                write!(f, "invalid probability {value} for constraint {constraint}")
            }
            Self::ConflictingConstraint { cell, existing, new } => write!(
                f,
                "conflicting constraints for cell {cell}: already {existing}, now {new}"
            ),
            Self::InfeasibleConstraints { reason } => {
                write!(f, "constraints are infeasible: {reason}")
            }
            Self::NotConverged { iterations, max_violation, tolerance } => write!(
                f,
                "solver did not converge after {iterations} iterations (max violation {max_violation:.3e} > tolerance {tolerance:.3e})"
            ),
            Self::Data(e) => write!(f, "data error: {e}"),
            Self::ZeroProbabilityEvidence { evidence } => {
                write!(f, "conditioning event has zero probability: {evidence}")
            }
        }
    }
}

impl std::error::Error for MaxEntError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ContingencyError> for MaxEntError {
    fn from(e: ContingencyError) -> Self {
        Self::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let variants = vec![
            MaxEntError::InvalidProbability { value: 2.0, constraint: "p(A=1)".into() },
            MaxEntError::ConflictingConstraint { cell: "A=1".into(), existing: 0.2, new: 0.3 },
            MaxEntError::InfeasibleConstraints { reason: "sums exceed one".into() },
            MaxEntError::NotConverged { iterations: 10, max_violation: 0.1, tolerance: 1e-9 },
            MaxEntError::Data(ContingencyError::EmptySchema),
            MaxEntError::ZeroProbabilityEvidence { evidence: "B=2".into() },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn from_contingency_error_preserves_source() {
        use std::error::Error;
        let e: MaxEntError = ContingencyError::EmptySchema.into();
        assert!(e.source().is_some());
    }
}
