//! Convergence control and per-iteration reporting for the solver.
//!
//! Table 2 of the memo is literally a convergence trace — the a-values after
//! each pass of the iteration that incorporates the `N^{AC}_{12}` constraint.
//! [`SolveReport`] carries the same information for any fit.

use pka_contingency::Assignment;
use serde::{Deserialize, Serialize};

/// When to stop the iterative scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceCriteria {
    /// Maximum number of full sweeps over the constraint set.
    pub max_iterations: usize,
    /// Stop once no constraint's fitted probability differs from its target
    /// by more than this.
    pub tolerance: f64,
    /// Record a full [`IterationRecord`] per sweep (needed to regenerate
    /// Table 2; off by default to keep large fits cheap).
    pub record_trace: bool,
    /// If `true`, exhausting the iteration budget is an error
    /// ([`crate::MaxEntError::NotConverged`]).  If `false` (the default) the
    /// best model found so far is returned with `converged = false` in the
    /// report — constraint sets whose maximum-entropy solution sits on the
    /// boundary of the simplex (cells forced to zero by other constraints)
    /// only converge in the limit, and the near-boundary fit is still the
    /// right answer for them.
    pub fail_on_max_iterations: bool,
}

impl ConvergenceCriteria {
    /// Default criteria: 200 sweeps, tolerance 1e-10, no trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Same criteria with the per-iteration trace enabled.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Sets the tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the iteration budget.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Makes exhausting the iteration budget an error instead of a
    /// best-effort result.
    pub fn strict(mut self) -> Self {
        self.fail_on_max_iterations = true;
        self
    }
}

impl Default for ConvergenceCriteria {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            tolerance: 1e-10,
            record_trace: false,
            fail_on_max_iterations: false,
        }
    }
}

/// The state after one sweep of the solver.
///
/// The kernel renormalises once per sweep and gathers every constraint's
/// fitted probability in a single pass; a record is that pass's output
/// (plus the factor snapshot), so tracing adds no re-summing of incidence
/// lists beyond what the convergence check already computed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// 1-based sweep number.
    pub iteration: usize,
    /// Largest absolute difference between a constraint's target and the
    /// probability the model currently assigns it.
    pub max_violation: f64,
    /// The multiplier ("a-value") of every constraint after the sweep, in
    /// constraint order, plus the normaliser `a0` reported separately.
    pub factors: Vec<(Assignment, f64)>,
    /// The normalisation factor `a0` after the sweep.
    pub a0: f64,
    /// The model's current probability for every constraint cell, in
    /// constraint order (the column the memo tracks in Table 2 is the fitted
    /// `p^{AC}_{12}` converging to 0.219).
    pub fitted: Vec<f64>,
}

/// Summary of a fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveReport {
    /// Number of sweeps performed.
    pub iterations: usize,
    /// Largest remaining constraint violation.
    pub max_violation: f64,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
    /// Per-sweep records (empty unless tracing was requested).
    pub trace: Vec<IterationRecord>,
}

impl SolveReport {
    /// The trace entry for the final sweep, if tracing was on.
    pub fn last_record(&self) -> Option<&IterationRecord> {
        self.trace.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_compose() {
        let c =
            ConvergenceCriteria::new().with_tolerance(1e-6).with_max_iterations(50).with_trace();
        assert_eq!(c.max_iterations, 50);
        assert_eq!(c.tolerance, 1e-6);
        assert!(c.record_trace);
        let d = ConvergenceCriteria::default();
        assert!(!d.record_trace);
        assert_eq!(d.max_iterations, 200);
    }

    #[test]
    fn report_last_record() {
        let rec = IterationRecord {
            iteration: 1,
            max_violation: 0.5,
            factors: vec![],
            a0: 1.0,
            fitted: vec![],
        };
        let report = SolveReport {
            iterations: 1,
            max_violation: 0.5,
            converged: false,
            trace: vec![rec.clone()],
        };
        assert_eq!(report.last_record(), Some(&rec));
        let empty =
            SolveReport { iterations: 0, max_violation: 0.0, converged: true, trace: vec![] };
        assert!(empty.last_record().is_none());
    }
}
