//! Dense joint probability distributions over a schema's cells.
//!
//! A [`JointDistribution`] is the fully-materialised counterpart of the
//! factored [`LogLinearModel`](crate::LogLinearModel): one probability per
//! cell.  It is the representation used for entropy/divergence computations,
//! for sampling synthetic data, and as the reference the factored model is
//! checked against in tests.

use crate::entropy;
use crate::error::MaxEntError;
use crate::Result;
use pka_contingency::{Assignment, ContingencyTable, Schema};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A dense probability distribution over the cells of a schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointDistribution {
    schema: Arc<Schema>,
    probabilities: Vec<f64>,
}

impl JointDistribution {
    /// Builds a distribution from explicit cell probabilities; the vector
    /// must have one entry per cell, all non-negative, summing to 1 within
    /// `1e-6`.
    pub fn from_probabilities(schema: Arc<Schema>, probabilities: Vec<f64>) -> Result<Self> {
        if probabilities.len() != schema.cell_count() {
            return Err(MaxEntError::Data(pka_contingency::ContingencyError::CountLength {
                got: probabilities.len(),
                expected: schema.cell_count(),
            }));
        }
        let mut sum = 0.0;
        for &p in &probabilities {
            if !(p >= 0.0) || !p.is_finite() {
                return Err(MaxEntError::InvalidProbability {
                    value: p,
                    constraint: "joint distribution cell".to_string(),
                });
            }
            sum += p;
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Err(MaxEntError::InfeasibleConstraints {
                reason: format!("cell probabilities sum to {sum}, not 1"),
            });
        }
        Ok(Self { schema, probabilities })
    }

    /// Builds a distribution from non-negative weights by normalising them.
    /// All-zero weights produce the uniform distribution.
    pub fn from_unnormalized(schema: Arc<Schema>, mut weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), schema.cell_count(), "one weight per cell required");
        let sum: f64 = weights.iter().copied().filter(|w| w.is_finite() && *w > 0.0).sum();
        if sum <= 0.0 {
            let n = weights.len() as f64;
            weights.iter_mut().for_each(|w| *w = 1.0 / n);
        } else {
            weights.iter_mut().for_each(|w| {
                if !w.is_finite() || *w < 0.0 {
                    *w = 0.0;
                } else {
                    *w /= sum;
                }
            });
        }
        Self { schema, probabilities: weights }
    }

    /// The uniform distribution over the schema's cells.
    pub fn uniform(schema: Arc<Schema>) -> Self {
        let n = schema.cell_count();
        Self { schema, probabilities: vec![1.0 / n as f64; n] }
    }

    /// The empirical (relative-frequency) distribution of a contingency
    /// table.  An empty table yields the uniform distribution.
    pub fn empirical(table: &ContingencyTable) -> Self {
        let schema = table.shared_schema();
        if table.total() == 0 {
            return Self::uniform(schema);
        }
        Self { probabilities: table.empirical_distribution(), schema }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The schema as a shareable handle.
    pub fn shared_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// The cell probabilities in dense-index order.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Probability of one full cell assignment.
    pub fn probability_of_values(&self, values: &[usize]) -> f64 {
        self.probabilities[self.schema.cell_index(values)]
    }

    /// Probability of a marginal cell (partial assignment): sum of matching
    /// cell probabilities.
    ///
    /// The sum walks only the matching cells by stride arithmetic — an
    /// odometer over the *unassigned* attributes — so a query touches
    /// `∏ free cardinalities` dense slots instead of scanning (and
    /// materialising the value tuple of) every cell.  This is the query
    /// server's hot path.
    pub fn probability(&self, assignment: &Assignment) -> f64 {
        // Out-of-schema assignments yield an empty iterator, matching
        // nothing — the same contract as the reference scan.
        self.schema.matching_cells(assignment).map(|i| self.probabilities[i]).sum()
    }

    /// Conditional probability `P(target | given)`.
    pub fn conditional(&self, target: &Assignment, given: &Assignment) -> Result<f64> {
        if !target.compatible_with(given) {
            return Err(MaxEntError::InfeasibleConstraints {
                reason: "target and evidence assign different values to a shared attribute"
                    .to_string(),
            });
        }
        let denominator = self.probability(given);
        if denominator <= 0.0 {
            return Err(MaxEntError::ZeroProbabilityEvidence {
                evidence: given.describe(&self.schema),
            });
        }
        let joint = target.merge(given).expect("compatibility checked above");
        Ok(self.probability(&joint) / denominator)
    }

    /// Reference implementation of [`JointDistribution::probability`]: scan
    /// every cell and test membership.  Kept for the property test that
    /// pins the stride-walking fast path to it.
    #[cfg(test)]
    fn probability_by_scan(&self, assignment: &Assignment) -> f64 {
        self.schema
            .cells()
            .zip(self.probabilities.iter())
            .filter(|(v, _)| assignment.matches(v))
            .map(|(_, &p)| p)
            .sum()
    }

    /// Shannon entropy in nats (Eq. 7 of the memo).
    pub fn entropy(&self) -> f64 {
        entropy::entropy(&self.probabilities)
    }

    /// Kullback-Leibler divergence `KL(self ‖ other)` in nats.
    pub fn kl_divergence_from(&self, other: &JointDistribution) -> Result<f64> {
        if self.schema != other.schema {
            return Err(MaxEntError::InfeasibleConstraints {
                reason: "KL divergence requires distributions over the same schema".to_string(),
            });
        }
        Ok(entropy::kl_divergence(&self.probabilities, &other.probabilities))
    }

    /// Total-variation distance to another distribution over the same
    /// schema.
    pub fn total_variation(&self, other: &JointDistribution) -> Result<f64> {
        if self.schema != other.schema {
            return Err(MaxEntError::InfeasibleConstraints {
                reason: "total variation requires distributions over the same schema".to_string(),
            });
        }
        Ok(self
            .probabilities
            .iter()
            .zip(other.probabilities.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0)
    }

    /// The most probable full cell assignment and its probability.
    pub fn most_probable_cell(&self) -> (Vec<usize>, f64) {
        let (idx, &p) = self
            .probabilities
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .expect("a schema always has at least one cell");
        (self.schema.cell_values(idx), p)
    }

    /// The cumulative distribution over cells in dense-index order, used by
    /// samplers: `cumulative[i]` is the probability of drawing a cell with
    /// index `<= i`.
    pub fn cumulative(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.probabilities
            .iter()
            .map(|&p| {
                acc += p;
                acc
            })
            .collect()
    }

    /// Expected contingency table for `n` observations (`n · p` per cell,
    /// real-valued).
    pub fn expected_counts(&self, n: u64) -> Vec<f64> {
        self.probabilities.iter().map(|&p| p * n as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::Attribute;
    use proptest::prelude::*;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![Attribute::new("a", ["0", "1", "2"]), Attribute::new("b", ["0", "1"])])
            .unwrap()
            .into_shared()
    }

    #[test]
    fn from_probabilities_validation() {
        let s = schema();
        assert!(JointDistribution::from_probabilities(Arc::clone(&s), vec![0.5; 3]).is_err());
        assert!(JointDistribution::from_probabilities(Arc::clone(&s), vec![0.5; 6]).is_err());
        assert!(JointDistribution::from_probabilities(
            Arc::clone(&s),
            vec![-0.1, 0.3, 0.2, 0.2, 0.2, 0.2]
        )
        .is_err());
        let ok = JointDistribution::from_probabilities(s, vec![1.0 / 6.0; 6]);
        assert!(ok.is_ok());
    }

    #[test]
    fn from_unnormalized_normalises() {
        let s = schema();
        let j = JointDistribution::from_unnormalized(
            Arc::clone(&s),
            vec![2.0, 0.0, 0.0, 0.0, 0.0, 2.0],
        );
        assert!((j.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((j.probability_of_values(&[0, 0]) - 0.5).abs() < 1e-12);
        // All-zero weights fall back to uniform.
        let z = JointDistribution::from_unnormalized(s, vec![0.0; 6]);
        assert!((z.probability_of_values(&[1, 1]) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_matches_table_frequencies() {
        let s = schema();
        let t = ContingencyTable::from_counts(Arc::clone(&s), vec![2, 0, 3, 1, 0, 4]).unwrap();
        let j = JointDistribution::empirical(&t);
        assert!((j.probability_of_values(&[0, 0]) - 0.2).abs() < 1e-12);
        assert!((j.probability(&Assignment::single(1, 0)) - 0.5).abs() < 1e-12);
        let empty = ContingencyTable::zeros(s);
        let u = JointDistribution::empirical(&empty);
        assert!((u.probability_of_values(&[0, 0]) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn conditionals() {
        let s = schema();
        let t = ContingencyTable::from_counts(Arc::clone(&s), vec![2, 0, 3, 1, 0, 4]).unwrap();
        let j = JointDistribution::empirical(&t);
        // P(b=0 | a=0) = 2 / 2.
        let p = j.conditional(&Assignment::single(1, 0), &Assignment::single(0, 0)).unwrap();
        assert!((p - 1.0).abs() < 1e-12);
        // P(b=1 | a=1) = 1 / 4.
        let p = j.conditional(&Assignment::single(1, 1), &Assignment::single(0, 1)).unwrap();
        assert!((p - 0.25).abs() < 1e-12);
        assert!(j.conditional(&Assignment::single(0, 0), &Assignment::single(0, 1)).is_err());
        // a=2,b=0 has zero probability: conditioning on it is an error.
        let zero_evidence = Assignment::from_pairs([(0, 2), (1, 0)]);
        assert!(j.conditional(&Assignment::single(1, 1), &zero_evidence).is_err());
    }

    #[test]
    fn entropy_and_divergences() {
        let s = schema();
        let u = JointDistribution::uniform(Arc::clone(&s));
        assert!((u.entropy() - (6f64).ln()).abs() < 1e-12);
        let t = ContingencyTable::from_counts(Arc::clone(&s), vec![6, 0, 0, 0, 0, 0]).unwrap();
        let d = JointDistribution::empirical(&t);
        assert!(d.entropy().abs() < 1e-12);
        assert!((u.total_variation(&u).unwrap()).abs() < 1e-12);
        assert!(u.total_variation(&d).unwrap() > 0.5);
        assert!(u.kl_divergence_from(&u).unwrap().abs() < 1e-12);
        // Divergence against a different schema is an error.
        let other = JointDistribution::uniform(Schema::uniform(&[2, 2]).unwrap().into_shared());
        assert!(u.kl_divergence_from(&other).is_err());
        assert!(u.total_variation(&other).is_err());
    }

    #[test]
    fn most_probable_and_cumulative() {
        let s = schema();
        let t = ContingencyTable::from_counts(Arc::clone(&s), vec![1, 0, 7, 1, 0, 1]).unwrap();
        let j = JointDistribution::empirical(&t);
        let (cell, p) = j.most_probable_cell();
        assert_eq!(cell, vec![1, 0]);
        assert!((p - 0.7).abs() < 1e-12);
        let cum = j.cumulative();
        assert_eq!(cum.len(), 6);
        assert!((cum[5] - 1.0).abs() < 1e-12);
        assert!(cum.windows(2).all(|w| w[1] + 1e-15 >= w[0]));
        let counts = j.expected_counts(10);
        assert!((counts[2] - 7.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_stride_walk_matches_full_scan(
            weights in proptest::collection::vec(0.0f64..10.0, 36),
            mask in any::<u32>(),
            seed in any::<u64>(),
        ) {
            // The odometer fast path must agree with the reference scan for
            // every partial assignment, including the empty one.
            let s = Schema::uniform(&[3, 2, 3, 2]).unwrap().into_shared();
            let j = JointDistribution::from_unnormalized(Arc::clone(&s), weights);
            let vars = pka_contingency::VarSet::from_bits(mask).intersection(s.all_vars());
            let cell = (seed as usize) % s.cell_count();
            let a = Assignment::project(vars, &s.cell_values(cell));
            prop_assert!((j.probability(&a) - j.probability_by_scan(&a)).abs() < 1e-12);
            prop_assert!((j.probability(&Assignment::empty()) - 1.0).abs() < 1e-9);
            // Out-of-schema assignments match nothing.
            prop_assert_eq!(j.probability(&Assignment::single(0, 99)), 0.0);
            prop_assert_eq!(j.probability(&Assignment::single(9, 0)), 0.0);
        }

        #[test]
        fn prop_marginals_sum_to_one(weights in proptest::collection::vec(0.0f64..5.0, 6)) {
            let j = JointDistribution::from_unnormalized(schema(), weights);
            // Marginal over attribute 0 sums to 1.
            let total: f64 = (0..3).map(|v| j.probability(&Assignment::single(0, v))).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!((j.probability(&Assignment::empty()) - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_total_variation_symmetric_and_bounded(
            w1 in proptest::collection::vec(0.0f64..5.0, 6),
            w2 in proptest::collection::vec(0.0f64..5.0, 6),
        ) {
            let a = JointDistribution::from_unnormalized(schema(), w1);
            let b = JointDistribution::from_unnormalized(schema(), w2);
            let ab = a.total_variation(&b).unwrap();
            let ba = b.total_variation(&a).unwrap();
            prop_assert!((ab - ba).abs() < 1e-12);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&ab));
        }

        #[test]
        fn prop_kl_nonnegative(
            w1 in proptest::collection::vec(0.01f64..5.0, 6),
            w2 in proptest::collection::vec(0.01f64..5.0, 6),
        ) {
            let a = JointDistribution::from_unnormalized(schema(), w1);
            let b = JointDistribution::from_unnormalized(schema(), w2);
            prop_assert!(a.kl_divergence_from(&b).unwrap() >= -1e-12);
        }
    }
}
