//! The iterative a-value computation of Figure 4 / Table 2, as a flat,
//! cache-friendly kernel.
//!
//! The memo derives, by hand, a specific iteration order for its worked
//! example (Eqs. 75–87).  The general form implemented here is the classic
//! *cyclic multiplicative update* (iterative proportional fitting applied to
//! individual constraint cells): for every constraint `c` in turn, compute
//! the probability `q_c` the current model assigns the constrained cell and
//! multiply the constraint's a-value by `target_c / q_c`, then renormalise
//! through `a0`.  For a consistent constraint set this converges to the
//! unique maximum-entropy distribution satisfying all constraints — the same
//! fixed point the memo's hand-derived iteration reaches — and the
//! per-sweep trace reproduces the behaviour shown in Table 2 (convergence of
//! the fitted `p^{AC}_{12}` to 0.219 in a handful of sweeps).
//!
//! ## The deferred-normalization invariant
//!
//! The textbook update renormalises the whole dense vector after **every**
//! constraint — an `O(cells)` scan per constraint, `O(constraints × cells)`
//! per sweep.  This kernel instead keeps the dense vector `p` *unnormalised*
//! for the duration of a sweep and tracks its total mass `z` as a scalar:
//!
//! * the normalised probability of constraint `c` is `q = (Σ_{i∈c} p_i) / z`,
//!   so the update ratio `target / q` is **identical** (in exact arithmetic)
//!   to the one the eagerly-normalised iteration would compute — the global
//!   normaliser cancels out of every ratio;
//! * scaling `c`'s cells by `ratio` changes the mass by exactly
//!   `q_raw · (ratio − 1)`, so `z` is maintained in `O(1)` per update;
//! * one `O(cells)` renormalisation at the end of the sweep (dividing `p` by
//!   `z` and folding `1/z` into `a0`) restores `Σ p = 1`, so traces, the
//!   convergence check and the returned model are exactly the quantities the
//!   eager iteration produces.
//!
//! Because every update ratio matches the eager iteration's ratio up to
//! floating-point rounding, the two iterations follow the same trajectory
//! and reach the same fixed point; the per-cell difference after a fit is
//! bounded by accumulated rounding (≤ 1e-12 in practice, property-tested in
//! `tests/solver_equivalence.rs` against [`reference`]).  To keep the
//! incrementally-tracked `z` from drifting over very long fits, the kernel
//! re-sums the vector exactly every [`EXACT_RENORM_EVERY`] sweeps.
//!
//! Incidence structure (which dense cells each constraint covers) lives in a
//! flat CSR layout ([`IncidenceCache`]) so the gather/scale loops of the
//! sweep run over contiguous `u32` index slices, and the dense working
//! vector is initialised by *scatter* — fill with `a0`, then scale each
//! factor's incidence slice — instead of evaluating the `O(factors)` product
//! per cell.
//!
//! The solver supports warm starts ("starting with the last previously
//! calculated a values", as the memo instructs when a new constraint is
//! added) via [`fit_with_initial`].

use crate::constraint::{Constraint, ConstraintSet};
use crate::convergence::{ConvergenceCriteria, IterationRecord, SolveReport};
use crate::elimination::FactorGraph;
use crate::error::MaxEntError;
use crate::model::LogLinearModel;
use crate::Result;
use pka_contingency::{Assignment, Schema, VarSet};
use std::sync::Arc;

/// Constraint targets smaller than this are treated as exactly zero when the
/// model has already driven the cell's probability to zero.
const ZERO_TARGET: f64 = 1e-300;

/// The default dense ceiling: joints of at most this many cells are fitted
/// (and evaluated downstream) through the dense paths, which win on small
/// schemas where one O(cells) sweep is cheaper than per-constraint variable
/// eliminations.  Above it every layer switches to factored evaluation so
/// cost depends on the factors a computation touches, not the total cell
/// count.  See `docs/factored.md` for the policy and the crossover numbers.
pub const DEFAULT_DENSE_CEILING: usize = 1_000_000;

/// Every this many sweeps the incrementally-tracked total mass is replaced
/// by an exact re-sum of the dense vector, bounding floating-point drift of
/// the deferred normalisation (see the module docs).
const EXACT_RENORM_EVERY: usize = 16;

/// Cumulative reuse counters of an [`IncidenceCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Fits served entirely from cached incidence lists (identical
    /// constraint set, or a prefix of a previously cached one).
    pub full_hits: u64,
    /// Fits where the cached lists covered a leading prefix and only the
    /// appended constraints' incidence had to be computed.
    pub extensions: u64,
    /// Fits that had to rebuild every incidence list (different schema or a
    /// divergent constraint set).
    pub rebuilds: u64,
}

/// A reusable cache of constraint-to-cell incidence lists in CSR form.
///
/// For every constraint the solver needs the dense indices of the cells its
/// assignment covers.  The lists are pure structure — independent of the
/// constraint *probabilities* and of the model being fitted — and warm
/// refits over a stream re-solve the same (or a one-longer) constraint set
/// over and over, so a long-lived engine keeps one `IncidenceCache` and
/// hands it to every fit:
///
/// * identical assignments (the steady-state warm refit) → full hit, zero
///   structural work;
/// * the acquisition loop promoting one cell → the cached lists are a
///   prefix; only the new constraint's cells are enumerated;
/// * a shorter set that is a prefix of the cached one (e.g. a cold restart
///   after promotions) → the cache is truncated, still no rescan;
/// * anything else (new schema, divergent set) → full rebuild.
///
/// Storage is a flat `offsets`/`indices` pair (compressed sparse rows):
/// constraint `ci` covers `indices[offsets[ci]..offsets[ci+1]]`.  The flat
/// layout keeps the solver's gather/scale loops on contiguous memory, and
/// each list is built by stride arithmetic
/// ([`Schema::matching_cells`]) in `O(covered cells)` — adding one
/// constraint never rescans the whole table.
#[derive(Debug, Clone)]
pub struct IncidenceCache {
    schema: Option<Arc<Schema>>,
    assignments: Vec<Assignment>,
    /// CSR row boundaries: `offsets.len() == assignments.len() + 1`,
    /// `offsets[0] == 0`.
    offsets: Vec<u32>,
    /// Concatenated dense cell indices, ascending within each constraint.
    indices: Vec<u32>,
    stats: CacheStats,
}

impl Default for IncidenceCache {
    fn default() -> Self {
        Self {
            schema: None,
            assignments: Vec::new(),
            offsets: vec![0],
            indices: Vec::new(),
            stats: CacheStats::default(),
        }
    }
}

/// A borrowed view of an [`IncidenceCache`]'s CSR storage for one
/// constraint set: `list(ci)` is the ascending dense cell indices covered
/// by constraint `ci`.
#[derive(Debug, Clone, Copy)]
pub struct CsrIncidence<'a> {
    offsets: &'a [u32],
    indices: &'a [u32],
}

impl<'a> CsrIncidence<'a> {
    /// Number of constraints covered by the view.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the view covers no constraints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dense cell indices covered by constraint `ci`, ascending.
    pub fn list(&self, ci: usize) -> &'a [u32] {
        &self.indices[self.offsets[ci] as usize..self.offsets[ci + 1] as usize]
    }
}

impl IncidenceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative hit/extension/rebuild counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Ensures the cache covers exactly `constraints` over `schema` and
    /// returns the CSR view, reusing cached structure where the schema and
    /// the leading assignments match (see the type docs for the hit /
    /// extension / truncation / rebuild cases).
    pub fn ensure(&mut self, schema: &Arc<Schema>, constraints: &[Constraint]) -> CsrIncidence<'_> {
        let schema_matches = self
            .schema
            .as_ref()
            .is_some_and(|s| Arc::ptr_eq(s, schema) || s.as_ref() == schema.as_ref());
        let shared_prefix = if schema_matches {
            self.assignments
                .iter()
                .zip(constraints)
                .take_while(|(cached, c)| **cached == c.assignment)
                .count()
        } else {
            0
        };

        if schema_matches && shared_prefix == self.assignments.len() {
            // Cached lists are a (possibly complete) prefix of the request.
            if constraints.len() == shared_prefix {
                self.stats.full_hits += 1;
            } else {
                self.stats.extensions += 1;
                self.extend_with(schema, &constraints[shared_prefix..]);
            }
        } else if schema_matches && shared_prefix == constraints.len() {
            // The request is a strict prefix of the cache: truncate.
            self.assignments.truncate(shared_prefix);
            self.offsets.truncate(shared_prefix + 1);
            self.indices.truncate(self.offsets[shared_prefix] as usize);
            self.stats.full_hits += 1;
        } else {
            self.stats.rebuilds += 1;
            self.schema = Some(Arc::clone(schema));
            self.assignments.clear();
            self.offsets.clear();
            self.offsets.push(0);
            self.indices.clear();
            self.extend_with(schema, constraints);
        }
        CsrIncidence { offsets: &self.offsets, indices: &self.indices }
    }

    /// Appends one CSR row per added constraint, each enumerated directly by
    /// stride arithmetic.  The added constraints form the **outer** loop, so
    /// a single promotion costs `O(its covered cells)` — there is no
    /// per-cell inner scan over all appended constraints.
    fn extend_with(&mut self, schema: &Arc<Schema>, added: &[Constraint]) {
        for c in added {
            self.indices.extend(schema.matching_cells(&c.assignment).map(|i| i as u32));
            // A loud capacity limit: a wrapped cast would silently corrupt
            // every row boundary after it.
            let end = u32::try_from(self.indices.len())
                .expect("incidence cache exceeded u32::MAX total covered cells");
            self.offsets.push(end);
            self.assignments.push(c.assignment.clone());
        }
    }
}

/// The iterative-scaling solver.
///
/// Two kernels share one contract: the dense CSR kernel (this module's
/// namesake) sweeps a dense `p` vector, and the **factored** kernel updates
/// a-values from [`FactorGraph`] marginals computed by variable elimination,
/// never materialising the joint.  [`Solver::fit_from_cached`] picks the
/// kernel automatically: dense at or below [`Solver::dense_ceiling`] cells
/// (where one O(cells) sweep is cheaper), factored above it (where the dense
/// vector would not even fit).  Both converge to the same unique
/// maximum-entropy fixed point; `tests/solver_equivalence.rs` property-tests
/// them against each other to ≤ 1e-9 wherever both run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Solver {
    criteria: ConvergenceCriteria,
    dense_ceiling: usize,
}

impl Default for Solver {
    fn default() -> Self {
        Self { criteria: ConvergenceCriteria::default(), dense_ceiling: DEFAULT_DENSE_CEILING }
    }
}

impl Solver {
    /// Creates a solver with the given convergence criteria and the default
    /// dense ceiling.
    pub fn new(criteria: ConvergenceCriteria) -> Self {
        Self { criteria, dense_ceiling: DEFAULT_DENSE_CEILING }
    }

    /// The criteria in use.
    pub fn criteria(&self) -> ConvergenceCriteria {
        self.criteria
    }

    /// Sets the cell count above which fits run the factored kernel
    /// instead of the dense CSR kernel.  `0` forces factored everywhere;
    /// `usize::MAX` forces dense everywhere.
    pub fn with_dense_ceiling(mut self, cells: usize) -> Self {
        self.dense_ceiling = cells;
        self
    }

    /// The cell count above which the factored kernel is selected.
    pub fn dense_ceiling(&self) -> usize {
        self.dense_ceiling
    }

    /// Fits a model from scratch: all a-values start at 1 and `a0` at
    /// `1 / (number of cells)`, i.e. the uniform distribution (the maximum
    /// entropy distribution with no constraints at all).
    pub fn fit(&self, constraints: &ConstraintSet) -> Result<(LogLinearModel, SolveReport)> {
        let model = LogLinearModel::uniform(constraints.shared_schema());
        self.fit_from(model, constraints)
    }

    /// Fits a model starting from the a-values of a previously fitted model
    /// (Figure 4's warm start).  Factors for constraints the initial model
    /// does not know yet are created with the neutral value 1.
    pub fn fit_from(
        &self,
        model: LogLinearModel,
        constraints: &ConstraintSet,
    ) -> Result<(LogLinearModel, SolveReport)> {
        self.fit_from_cached(model, constraints, &mut IncidenceCache::new())
    }

    /// [`Solver::fit_from`] with a caller-owned [`IncidenceCache`], so the
    /// constraint-to-cell incidence lists survive across fits.  A streaming
    /// engine refitting an unchanged (or incrementally grown) constraint
    /// set skips the structural pass entirely.
    ///
    /// Joints above [`Solver::dense_ceiling`] cells are routed to the
    /// factored kernel ([`Solver::fit_factored`]); the cache is untouched in
    /// that case — the factored kernel needs no incidence lists.
    pub fn fit_from_cached(
        &self,
        mut model: LogLinearModel,
        constraints: &ConstraintSet,
        cache: &mut IncidenceCache,
    ) -> Result<(LogLinearModel, SolveReport)> {
        if constraints.schema().cell_count() > self.dense_ceiling {
            return self.fit_factored(model, constraints);
        }
        if model.schema() != constraints.schema() {
            return Err(MaxEntError::InfeasibleConstraints {
                reason: "initial model and constraints use different schemas".to_string(),
            });
        }
        constraints.check_feasibility(1e-6)?;

        let schema = constraints.shared_schema();
        let cells = schema.cell_count();

        // Ensure every constraint has a factor slot, remembering its index.
        let factor_positions: Vec<usize> =
            constraints.constraints().iter().map(|c| model.ensure_factor(&c.assignment)).collect();

        // The CSR incidence lists — served from the cache when the
        // constraint set's shape is unchanged.
        let csr = cache.ensure(&schema, constraints.constraints());

        // Dense working copy of the model's cell probabilities, built by
        // scatter: fill with a0, then scale each factor's covered slice.
        // O(cells + Σ covered) instead of an O(factors) product per cell.
        let mut p: Vec<f64> = vec![model.a0(); cells];
        let mut covered = vec![false; model.factor_count()];
        for (ci, &position) in factor_positions.iter().enumerate() {
            covered[position] = true;
            let value = model.factors()[position].1;
            if value != 1.0 {
                for &i in csr.list(ci) {
                    p[i as usize] *= value;
                }
            }
        }
        // Factors the constraint set does not mention (possible when warm
        // starting from a richer model) are scattered by direct enumeration.
        for (position, (assignment, value)) in model.factors().iter().enumerate() {
            if !covered[position] && *value != 1.0 {
                for i in schema.matching_cells(assignment) {
                    p[i] *= value;
                }
            }
        }
        let z: f64 = p.iter().sum();
        renormalize(&mut model, &mut p, z)?;

        // One post-normalisation gather gives every constraint's fitted
        // probability; the convergence check and the trace both read it, so
        // nothing is ever re-summed.
        let mut fitted = vec![0.0f64; csr.len()];
        gather_fitted(csr, &p, &mut fitted);
        let mut max_violation = max_violation_of(constraints, &fitted);

        let mut trace = Vec::new();
        let mut iterations = 0usize;

        // Already satisfied (e.g. refitting an unchanged constraint set).
        if max_violation <= self.criteria.tolerance {
            if self.criteria.record_trace {
                trace.push(record_of(0, &model, &fitted, max_violation));
            }
            return Ok((
                model,
                SolveReport { iterations: 0, max_violation, converged: true, trace },
            ));
        }

        for iteration in 1..=self.criteria.max_iterations {
            iterations = iteration;
            // `p` is normalised at sweep entry; `z` tracks its total mass as
            // updates scale constraint slices (deferred normalisation).
            let mut z = 1.0f64;
            for (ci, c) in constraints.constraints().iter().enumerate() {
                let slice = csr.list(ci);
                let q_raw: f64 = slice.iter().map(|&i| p[i as usize]).sum();
                let q = q_raw / z;
                let target = c.probability;
                if (q - target).abs() <= f64::EPSILON {
                    continue;
                }
                if q <= 0.0 {
                    if target > ZERO_TARGET {
                        return Err(MaxEntError::InfeasibleConstraints {
                            reason: format!(
                                "constraint {} requires probability {target} but the model assigns its cell zero mass",
                                c.assignment.describe(constraints.schema())
                            ),
                        });
                    }
                    continue;
                }
                let ratio = target / q;
                model.scale_factor(factor_positions[ci], ratio);
                for &i in slice {
                    p[i as usize] *= ratio;
                }
                // Scaling the slice changes the mass by exactly
                // q_raw · (ratio − 1); the O(cells) re-sum is deferred.
                z += q_raw * (ratio - 1.0);
                if !(z > 0.0) || !z.is_finite() {
                    return Err(MaxEntError::InfeasibleConstraints {
                        reason: format!("model mass became {z} during fitting"),
                    });
                }
            }

            // The one O(cells) pass of the sweep: renormalise using the
            // tracked mass, with a periodic exact re-sum to bound drift.
            let divisor =
                if iteration % EXACT_RENORM_EVERY == 0 { p.iter().sum::<f64>() } else { z };
            renormalize(&mut model, &mut p, divisor)?;

            gather_fitted(csr, &p, &mut fitted);
            max_violation = max_violation_of(constraints, &fitted);
            if self.criteria.record_trace {
                trace.push(record_of(iteration, &model, &fitted, max_violation));
            }
            if max_violation <= self.criteria.tolerance {
                return Ok((
                    model,
                    SolveReport { iterations, max_violation, converged: true, trace },
                ));
            }
        }

        if self.criteria.fail_on_max_iterations {
            return Err(MaxEntError::NotConverged {
                iterations,
                max_violation,
                tolerance: self.criteria.tolerance,
            });
        }
        // Best-effort result: constraint sets with boundary (zero-probability)
        // solutions converge only in the limit; the near-boundary model is
        // still the correct answer to working precision.
        if self.criteria.record_trace && trace.is_empty() {
            trace.push(record_of(iterations, &model, &fitted, max_violation));
        }
        Ok((model, SolveReport { iterations, max_violation, converged: false, trace }))
    }

    /// The **factored** iterative-scaling kernel: the same cyclic
    /// multiplicative update, but every fitted probability comes from a
    /// [`FactorGraph`] marginal (variable elimination over a min-fill
    /// order) instead of a dense vector gather — no O(cells) allocation
    /// anywhere.
    ///
    /// Constraints sharing a variable set are served from **one** eliminated
    /// marginal table per sweep, so a sweep costs
    /// `O(distinct varsets × elimination)` — exponential only in the induced
    /// width of the constraint graph, independent of the total cell count.
    /// The fixed point is the unique maximum-entropy distribution for the
    /// constraint set, i.e. the same model the dense kernel converges to
    /// (property-tested ≤ 1e-9 in `tests/solver_equivalence.rs`); the sweep
    /// *count* may differ because violations are re-measured from exact
    /// marginals each sweep.
    pub fn fit_factored(
        &self,
        mut model: LogLinearModel,
        constraints: &ConstraintSet,
    ) -> Result<(LogLinearModel, SolveReport)> {
        if model.schema() != constraints.schema() {
            return Err(MaxEntError::InfeasibleConstraints {
                reason: "initial model and constraints use different schemas".to_string(),
            });
        }
        constraints.check_feasibility(1e-6)?;

        let schema = constraints.shared_schema();
        let factor_positions: Vec<usize> =
            constraints.constraints().iter().map(|c| model.ensure_factor(&c.assignment)).collect();

        // Group constraints by variable set (first-seen order) and
        // precompute each constraint's row-major index into its group's
        // marginal table, so one elimination per varset serves every
        // constraint in the group.
        let mut groups: Vec<(VarSet, Vec<usize>)> = Vec::new();
        for (ci, c) in constraints.constraints().iter().enumerate() {
            let vars = c.assignment.vars();
            match groups.iter_mut().find(|(v, _)| *v == vars) {
                Some((_, list)) => list.push(ci),
                None => groups.push((vars, vec![ci])),
            }
        }
        let table_indices: Vec<usize> = constraints
            .constraints()
            .iter()
            .map(|c| marginal_table_index(&schema, &c.assignment))
            .collect();

        let mut graph = FactorGraph::from_model(&model);
        renormalize_factored(&mut model, &mut graph)?;

        // One marginal pass gives every constraint's fitted probability; the
        // convergence check and the trace both read it.
        let mut fitted = vec![0.0f64; constraints.len()];
        let gather = |graph: &FactorGraph, fitted: &mut [f64]| {
            for (vars, group) in &groups {
                let table = graph.marginal(*vars);
                for &ci in group {
                    fitted[ci] = table[table_indices[ci]];
                }
            }
        };
        gather(&graph, &mut fitted);
        let mut max_violation = max_violation_of(constraints, &fitted);

        let mut trace = Vec::new();
        let mut iterations = 0usize;

        if max_violation <= self.criteria.tolerance {
            if self.criteria.record_trace {
                trace.push(record_of(0, &model, &fitted, max_violation));
            }
            return Ok((
                model,
                SolveReport { iterations: 0, max_violation, converged: true, trace },
            ));
        }

        for iteration in 1..=self.criteria.max_iterations {
            iterations = iteration;
            for (vars, group) in &groups {
                let table = graph.marginal(*vars);
                for &ci in group {
                    let c = &constraints.constraints()[ci];
                    let q = table[table_indices[ci]];
                    let target = c.probability;
                    if (q - target).abs() <= f64::EPSILON {
                        continue;
                    }
                    if q <= 0.0 {
                        if target > ZERO_TARGET {
                            return Err(MaxEntError::InfeasibleConstraints {
                                reason: format!(
                                    "constraint {} requires probability {target} but the model assigns its cell zero mass",
                                    c.assignment.describe(constraints.schema())
                                ),
                            });
                        }
                        continue;
                    }
                    let ratio = target / q;
                    let position = factor_positions[ci];
                    model.scale_factor(position, ratio);
                    graph.set_factor_value(position, model.factors()[position].1);
                }
            }
            renormalize_factored(&mut model, &mut graph)?;

            gather(&graph, &mut fitted);
            max_violation = max_violation_of(constraints, &fitted);
            if self.criteria.record_trace {
                trace.push(record_of(iteration, &model, &fitted, max_violation));
            }
            if max_violation <= self.criteria.tolerance {
                return Ok((
                    model,
                    SolveReport { iterations, max_violation, converged: true, trace },
                ));
            }
        }

        if self.criteria.fail_on_max_iterations {
            return Err(MaxEntError::NotConverged {
                iterations,
                max_violation,
                tolerance: self.criteria.tolerance,
            });
        }
        if self.criteria.record_trace && trace.is_empty() {
            trace.push(record_of(iterations, &model, &fitted, max_violation));
        }
        Ok((model, SolveReport { iterations, max_violation, converged: false, trace }))
    }
}

/// Row-major index of a constraint's configuration inside the marginal
/// table over its variable set (ascending members, last member fastest —
/// the [`FactorGraph::marginal`] layout).
fn marginal_table_index(schema: &Schema, assignment: &Assignment) -> usize {
    let mut idx = 0usize;
    for (attr, &v) in assignment.vars().iter().zip(assignment.values()) {
        idx = idx * schema.cardinality(attr).expect("constraint attrs in schema") + v;
    }
    idx
}

/// Folds the current partition sum into `a0`, keeping model and graph in
/// lock-step — the factored kernel's per-sweep renormalisation.
fn renormalize_factored(model: &mut LogLinearModel, graph: &mut FactorGraph) -> Result<()> {
    let z = graph.partition();
    if !(z > 0.0) || !z.is_finite() {
        return Err(MaxEntError::InfeasibleConstraints {
            reason: format!("model mass became {z} during fitting"),
        });
    }
    model.scale_a0(1.0 / z);
    graph.set_a0(model.a0());
    Ok(())
}

/// One gather pass: `fitted[ci] = Σ p[i]` over constraint `ci`'s CSR slice.
fn gather_fitted(csr: CsrIncidence<'_>, p: &[f64], fitted: &mut [f64]) {
    for (ci, slot) in fitted.iter_mut().enumerate() {
        *slot = csr.list(ci).iter().map(|&i| p[i as usize]).sum();
    }
}

/// Largest absolute difference between a constraint's target and its fitted
/// probability.
fn max_violation_of(constraints: &ConstraintSet, fitted: &[f64]) -> f64 {
    constraints
        .constraints()
        .iter()
        .zip(fitted)
        .map(|(c, &q)| (q - c.probability).abs())
        .fold(0.0, f64::max)
}

/// Builds one trace record from the sweep's gathered sums — no re-summing.
fn record_of(
    iteration: usize,
    model: &LogLinearModel,
    fitted: &[f64],
    max_violation: f64,
) -> IterationRecord {
    IterationRecord {
        iteration,
        max_violation,
        factors: model.factors().to_vec(),
        a0: model.a0(),
        fitted: fitted.to_vec(),
    }
}

/// Divides the dense vector by `z` and folds `1/z` into `a0`, keeping the
/// model and its dense image in lock-step.
fn renormalize(model: &mut LogLinearModel, p: &mut [f64], z: f64) -> Result<()> {
    if !(z > 0.0) || !z.is_finite() {
        return Err(MaxEntError::InfeasibleConstraints {
            reason: format!("model mass became {z} during fitting"),
        });
    }
    model.scale_a0(1.0 / z);
    for x in p.iter_mut() {
        *x /= z;
    }
    Ok(())
}

/// Fits a model with the default convergence criteria.
pub fn fit(constraints: &ConstraintSet) -> Result<(LogLinearModel, SolveReport)> {
    Solver::default().fit(constraints)
}

/// Fits a model with the default criteria, warm-starting from `initial`.
pub fn fit_with_initial(
    initial: LogLinearModel,
    constraints: &ConstraintSet,
) -> Result<(LogLinearModel, SolveReport)> {
    Solver::default().fit_from(initial, constraints)
}

pub mod reference {
    //! The eagerly-normalised solver, retained as the executable
    //! specification of the kernel.
    //!
    //! This is the straightforward transcription of Figure 4: the dense
    //! vector is built by evaluating the `O(factors)` product per cell,
    //! incidence lists are built by scanning every cell against every
    //! constraint, and the vector is renormalised after **every** constraint
    //! update.  It is `O(constraints × cells)` per sweep and allocates per
    //! cell — deliberately naive.  The fast kernel in the parent module must
    //! match it to ≤ 1e-12 per cell (property-tested in
    //! `tests/solver_equivalence.rs`) and is benchmarked against it in
    //! `solver_sweep`.

    use super::ZERO_TARGET;
    use crate::constraint::{Constraint, ConstraintSet};
    use crate::convergence::{ConvergenceCriteria, IterationRecord, SolveReport};
    use crate::error::MaxEntError;
    use crate::model::LogLinearModel;
    use crate::Result;
    use pka_contingency::Schema;

    /// One incidence list per constraint, built the naive way: a full scan
    /// of every cell's value tuple against every constraint.
    pub fn incidence_lists(schema: &Schema, constraints: &[Constraint]) -> Vec<Vec<u32>> {
        let mut matching: Vec<Vec<u32>> = constraints.iter().map(|_| Vec::new()).collect();
        for (idx, values) in schema.cells().enumerate() {
            for (list, c) in matching.iter_mut().zip(constraints) {
                if c.assignment.matches(&values) {
                    list.push(idx as u32);
                }
            }
        }
        matching
    }

    /// The eagerly-normalised fit: identical contract to
    /// [`Solver::fit_from`](super::Solver::fit_from), kept as the
    /// specification the fast kernel is verified against.
    pub fn fit_from(
        criteria: ConvergenceCriteria,
        mut model: LogLinearModel,
        constraints: &ConstraintSet,
    ) -> Result<(LogLinearModel, SolveReport)> {
        if model.schema() != constraints.schema() {
            return Err(MaxEntError::InfeasibleConstraints {
                reason: "initial model and constraints use different schemas".to_string(),
            });
        }
        constraints.check_feasibility(1e-6)?;

        let schema = constraints.shared_schema();
        let cells = schema.cell_count();
        let factor_positions: Vec<usize> =
            constraints.constraints().iter().map(|c| model.ensure_factor(&c.assignment)).collect();
        let matching = incidence_lists(&schema, constraints.constraints());

        let mut p: Vec<f64> = schema.cells().map(|v| model.cell_probability(&v)).collect();
        normalize_in_place(&mut model, &mut p, cells)?;

        let mut trace = Vec::new();
        let mut iterations = 0usize;
        let mut max_violation = violation(constraints, &matching, &p);

        if max_violation <= criteria.tolerance {
            if criteria.record_trace {
                trace.push(record(0, constraints, &model, &matching, &p));
            }
            return Ok((
                model,
                SolveReport { iterations: 0, max_violation, converged: true, trace },
            ));
        }

        for iteration in 1..=criteria.max_iterations {
            iterations = iteration;
            for (ci, c) in constraints.constraints().iter().enumerate() {
                let q: f64 = matching[ci].iter().map(|&i| p[i as usize]).sum();
                let target = c.probability;
                if (q - target).abs() <= f64::EPSILON {
                    continue;
                }
                if q <= 0.0 {
                    if target > ZERO_TARGET {
                        return Err(MaxEntError::InfeasibleConstraints {
                            reason: format!(
                                "constraint {} requires probability {target} but the model assigns its cell zero mass",
                                c.assignment.describe(constraints.schema())
                            ),
                        });
                    }
                    continue;
                }
                let ratio = target / q;
                model.scale_factor(factor_positions[ci], ratio);
                for &i in &matching[ci] {
                    p[i as usize] *= ratio;
                }
                normalize_in_place(&mut model, &mut p, cells)?;
            }

            max_violation = violation(constraints, &matching, &p);
            if criteria.record_trace {
                trace.push(record(iteration, constraints, &model, &matching, &p));
            }
            if max_violation <= criteria.tolerance {
                return Ok((
                    model,
                    SolveReport { iterations, max_violation, converged: true, trace },
                ));
            }
        }

        if criteria.fail_on_max_iterations {
            return Err(MaxEntError::NotConverged {
                iterations,
                max_violation,
                tolerance: criteria.tolerance,
            });
        }
        if criteria.record_trace && trace.is_empty() {
            trace.push(record(iterations, constraints, &model, &matching, &p));
        }
        Ok((model, SolveReport { iterations, max_violation, converged: false, trace }))
    }

    fn record(
        iteration: usize,
        constraints: &ConstraintSet,
        model: &LogLinearModel,
        matching: &[Vec<u32>],
        p: &[f64],
    ) -> IterationRecord {
        let fitted: Vec<f64> =
            matching.iter().map(|cells| cells.iter().map(|&i| p[i as usize]).sum()).collect();
        IterationRecord {
            iteration,
            max_violation: violation(constraints, matching, p),
            factors: model.factors().to_vec(),
            a0: model.a0(),
            fitted,
        }
    }

    fn violation(constraints: &ConstraintSet, matching: &[Vec<u32>], p: &[f64]) -> f64 {
        constraints
            .constraints()
            .iter()
            .zip(matching)
            .map(|(c, cells)| {
                let q: f64 = cells.iter().map(|&i| p[i as usize]).sum();
                (q - c.probability).abs()
            })
            .fold(0.0, f64::max)
    }

    fn normalize_in_place(model: &mut LogLinearModel, p: &mut [f64], cells: usize) -> Result<()> {
        debug_assert_eq!(p.len(), cells);
        let z: f64 = p.iter().sum();
        if !(z > 0.0) || !z.is_finite() {
            return Err(MaxEntError::InfeasibleConstraints {
                reason: format!("model mass became {z} during fitting"),
            });
        }
        model.scale_a0(1.0 / z);
        for x in p.iter_mut() {
            *x /= z;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use pka_contingency::{Assignment, Attribute, ContingencyTable, Schema};
    use proptest::prelude::*;
    use std::sync::Arc;

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    #[test]
    fn first_order_fit_reproduces_independence_model() {
        // With only first-order constraints, maximum entropy = independence
        // (the memo's Eqs. 57-62).
        let t = paper_table();
        let constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        let (model, report) = fit(&constraints).unwrap();
        assert!(report.converged);
        assert!(report.max_violation < 1e-10);
        let pa = 1290.0 / 3428.0;
        let pb = 433.0 / 3428.0;
        let pc = 1780.0 / 3428.0;
        let p = model.cell_probability(&[0, 0, 0]);
        assert!((p - pa * pb * pc).abs() < 1e-9, "p = {p}, expected {}", pa * pb * pc);
        // Eq. 62: second-order predictions are products of first-order ones.
        let p_ab = model.probability(&Assignment::from_pairs([(0, 0), (1, 0)]));
        assert!((p_ab - pa * pb).abs() < 1e-9);
        assert!((model.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn second_order_constraint_is_honoured_exactly() {
        // The memo's first discovered constraint: p^AC_12 = 750/3428 = .219.
        let t = paper_table();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        let ac12 = Assignment::from_pairs([(0, 0), (2, 1)]);
        constraints.add_from_table(&t, ac12.clone()).unwrap();
        let (model, report) = fit(&constraints).unwrap();
        assert!(report.converged);
        let fitted = model.probability(&ac12);
        assert!((fitted - 750.0 / 3428.0).abs() < 1e-9, "fitted = {fitted}");
        // First-order marginals are still honoured.
        for attr in 0..3 {
            for v in 0..t.schema().cardinality(attr).unwrap() {
                let a = Assignment::single(attr, v);
                assert!(
                    (model.probability(&a) - t.frequency(&a)).abs() < 1e-9,
                    "marginal {attr}={v} drifted"
                );
            }
        }
        // The model still treats attribute B as independent of the AC block:
        // P(B=1 | A=1, C=2) should equal p^B_1.
        let cond = model.conditional(&Assignment::single(1, 0), &ac12).unwrap();
        assert!((cond - 433.0 / 3428.0).abs() < 1e-6);
    }

    #[test]
    fn incidence_cache_is_reused_across_refits() {
        let t = paper_table();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        let solver = Solver::default();
        let mut cache = IncidenceCache::new();

        // First fit builds the lists.
        let (model, _) = solver
            .fit_from_cached(LogLinearModel::uniform(t.shared_schema()), &constraints, &mut cache)
            .unwrap();
        assert_eq!(cache.stats(), CacheStats { full_hits: 0, extensions: 0, rebuilds: 1 });

        // A repeated refit with an unchanged constraint set reuses the
        // cache: no rebuild, no extension.
        let (model, _) = solver.fit_from_cached(model, &constraints, &mut cache).unwrap();
        assert_eq!(cache.stats(), CacheStats { full_hits: 1, extensions: 0, rebuilds: 1 });

        // Promoting one constraint extends the cached prefix instead of
        // rebuilding everything.
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (2, 1)])).unwrap();
        let (model, _) = solver.fit_from_cached(model, &constraints, &mut cache).unwrap();
        assert_eq!(cache.stats(), CacheStats { full_hits: 1, extensions: 1, rebuilds: 1 });

        // Shrinking back to the original set truncates (still a hit) …
        let shorter = ConstraintSet::first_order_from_table(&t).unwrap();
        solver
            .fit_from_cached(LogLinearModel::uniform(t.shared_schema()), &shorter, &mut cache)
            .unwrap();
        assert_eq!(cache.stats(), CacheStats { full_hits: 2, extensions: 1, rebuilds: 1 });
        drop(model);

        // … and a different schema forces a rebuild.
        let other_schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let other =
            ContingencyTable::from_counts(Arc::clone(&other_schema), vec![10, 20, 30, 40]).unwrap();
        let foreign = ConstraintSet::first_order_from_table(&other).unwrap();
        solver
            .fit_from_cached(LogLinearModel::uniform(other_schema), &foreign, &mut cache)
            .unwrap();
        assert_eq!(cache.stats(), CacheStats { full_hits: 2, extensions: 1, rebuilds: 2 });
    }

    #[test]
    fn csr_lists_match_reference_incidence() {
        // Full-hit, extension and truncation must all leave the CSR storage
        // equal to the naive per-cell scan's lists.
        let t = paper_table();
        let schema = t.shared_schema();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        let mut cache = IncidenceCache::new();

        let check = |cache: &mut IncidenceCache, constraints: &ConstraintSet| {
            let expected = reference::incidence_lists(&schema, constraints.constraints());
            let csr = cache.ensure(&constraints.shared_schema(), constraints.constraints());
            assert_eq!(csr.len(), expected.len());
            for (ci, list) in expected.iter().enumerate() {
                assert_eq!(csr.list(ci), &list[..], "constraint {ci} diverged");
            }
        };

        check(&mut cache, &constraints); // rebuild
        check(&mut cache, &constraints); // full hit
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (2, 1)])).unwrap();
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 1), (1, 0)])).unwrap();
        check(&mut cache, &constraints); // extension by two
        let shorter = ConstraintSet::first_order_from_table(&t).unwrap();
        check(&mut cache, &shorter); // truncation
        check(&mut cache, &constraints); // re-extension after truncation
    }

    #[test]
    fn cached_fits_match_uncached_fits_exactly() {
        let t = paper_table();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (2, 1)])).unwrap();
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (1, 0)])).unwrap();
        let solver = Solver::default();
        let mut cache = IncidenceCache::new();
        // Warm the cache on a prefix so the cached fit exercises the
        // extension path, then compare against a cache-free fit.
        let prefix = ConstraintSet::first_order_from_table(&t).unwrap();
        let (seed, _) = solver
            .fit_from_cached(LogLinearModel::uniform(t.shared_schema()), &prefix, &mut cache)
            .unwrap();
        let (cached, r1) = solver.fit_from_cached(seed.clone(), &constraints, &mut cache).unwrap();
        let (fresh, r2) = solver.fit_from(seed, &constraints).unwrap();
        assert_eq!(r1.iterations, r2.iterations);
        for cell in 0..t.schema().cell_count() {
            let values = t.schema().cell_values(cell);
            assert_eq!(
                cached.cell_probability(&values).to_bits(),
                fresh.cell_probability(&values).to_bits(),
                "cached and fresh fits diverged at cell {values:?}"
            );
        }
    }

    #[test]
    fn warm_start_converges_faster_than_cold_start() {
        let t = paper_table();
        let first_order = ConstraintSet::first_order_from_table(&t).unwrap();
        let (base_model, _) = fit(&first_order).unwrap();

        let mut augmented = ConstraintSet::first_order_from_table(&t).unwrap();
        augmented.add_from_table(&t, Assignment::from_pairs([(0, 0), (2, 1)])).unwrap();

        let solver = Solver::new(ConvergenceCriteria::new().with_tolerance(1e-12));
        let (_, warm) = solver.fit_from(base_model, &augmented).unwrap();
        let (_, cold) = solver.fit(&augmented).unwrap();
        assert!(warm.converged && cold.converged);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn trace_records_convergence_like_table_2() {
        // Table 2 of the memo shows the iteration converging in ~5-7 passes;
        // the general solver's trace must show the fitted p^AC_12 approaching
        // 0.219 monotonically in error and converging in a handful of sweeps.
        let t = paper_table();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        let ac12 = Assignment::from_pairs([(0, 0), (2, 1)]);
        constraints.add_from_table(&t, ac12.clone()).unwrap();
        // Table 2 is printed to 2-3 decimal places; the equivalent tolerance
        // is reached in a handful of sweeps, just as the memo's hand
        // iteration needed ~7 passes.
        let solver = Solver::new(ConvergenceCriteria::new().with_trace().with_tolerance(1e-4));
        let (_, report) = solver.fit(&constraints).unwrap();
        assert!(!report.trace.is_empty());
        assert!(report.iterations <= 25, "took {} iterations", report.iterations);
        let target = 750.0 / 3428.0;
        let last = report.last_record().unwrap();
        let ac12_index =
            constraints.constraints().iter().position(|c| c.assignment == ac12).unwrap();
        assert!((last.fitted[ac12_index] - target).abs() < 1e-3);
        // Violations shrink (not necessarily strictly, but start > end).
        assert!(report.trace[0].max_violation >= last.max_violation);
        // Every record carries one factor per constraint.
        assert_eq!(last.factors.len(), constraints.len());
    }

    #[test]
    fn third_order_constraint_fit() {
        let t = paper_table();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (2, 1)])).unwrap();
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (1, 0)])).unwrap();
        let abc = Assignment::from_pairs([(0, 0), (1, 0), (2, 0)]);
        constraints.add_from_table(&t, abc.clone()).unwrap();
        let (model, report) = fit(&constraints).unwrap();
        assert!(report.converged);
        assert!((model.probability(&abc) - 130.0 / 3428.0).abs() < 1e-9);
        assert!((model.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_probability_constraints_are_supported() {
        let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let mut constraints = ConstraintSet::new(Arc::clone(&schema));
        constraints.add(Constraint::new(Assignment::single(0, 0), 0.5).unwrap()).unwrap();
        constraints.add(Constraint::new(Assignment::single(0, 1), 0.5).unwrap()).unwrap();
        constraints
            .add(Constraint::new(Assignment::from_pairs([(0, 0), (1, 0)]), 0.0).unwrap())
            .unwrap();
        let (model, report) = fit(&constraints).unwrap();
        assert!(report.converged);
        assert!(model.probability(&Assignment::from_pairs([(0, 0), (1, 0)])).abs() < 1e-12);
        assert!((model.probability(&Assignment::single(0, 0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn infeasible_constraints_are_rejected() {
        let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let mut constraints = ConstraintSet::new(Arc::clone(&schema));
        constraints.add(Constraint::new(Assignment::single(0, 0), 0.9).unwrap()).unwrap();
        constraints.add(Constraint::new(Assignment::single(0, 1), 0.9).unwrap()).unwrap();
        assert!(matches!(fit(&constraints), Err(MaxEntError::InfeasibleConstraints { .. })));
    }

    #[test]
    fn mismatched_schema_is_rejected() {
        let t = paper_table();
        let constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        let other = LogLinearModel::uniform(Schema::uniform(&[2, 2]).unwrap().into_shared());
        assert!(Solver::default().fit_from(other, &constraints).is_err());
    }

    #[test]
    fn iteration_budget_is_enforced() {
        let t = paper_table();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (2, 1)])).unwrap();
        // Strict mode: exhausting the budget is an error.
        let strict = Solver::new(
            ConvergenceCriteria::new().with_max_iterations(1).with_tolerance(1e-15).strict(),
        );
        assert!(matches!(
            strict.fit(&constraints),
            Err(MaxEntError::NotConverged { iterations: 1, .. })
        ));
        // Default mode: a best-effort model with converged = false.
        let lenient =
            Solver::new(ConvergenceCriteria::new().with_max_iterations(1).with_tolerance(1e-15));
        let (model, report) = lenient.fit(&constraints).unwrap();
        assert!(!report.converged);
        assert_eq!(report.iterations, 1);
        assert!((model.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn boundary_constraint_sets_return_best_effort_fits() {
        // Two perfectly correlated attributes: the constraint p^AB_11 = .5
        // together with the first-order marginals forces two cells to zero,
        // a boundary solution the multiplicative update approaches only in
        // the limit.  The solver must return a usable near-boundary model.
        let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let t = ContingencyTable::from_counts(Arc::clone(&schema), vec![200, 0, 0, 200]).unwrap();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (1, 0)])).unwrap();
        let (model, report) = fit(&constraints).unwrap();
        assert!(report.max_violation < 5e-3);
        let p = model.probability(&Assignment::from_pairs([(0, 0), (1, 0)]));
        assert!((p - 0.5).abs() < 5e-3);
        assert!((model.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_constraint_set_gives_uniform() {
        let schema = Schema::uniform(&[3, 2]).unwrap().into_shared();
        let constraints = ConstraintSet::new(schema);
        let (model, report) = fit(&constraints).unwrap();
        assert!(report.converged);
        assert_eq!(report.iterations, 0);
        assert!((model.cell_probability(&[0, 0]) - 1.0 / 6.0).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_fit_matches_every_empirical_constraint(
            counts in proptest::collection::vec(1u64..40, 12),
            extra_cell in 0usize..12,
        ) {
            // For any strictly positive table, fitting the first-order
            // marginals plus one arbitrary second-order cell reproduces all
            // of those probabilities exactly.
            let schema = Schema::uniform(&[3, 2, 2]).unwrap().into_shared();
            let t = ContingencyTable::from_counts(Arc::clone(&schema), counts).unwrap();
            let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
            let cell_values = schema.cell_values(extra_cell);
            let pair = Assignment::project(pka_contingency::VarSet::from_indices([0, 1]), &cell_values);
            constraints.add_from_table(&t, pair.clone()).unwrap();
            // Skewed random tables can converge slowly (small counts push the
            // solution towards the simplex boundary); give the solver room.
            let solver = Solver::new(
                ConvergenceCriteria::new().with_max_iterations(5000).with_tolerance(1e-9),
            );
            let (model, report) = solver.fit(&constraints).unwrap();
            prop_assert!(report.converged || report.max_violation < 1e-7);
            for c in constraints.constraints() {
                prop_assert!((model.probability(&c.assignment) - c.probability).abs() < 1e-7);
            }
            prop_assert!((model.total_mass() - 1.0).abs() < 1e-7);
        }

        #[test]
        fn prop_maxent_has_higher_entropy_than_empirical(
            counts in proptest::collection::vec(1u64..30, 12),
        ) {
            // The maximum-entropy distribution consistent with the
            // first-order marginals has entropy >= the empirical
            // distribution's entropy (which satisfies the same marginals).
            let schema = Schema::uniform(&[3, 2, 2]).unwrap().into_shared();
            let t = ContingencyTable::from_counts(Arc::clone(&schema), counts).unwrap();
            let constraints = ConstraintSet::first_order_from_table(&t).unwrap();
            let (model, _) = fit(&constraints).unwrap();
            let maxent_entropy = model.to_joint().entropy();
            let empirical_entropy = crate::joint::JointDistribution::empirical(&t).entropy();
            prop_assert!(maxent_entropy + 1e-9 >= empirical_entropy);
        }
    }
}
