//! Sum-of-products evaluation of the factored model (Appendix B of the
//! memo).
//!
//! The memo's Appendix B observes that the marginal sums needed by the
//! constraint equations — `Σ_i a_i Σ_j a_j a_ij Σ_k a_k a_ik a_jk` and so on
//! (Eq. 89) — can be evaluated by nesting the summations and carrying small
//! matrices, rather than enumerating the full cross-product.  In modern
//! terminology that is **variable elimination** on the factor graph defined
//! by the a-values.  [`FactorGraph`] implements it for arbitrary attribute
//! counts and constraint orders, so marginal (and hence conditional)
//! probabilities can be computed from the model without ever materialising
//! the dense joint — the property that makes the acquired knowledge base a
//! practical query engine when the attribute count grows.

use crate::model::LogLinearModel;
use pka_contingency::{Assignment, Schema, VarSet};
use std::sync::Arc;

/// A factor: a non-negative function over the value combinations of a small
/// set of attributes, stored densely (ascending attribute order, last
/// attribute varying fastest).
#[derive(Debug, Clone, PartialEq)]
struct Factor {
    vars: VarSet,
    /// Cardinalities of the member attributes, ascending attribute order.
    cards: Vec<usize>,
    values: Vec<f64>,
}

impl Factor {
    /// A scalar factor (empty scope).
    fn scalar(value: f64) -> Self {
        Self { vars: VarSet::empty(), cards: Vec::new(), values: vec![value] }
    }

    fn from_assignment(schema: &Schema, assignment: &Assignment, a: f64) -> Self {
        let vars = assignment.vars();
        let cards: Vec<usize> =
            vars.iter().map(|i| schema.cardinality(i).expect("attr in schema")).collect();
        let size: usize = cards.iter().product::<usize>().max(1);
        let mut values = vec![1.0; size];
        // The factor is `a` at the constrained configuration and 1 elsewhere.
        let idx = Self::index_of(&cards, assignment.values());
        values[idx] = a;
        Self { vars, cards, values }
    }

    fn index_of(cards: &[usize], values: &[usize]) -> usize {
        let mut idx = 0usize;
        for (pos, &v) in values.iter().enumerate() {
            idx = idx * cards[pos] + v;
        }
        idx
    }

    fn value_at(&self, full_assignment: &[Option<usize>]) -> f64 {
        let values: Vec<usize> = self
            .vars
            .iter()
            .map(|attr| full_assignment[attr].expect("variable bound during evaluation"))
            .collect();
        self.values[Self::index_of(&self.cards, &values)]
    }

    /// Restricts the factor by fixing some attributes to given values,
    /// producing a factor over the remaining ones.
    fn restrict(&self, evidence: &Assignment) -> Factor {
        let fixed = self.vars.intersection(evidence.vars());
        if fixed.is_empty() {
            return self.clone();
        }
        let remaining = self.vars.difference(fixed);
        let rem_members: Vec<usize> = remaining.iter().collect();
        let rem_cards: Vec<usize> = rem_members
            .iter()
            .map(|&attr| {
                let rank = self.vars.rank_of(attr).expect("member of scope");
                self.cards[rank]
            })
            .collect();
        let size: usize = rem_cards.iter().product::<usize>().max(1);
        let mut values = vec![0.0; size];
        let members: Vec<usize> = self.vars.iter().collect();
        // Enumerate the original factor's configurations and keep those that
        // agree with the evidence.
        for idx in 0..self.values.len() {
            let mut cfg = vec![0usize; members.len()];
            let mut rem = idx;
            for pos in (0..members.len()).rev() {
                cfg[pos] = rem % self.cards[pos];
                rem /= self.cards[pos];
            }
            let agrees = members
                .iter()
                .enumerate()
                .all(|(pos, &attr)| evidence.value_of(attr).is_none_or(|v| v == cfg[pos]));
            if !agrees {
                continue;
            }
            let rem_values: Vec<usize> = rem_members
                .iter()
                .map(|&attr| {
                    let pos = self.vars.rank_of(attr).expect("member");
                    cfg[pos]
                })
                .collect();
            values[Self::index_of(&rem_cards, &rem_values)] = self.values[idx];
        }
        Factor { vars: remaining, cards: rem_cards, values }
    }
}

/// The factored (sum-of-products) view of a [`LogLinearModel`].
#[derive(Debug, Clone)]
pub struct FactorGraph {
    schema: Arc<Schema>,
    a0: f64,
    factors: Vec<Factor>,
}

impl FactorGraph {
    /// Builds the factor graph of a model: one scalar factor `a0`, one
    /// cell-indicator factor per constraint multiplier.
    pub fn from_model(model: &LogLinearModel) -> Self {
        let schema = model.shared_schema();
        let factors = model
            .factors()
            .iter()
            .map(|(assignment, a)| Factor::from_assignment(&schema, assignment, *a))
            .collect();
        Self { schema, a0: model.a0(), factors }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Unnormalised weight of a partial assignment: the Appendix-B nested
    /// sum `Σ … Π a` restricted to cells consistent with the assignment.
    ///
    /// Divide two such weights to obtain conditionals, or divide by
    /// [`FactorGraph::partition`] for probabilities.
    pub fn weight(&self, evidence: &Assignment) -> f64 {
        // Restrict every factor by the evidence, then eliminate the
        // remaining variables one at a time.
        let mut factors: Vec<Factor> = self.factors.iter().map(|f| f.restrict(evidence)).collect();
        let free = self.schema.all_vars().difference(evidence.vars());

        for attr in free.iter() {
            factors = eliminate(&self.schema, factors, attr);
        }
        // Every remaining factor is now a scalar.
        let product: f64 = factors
            .iter()
            .map(|f| {
                debug_assert!(f.vars.is_empty());
                f.values[0]
            })
            .product();
        self.a0 * product
    }

    /// The partition sum `Σ_x Π a` times `a0`; equals 1 for a normalised
    /// model (Eq. 25 of the memo, `1/a0 = Σ …`).
    pub fn partition(&self) -> f64 {
        self.weight(&Assignment::empty())
    }

    /// Marginal probability of a partial assignment computed entirely from
    /// the factors (Appendix B); equal to
    /// [`LogLinearModel::probability`] up to normalisation.
    pub fn probability(&self, assignment: &Assignment) -> f64 {
        let z = self.partition();
        if z <= 0.0 {
            return 0.0;
        }
        self.weight(assignment) / z
    }
}

/// Sums `attr` out of the product of the factors that mention it, leaving
/// all other factors untouched.
fn eliminate(schema: &Schema, factors: Vec<Factor>, attr: usize) -> Vec<Factor> {
    let (touching, mut rest): (Vec<Factor>, Vec<Factor>) =
        factors.into_iter().partition(|f| f.vars.contains(attr));
    if touching.is_empty() {
        // Nothing mentions the variable: summing it out multiplies the
        // overall weight by its cardinality.
        let card = schema.cardinality(attr).expect("attr in schema") as f64;
        rest.push(Factor::scalar(card));
        return rest;
    }
    // Scope of the product, minus the eliminated variable.
    let joint_vars = touching.iter().fold(VarSet::empty(), |acc, f| acc.union(f.vars));
    let out_vars = joint_vars.without(attr);
    let out_members: Vec<usize> = out_vars.iter().collect();
    let out_cards: Vec<usize> =
        out_members.iter().map(|&a| schema.cardinality(a).expect("attr in schema")).collect();
    let out_size: usize = out_cards.iter().product::<usize>().max(1);
    let attr_card = schema.cardinality(attr).expect("attr in schema");

    let mut out_values = vec![0.0; out_size];
    let mut full_assignment: Vec<Option<usize>> = vec![None; schema.len()];
    for (out_idx, out_value) in out_values.iter_mut().enumerate() {
        // Decode the configuration of the surviving variables.
        let mut rem = out_idx;
        for pos in (0..out_members.len()).rev() {
            full_assignment[out_members[pos]] = Some(rem % out_cards[pos]);
            rem /= out_cards[pos];
        }
        let mut sum = 0.0;
        for v in 0..attr_card {
            full_assignment[attr] = Some(v);
            let mut prod = 1.0;
            for f in &touching {
                prod *= f.value_at(&full_assignment);
            }
            sum += prod;
        }
        *out_value = sum;
        full_assignment[attr] = None;
        for &m in &out_members {
            full_assignment[m] = None;
        }
    }
    rest.push(Factor { vars: out_vars, cards: out_cards, values: out_values });
    rest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintSet;
    use crate::solver::fit;
    use pka_contingency::{Attribute, ContingencyTable};
    use proptest::prelude::*;

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    fn fitted_model() -> LogLinearModel {
        let t = paper_table();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (2, 1)])).unwrap();
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (1, 0)])).unwrap();
        fit(&constraints).unwrap().0
    }

    #[test]
    fn partition_of_normalised_model_is_one() {
        let model = fitted_model();
        let graph = FactorGraph::from_model(&model);
        assert!((graph.partition() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn elimination_agrees_with_dense_marginals() {
        let model = fitted_model();
        let graph = FactorGraph::from_model(&model);
        let queries = vec![
            Assignment::single(0, 0),
            Assignment::single(1, 1),
            Assignment::from_pairs([(0, 0), (2, 1)]),
            Assignment::from_pairs([(1, 0), (2, 0)]),
            Assignment::from_pairs([(0, 2), (1, 1), (2, 0)]),
            Assignment::empty(),
        ];
        for q in queries {
            let dense = model.probability(&q);
            let eliminated = graph.probability(&q);
            assert!(
                (dense - eliminated).abs() < 1e-9,
                "query {q:?}: dense {dense} vs eliminated {eliminated}"
            );
        }
    }

    #[test]
    fn uniform_model_weights() {
        let schema = Schema::uniform(&[3, 2, 4]).unwrap().into_shared();
        let model = LogLinearModel::uniform(Arc::clone(&schema));
        let graph = FactorGraph::from_model(&model);
        assert!((graph.partition() - 1.0).abs() < 1e-12);
        assert!((graph.probability(&Assignment::single(2, 3)) - 0.25).abs() < 1e-12);
        assert!(
            (graph.probability(&Assignment::from_pairs([(0, 0), (1, 1)])) - 1.0 / 6.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn conditional_via_weights_matches_model() {
        let model = fitted_model();
        let graph = FactorGraph::from_model(&model);
        let target = Assignment::single(1, 0);
        let given = Assignment::from_pairs([(0, 0), (2, 1)]);
        let joint = target.merge(&given).unwrap();
        let via_graph = graph.weight(&joint) / graph.weight(&given);
        let via_model = model.conditional(&target, &given).unwrap();
        assert!((via_graph - via_model).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_elimination_matches_dense_for_random_factors(
            counts in proptest::collection::vec(1u64..25, 12),
            cell in 0usize..12,
            mask in any::<u32>(),
        ) {
            let schema = Schema::uniform(&[3, 2, 2]).unwrap().into_shared();
            let t = ContingencyTable::from_counts(Arc::clone(&schema), counts).unwrap();
            let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
            let cell_values = schema.cell_values(cell);
            let pair = Assignment::project(VarSet::from_indices([0, 2]), &cell_values);
            constraints.add_from_table(&t, pair).unwrap();
            let (model, _) = fit(&constraints).unwrap();
            let graph = FactorGraph::from_model(&model);
            // Random query assignment derived from the mask.
            let vars = VarSet::from_bits(mask).intersection(schema.all_vars());
            let query = Assignment::project(vars, &schema.cell_values(cell));
            prop_assert!((graph.probability(&query) - model.probability(&query)).abs() < 1e-8);
        }
    }
}
