//! Sum-of-products evaluation of the factored model (Appendix B of the
//! memo).
//!
//! The memo's Appendix B observes that the marginal sums needed by the
//! constraint equations — `Σ_i a_i Σ_j a_j a_ij Σ_k a_k a_ik a_jk` and so on
//! (Eq. 89) — can be evaluated by nesting the summations and carrying small
//! matrices, rather than enumerating the full cross-product.  In modern
//! terminology that is **variable elimination** on the factor graph defined
//! by the a-values.  [`FactorGraph`] implements it for arbitrary attribute
//! counts and constraint orders, so marginal (and hence conditional)
//! probabilities can be computed from the model without ever materialising
//! the dense joint — the property that makes the acquired knowledge base a
//! practical query engine when the attribute count grows.
//!
//! ## Elimination order
//!
//! The cost of eliminating a variable is the size of the intermediate table
//! over the union of the scopes that mention it, so the order matters
//! enormously once the constraint graph has structure.  Orders are chosen
//! greedily by **min-fill** (eliminate the variable whose removal adds the
//! fewest new edges between its neighbours in the interaction graph), with
//! **min-degree** breaking ties and the smallest attribute index breaking
//! those — the standard heuristic pair for treewidth-bounded elimination.
//! The largest intermediate scope actually produced is tracked in
//! [`FactorGraph::elimination_width_max`] (the induced width + 1 of the
//! orders used so far), which the serve layer surfaces in `stats.server`.
//!
//! ## Complexity
//!
//! Per elimination the work is `O(Π cards of the intermediate scope)`, so a
//! model whose promoted constraints are low-order (the acquisition
//! procedure's normal output) evaluates in time exponential only in the
//! induced width — independent of the total cell count `Π all cards`.  See
//! `docs/factored.md` for the full complexity model and the dense-ceiling
//! policy that decides when the dense paths are still cheaper.

use crate::model::LogLinearModel;
use pka_contingency::{Assignment, Schema, VarSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A factor: a non-negative function over the value combinations of a small
/// set of attributes, stored densely (ascending attribute order, last
/// attribute varying fastest).
#[derive(Debug, Clone, PartialEq)]
struct Factor {
    vars: VarSet,
    /// Cardinalities of the member attributes, ascending attribute order.
    cards: Vec<usize>,
    values: Vec<f64>,
}

impl Factor {
    /// A scalar factor (empty scope).
    fn scalar(value: f64) -> Self {
        Self { vars: VarSet::empty(), cards: Vec::new(), values: vec![value] }
    }

    fn from_assignment(schema: &Schema, assignment: &Assignment, a: f64) -> Self {
        let vars = assignment.vars();
        let cards: Vec<usize> =
            vars.iter().map(|i| schema.cardinality(i).expect("attr in schema")).collect();
        let size: usize = cards.iter().product::<usize>().max(1);
        let mut values = vec![1.0; size];
        // The factor is `a` at the constrained configuration and 1 elsewhere.
        let idx = Self::index_of(&cards, assignment.values());
        values[idx] = a;
        Self { vars, cards, values }
    }

    fn index_of(cards: &[usize], values: &[usize]) -> usize {
        let mut idx = 0usize;
        for (pos, &v) in values.iter().enumerate() {
            idx = idx * cards[pos] + v;
        }
        idx
    }

    /// Restricts the factor by fixing some attributes to given values,
    /// producing a factor over the remaining ones.
    fn restrict(&self, evidence: &Assignment) -> Factor {
        let fixed = self.vars.intersection(evidence.vars());
        if fixed.is_empty() {
            return self.clone();
        }
        let remaining = self.vars.difference(fixed);
        let rem_members: Vec<usize> = remaining.iter().collect();
        let rem_cards: Vec<usize> = rem_members
            .iter()
            .map(|&attr| {
                let rank = self.vars.rank_of(attr).expect("member of scope");
                self.cards[rank]
            })
            .collect();
        let size: usize = rem_cards.iter().product::<usize>().max(1);
        let mut values = vec![0.0; size];
        let members: Vec<usize> = self.vars.iter().collect();
        // Enumerate the original factor's configurations and keep those that
        // agree with the evidence.
        for idx in 0..self.values.len() {
            let mut cfg = vec![0usize; members.len()];
            let mut rem = idx;
            for pos in (0..members.len()).rev() {
                cfg[pos] = rem % self.cards[pos];
                rem /= self.cards[pos];
            }
            let agrees = members
                .iter()
                .enumerate()
                .all(|(pos, &attr)| evidence.value_of(attr).is_none_or(|v| v == cfg[pos]));
            if !agrees {
                continue;
            }
            let rem_values: Vec<usize> = rem_members
                .iter()
                .map(|&attr| {
                    let pos = self.vars.rank_of(attr).expect("member");
                    cfg[pos]
                })
                .collect();
            values[Self::index_of(&rem_cards, &rem_values)] = self.values[idx];
        }
        Factor { vars: remaining, cards: rem_cards, values }
    }
}

/// Row-major strides over `cards`, last position varying fastest.
fn strides_of(cards: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; cards.len()];
    for i in (0..cards.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * cards[i + 1];
    }
    strides
}

/// Advances `digits` as a mixed-radix odometer over `cards` (last position
/// fastest), matching the row-major enumeration order of the tables.
#[inline]
fn advance(digits: &mut [usize], cards: &[usize]) {
    for pos in (0..digits.len()).rev() {
        digits[pos] += 1;
        if digits[pos] < cards[pos] {
            return;
        }
        digits[pos] = 0;
    }
}

/// A greedy **min-fill** elimination order over `to_eliminate`, computed on
/// the interaction graph of the given factor scopes.
///
/// At every step the variable whose elimination adds the fewest fill edges
/// between its neighbours is chosen; ties are broken by the smaller degree,
/// then by the smaller attribute index (so the order is deterministic).
/// Variables no factor mentions come out first — eliminating them is a
/// scalar multiplication.
pub fn elimination_order(attr_count: usize, scopes: &[VarSet], to_eliminate: VarSet) -> Vec<usize> {
    let mut adj: Vec<VarSet> = vec![VarSet::empty(); attr_count];
    for &scope in scopes {
        for v in scope.iter() {
            adj[v] = adj[v].union(scope.without(v));
        }
    }
    let mut remaining = to_eliminate;
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let mut best = usize::MAX;
        let mut best_key = (usize::MAX, usize::MAX);
        for v in remaining.iter() {
            let neigh = adj[v];
            let degree = neigh.len();
            let members: Vec<usize> = neigh.iter().collect();
            let mut fill = 0usize;
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    if !adj[a].contains(b) {
                        fill += 1;
                    }
                }
            }
            // Strict `<` keeps the smallest index on ties (iteration is
            // ascending).
            if (fill, degree) < best_key {
                best_key = (fill, degree);
                best = v;
            }
        }
        let neigh = adj[best];
        for a in neigh.iter() {
            adj[a] = adj[a].union(neigh).without(a).without(best);
        }
        adj[best] = VarSet::empty();
        remaining = remaining.without(best);
        order.push(best);
    }
    order
}

/// The factored (sum-of-products) view of a [`LogLinearModel`].
///
/// Read paths (`weight` / `probability` / `marginal`) take `&self` and are
/// safe to share across threads; the partition sum is computed once and
/// cached until a factor value changes.
#[derive(Debug)]
pub struct FactorGraph {
    schema: Arc<Schema>,
    a0: f64,
    factors: Vec<Factor>,
    /// Dense index of the constrained configuration inside each factor's
    /// table, parallel to `factors` — the slot the solver's in-place
    /// a-value updates write through.
    anchors: Vec<usize>,
    /// Largest intermediate elimination scope produced so far (the induced
    /// width + 1 of the orders actually run).
    width_max: AtomicUsize,
    /// The partition sum, computed lazily and invalidated by mutation.
    partition_cache: OnceLock<f64>,
}

impl Clone for FactorGraph {
    fn clone(&self) -> Self {
        let partition_cache = OnceLock::new();
        if let Some(&z) = self.partition_cache.get() {
            let _ = partition_cache.set(z);
        }
        Self {
            schema: Arc::clone(&self.schema),
            a0: self.a0,
            factors: self.factors.clone(),
            anchors: self.anchors.clone(),
            width_max: AtomicUsize::new(self.width_max.load(Ordering::Relaxed)),
            partition_cache,
        }
    }
}

impl FactorGraph {
    /// Builds the factor graph of a model: one scalar factor `a0`, one
    /// cell-indicator factor per constraint multiplier.
    pub fn from_model(model: &LogLinearModel) -> Self {
        let schema = model.shared_schema();
        let mut anchors = Vec::with_capacity(model.factor_count());
        let factors = model
            .factors()
            .iter()
            .map(|(assignment, a)| {
                let factor = Factor::from_assignment(&schema, assignment, *a);
                anchors.push(Factor::index_of(&factor.cards, assignment.values()));
                factor
            })
            .collect();
        Self {
            schema,
            a0: model.a0(),
            factors,
            anchors,
            width_max: AtomicUsize::new(0),
            partition_cache: OnceLock::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The schema as a shareable handle.
    pub fn shared_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Number of constraint factors.
    pub fn factor_count(&self) -> usize {
        self.factors.len()
    }

    /// The normalisation multiplier `a0`.
    pub fn a0(&self) -> f64 {
        self.a0
    }

    /// Largest intermediate elimination scope any evaluation on this graph
    /// has produced (0 until the first elimination runs).  A monotone gauge:
    /// the induced width + 1 of the elimination orders actually used.
    pub fn elimination_width_max(&self) -> usize {
        self.width_max.load(Ordering::Relaxed)
    }

    #[inline]
    fn note_width(&self, width: usize) {
        self.width_max.fetch_max(width, Ordering::Relaxed);
    }

    /// Overwrites the a-value of factor `position` (the solver's in-place
    /// update; positions align with [`LogLinearModel::factors`] order).
    pub(crate) fn set_factor_value(&mut self, position: usize, value: f64) {
        let anchor = self.anchors[position];
        self.factors[position].values[anchor] = value;
        self.partition_cache = OnceLock::new();
    }

    /// Overwrites `a0` (the solver's renormalisation step).
    pub(crate) fn set_a0(&mut self, a0: f64) {
        self.a0 = a0;
        self.partition_cache = OnceLock::new();
    }

    /// Unnormalised weight of a partial assignment: the Appendix-B nested
    /// sum `Σ … Π a` restricted to cells consistent with the assignment.
    ///
    /// Divide two such weights to obtain conditionals, or divide by
    /// [`FactorGraph::partition`] for probabilities.
    pub fn weight(&self, evidence: &Assignment) -> f64 {
        // Restrict every factor by the evidence, then eliminate the
        // remaining variables in min-fill order.
        let mut factors: Vec<Factor> = self.factors.iter().map(|f| f.restrict(evidence)).collect();
        let free = self.schema.all_vars().difference(evidence.vars());
        let scopes: Vec<VarSet> = factors.iter().map(|f| f.vars).collect();
        let order = elimination_order(self.schema.len(), &scopes, free);

        let mut width = 0usize;
        for attr in order {
            factors = eliminate(&self.schema, factors, attr, &mut width);
        }
        self.note_width(width);
        // Every remaining factor is now a scalar.
        let product: f64 = factors
            .iter()
            .map(|f| {
                debug_assert!(f.vars.is_empty());
                f.values[0]
            })
            .product();
        self.a0 * product
    }

    /// The partition sum `Σ_x Π a` times `a0`; equals 1 for a normalised
    /// model (Eq. 25 of the memo, `1/a0 = Σ …`).  Computed once and cached
    /// until a factor value changes.
    pub fn partition(&self) -> f64 {
        *self.partition_cache.get_or_init(|| self.weight(&Assignment::empty()))
    }

    /// Marginal probability of a partial assignment computed entirely from
    /// the factors (Appendix B); equal to
    /// [`LogLinearModel::probability`] up to normalisation.
    pub fn probability(&self, assignment: &Assignment) -> f64 {
        let z = self.partition();
        if z <= 0.0 {
            return 0.0;
        }
        self.weight(assignment) / z
    }

    /// Conditional probability `P(target | given)` from two eliminations —
    /// the same contract as [`LogLinearModel::conditional`].
    pub fn conditional(&self, target: &Assignment, given: &Assignment) -> crate::Result<f64> {
        if !target.compatible_with(given) {
            return Err(crate::MaxEntError::InfeasibleConstraints {
                reason: "target and evidence assign different values to a shared attribute"
                    .to_string(),
            });
        }
        let joint = target.merge(given).expect("compatibility checked above");
        let denominator = self.weight(given);
        if denominator <= 0.0 {
            return Err(crate::MaxEntError::ZeroProbabilityEvidence {
                evidence: given.describe(&self.schema),
            });
        }
        Ok(self.weight(&joint) / denominator)
    }

    /// The full **normalised marginal table** over `vars`, computed by
    /// eliminating every other variable (min-fill order) and combining the
    /// surviving factors — never touching the dense joint.
    ///
    /// Values are in row-major order over the ascending member attributes
    /// with the last member varying fastest: the same layout
    /// [`crate::MarginalTable`] stores and
    /// [`pka_contingency::Schema::configurations`] enumerates, so the result
    /// can be zipped against either directly.  A model with zero total mass
    /// yields an all-zero table.
    pub fn marginal(&self, vars: VarSet) -> Vec<f64> {
        let keep = vars.intersection(self.schema.all_vars());
        let scopes: Vec<VarSet> = self.factors.iter().map(|f| f.vars).collect();
        let to_eliminate = self.schema.all_vars().difference(keep);
        let order = elimination_order(self.schema.len(), &scopes, to_eliminate);

        let mut width = keep.len();
        let mut factors = self.factors.clone();
        for attr in order {
            factors = eliminate(&self.schema, factors, attr, &mut width);
        }
        self.note_width(width);

        // Combine the survivors (scopes ⊆ keep) into one dense table.
        let members: Vec<usize> = keep.iter().collect();
        let cards: Vec<usize> =
            members.iter().map(|&a| self.schema.cardinality(a).expect("attr in schema")).collect();
        let size: usize = cards.iter().product::<usize>().max(1);
        let mut values = vec![self.a0; size];
        let mut digits = vec![0usize; members.len()];
        for f in &factors {
            if f.vars.is_empty() {
                let s = f.values[0];
                if s != 1.0 {
                    for x in values.iter_mut() {
                        *x *= s;
                    }
                }
                continue;
            }
            let f_strides = strides_of(&f.cards);
            let member_strides: Vec<usize> = members
                .iter()
                .map(|&m| f.vars.rank_of(m).map_or(0, |rank| f_strides[rank]))
                .collect();
            digits.fill(0);
            for x in values.iter_mut() {
                let idx: usize = digits.iter().zip(&member_strides).map(|(d, s)| d * s).sum();
                *x *= f.values[idx];
                advance(&mut digits, &cards);
            }
        }
        // The table's total is the partition sum restricted to nothing —
        // normalising by it yields probabilities.
        let z: f64 = values.iter().sum();
        if z > 0.0 && z.is_finite() {
            for x in values.iter_mut() {
                *x /= z;
            }
        } else {
            values.iter_mut().for_each(|x| *x = 0.0);
        }
        values
    }
}

/// Sums `attr` out of the product of the factors that mention it, leaving
/// all other factors untouched.  `width` is raised to the intermediate
/// scope's size (eliminated variable included).
fn eliminate(schema: &Schema, factors: Vec<Factor>, attr: usize, width: &mut usize) -> Vec<Factor> {
    let (touching, mut rest): (Vec<Factor>, Vec<Factor>) =
        factors.into_iter().partition(|f| f.vars.contains(attr));
    if touching.is_empty() {
        // Nothing mentions the variable: summing it out multiplies the
        // overall weight by its cardinality.
        let card = schema.cardinality(attr).expect("attr in schema") as f64;
        rest.push(Factor::scalar(card));
        return rest;
    }
    // Scope of the product, minus the eliminated variable.
    let joint_vars = touching.iter().fold(VarSet::empty(), |acc, f| acc.union(f.vars));
    *width = (*width).max(joint_vars.len());
    let out_vars = joint_vars.without(attr);
    let out_members: Vec<usize> = out_vars.iter().collect();
    let out_cards: Vec<usize> =
        out_members.iter().map(|&a| schema.cardinality(a).expect("attr in schema")).collect();
    let out_size: usize = out_cards.iter().product::<usize>().max(1);
    let attr_card = schema.cardinality(attr).expect("attr in schema");

    // Per-factor probes: one stride per surviving member (0 when the factor
    // does not mention it) plus the eliminated variable's stride, so the
    // inner loop is pure index arithmetic — no per-value allocation.
    let probes: Vec<(Vec<usize>, usize)> = touching
        .iter()
        .map(|f| {
            let f_strides = strides_of(&f.cards);
            let member_strides: Vec<usize> = out_members
                .iter()
                .map(|&m| f.vars.rank_of(m).map_or(0, |rank| f_strides[rank]))
                .collect();
            let attr_stride = f_strides[f.vars.rank_of(attr).expect("touching factor has attr")];
            (member_strides, attr_stride)
        })
        .collect();

    let mut out_values = vec![0.0; out_size];
    let mut digits = vec![0usize; out_members.len()];
    for out_value in out_values.iter_mut() {
        let mut sum = 0.0;
        for v in 0..attr_card {
            let mut prod = 1.0;
            for (f, (member_strides, attr_stride)) in touching.iter().zip(&probes) {
                let mut idx = v * attr_stride;
                for (d, s) in digits.iter().zip(member_strides) {
                    idx += d * s;
                }
                prod *= f.values[idx];
            }
            sum += prod;
        }
        *out_value = sum;
        advance(&mut digits, &out_cards);
    }
    rest.push(Factor { vars: out_vars, cards: out_cards, values: out_values });
    rest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintSet;
    use crate::solver::fit;
    use pka_contingency::{Attribute, ContingencyTable};
    use proptest::prelude::*;

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    fn fitted_model() -> LogLinearModel {
        let t = paper_table();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (2, 1)])).unwrap();
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (1, 0)])).unwrap();
        fit(&constraints).unwrap().0
    }

    #[test]
    fn partition_of_normalised_model_is_one() {
        let model = fitted_model();
        let graph = FactorGraph::from_model(&model);
        assert!((graph.partition() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn elimination_agrees_with_dense_marginals() {
        let model = fitted_model();
        let graph = FactorGraph::from_model(&model);
        let queries = vec![
            Assignment::single(0, 0),
            Assignment::single(1, 1),
            Assignment::from_pairs([(0, 0), (2, 1)]),
            Assignment::from_pairs([(1, 0), (2, 0)]),
            Assignment::from_pairs([(0, 2), (1, 1), (2, 0)]),
            Assignment::empty(),
        ];
        for q in queries {
            let dense = model.probability(&q);
            let eliminated = graph.probability(&q);
            assert!(
                (dense - eliminated).abs() < 1e-9,
                "query {q:?}: dense {dense} vs eliminated {eliminated}"
            );
        }
        // Evaluations ran real eliminations, so the width gauge moved.
        assert!(graph.elimination_width_max() >= 1);
    }

    #[test]
    fn uniform_model_weights() {
        let schema = Schema::uniform(&[3, 2, 4]).unwrap().into_shared();
        let model = LogLinearModel::uniform(Arc::clone(&schema));
        let graph = FactorGraph::from_model(&model);
        assert!((graph.partition() - 1.0).abs() < 1e-12);
        assert!((graph.probability(&Assignment::single(2, 3)) - 0.25).abs() < 1e-12);
        assert!(
            (graph.probability(&Assignment::from_pairs([(0, 0), (1, 1)])) - 1.0 / 6.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn conditional_via_weights_matches_model() {
        let model = fitted_model();
        let graph = FactorGraph::from_model(&model);
        let target = Assignment::single(1, 0);
        let given = Assignment::from_pairs([(0, 0), (2, 1)]);
        let joint = target.merge(&given).unwrap();
        let via_graph = graph.weight(&joint) / graph.weight(&given);
        let via_model = model.conditional(&target, &given).unwrap();
        assert!((via_graph - via_model).abs() < 1e-9);
        // The convenience method agrees too.
        let direct = graph.conditional(&target, &given).unwrap();
        assert!((direct - via_model).abs() < 1e-9);
    }

    #[test]
    fn conditional_error_contract_matches_model() {
        let model = fitted_model();
        let graph = FactorGraph::from_model(&model);
        // Incompatible target/evidence.
        assert!(graph.conditional(&Assignment::single(0, 1), &Assignment::single(0, 0)).is_err());
    }

    #[test]
    fn marginal_tables_match_dense_joint() {
        let model = fitted_model();
        let graph = FactorGraph::from_model(&model);
        let schema = model.shared_schema();
        let joint = model.to_joint();
        for bits in 0..(1u32 << schema.len()) {
            let vars = VarSet::from_bits(bits);
            let table = graph.marginal(vars);
            assert_eq!(table.len(), schema.cell_count_of(vars).max(1));
            for (values, p) in schema.configurations(vars).zip(&table) {
                let a = Assignment::new(vars, values.clone());
                let dense = joint.probability(&a);
                assert!(
                    (dense - p).abs() < 1e-9,
                    "marginal {vars} at {values:?}: dense {dense} vs factored {p}"
                );
            }
        }
    }

    #[test]
    fn min_fill_order_eliminates_isolated_vars_first_and_keeps_width_low() {
        // A chain 0–1, 1–2, 2–3 plus an isolated variable 4: min-fill
        // eliminates endpoints/isolates before chain interiors, and the
        // induced width of a chain is 1 (intermediate scopes of ≤ 2 vars).
        let scopes = vec![
            VarSet::from_indices([0, 1]),
            VarSet::from_indices([1, 2]),
            VarSet::from_indices([2, 3]),
        ];
        let order = elimination_order(5, &scopes, VarSet::from_indices([0, 1, 2, 3, 4]));
        assert_eq!(order.len(), 5);
        // Isolated 4 (degree 0) comes first; every chain variable has fill 0
        // from an endpoint inwards, so 0 precedes 1 and the order never
        // eliminates an interior before one of its remaining neighbours.
        assert_eq!(order[0], 4);
        assert!(order.iter().position(|&v| v == 0) < order.iter().position(|&v| v == 1));

        // On a real chain model the tracked width stays ≤ 2.
        let schema = Schema::uniform(&[2, 2, 2, 2, 2]).unwrap().into_shared();
        let mut factors = Vec::new();
        for (i, pair) in [(0, 1), (1, 2), (2, 3)].iter().enumerate() {
            factors.push((Assignment::from_pairs([(pair.0, 0), (pair.1, 0)]), 1.5 + i as f64));
        }
        let mut model = LogLinearModel::from_factors(schema, 1.0, factors).unwrap();
        model.normalize().unwrap();
        let graph = FactorGraph::from_model(&model);
        let _ = graph.partition();
        assert!(
            graph.elimination_width_max() <= 2,
            "chain width {}",
            graph.elimination_width_max()
        );
    }

    #[test]
    fn in_place_updates_track_the_model() {
        let mut model = fitted_model();
        let mut graph = FactorGraph::from_model(&model);
        let _ = graph.partition(); // populate the cache, then invalidate it
        model.scale_factor(0, 1.75);
        graph.set_factor_value(0, model.factors()[0].1);
        model.scale_a0(0.5);
        graph.set_a0(model.a0());
        let fresh = FactorGraph::from_model(&model);
        let probe = Assignment::from_pairs([(0, 0), (1, 0)]);
        assert_eq!(graph.weight(&probe).to_bits(), fresh.weight(&probe).to_bits());
        assert!((graph.partition() - fresh.partition()).abs() < 1e-15);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_elimination_matches_dense_for_random_factors(
            counts in proptest::collection::vec(1u64..25, 12),
            cell in 0usize..12,
            mask in any::<u32>(),
        ) {
            let schema = Schema::uniform(&[3, 2, 2]).unwrap().into_shared();
            let t = ContingencyTable::from_counts(Arc::clone(&schema), counts).unwrap();
            let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
            let cell_values = schema.cell_values(cell);
            let pair = Assignment::project(VarSet::from_indices([0, 2]), &cell_values);
            constraints.add_from_table(&t, pair).unwrap();
            let (model, _) = fit(&constraints).unwrap();
            let graph = FactorGraph::from_model(&model);
            // Random query assignment derived from the mask.
            let vars = VarSet::from_bits(mask).intersection(schema.all_vars());
            let query = Assignment::project(vars, &schema.cell_values(cell));
            prop_assert!((graph.probability(&query) - model.probability(&query)).abs() < 1e-8);
            // The full marginal table over the same varset agrees cell by cell.
            let table = graph.marginal(vars);
            for (values, p) in schema.configurations(vars).zip(&table) {
                let a = Assignment::new(vars, values.clone());
                prop_assert!((model.to_joint().probability(&a) - p).abs() < 1e-8);
            }
        }
    }
}
