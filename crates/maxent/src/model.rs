//! The a-value (log-linear) product form of the maximum-entropy
//! distribution — the memo's Eqs. 12–13 and its "general formula".

use crate::error::MaxEntError;
use crate::joint::JointDistribution;
use crate::Result;
use pka_contingency::{Assignment, Schema};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// The maximum-entropy joint distribution in product ("a-value") form:
///
/// ```text
/// p(x) = a0 · Π { a_c : constraint cell c is consistent with x }
/// ```
///
/// There is one multiplier per constraint cell plus the normaliser `a0`
/// (the memo's Eq. 12, with `a0 = e^{-w0}` from Eq. 13).  The model is the
/// compact artefact the acquisition procedure outputs: every probability
/// relation associated with the data can be computed from it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogLinearModel {
    schema: Arc<Schema>,
    a0: f64,
    factors: Vec<(Assignment, f64)>,
    #[serde(skip)]
    index: HashMap<Assignment, usize>,
}

impl LogLinearModel {
    /// The uniform distribution over the schema's cells: no factors,
    /// `a0 = 1 / (number of cells)`.
    pub fn uniform(schema: Arc<Schema>) -> Self {
        let a0 = 1.0 / schema.cell_count() as f64;
        Self { schema, a0, factors: Vec::new(), index: HashMap::new() }
    }

    /// Builds a model from explicit factors.  Factor values must be
    /// non-negative and finite; `a0` must be positive and finite.
    pub fn from_factors(
        schema: Arc<Schema>,
        a0: f64,
        factors: Vec<(Assignment, f64)>,
    ) -> Result<Self> {
        if !(a0 > 0.0) || !a0.is_finite() {
            return Err(MaxEntError::InvalidProbability {
                value: a0,
                constraint: "a0".to_string(),
            });
        }
        for (a, v) in &factors {
            if !(*v >= 0.0) || !v.is_finite() {
                return Err(MaxEntError::InvalidProbability {
                    value: *v,
                    constraint: a.describe(&schema),
                });
            }
            Assignment::checked_new(&schema, a.vars(), a.values().to_vec())?;
        }
        let index = factors.iter().enumerate().map(|(i, (a, _))| (a.clone(), i)).collect();
        Ok(Self { schema, a0, factors, index })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The schema as a shareable handle.
    pub fn shared_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// The normalisation multiplier `a0`.
    pub fn a0(&self) -> f64 {
        self.a0
    }

    /// The constraint multipliers in insertion order.
    pub fn factors(&self) -> &[(Assignment, f64)] {
        &self.factors
    }

    /// Number of constraint multipliers.
    pub fn factor_count(&self) -> usize {
        self.factors.len()
    }

    /// The multiplier attached to a constraint cell, if present.
    pub fn factor_of(&self, assignment: &Assignment) -> Option<f64> {
        self.index.get(assignment).map(|&i| self.factors[i].1)
    }

    /// Ensures a multiplier exists for the cell, inserting `1.0` (a neutral
    /// factor) if missing, and returns its position.  The solver uses this
    /// when warm-starting from a model fitted with fewer constraints — the
    /// memo's "add to the current a's a new a associated with the most
    /// significant N" (Figure 4).
    pub fn ensure_factor(&mut self, assignment: &Assignment) -> usize {
        if let Some(&i) = self.index.get(assignment) {
            return i;
        }
        self.factors.push((assignment.clone(), 1.0));
        let i = self.factors.len() - 1;
        self.index.insert(assignment.clone(), i);
        i
    }

    /// Multiplies one factor by `ratio` (the solver's update step).
    pub fn scale_factor(&mut self, position: usize, ratio: f64) {
        self.factors[position].1 *= ratio;
    }

    /// Raises every factor below `floor` up to it, returning the number of
    /// factors lifted.
    ///
    /// Boundary maximum-entropy solutions drive some factors towards zero;
    /// a model taken from such a fit assigns those cells **exactly** zero
    /// mass (to floating-point precision), and the multiplicative update can
    /// never lift a zero cell again.  Warm starts over *shifted* data
    /// therefore "resurrect" near-zero factors to a tiny positive floor
    /// first — the model stays next to the old solution, but every cell is
    /// reachable again if the new counts demand it.
    pub fn floor_factors(&mut self, floor: f64) -> usize {
        debug_assert!(floor > 0.0 && floor.is_finite());
        let mut lifted = 0;
        for (_, v) in &mut self.factors {
            if *v < floor {
                *v = floor;
                lifted += 1;
            }
        }
        lifted
    }

    /// Multiplies `a0` by `ratio` (the solver's renormalisation step).
    pub fn scale_a0(&mut self, ratio: f64) {
        self.a0 *= ratio;
    }

    /// The unnormalised product of factors for a full cell assignment
    /// (everything in Eq. 12 except `a0`).
    pub fn cell_weight(&self, values: &[usize]) -> f64 {
        let mut w = 1.0;
        for (assignment, a) in &self.factors {
            if assignment.matches(values) {
                w *= a;
            }
        }
        w
    }

    /// The model's probability for a full cell assignment (Eq. 12).
    pub fn cell_probability(&self, values: &[usize]) -> f64 {
        self.a0 * self.cell_weight(values)
    }

    /// The dense image of the model: one (unnormalised) probability per
    /// cell, in dense-index order, built by *scatter* — fill with `a0`,
    /// then scale each factor's covered cells via stride arithmetic.
    /// `O(cells + Σ covered cells)` instead of an `O(factors)` product per
    /// cell; this is how the solver and [`LogLinearModel::to_joint`] build
    /// their working vectors.
    pub fn dense_probabilities(&self) -> Vec<f64> {
        let mut p = vec![self.a0; self.schema.cell_count()];
        for (assignment, value) in &self.factors {
            if *value != 1.0 {
                for i in self.schema.matching_cells(assignment) {
                    p[i] *= value;
                }
            }
        }
        p
    }

    /// The model's probability of a marginal cell (partial assignment):
    /// the sum of the cell probabilities consistent with it, summed over
    /// the covered cells by stride arithmetic.
    ///
    /// This is the dense evaluation; [`crate::elimination::FactorGraph`]
    /// computes the same quantity by the Appendix-B sum-of-products scheme.
    pub fn probability(&self, assignment: &Assignment) -> f64 {
        let mut scratch = vec![0usize; self.schema.len()];
        self.schema
            .matching_cells(assignment)
            .map(|i| {
                let mut index = i;
                for (value, &stride) in scratch.iter_mut().zip(self.schema.strides()) {
                    *value = index / stride;
                    index %= stride;
                }
                self.cell_probability(&scratch)
            })
            .sum()
    }

    /// Conditional probability `P(target | given)`, the memo's
    /// `P(A | B, C) = P(A, B, C) / P(B, C)`.
    ///
    /// The two assignments must be compatible (agree on shared attributes).
    pub fn conditional(&self, target: &Assignment, given: &Assignment) -> Result<f64> {
        if !target.compatible_with(given) {
            return Err(MaxEntError::InfeasibleConstraints {
                reason: "target and evidence assign different values to a shared attribute"
                    .to_string(),
            });
        }
        let joint = target.merge(given).expect("compatibility checked above");
        let denominator = self.probability(given);
        if denominator <= 0.0 {
            return Err(MaxEntError::ZeroProbabilityEvidence {
                evidence: given.describe(&self.schema),
            });
        }
        Ok(self.probability(&joint) / denominator)
    }

    /// Sum of all cell probabilities (should be 1 after a successful fit).
    pub fn total_mass(&self) -> f64 {
        self.dense_probabilities().iter().sum()
    }

    /// Rescales `a0` so the cell probabilities sum to exactly one.
    pub fn normalize(&mut self) -> Result<()> {
        let z = self.total_mass();
        if !(z > 0.0) || !z.is_finite() {
            return Err(MaxEntError::InfeasibleConstraints {
                reason: format!("cannot normalise a model with total mass {z}"),
            });
        }
        self.a0 /= z;
        Ok(())
    }

    /// Materialises the model as a dense [`JointDistribution`], via the
    /// scatter build of [`LogLinearModel::dense_probabilities`].
    pub fn to_joint(&self) -> JointDistribution {
        JointDistribution::from_unnormalized(Arc::clone(&self.schema), self.dense_probabilities())
    }

    /// Rebuilds the internal factor index; needed after deserialisation.
    pub fn rebuild_index(&mut self) {
        self.index = self.factors.iter().enumerate().map(|(i, (a, _))| (a.clone(), i)).collect();
    }
}

impl PartialEq for LogLinearModel {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.a0 == other.a0 && self.factors == other.factors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::Attribute;
    use proptest::prelude::*;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared()
    }

    /// The independence model of the paper's Eq. 61: first-order factors
    /// equal to the marginal probabilities, a0 = 1.
    fn independence_model() -> LogLinearModel {
        let s = schema();
        let pa = [0.376, 0.331, 0.293];
        let pb = [0.126, 0.874];
        let pc = [0.519, 0.481];
        let mut factors = Vec::new();
        for (v, &p) in pa.iter().enumerate() {
            factors.push((Assignment::single(0, v), p));
        }
        for (v, &p) in pb.iter().enumerate() {
            factors.push((Assignment::single(1, v), p));
        }
        for (v, &p) in pc.iter().enumerate() {
            factors.push((Assignment::single(2, v), p));
        }
        LogLinearModel::from_factors(s, 1.0, factors).unwrap()
    }

    #[test]
    fn uniform_model_is_uniform() {
        let m = LogLinearModel::uniform(schema());
        assert_eq!(m.factor_count(), 0);
        let p = m.cell_probability(&[0, 0, 0]);
        assert!((p - 1.0 / 12.0).abs() < 1e-15);
        assert!((m.total_mass() - 1.0).abs() < 1e-12);
        assert!((m.probability(&Assignment::single(1, 0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_factors_validates() {
        let s = schema();
        assert!(LogLinearModel::from_factors(Arc::clone(&s), 0.0, vec![]).is_err());
        assert!(LogLinearModel::from_factors(Arc::clone(&s), f64::NAN, vec![]).is_err());
        let bad_factor = vec![(Assignment::single(0, 0), -1.0)];
        assert!(LogLinearModel::from_factors(Arc::clone(&s), 1.0, bad_factor).is_err());
        let bad_cell = vec![(Assignment::single(0, 9), 1.0)];
        assert!(LogLinearModel::from_factors(s, 1.0, bad_cell).is_err());
    }

    #[test]
    fn independence_model_reproduces_eq_61_and_62() {
        let m = independence_model();
        // Eq. 61: p_ijk = p_i p_j p_k.
        let p = m.cell_probability(&[0, 0, 0]);
        assert!((p - 0.376 * 0.126 * 0.519).abs() < 1e-12);
        // Eq. 62: p^AB_ij = p_i p_j.
        let p = m.probability(&Assignment::from_pairs([(0, 0), (1, 0)]));
        assert!((p - 0.376 * 0.126).abs() < 1e-9);
        // The a-values of Eq. 60 normalise to total mass 1 because the
        // first-order probabilities sum to one per attribute.
        assert!((m.total_mass() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn factor_lookup_and_mutation() {
        let mut m = independence_model();
        let cell = Assignment::from_pairs([(0, 0), (2, 1)]);
        assert_eq!(m.factor_of(&cell), None);
        let pos = m.ensure_factor(&cell);
        assert_eq!(m.factor_of(&cell), Some(1.0));
        // Ensuring again returns the same slot.
        assert_eq!(m.ensure_factor(&cell), pos);
        m.scale_factor(pos, 1.25);
        assert!((m.factor_of(&cell).unwrap() - 1.25).abs() < 1e-15);
        m.scale_a0(0.5);
        assert!((m.a0() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn conditional_probabilities() {
        let m = independence_model();
        // Under independence, P(cancer=yes | smoking=smoker) = p^B_1.
        let p = m.conditional(&Assignment::single(1, 0), &Assignment::single(0, 0)).unwrap();
        assert!((p - 0.126).abs() < 1e-9);
        // Incompatible target/evidence is an error.
        let err = m.conditional(&Assignment::single(0, 1), &Assignment::single(0, 0));
        assert!(err.is_err());
    }

    #[test]
    fn conditional_with_zero_evidence_is_error() {
        let s = schema();
        // A model in which smoking=smoker has zero probability.
        let factors = vec![(Assignment::single(0, 0), 0.0)];
        let mut m = LogLinearModel::from_factors(s, 1.0, factors).unwrap();
        m.normalize().unwrap();
        let err = m.conditional(&Assignment::single(1, 0), &Assignment::single(0, 0));
        assert!(matches!(err, Err(MaxEntError::ZeroProbabilityEvidence { .. })));
    }

    #[test]
    fn normalize_fixes_total_mass() {
        let s = schema();
        let factors = vec![(Assignment::single(1, 0), 3.0)];
        let mut m = LogLinearModel::from_factors(s, 1.0, factors).unwrap();
        assert!(m.total_mass() > 1.0);
        m.normalize().unwrap();
        assert!((m.total_mass() - 1.0).abs() < 1e-12);
        // A model with all-zero factors cannot be normalised.
        let s = schema();
        let zero = vec![(Assignment::single(1, 0), 0.0), (Assignment::single(1, 1), 0.0)];
        let mut z = LogLinearModel::from_factors(s, 1.0, zero).unwrap();
        assert!(z.normalize().is_err());
    }

    #[test]
    fn dense_probabilities_match_per_cell_evaluation() {
        // The scatter build must agree with evaluating the factor product
        // per cell (the old construction) at every dense index.
        let mut m = independence_model();
        m.ensure_factor(&Assignment::from_pairs([(0, 0), (2, 1)]));
        m.scale_factor(m.factor_count() - 1, 1.75);
        let dense = m.dense_probabilities();
        for (i, values) in m.schema().cells().enumerate() {
            assert!((dense[i] - m.cell_probability(&values)).abs() < 1e-15);
        }
    }

    #[test]
    fn to_joint_matches_cell_probabilities() {
        let m = independence_model();
        let j = m.to_joint();
        for values in m.schema().cells() {
            let expected = m.cell_probability(&values) / m.total_mass();
            assert!((j.probability_of_values(&values) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn rebuild_index_after_clearing() {
        let mut m = independence_model();
        m.index.clear();
        assert_eq!(m.factor_of(&Assignment::single(0, 0)), None);
        m.rebuild_index();
        assert!(m.factor_of(&Assignment::single(0, 0)).is_some());
    }

    proptest! {
        #[test]
        fn prop_marginals_consistent_with_cells(
            fa in 0.1f64..2.0,
            fb in 0.1f64..2.0,
            fab in 0.1f64..3.0,
        ) {
            // Arbitrary positive factors still yield a distribution whose
            // marginal over an assignment equals the sum of its matching
            // cells after normalisation.
            let s = schema();
            let factors = vec![
                (Assignment::single(0, 0), fa),
                (Assignment::single(1, 1), fb),
                (Assignment::from_pairs([(0, 0), (1, 1)]), fab),
            ];
            let mut m = LogLinearModel::from_factors(s, 1.0, factors).unwrap();
            m.normalize().unwrap();
            let a = Assignment::from_pairs([(0, 0), (1, 1)]);
            let direct = m.probability(&a);
            let summed: f64 = m
                .schema()
                .cells()
                .filter(|v| a.matches(v))
                .map(|v| m.cell_probability(&v))
                .sum();
            prop_assert!((direct - summed).abs() < 1e-12);
            prop_assert!((m.total_mass() - 1.0).abs() < 1e-9);
        }
    }
}
