//! The snapshot-resident marginal lattice: every marginal table up to a
//! cutoff order, materialised once so queries become table lookups.
//!
//! The serve read path answers `P(target | evidence)` by Bayes' identity
//! from up to three marginal probabilities.  Computed against the dense
//! joint each one is a stride walk over `∏ free cardinalities` cells;
//! computed against a [`MarginalLattice`] each one is **one mixed-radix
//! index computation plus one array load** whenever the assignment's
//! variable set has order at most `k` — which is where the constraints the
//! acquisition procedure promotes, and the queries users ask, live.
//!
//! ## Build invariant (see also `pka_contingency::lattice`)
//!
//! The lattice is built at snapshot-publish time from the dense joint by
//! executing [`pka_contingency::lattice_plan`]:
//!
//! * tables are materialised in **descending order** of their variable-set
//!   size, so each table's parent exists before the table is built;
//! * only the **top-order** tables (`min(k, R)` variables) are summed
//!   straight off the joint — every smaller table is a *single-axis*
//!   summation from its cheapest already-materialised parent (the
//!   extension variable with the smallest cardinality, ties broken on the
//!   smallest index), never a fresh pass over the joint;
//! * the publish-time cost is therefore `C(R, k)` passes over the joint
//!   plus the sum of the parent-table sizes below the top order — for the
//!   default `k = 2` a few joint sweeps, amortised over every query the
//!   snapshot answers.
//!
//! Each table stores probabilities in row-major order over its member
//! attributes (ascending attribute index, last member varying fastest),
//! the same alignment [`Assignment::values`] uses — so a lookup is
//! `Σ values[rank] · strides[rank]` with no re-sorting.

use crate::elimination::FactorGraph;
use crate::joint::JointDistribution;
use pka_contingency::{lattice_plan, Assignment, LatticeParent, Schema, VarSet};
use std::collections::HashMap;
use std::sync::Arc;

/// The default cutoff order: second-order tables cover the first-order
/// marginals plus every pairwise joint — the order most promoted
/// constraints and most user queries live at.
pub const DEFAULT_LATTICE_ORDER: usize = 2;

/// One materialised marginal table over a subset of the attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginalTable {
    vars: VarSet,
    /// Member attribute indices, ascending (the [`Assignment`] value order).
    members: Vec<usize>,
    /// Cardinality of each member attribute.
    cards: Vec<usize>,
    /// Row-major strides over the members, last member varying fastest.
    strides: Vec<usize>,
    probabilities: Vec<f64>,
}

impl MarginalTable {
    fn layout(schema: &Schema, vars: VarSet) -> Self {
        let members: Vec<usize> = vars.iter().collect();
        let cards: Vec<usize> = members
            .iter()
            .map(|&a| schema.cardinality(a).expect("lattice vars come from the schema"))
            .collect();
        let mut strides = vec![1usize; members.len()];
        for i in (0..members.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * cards[i + 1];
        }
        let cells = cards.iter().product::<usize>().max(1);
        Self { vars, members, cards, strides, probabilities: vec![0.0; cells] }
    }

    /// Sums the dense joint down to this table's variable set in one pass.
    fn fill_from_joint(&mut self, joint: &JointDistribution) {
        let joint_strides = joint.schema().strides();
        for (i, &p) in joint.probabilities().iter().enumerate() {
            let mut idx = 0usize;
            for (pos, &attr) in self.members.iter().enumerate() {
                idx += ((i / joint_strides[attr]) % self.cards[pos]) * self.strides[pos];
            }
            self.probabilities[idx] += p;
        }
    }

    /// Fills the table from a [`FactorGraph`] marginal: variable
    /// elimination down to this table's variable set, never touching the
    /// dense joint.  The elimination output uses exactly this table's
    /// row-major layout (ascending members, last member fastest), so the
    /// fill is a straight copy.
    fn fill_from_graph(&mut self, graph: &FactorGraph) {
        let values = graph.marginal(self.vars);
        debug_assert_eq!(values.len(), self.probabilities.len());
        self.probabilities = values;
    }

    /// Sums a parent table (this table's variable set plus `sum_out`) down
    /// by the one extra axis, in one pass over the parent.
    fn fill_from_parent(&mut self, parent: &MarginalTable, sum_out: usize) {
        let rank = parent.vars.rank_of(sum_out).expect("parent contains the summed-out axis");
        let stride = parent.strides[rank];
        let block = stride * parent.cards[rank];
        for (pi, &p) in parent.probabilities.iter().enumerate() {
            // Dropping the digit at `rank`: everything above it shifts down
            // by the summed-out cardinality, everything below is untouched.
            self.probabilities[(pi / block) * stride + pi % stride] += p;
        }
    }

    /// The variable set this table is over.
    pub fn vars(&self) -> VarSet {
        self.vars
    }

    /// The table's order (number of member attributes).
    pub fn order(&self) -> usize {
        self.members.len()
    }

    /// Number of cells in the table.
    pub fn cell_count(&self) -> usize {
        self.probabilities.len()
    }

    /// The cell probabilities in row-major member order.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Probability of the cell named by one value per member (ascending
    /// attribute order).  Out-of-range values cover no cells and yield 0,
    /// mirroring the stride walk's contract.
    pub fn probability_of_values(&self, values: &[usize]) -> f64 {
        debug_assert_eq!(values.len(), self.members.len());
        let mut idx = 0usize;
        for (pos, &v) in values.iter().enumerate() {
            if v >= self.cards[pos] {
                return 0.0;
            }
            idx += v * self.strides[pos];
        }
        self.probabilities[idx]
    }
}

/// Cap on the dense bits→table lookup table: schemas with at most this many
/// attributes resolve a varset to its table with **one array load** (the
/// lookup vector has `2^attrs` entries — 64 KiB of `u32` at 16 attributes,
/// the largest acceptable per-snapshot cost).  Wider schemas — reachable
/// since factored evaluation broke the dense-joint ceiling — fall back to
/// the `HashMap` path of [`MarginalLattice::position`]; both paths answer
/// identically (covered in this module's tests at 17+ attributes).
pub const MAX_DENSE_LOOKUP_VARS: usize = 16;

/// All marginal tables of a joint distribution up to a cutoff order `k`,
/// keyed by variable set.
///
/// Build once per published snapshot with [`MarginalLattice::build`]; then
/// [`MarginalLattice::probability`] answers any assignment whose variable
/// set is covered with one lookup, returning `None` (caller falls back to
/// the stride walk) otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginalLattice {
    schema: Arc<Schema>,
    max_order: usize,
    index: HashMap<VarSet, usize>,
    /// `varset bits → table position + 1` (0 = not covered), populated for
    /// schemas of at most [`MAX_DENSE_LOOKUP_VARS`] attributes; the hot
    /// [`MarginalLattice::probability`] path resolves through this with
    /// one load, falling back to the hash map only on huge schemas.
    dense_lookup: Vec<u32>,
    tables: Vec<MarginalTable>,
}

impl MarginalLattice {
    /// Materialises every marginal table of `joint` up to order
    /// `max_order`, executing the plan of [`pka_contingency::lattice_plan`]
    /// (top-order tables from the joint, everything below by single-axis
    /// summation from its cheapest parent — the build invariant in the
    /// module docs).
    pub fn build(joint: &JointDistribution, max_order: usize) -> Self {
        Self::build_with(joint.shared_schema(), max_order, |table| table.fill_from_joint(joint))
    }

    /// Materialises the same lattice **without the dense joint**: every
    /// top-order table is computed by [`FactorGraph::marginal`] (variable
    /// elimination down to the planned varset), everything below still by
    /// single-axis summation from its cheapest parent.  The build cost is
    /// `C(R, k)` eliminations instead of `C(R, k)` passes over `Π cards`
    /// cells — which is what makes publish affordable above the dense
    /// ceiling.  For any normalised model, `build` of its joint and
    /// `build_factored` of its graph agree table-by-table (property-tested
    /// in this module and in `tests/lattice_equivalence.rs`).
    pub fn build_factored(graph: &FactorGraph, max_order: usize) -> Self {
        Self::build_with(graph.shared_schema(), max_order, |table| table.fill_from_graph(graph))
    }

    fn build_with(
        schema: Arc<Schema>,
        max_order: usize,
        mut fill_top: impl FnMut(&mut MarginalTable),
    ) -> Self {
        let plan = lattice_plan(&schema, max_order);
        let mut index = HashMap::with_capacity(plan.len());
        let mut tables = Vec::with_capacity(plan.len());
        for step in plan {
            let mut table = MarginalTable::layout(&schema, step.vars);
            match step.parent {
                LatticeParent::Joint => fill_top(&mut table),
                LatticeParent::Table { vars, sum_out } => {
                    let parent_pos =
                        *index.get(&vars).expect("plan materialises parents before children");
                    // Split borrow: the parent lives earlier in `tables`.
                    let parent: &MarginalTable = &tables[parent_pos];
                    table.fill_from_parent(parent, sum_out);
                }
            }
            index.insert(step.vars, tables.len());
            tables.push(table);
        }
        let max_order = max_order.min(schema.len());
        let dense_lookup = if schema.len() <= MAX_DENSE_LOOKUP_VARS {
            let mut lookup = vec![0u32; 1 << schema.len()];
            for (vars, &pos) in &index {
                lookup[vars.bits() as usize] = pos as u32 + 1;
            }
            lookup
        } else {
            Vec::new()
        };
        Self { schema, max_order, index, dense_lookup, tables }
    }

    /// Table position of a varset, or `None` when uncovered — one array
    /// load on ordinarily-sized schemas.
    #[inline]
    fn position(&self, vars: VarSet) -> Option<usize> {
        if self.dense_lookup.is_empty() {
            return self.index.get(&vars).copied();
        }
        let bits = vars.bits() as usize;
        if bits >= self.dense_lookup.len() {
            return None;
        }
        (self.dense_lookup[bits] as usize).checked_sub(1)
    }

    /// The schema the lattice is over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The cutoff order the lattice was built with (capped at the number of
    /// attributes).
    pub fn max_order(&self) -> usize {
        self.max_order
    }

    /// Number of materialised tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total cells across every materialised table — the snapshot-resident
    /// memory cost of the lattice.
    pub fn total_cells(&self) -> usize {
        self.tables.iter().map(MarginalTable::cell_count).sum()
    }

    /// True if assignments over `vars` are answered by a lattice table.
    pub fn covers(&self, vars: VarSet) -> bool {
        self.position(vars).is_some()
    }

    /// The materialised table over `vars`, if covered.
    pub fn table(&self, vars: VarSet) -> Option<&MarginalTable> {
        self.position(vars).map(|i| &self.tables[i])
    }

    /// Marginal probability of a partial assignment: one index computation
    /// plus one lookup when the assignment's variable set is covered,
    /// `None` (fall back to the stride walk) when it is not.
    ///
    /// Covered assignments with out-of-range values yield `Some(0.0)` —
    /// they match no cell, the same contract as
    /// [`JointDistribution::probability`].
    #[inline]
    pub fn probability(&self, assignment: &Assignment) -> Option<f64> {
        let pos = self.position(assignment.vars())?;
        Some(self.tables[pos].probability_of_values(assignment.values()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{Attribute, ContingencyTable};

    fn paper_joint() -> JointDistribution {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        let t = ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap();
        JointDistribution::empirical(&t)
    }

    #[test]
    fn lattice_tables_match_figure_2() {
        let joint = paper_joint();
        let lattice = MarginalLattice::build(&joint, 2);
        assert_eq!(lattice.table_count(), 7);
        assert_eq!(lattice.max_order(), 2);
        // Figure 2c: N^{AB}_{11} = 240 of 3428.
        let ab = Assignment::from_pairs([(0, 0), (1, 0)]);
        assert!((lattice.probability(&ab).unwrap() - 240.0 / 3428.0).abs() < 1e-12);
        // First-order: N^A_1 = 1290.
        let a = Assignment::single(0, 0);
        assert!((lattice.probability(&a).unwrap() - 1290.0 / 3428.0).abs() < 1e-12);
        // Order 0: the grand total.
        assert!((lattice.probability(&Assignment::empty()).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncovered_varsets_fall_through() {
        let joint = paper_joint();
        let lattice = MarginalLattice::build(&joint, 2);
        // Order 3 is above the cutoff.
        let abc = Assignment::from_pairs([(0, 0), (1, 0), (2, 0)]);
        assert_eq!(lattice.probability(&abc), None);
        assert!(!lattice.covers(abc.vars()));
        // Out-of-schema attributes are not covered either.
        assert_eq!(lattice.probability(&Assignment::single(9, 0)), None);
        // Covered varset with an out-of-range value matches nothing.
        assert_eq!(lattice.probability(&Assignment::single(0, 99)), Some(0.0));
    }

    #[test]
    fn every_table_agrees_with_the_stride_walk_and_sums_to_one() {
        let joint = paper_joint();
        let lattice = MarginalLattice::build(&joint, 3);
        assert_eq!(lattice.table_count(), 8);
        for table in lattice.tables.iter() {
            let total: f64 = table.probabilities().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "table {} sums to {total}", table.vars());
            for vars_values in joint.schema().configurations(table.vars()) {
                let a = Assignment::new(table.vars(), vars_values.clone());
                let fast = lattice.probability(&a).unwrap();
                assert!((fast - joint.probability(&a)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bayes_identity_resolves_from_lattice_lookups() {
        // The conditional path the serve layer and KnowledgeBase use:
        // evidence, merged and prior each one lattice lookup.
        let joint = paper_joint();
        let lattice = MarginalLattice::build(&joint, 2);
        let target = Assignment::single(1, 0);
        let evidence = Assignment::single(0, 0);
        let merged = target.merge(&evidence).unwrap();
        let p = lattice.probability(&merged).unwrap() / lattice.probability(&evidence).unwrap();
        assert!((p - 240.0 / 1290.0).abs() < 1e-12);
        // An order-3 merge is uncovered, so Bayes' identity falls back to
        // the stride walk for its numerator.
        let wide = Assignment::from_pairs([(1, 0), (2, 0)]);
        assert_eq!(lattice.probability(&wide.merge(&evidence).unwrap()), None);
    }

    #[test]
    fn memory_cost_is_the_small_tables_only() {
        let joint = paper_joint();
        let lattice = MarginalLattice::build(&joint, 2);
        // 3·2 + 3·2 + 2·2 second-order + 3 + 2 + 2 first-order + 1.
        assert_eq!(lattice.total_cells(), 16 + 7 + 1);
    }

    /// A small fitted model with pairwise structure for the factored-build
    /// equivalence tests.
    fn fitted_model(cards: &[usize]) -> crate::LogLinearModel {
        use crate::constraint::ConstraintSet;
        let schema = Schema::uniform(cards).unwrap().into_shared();
        let counts: Vec<u64> =
            (0..schema.cell_count()).map(|i| 1 + ((i as u64 * 7 + 3) % 23)).collect();
        let t = ContingencyTable::from_counts(Arc::clone(&schema), counts).unwrap();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (1, 1)])).unwrap();
        crate::solver::fit(&constraints).unwrap().0
    }

    #[test]
    fn factored_build_matches_dense_build_table_by_table() {
        let model = fitted_model(&[3, 2, 2, 3]);
        let joint = model.to_joint();
        let graph = FactorGraph::from_model(&model);
        for order in 1..=3 {
            let dense = MarginalLattice::build(&joint, order);
            let factored = MarginalLattice::build_factored(&graph, order);
            assert_eq!(dense.table_count(), factored.table_count());
            for table in &dense.tables {
                let other = factored.table(table.vars()).expect("same coverage");
                for (a, b) in table.probabilities().iter().zip(other.probabilities()) {
                    assert!(
                        (a - b).abs() < 1e-9,
                        "order {order}, table {}: dense {a} vs factored {b}",
                        table.vars()
                    );
                }
            }
        }
    }

    #[test]
    fn wide_schemas_take_the_hashmap_path_and_answer_identically() {
        // 17 binary attributes — one past MAX_DENSE_LOOKUP_VARS, so the
        // dense bits→table LUT must be skipped and every lookup must route
        // through the HashMap. The dense joint (2^17 cells) is still small
        // enough to cross-check against.
        let attrs = MAX_DENSE_LOOKUP_VARS + 1;
        let cards = vec![2usize; attrs];
        let schema = Schema::uniform(&cards).unwrap().into_shared();
        let factors = vec![
            (Assignment::from_pairs([(0, 1), (16, 1)]), 3.0),
            (Assignment::from_pairs([(5, 0), (9, 1)]), 0.25),
            (Assignment::single(11, 1), 2.0),
        ];
        let mut model = crate::LogLinearModel::from_factors(schema, 1.0, factors).unwrap();
        model.normalize().unwrap();
        let graph = FactorGraph::from_model(&model);
        let lattice = MarginalLattice::build_factored(&graph, 2);
        assert!(lattice.dense_lookup.is_empty(), "17 attrs must skip the dense LUT");

        let joint = model.to_joint();
        let dense_lattice = MarginalLattice::build(&joint, 2);
        assert!(dense_lattice.dense_lookup.is_empty());

        let probes = [
            Assignment::single(0, 1),
            Assignment::single(16, 0),
            Assignment::from_pairs([(0, 1), (16, 1)]),
            Assignment::from_pairs([(5, 0), (9, 1)]),
            Assignment::from_pairs([(3, 0), (11, 1)]),
            Assignment::empty(),
        ];
        for probe in &probes {
            assert!(lattice.covers(probe.vars()), "probe {probe:?} should be covered");
            let fast = lattice.probability(probe).unwrap();
            let from_dense = dense_lattice.probability(probe).unwrap();
            let truth = joint.probability(probe);
            assert!((fast - truth).abs() < 1e-9, "probe {probe:?}: {fast} vs {truth}");
            assert!((fast - from_dense).abs() < 1e-9);
        }
        // Uncovered varsets still fall through on the HashMap path.
        let order3 = Assignment::from_pairs([(0, 0), (1, 0), (2, 0)]);
        assert_eq!(lattice.probability(&order3), None);
        assert!(!lattice.covers(order3.vars()));
        // Out-of-schema bits (attr 17+) are uncovered, not a panic.
        assert_eq!(lattice.probability(&Assignment::single(attrs, 0)), None);
    }

    #[test]
    fn boundary_schema_at_the_lut_cap_still_uses_the_dense_lookup() {
        // Exactly MAX_DENSE_LOOKUP_VARS attributes: the LUT is built
        // (2^16 entries) and lookups resolve through it.
        let cards = vec![2usize; MAX_DENSE_LOOKUP_VARS];
        let schema = Schema::uniform(&cards).unwrap().into_shared();
        let model = crate::LogLinearModel::uniform(schema);
        let graph = FactorGraph::from_model(&model);
        let lattice = MarginalLattice::build_factored(&graph, 1);
        assert_eq!(lattice.dense_lookup.len(), 1 << MAX_DENSE_LOOKUP_VARS);
        let p = lattice.probability(&Assignment::single(15, 1)).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }
}
