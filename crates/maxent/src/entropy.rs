//! Entropy and divergence primitives (Eq. 7 of the memo).

/// Shannon entropy `H = −Σ p ln p` in nats of a probability vector.
/// Zero-probability cells contribute nothing (the usual `0·ln 0 = 0`
/// convention).
pub fn entropy(probabilities: &[f64]) -> f64 {
    probabilities.iter().filter(|&&p| p > 0.0).map(|&p| -p * p.ln()).sum()
}

/// Cross entropy `−Σ p ln q` in nats.  Returns `+∞` if `p` puts mass where
/// `q` has none.
pub fn cross_entropy(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi <= 0.0 {
            continue;
        }
        if qi <= 0.0 {
            return f64::INFINITY;
        }
        acc -= pi * qi.ln();
    }
    acc
}

/// Kullback-Leibler divergence `KL(p ‖ q) = Σ p ln(p/q)` in nats.
/// Returns `+∞` if `p` puts mass where `q` has none.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi <= 0.0 {
            continue;
        }
        if qi <= 0.0 {
            return f64::INFINITY;
        }
        acc += pi * (pi / qi).ln();
    }
    acc.max(0.0)
}

/// Jensen-Shannon divergence (symmetric, bounded by `ln 2`) in nats.
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn entropy_known_values() {
        assert!((entropy(&[0.5, 0.5]) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
        assert!((entropy(&[0.25; 4]) - (4f64).ln()).abs() < 1e-12);
        assert_eq!(entropy(&[]), 0.0);
    }

    #[test]
    fn kl_known_values() {
        assert_eq!(kl_divergence(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        // KL([1,0] || [0.5,0.5]) = ln 2.
        assert!((kl_divergence(&[1.0, 0.0], &[0.5, 0.5]) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]), f64::INFINITY);
        assert_eq!(cross_entropy(&[0.5, 0.5], &[1.0, 0.0]), f64::INFINITY);
    }

    #[test]
    fn cross_entropy_decomposition() {
        let p = [0.2, 0.3, 0.5];
        let q = [0.3, 0.3, 0.4];
        let ce = cross_entropy(&p, &q);
        assert!((ce - (entropy(&p) + kl_divergence(&p, &q))).abs() < 1e-12);
    }

    #[test]
    fn js_divergence_symmetric_bounded() {
        let p = [0.9, 0.1];
        let q = [0.1, 0.9];
        let d = js_divergence(&p, &q);
        assert!((d - js_divergence(&q, &p)).abs() < 1e-12);
        assert!(d > 0.0 && d <= std::f64::consts::LN_2 + 1e-12);
        assert!(js_divergence(&p, &p).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_entropy_bounds(weights in proptest::collection::vec(0.0f64..1.0, 1..12)) {
            let sum: f64 = weights.iter().sum();
            prop_assume!(sum > 1e-9);
            let p: Vec<f64> = weights.iter().map(|w| w / sum).collect();
            let h = entropy(&p);
            prop_assert!(h >= -1e-12);
            prop_assert!(h <= (p.len() as f64).ln() + 1e-9);
        }

        #[test]
        fn prop_kl_nonnegative_and_zero_iff_equal(weights in proptest::collection::vec(0.01f64..1.0, 2..10)) {
            let sum: f64 = weights.iter().sum();
            let p: Vec<f64> = weights.iter().map(|w| w / sum).collect();
            prop_assert!(kl_divergence(&p, &p).abs() < 1e-12);
            let uniform = vec![1.0 / p.len() as f64; p.len()];
            prop_assert!(kl_divergence(&p, &uniform) >= -1e-12);
        }
    }
}
