//! Model-quality metrics used by the evaluation harness (experiment X3):
//! how well does an estimated distribution describe held-out data?

use crate::entropy::kl_divergence;
use crate::error::MaxEntError;
use crate::joint::JointDistribution;
use crate::Result;
use pka_contingency::{ContingencyTable, Dataset};

/// Average negative log-likelihood (in nats per sample) that `model` assigns
/// to the samples of `data`.  Lower is better; infinite if the model gives a
/// held-out sample zero probability.
pub fn log_loss(model: &JointDistribution, data: &Dataset) -> Result<f64> {
    if model.schema() != data.schema() {
        return Err(MaxEntError::InfeasibleConstraints {
            reason: "log loss requires the model and the data to share a schema".to_string(),
        });
    }
    if data.is_empty() {
        return Ok(0.0);
    }
    let mut total = 0.0;
    for sample in data.iter() {
        let p = model.probability_of_values(sample.values());
        if p <= 0.0 {
            return Ok(f64::INFINITY);
        }
        total -= p.ln();
    }
    Ok(total / data.len() as f64)
}

/// Average negative log-likelihood per observation computed directly from a
/// contingency table (equivalent to [`log_loss`] on the expanded dataset but
/// proportional to the number of distinct cells instead of samples).
pub fn log_loss_table(model: &JointDistribution, table: &ContingencyTable) -> Result<f64> {
    if model.schema() != table.schema() {
        return Err(MaxEntError::InfeasibleConstraints {
            reason: "log loss requires the model and the table to share a schema".to_string(),
        });
    }
    if table.total() == 0 {
        return Ok(0.0);
    }
    let mut total = 0.0;
    for (values, count) in table.nonzero_cells() {
        let p = model.probability_of_values(&values);
        if p <= 0.0 {
            return Ok(f64::INFINITY);
        }
        total -= count as f64 * p.ln();
    }
    Ok(total / table.total() as f64)
}

/// KL divergence from the empirical distribution of `table` to `model`, in
/// nats: `KL(empirical ‖ model)`.  This is the "how much observed structure
/// does the model miss" number reported in the comparison experiments.
pub fn kl_from_empirical(model: &JointDistribution, table: &ContingencyTable) -> Result<f64> {
    if model.schema() != table.schema() {
        return Err(MaxEntError::InfeasibleConstraints {
            reason: "KL divergence requires the model and the table to share a schema".to_string(),
        });
    }
    let empirical = JointDistribution::empirical(table);
    Ok(kl_divergence(empirical.probabilities(), model.probabilities()))
}

/// Total-variation distance between a model and the empirical distribution
/// of a table.
pub fn tv_from_empirical(model: &JointDistribution, table: &ContingencyTable) -> Result<f64> {
    let empirical = JointDistribution::empirical(table);
    model.total_variation(&empirical)
}

/// Perplexity `exp(log_loss)` of the model on held-out data: the effective
/// number of equally-likely cells per observation.
pub fn perplexity(model: &JointDistribution, data: &Dataset) -> Result<f64> {
    Ok(log_loss(model, data)?.exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{Attribute, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![Attribute::new("a", ["0", "1"]), Attribute::new("b", ["0", "1"])])
            .unwrap()
            .into_shared()
    }

    fn dataset() -> Dataset {
        let mut d = Dataset::with_shared_schema(schema());
        for _ in 0..6 {
            d.push_values(vec![0, 0]).unwrap();
        }
        for _ in 0..2 {
            d.push_values(vec![1, 1]).unwrap();
        }
        d.push_values(vec![0, 1]).unwrap();
        d.push_values(vec![1, 0]).unwrap();
        d
    }

    #[test]
    fn log_loss_of_true_distribution_is_its_entropy() {
        let d = dataset();
        let t = d.to_table();
        let empirical = JointDistribution::empirical(&t);
        let ll = log_loss(&empirical, &d).unwrap();
        assert!((ll - empirical.entropy()).abs() < 1e-12);
        let ll_t = log_loss_table(&empirical, &t).unwrap();
        assert!((ll - ll_t).abs() < 1e-12);
    }

    #[test]
    fn uniform_model_log_loss() {
        let d = dataset();
        let uniform = JointDistribution::uniform(schema());
        let ll = log_loss(&uniform, &d).unwrap();
        assert!((ll - (4f64).ln()).abs() < 1e-12);
        assert!((perplexity(&uniform, &d).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn better_models_have_lower_log_loss() {
        let d = dataset();
        let t = d.to_table();
        let empirical = JointDistribution::empirical(&t);
        let uniform = JointDistribution::uniform(schema());
        assert!(log_loss(&empirical, &d).unwrap() < log_loss(&uniform, &d).unwrap());
    }

    #[test]
    fn zero_probability_samples_give_infinite_loss() {
        let d = dataset();
        // A model that puts all mass on a single cell.
        let model = JointDistribution::from_unnormalized(schema(), vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(log_loss(&model, &d).unwrap(), f64::INFINITY);
        assert_eq!(log_loss_table(&model, &d.to_table()).unwrap(), f64::INFINITY);
    }

    #[test]
    fn kl_and_tv_from_empirical() {
        let d = dataset();
        let t = d.to_table();
        let empirical = JointDistribution::empirical(&t);
        assert!(kl_from_empirical(&empirical, &t).unwrap().abs() < 1e-12);
        assert!(tv_from_empirical(&empirical, &t).unwrap().abs() < 1e-12);
        let uniform = JointDistribution::uniform(schema());
        assert!(kl_from_empirical(&uniform, &t).unwrap() > 0.0);
        assert!(tv_from_empirical(&uniform, &t).unwrap() > 0.0);
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let d = dataset();
        let other = JointDistribution::uniform(Schema::uniform(&[3, 3]).unwrap().into_shared());
        assert!(log_loss(&other, &d).is_err());
        assert!(log_loss_table(&other, &d.to_table()).is_err());
        assert!(kl_from_empirical(&other, &d.to_table()).is_err());
    }

    #[test]
    fn empty_data_gives_zero_loss() {
        let empty = Dataset::with_shared_schema(schema());
        let uniform = JointDistribution::uniform(schema());
        assert_eq!(log_loss(&uniform, &empty).unwrap(), 0.0);
        let empty_table = pka_contingency::ContingencyTable::zeros(schema());
        assert_eq!(log_loss_table(&uniform, &empty_table).unwrap(), 0.0);
    }
}
