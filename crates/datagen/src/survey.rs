//! A larger "health survey" simulator.
//!
//! The memo motivates its method with "masses of undigested data, such as
//! those obtained from wind tunnel tests, spacecraft observations, computer
//! simulations, or psychological, medical, and social surveys".  This module
//! provides a deterministic stand-in: a named multi-attribute health survey
//! whose ground-truth distribution contains a handful of realistic
//! dependencies (smoking → cancer, age → exercise, exposure → condition,
//! smoking × exposure → condition), implemented as a log-linear model so the
//! true structure is known exactly.
//!
//! The scaling and comparison benchmarks draw samples of any size from it.

use pka_contingency::{Assignment, Attribute, Schema};
use pka_maxent::{JointDistribution, LogLinearModel};
use std::sync::Arc;

/// Attribute indices of the simulated survey.
pub mod attrs {
    /// Age band: under-40 / 40-60 / over-60.
    pub const AGE: usize = 0;
    /// Smoking: smoker / non-smoker.
    pub const SMOKING: usize = 1;
    /// Occupational exposure to carcinogens: exposed / not-exposed.
    pub const EXPOSURE: usize = 2;
    /// Weekly exercise: regular / occasional / none.
    pub const EXERCISE: usize = 3;
    /// Respiratory condition: present / absent.
    pub const CONDITION: usize = 4;
    /// Cancer diagnosis: yes / no.
    pub const CANCER: usize = 5;
}

/// The survey questionnaire: six categorical attributes, 144 cells.
pub fn schema() -> Arc<Schema> {
    Schema::new(vec![
        Attribute::new("age", ["under-40", "40-60", "over-60"]),
        Attribute::new("smoking", ["smoker", "non-smoker"]),
        Attribute::new("exposure", ["exposed", "not-exposed"]),
        Attribute::new("exercise", ["regular", "occasional", "none"]),
        Attribute::new("condition", ["present", "absent"]),
        Attribute::yes_no("cancer"),
    ])
    .expect("survey schema is valid")
    .into_shared()
}

/// The ground-truth distribution of the survey, built as a log-linear model
/// with explicit interaction factors (so the "right answer" for structure
/// discovery is known by construction).
pub fn ground_truth() -> JointDistribution {
    let schema = schema();
    use attrs::*;
    let factors = vec![
        // First-order prevalences (unnormalised weights).
        (Assignment::single(AGE, 0), 0.35),
        (Assignment::single(AGE, 1), 0.40),
        (Assignment::single(AGE, 2), 0.25),
        (Assignment::single(SMOKING, 0), 0.30),
        (Assignment::single(SMOKING, 1), 0.70),
        (Assignment::single(EXPOSURE, 0), 0.20),
        (Assignment::single(EXPOSURE, 1), 0.80),
        (Assignment::single(EXERCISE, 0), 0.30),
        (Assignment::single(EXERCISE, 1), 0.45),
        (Assignment::single(EXERCISE, 2), 0.25),
        (Assignment::single(CONDITION, 0), 0.15),
        (Assignment::single(CONDITION, 1), 0.85),
        (Assignment::single(CANCER, 0), 0.10),
        (Assignment::single(CANCER, 1), 0.90),
        // Pairwise dependencies.
        (Assignment::from_pairs([(SMOKING, 0), (CANCER, 0)]), 2.5),
        (Assignment::from_pairs([(AGE, 2), (CANCER, 0)]), 1.8),
        (Assignment::from_pairs([(AGE, 0), (EXERCISE, 0)]), 1.6),
        (Assignment::from_pairs([(AGE, 2), (EXERCISE, 2)]), 1.7),
        (Assignment::from_pairs([(EXPOSURE, 0), (CONDITION, 0)]), 2.2),
        (Assignment::from_pairs([(SMOKING, 0), (CONDITION, 0)]), 1.9),
        // One third-order interaction: smoking and exposure together are
        // worse than either alone.
        (Assignment::from_pairs([(SMOKING, 0), (EXPOSURE, 0), (CONDITION, 0)]), 1.8),
    ];
    let model =
        LogLinearModel::from_factors(Arc::clone(&schema), 1.0, factors).expect("factors valid");
    model.to_joint()
}

/// The interaction structure deliberately built into [`ground_truth`]: the
/// variable sets over which the distribution is *not* independent.
pub fn true_interactions() -> Vec<Assignment> {
    use attrs::*;
    vec![
        Assignment::from_pairs([(SMOKING, 0), (CANCER, 0)]),
        Assignment::from_pairs([(AGE, 2), (CANCER, 0)]),
        Assignment::from_pairs([(AGE, 0), (EXERCISE, 0)]),
        Assignment::from_pairs([(AGE, 2), (EXERCISE, 2)]),
        Assignment::from_pairs([(EXPOSURE, 0), (CONDITION, 0)]),
        Assignment::from_pairs([(SMOKING, 0), (CONDITION, 0)]),
        Assignment::from_pairs([(SMOKING, 0), (EXPOSURE, 0), (CONDITION, 0)]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{sample_table, seeded_rng};
    use attrs::*;

    #[test]
    fn schema_shape() {
        let s = schema();
        assert_eq!(s.len(), 6);
        assert_eq!(s.cell_count(), 3 * 2 * 2 * 3 * 2 * 2);
        assert_eq!(s.attribute(CANCER).unwrap().name(), "cancer");
    }

    #[test]
    fn ground_truth_is_a_distribution() {
        let joint = ground_truth();
        assert!((joint.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(joint.probabilities().iter().all(|&p| p > 0.0));
    }

    #[test]
    fn built_in_dependencies_show_up_as_lift() {
        let joint = ground_truth();
        // Smokers have a higher cancer probability than the population.
        let p_cancer = joint.probability(&Assignment::single(CANCER, 0));
        let p_cancer_given_smoker = joint
            .conditional(&Assignment::single(CANCER, 0), &Assignment::single(SMOKING, 0))
            .unwrap();
        assert!(
            p_cancer_given_smoker > 1.35 * p_cancer,
            "expected strong lift, got {p_cancer_given_smoker} vs {p_cancer}"
        );
        // Exercise depends on age.
        let p_reg_young = joint
            .conditional(&Assignment::single(EXERCISE, 0), &Assignment::single(AGE, 0))
            .unwrap();
        let p_reg_old = joint
            .conditional(&Assignment::single(EXERCISE, 0), &Assignment::single(AGE, 2))
            .unwrap();
        assert!(p_reg_young > p_reg_old);
        // Cancer is (conditionally) unrelated to exercise given nothing else:
        // the model has no factor linking them, so the lift is modest
        // compared to the smoking lift.
        let p_cancer_given_none = joint
            .conditional(&Assignment::single(CANCER, 0), &Assignment::single(EXERCISE, 2))
            .unwrap();
        assert!((p_cancer_given_none / p_cancer) < 1.4);
    }

    #[test]
    fn third_order_interaction_is_present() {
        let joint = ground_truth();
        // P(condition | smoker, exposed) should exceed what the pairwise
        // effects alone would predict; at minimum it must exceed both
        // single-condition conditionals.
        let both = joint
            .conditional(
                &Assignment::single(CONDITION, 0),
                &Assignment::from_pairs([(SMOKING, 0), (EXPOSURE, 0)]),
            )
            .unwrap();
        let smoker_only = joint
            .conditional(&Assignment::single(CONDITION, 0), &Assignment::single(SMOKING, 0))
            .unwrap();
        let exposed_only = joint
            .conditional(&Assignment::single(CONDITION, 0), &Assignment::single(EXPOSURE, 0))
            .unwrap();
        assert!(both > smoker_only && both > exposed_only);
    }

    #[test]
    fn samples_reflect_the_structure() {
        let joint = ground_truth();
        let t = sample_table(&joint, 30_000, &mut seeded_rng(11));
        assert_eq!(t.total(), 30_000);
        let p_cancer_smoker = t.count_matching(&Assignment::from_pairs([(SMOKING, 0), (CANCER, 0)]))
            as f64
            / t.count_matching(&Assignment::single(SMOKING, 0)) as f64;
        let p_cancer_nonsmoker =
            t.count_matching(&Assignment::from_pairs([(SMOKING, 1), (CANCER, 0)])) as f64
                / t.count_matching(&Assignment::single(SMOKING, 1)) as f64;
        assert!(p_cancer_smoker > 1.5 * p_cancer_nonsmoker);
    }

    #[test]
    fn true_interactions_listed() {
        let interactions = true_interactions();
        assert_eq!(interactions.len(), 7);
        assert!(interactions.iter().all(|a| a.order() >= 2));
    }
}
