//! # pka-datagen
//!
//! Workload generators for the knowledge-acquisition system:
//!
//! * [`smoking`] — the memo's own survey (Figure 1): 3428 hypothetical
//!   respondents over smoking history × cancer × family history, embedded
//!   verbatim so every table and figure of the memo can be regenerated.
//! * [`sampler`] — multinomial sampling of datasets/tables from any
//!   [`pka_maxent::JointDistribution`], with deterministic seeding.
//! * [`synthetic`] — independent and randomly-correlated joint
//!   distributions over arbitrary schemas.
//! * [`planted`] — distributions with *planted* higher-order interactions of
//!   known location and strength, used by the recovery experiments (X2).
//! * [`survey`] — a larger, named "health survey" simulator with built-in
//!   dependency structure, standing in for the memo's "masses of NASA data"
//!   in the scaling and comparison experiments.
//! * [`wide`] — wide schemas (N binary/ternary attributes, planted pairwise
//!   dependencies) whose ground truth stays factored: generation,
//!   normalisation and sampling all run by variable elimination, so joints
//!   far past the dense ceiling (e.g. 2^20 cells) never materialise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod planted;
pub mod sampler;
pub mod smoking;
pub mod survey;
pub mod synthetic;
pub mod wide;

pub use planted::{PlantedExperiment, PlantedInteraction};
pub use sampler::{sample_dataset, sample_table};
pub use wide::WideExperiment;
