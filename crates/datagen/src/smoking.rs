//! The memo's smoking/cancer survey (Figure 1).
//!
//! The data are hypothetical case histories of 3428 people over 60, answered
//! on the questionnaire of the memo's "Problem Definition" section:
//!
//! * **A — smoking history**: smoker / non-smoker not married to a smoker /
//!   non-smoker married to a smoker;
//! * **B — cancer**: yes / no;
//! * **C — family history of cancer**: yes / no.
//!
//! The counts below are Figure 1(a) and 1(b) verbatim; the marginal sums of
//! Figure 2 and every number in Tables 1–2 derive from them.

use pka_contingency::{builder, Attribute, ContingencyTable, Dataset, Schema};
use std::sync::Arc;

/// Index of the smoking-history attribute (the memo's `A`).
pub const SMOKING: usize = 0;
/// Index of the cancer attribute (the memo's `B`).
pub const CANCER: usize = 1;
/// Index of the family-history attribute (the memo's `C`).
pub const FAMILY_HISTORY: usize = 2;

/// The cell counts of Figure 1 in dense (smoking, cancer, family-history)
/// order with the last attribute varying fastest.
pub const COUNTS: [u64; 12] = [
    130, 110, // smoker, cancer=yes, family history yes/no
    410, 640, // smoker, cancer=no
    62, 31, // non-smoker, cancer=yes
    580, 460, // non-smoker, cancer=no
    78, 22, // married-to-smoker, cancer=yes
    520, 385, // married-to-smoker, cancer=no
];

/// Total number of respondents (the memo's `N = 3428`).
pub const TOTAL: u64 = 3428;

/// The questionnaire schema of the memo's example.
pub fn schema() -> Arc<Schema> {
    Schema::new(vec![
        Attribute::new("smoking", ["smoker", "non-smoker", "non-smoker-married-to-smoker"]),
        Attribute::yes_no("cancer"),
        Attribute::yes_no("family-history"),
    ])
    .expect("the paper schema is valid")
    .into_shared()
}

/// The contingency table of Figure 1.
pub fn table() -> ContingencyTable {
    ContingencyTable::from_counts(schema(), COUNTS.to_vec())
        .expect("the paper counts match the schema")
}

/// The survey expanded back to one sample per respondent (Figure 5 / 6
/// form), for experiments that need raw samples (train/test splits,
/// learning curves).
pub fn dataset() -> Dataset {
    builder::expand(&table())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{Assignment, VarSet};

    #[test]
    fn totals_match_the_memo() {
        let t = table();
        assert_eq!(t.total(), TOTAL);
        assert_eq!(t.cell_count(), 12);
        assert_eq!(t.count_values(&[0, 1, 0]), 410, "smokers, no cancer, family history");
    }

    #[test]
    fn figure_2_marginals() {
        let t = table();
        let a = t.marginal(VarSet::singleton(SMOKING));
        assert_eq!(a.count_by_values(&[0]), 1290);
        assert_eq!(a.count_by_values(&[1]), 1133);
        assert_eq!(a.count_by_values(&[2]), 1005);
        let b = t.marginal(VarSet::singleton(CANCER));
        assert_eq!(b.count_by_values(&[0]), 433);
        assert_eq!(b.count_by_values(&[1]), 2995);
        let c = t.marginal(VarSet::singleton(FAMILY_HISTORY));
        assert_eq!(c.count_by_values(&[0]), 1780);
        assert_eq!(c.count_by_values(&[1]), 1648);
        // The memo's N^AC_12 = 750, the first constraint it discovers.
        assert_eq!(
            t.count_matching(&Assignment::from_pairs([(SMOKING, 0), (FAMILY_HISTORY, 1)])),
            750
        );
    }

    #[test]
    fn first_order_probabilities_match_eq_48() {
        let t = table();
        let p = |attr: usize, v: usize| t.frequency(&Assignment::single(attr, v));
        assert!((p(SMOKING, 0) - 0.376).abs() < 5e-3);
        assert!((p(SMOKING, 1) - 0.331).abs() < 5e-3);
        assert!((p(SMOKING, 2) - 0.293).abs() < 5e-3);
        assert!((p(CANCER, 0) - 0.126).abs() < 5e-3);
        assert!((p(CANCER, 1) - 0.874).abs() < 5e-3);
        assert!((p(FAMILY_HISTORY, 0) - 0.519).abs() < 5e-3);
        assert!((p(FAMILY_HISTORY, 1) - 0.481).abs() < 5e-3);
    }

    #[test]
    fn dataset_expansion_roundtrips() {
        let d = dataset();
        assert_eq!(d.len() as u64, TOTAL);
        let back = d.to_table();
        assert_eq!(back.counts(), table().counts());
    }

    #[test]
    fn schema_names_resolve() {
        let s = schema();
        assert_eq!(s.attribute_index("cancer").unwrap(), CANCER);
        assert_eq!(s.attribute(SMOKING).unwrap().cardinality(), 3);
    }
}
