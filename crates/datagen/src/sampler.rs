//! Sampling observations from a joint distribution.
//!
//! The synthetic experiments need datasets drawn from *known* distributions
//! so recovered structure can be compared against ground truth.  Sampling is
//! plain multinomial draws over the dense cell probabilities, seeded
//! explicitly so every benchmark run is reproducible.

use pka_contingency::{ContingencyTable, Dataset};
use pka_maxent::JointDistribution;
use rand::prelude::*;

/// Draws `n` observations from `joint` and returns them as a contingency
/// table.
pub fn sample_table(joint: &JointDistribution, n: u64, rng: &mut StdRng) -> ContingencyTable {
    let mut table = ContingencyTable::zeros(joint.shared_schema());
    let cumulative = joint.cumulative();
    let schema = joint.schema();
    for _ in 0..n {
        let cell = draw_cell(&cumulative, rng);
        let values = schema.cell_values(cell);
        table.increment(&values).expect("sampled cell is valid");
    }
    table
}

/// Draws `n` observations from `joint` and returns them as a raw dataset.
pub fn sample_dataset(joint: &JointDistribution, n: u64, rng: &mut StdRng) -> Dataset {
    let mut dataset = Dataset::with_shared_schema(joint.shared_schema());
    let cumulative = joint.cumulative();
    let schema = joint.schema();
    for _ in 0..n {
        let cell = draw_cell(&cumulative, rng);
        dataset.push_values(schema.cell_values(cell)).expect("sampled cell is valid");
    }
    dataset
}

/// Draws one cell index from a cumulative distribution by binary search.
fn draw_cell(cumulative: &[f64], rng: &mut StdRng) -> usize {
    let total = *cumulative.last().expect("at least one cell");
    let u: f64 = rng.random::<f64>() * total;
    match cumulative.binary_search_by(|probe| probe.partial_cmp(&u).expect("finite")) {
        Ok(i) => i,
        Err(i) => i.min(cumulative.len() - 1),
    }
}

/// Convenience wrapper: a seeded standard RNG for the generators in this
/// crate.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{Assignment, Schema};
    use std::sync::Arc;

    fn skewed_joint() -> JointDistribution {
        let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        JointDistribution::from_unnormalized(schema, vec![8.0, 1.0, 1.0, 0.0])
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let joint = skewed_joint();
        let a = sample_table(&joint, 500, &mut seeded_rng(7));
        let b = sample_table(&joint, 500, &mut seeded_rng(7));
        assert_eq!(a.counts(), b.counts());
        let c = sample_table(&joint, 500, &mut seeded_rng(8));
        assert_ne!(a.counts(), c.counts());
    }

    #[test]
    fn sample_counts_total_n() {
        let joint = skewed_joint();
        let t = sample_table(&joint, 1234, &mut seeded_rng(1));
        assert_eq!(t.total(), 1234);
        let d = sample_dataset(&joint, 321, &mut seeded_rng(2));
        assert_eq!(d.len(), 321);
    }

    #[test]
    fn zero_probability_cells_are_never_drawn() {
        let joint = skewed_joint();
        let t = sample_table(&joint, 5000, &mut seeded_rng(3));
        assert_eq!(t.count_values(&[1, 1]), 0);
    }

    #[test]
    fn empirical_frequencies_approach_the_distribution() {
        let joint = skewed_joint();
        let t = sample_table(&joint, 20_000, &mut seeded_rng(4));
        let p_hat = t.frequency(&Assignment::from_pairs([(0, 0), (1, 0)]));
        assert!((p_hat - 0.8).abs() < 0.02, "p_hat = {p_hat}");
        let marginal = t.frequency(&Assignment::single(0, 0));
        assert!((marginal - 0.9).abs() < 0.02);
    }

    #[test]
    fn dataset_and_table_sampling_agree_statistically() {
        let joint = skewed_joint();
        let d = sample_dataset(&joint, 4000, &mut seeded_rng(5));
        let t = d.to_table();
        assert_eq!(t.total(), 4000);
        // Dominant cell stays dominant.
        let (cell, _) = JointDistribution::empirical(&t).most_probable_cell();
        assert_eq!(cell, vec![0, 0]);
    }

    #[test]
    fn uniform_distribution_covers_all_cells() {
        let schema = Schema::uniform(&[3, 2]).unwrap().into_shared();
        let joint = JointDistribution::uniform(Arc::clone(&schema));
        let t = sample_table(&joint, 6000, &mut seeded_rng(6));
        for (_, count) in t.cells() {
            assert!(count > 800, "every cell should be hit roughly 1000 times, got {count}");
        }
    }
}
