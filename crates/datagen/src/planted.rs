//! Distributions with *planted* interactions of known location and
//! strength — the ground truth of the recovery experiments (X2).
//!
//! Starting from a random independence distribution, selected marginal cells
//! are multiplied by a strength factor and the table renormalised.  The
//! planted cells are exactly the higher-order constraints a perfect
//! acquisition run should discover (given enough samples), so recovery can
//! be measured as the fraction of planted cells found.

use pka_contingency::{Assignment, Schema, VarSet};
use pka_maxent::JointDistribution;
use rand::prelude::*;
use std::sync::Arc;

/// One planted interaction: the affected marginal cell and the multiplicative
/// strength applied to its cells (strength 1 = no interaction; larger values
/// mean stronger, easier-to-detect structure).
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedInteraction {
    /// The marginal cell whose probability was boosted (or suppressed).
    pub assignment: Assignment,
    /// The multiplicative factor applied before renormalisation.
    pub strength: f64,
}

/// A generated experiment: the true distribution plus the list of planted
/// interactions.
#[derive(Debug, Clone)]
pub struct PlantedExperiment {
    /// The ground-truth joint distribution.
    pub joint: JointDistribution,
    /// The interactions hidden in it.
    pub planted: Vec<PlantedInteraction>,
}

impl PlantedExperiment {
    /// Generates an experiment over `schema` with `count` planted
    /// interactions of the given `order` and `strength`.
    ///
    /// Interaction cells are chosen uniformly at random without repetition;
    /// the base distribution is a random independence distribution so that
    /// *only* the planted cells carry higher-order structure.
    pub fn generate(
        schema: Arc<Schema>,
        order: usize,
        count: usize,
        strength: f64,
        rng: &mut StdRng,
    ) -> Self {
        assert!(order >= 2, "planted interactions must be of order 2 or higher");
        assert!(order <= schema.len(), "order exceeds the number of attributes");
        assert!(strength > 0.0 && strength.is_finite(), "strength must be positive");

        let base = crate::synthetic::random_independent(Arc::clone(&schema), rng);
        let mut weights: Vec<f64> = base.probabilities().to_vec();

        // Enumerate all candidate (variable set, configuration) cells of the
        // requested order and pick `count` of them without replacement.
        let mut candidates: Vec<Assignment> = Vec::new();
        for vars in schema.all_vars().subsets_of_size(order) {
            for values in schema.configurations(vars) {
                candidates.push(Assignment::new(vars, values));
            }
        }
        let count = count.min(candidates.len());
        let mut planted = Vec::with_capacity(count);
        for _ in 0..count {
            let pick = rng.random_range(0..candidates.len());
            let assignment = candidates.swap_remove(pick);
            for (idx, values) in schema.cells().enumerate() {
                if assignment.matches(&values) {
                    weights[idx] *= strength;
                }
            }
            planted.push(PlantedInteraction { assignment, strength });
        }

        Self { joint: JointDistribution::from_unnormalized(schema, weights), planted }
    }

    /// The variable sets carrying planted structure.
    pub fn planted_varsets(&self) -> Vec<VarSet> {
        self.planted.iter().map(|p| p.assignment.vars()).collect()
    }

    /// Fraction of planted interactions whose *variable set* appears among
    /// the discovered constraint assignments.  (Cell-exact recovery is
    /// stricter: use [`PlantedExperiment::cell_recovery`].)
    pub fn varset_recovery(&self, discovered: &[Assignment]) -> f64 {
        if self.planted.is_empty() {
            return 1.0;
        }
        let hits = self
            .planted
            .iter()
            .filter(|p| discovered.iter().any(|d| d.vars() == p.assignment.vars()))
            .count();
        hits as f64 / self.planted.len() as f64
    }

    /// Fraction of planted cells recovered exactly (same variable set *and*
    /// same value configuration).
    pub fn cell_recovery(&self, discovered: &[Assignment]) -> f64 {
        if self.planted.is_empty() {
            return 1.0;
        }
        let hits = self.planted.iter().filter(|p| discovered.contains(&p.assignment)).count();
        hits as f64 / self.planted.len() as f64
    }

    /// Number of discovered constraints that do not correspond to any
    /// planted variable set — the "false positive" count of a recovery run.
    pub fn false_positives(&self, discovered: &[Assignment]) -> usize {
        discovered
            .iter()
            .filter(|d| !self.planted.iter().any(|p| p.assignment.vars() == d.vars()))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::seeded_rng;

    fn schema() -> Arc<Schema> {
        Schema::uniform(&[3, 2, 2, 2]).unwrap().into_shared()
    }

    #[test]
    fn generate_produces_requested_count_and_order() {
        let exp = PlantedExperiment::generate(schema(), 2, 3, 4.0, &mut seeded_rng(1));
        assert_eq!(exp.planted.len(), 3);
        assert!(exp.planted.iter().all(|p| p.assignment.order() == 2));
        assert!(exp.planted.iter().all(|p| (p.strength - 4.0).abs() < 1e-12));
        // Planted cells are distinct.
        for (i, a) in exp.planted.iter().enumerate() {
            for b in &exp.planted[i + 1..] {
                assert_ne!(a.assignment, b.assignment);
            }
        }
        assert!((exp.joint.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn count_is_capped_at_available_cells() {
        let small = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let exp = PlantedExperiment::generate(small, 2, 100, 2.0, &mut seeded_rng(2));
        assert_eq!(exp.planted.len(), 4);
    }

    #[test]
    fn planting_actually_creates_dependence() {
        let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let exp = PlantedExperiment::generate(Arc::clone(&schema), 2, 1, 6.0, &mut seeded_rng(3));
        let planted = &exp.planted[0].assignment;
        let joint_p = exp.joint.probability(planted);
        let product: f64 = planted
            .pairs()
            .map(|(attr, v)| exp.joint.probability(&Assignment::single(attr, v)))
            .product();
        assert!(
            (joint_p - product).abs() > 0.01,
            "planted cell should deviate from independence: joint {joint_p} vs product {product}"
        );
    }

    #[test]
    fn recovery_metrics() {
        let exp = PlantedExperiment::generate(schema(), 2, 2, 3.0, &mut seeded_rng(4));
        let planted_cells: Vec<Assignment> =
            exp.planted.iter().map(|p| p.assignment.clone()).collect();
        assert_eq!(exp.cell_recovery(&planted_cells), 1.0);
        assert_eq!(exp.varset_recovery(&planted_cells), 1.0);
        assert_eq!(exp.false_positives(&planted_cells), 0);
        assert_eq!(exp.cell_recovery(&[]), 0.0);
        // A discovery over an unrelated varset counts as a false positive.
        let unrelated = Assignment::from_pairs([(0, 0), (1, 0), (2, 0)]);
        let has_same_varset = exp.planted.iter().any(|p| p.assignment.vars() == unrelated.vars());
        if !has_same_varset {
            assert_eq!(exp.false_positives(&[unrelated]), 1);
        }
        // Partial recovery.
        let half = vec![planted_cells[0].clone()];
        assert!((exp.cell_recovery(&half) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn first_order_planting_is_rejected() {
        let _ = PlantedExperiment::generate(schema(), 1, 1, 2.0, &mut seeded_rng(5));
    }

    #[test]
    fn determinism_per_seed() {
        let a = PlantedExperiment::generate(schema(), 3, 2, 5.0, &mut seeded_rng(6));
        let b = PlantedExperiment::generate(schema(), 3, 2, 5.0, &mut seeded_rng(6));
        assert_eq!(a.planted, b.planted);
        assert_eq!(a.joint.probabilities(), b.joint.probabilities());
    }
}
