//! Synthetic joint distributions over arbitrary schemas.

use pka_contingency::Schema;
use pka_maxent::JointDistribution;
use rand::prelude::*;
use std::sync::Arc;

/// An independence distribution with random first-order marginals: each
/// attribute gets a random probability vector (drawn from a symmetric
/// Dirichlet via normalised exponentials) and the joint is their product.
///
/// This is the "null" workload: the acquisition procedure should find no
/// higher-order constraints on data sampled from it (beyond sampling noise).
pub fn random_independent(schema: Arc<Schema>, rng: &mut StdRng) -> JointDistribution {
    let marginals: Vec<Vec<f64>> =
        schema.attributes().iter().map(|a| random_simplex(a.cardinality(), rng)).collect();
    let weights: Vec<f64> = schema
        .cells()
        .map(|values| values.iter().enumerate().map(|(attr, &v)| marginals[attr][v]).product())
        .collect();
    JointDistribution::from_unnormalized(schema, weights)
}

/// A fully random joint distribution: cell weights drawn independently from
/// an exponential distribution scaled by `concentration` (small values give
/// nearly-uniform tables, large values give spiky ones).
pub fn random_joint(
    schema: Arc<Schema>,
    concentration: f64,
    rng: &mut StdRng,
) -> JointDistribution {
    let weights: Vec<f64> = (0..schema.cell_count())
        .map(|_| {
            let u: f64 = rng.random::<f64>().max(1e-12);
            (-u.ln()).powf(concentration.max(1e-6))
        })
        .collect();
    JointDistribution::from_unnormalized(schema, weights)
}

/// The exact uniform distribution over a schema.
pub fn uniform(schema: Arc<Schema>) -> JointDistribution {
    JointDistribution::uniform(schema)
}

/// Draws a random probability vector of the given length (normalised
/// exponentials, i.e. a symmetric Dirichlet(1) sample).
pub fn random_simplex(len: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(len > 0, "a probability vector needs at least one entry");
    let raw: Vec<f64> = (0..len).map(|_| -rng.random::<f64>().max(1e-12).ln()).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::seeded_rng;
    use pka_contingency::Assignment;

    #[test]
    fn random_simplex_sums_to_one() {
        let mut rng = seeded_rng(1);
        for len in 1..8 {
            let p = random_simplex(len, &mut rng);
            assert_eq!(p.len(), len);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn random_independent_factorises() {
        let schema = Schema::uniform(&[3, 2, 2]).unwrap().into_shared();
        let joint = random_independent(Arc::clone(&schema), &mut seeded_rng(2));
        // P(a, b) = P(a) P(b) for an independence distribution.
        for a in 0..3 {
            for b in 0..2 {
                let joint_p = joint.probability(&Assignment::from_pairs([(0, a), (1, b)]));
                let product = joint.probability(&Assignment::single(0, a))
                    * joint.probability(&Assignment::single(1, b));
                assert!((joint_p - product).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn random_joint_is_a_distribution() {
        let schema = Schema::uniform(&[4, 3]).unwrap().into_shared();
        let joint = random_joint(Arc::clone(&schema), 1.0, &mut seeded_rng(3));
        assert!((joint.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(joint.probabilities().iter().all(|&p| p >= 0.0));
        // Different seeds give different tables.
        let other = random_joint(schema, 1.0, &mut seeded_rng(4));
        assert_ne!(joint.probabilities(), other.probabilities());
    }

    #[test]
    fn concentration_controls_spikiness() {
        let schema = Schema::uniform(&[4, 4]).unwrap().into_shared();
        let flat = random_joint(Arc::clone(&schema), 0.2, &mut seeded_rng(5));
        let spiky = random_joint(schema, 4.0, &mut seeded_rng(5));
        assert!(spiky.entropy() < flat.entropy());
    }

    #[test]
    fn uniform_helper() {
        let schema = Schema::uniform(&[2, 5]).unwrap().into_shared();
        let u = uniform(schema);
        assert!((u.entropy() - (10f64).ln()).abs() < 1e-12);
    }
}
