//! Wide-schema workloads: N binary/ternary attributes with planted
//! low-order dependencies, generated and sampled **without ever
//! materialising the dense joint**.
//!
//! The other generators in this crate hand back a
//! [`pka_maxent::JointDistribution`], which caps them at schemas whose
//! cell count fits in memory.  A [`WideExperiment`] instead defines its
//! ground truth as a [`LogLinearModel`] — per-attribute bias factors plus
//! `dependencies` planted pairwise factors — normalised through the factor
//! graph's partition function, and draws tuples by the chain rule over
//! variable-elimination conditionals.  Both operations cost
//! `O(attributes · factors)` per tuple, so a 20-attribute schema
//! (2^20-cell joint) samples as easily as the memo's 12-cell survey.

use crate::planted::PlantedInteraction;
use pka_contingency::{Assignment, ContingencyTable, Dataset, Schema};
use pka_maxent::{FactorGraph, LogLinearModel};
use rand::prelude::*;
use std::sync::Arc;

/// A wide-schema ground truth: the factored model, its elimination view,
/// and the list of planted dependencies a perfect acquisition run should
/// recover.
#[derive(Debug, Clone)]
pub struct WideExperiment {
    schema: Arc<Schema>,
    model: LogLinearModel,
    graph: FactorGraph,
    planted: Vec<PlantedInteraction>,
}

impl WideExperiment {
    /// Generates a ground truth over `attributes` uniform attributes of the
    /// given `cardinality` (2 = binary, 3 = ternary) with `dependencies`
    /// planted pairwise interactions of multiplicative `strength`
    /// (strength 1 = independence; larger is easier to detect).  Every
    /// attribute also gets a random first-order bias so marginals are not
    /// degenerate.  Deterministic per `rng` seed.
    pub fn generate(
        attributes: usize,
        cardinality: usize,
        dependencies: usize,
        strength: f64,
        rng: &mut StdRng,
    ) -> Self {
        assert!(attributes >= 2, "a wide schema needs at least 2 attributes");
        assert!((2..=3).contains(&cardinality), "cardinality must be 2 (binary) or 3 (ternary)");
        assert!(strength > 0.0 && strength.is_finite(), "strength must be positive");

        let cards = vec![cardinality; attributes];
        let schema = Schema::uniform(&cards)
            .expect("wide schema within the contingency layer's limits")
            .into_shared();

        // First-order biases: a random factor on value 1 of every attribute.
        let mut factors: Vec<(Assignment, f64)> = (0..attributes)
            .map(|attr| (Assignment::single(attr, 1), 0.5 + 1.5 * rng.random::<f64>()))
            .collect();

        // Planted pairwise dependencies on distinct attribute pairs, chosen
        // without replacement; the affected value configuration is random.
        let mut pairs: Vec<(usize, usize)> =
            (0..attributes).flat_map(|i| (i + 1..attributes).map(move |j| (i, j))).collect();
        let dependencies = dependencies.min(pairs.len());
        let mut planted = Vec::with_capacity(dependencies);
        for _ in 0..dependencies {
            let (i, j) = pairs.swap_remove(rng.random_range(0..pairs.len()));
            let assignment = Assignment::from_pairs([
                (i, rng.random_range(0..cardinality)),
                (j, rng.random_range(0..cardinality)),
            ]);
            factors.push((assignment.clone(), strength));
            planted.push(PlantedInteraction { assignment, strength });
        }

        let mut model = LogLinearModel::from_factors(Arc::clone(&schema), 1.0, factors)
            .expect("factor assignments are within the schema");
        // Normalise through the partition function — one variable
        // elimination, never a dense scatter.
        let z = FactorGraph::from_model(&model).partition();
        assert!(z.is_finite() && z > 0.0, "generated model has no probability mass");
        model.scale_a0(1.0 / z);
        let graph = FactorGraph::from_model(&model);
        Self { schema, model, graph, planted }
    }

    /// The generated schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The normalised ground-truth model.
    pub fn model(&self) -> &LogLinearModel {
        &self.model
    }

    /// The elimination view of the ground truth — the reference every
    /// served answer is compared against in the wide-schema tests.
    pub fn graph(&self) -> &FactorGraph {
        &self.graph
    }

    /// The planted dependencies, in generation order.
    pub fn planted(&self) -> &[PlantedInteraction] {
        &self.planted
    }

    /// Ground-truth probability of a (partial) assignment, by variable
    /// elimination.
    pub fn truth(&self, assignment: &Assignment) -> f64 {
        self.graph.probability(assignment)
    }

    /// Draws `n` tuples by the chain rule: attribute by attribute, each
    /// value is drawn from its conditional given the values already fixed,
    /// with every conditional weight computed by variable elimination.
    pub fn sample_dataset(&self, n: u64, rng: &mut StdRng) -> Dataset {
        let mut dataset = Dataset::with_shared_schema(Arc::clone(&self.schema));
        for _ in 0..n {
            let values = self.sample_tuple(rng);
            dataset.push_values(values).expect("chain-rule tuple is a complete valid row");
        }
        dataset
    }

    /// Draws `n` tuples (as [`WideExperiment::sample_dataset`]) directly
    /// into a contingency table.
    pub fn sample_table(&self, n: u64, rng: &mut StdRng) -> ContingencyTable {
        let mut table = ContingencyTable::zeros(Arc::clone(&self.schema));
        for _ in 0..n {
            let values = self.sample_tuple(rng);
            table.increment(&values).expect("chain-rule tuple is a complete valid row");
        }
        table
    }

    /// One chain-rule draw: `P(x_i | x_0..x_{i-1})` for each attribute in
    /// turn, each conditional read off unnormalised elimination weights.
    fn sample_tuple(&self, rng: &mut StdRng) -> Vec<usize> {
        let attributes = self.schema.len();
        let mut fixed: Vec<(usize, usize)> = Vec::with_capacity(attributes);
        for attr in 0..attributes {
            let card = self.schema.cardinality(attr).expect("attr in range");
            let mut weights = Vec::with_capacity(card);
            for v in 0..card {
                fixed.push((attr, v));
                weights.push(self.graph.weight(&Assignment::from_pairs(fixed.iter().copied())));
                fixed.pop();
            }
            let total: f64 = weights.iter().sum();
            assert!(total > 0.0 && total.is_finite(), "conditional has no mass");
            let u = rng.random::<f64>() * total;
            let mut cumulative = 0.0;
            let mut chosen = card - 1;
            for (v, w) in weights.iter().enumerate() {
                cumulative += w;
                if u < cumulative {
                    chosen = v;
                    break;
                }
            }
            fixed.push((attr, chosen));
        }
        fixed.into_iter().map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::seeded_rng;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = WideExperiment::generate(8, 2, 3, 4.0, &mut seeded_rng(1));
        let b = WideExperiment::generate(8, 2, 3, 4.0, &mut seeded_rng(1));
        assert_eq!(a.planted(), b.planted());
        assert_eq!(a.model().a0(), b.model().a0());
        assert_eq!(a.model().factors(), b.model().factors());
        let da = a.sample_dataset(200, &mut seeded_rng(2));
        let db = b.sample_dataset(200, &mut seeded_rng(2));
        assert_eq!(da.to_table().counts(), db.to_table().counts());
        let dc = a.sample_dataset(200, &mut seeded_rng(3));
        assert_ne!(da.to_table().counts(), dc.to_table().counts());
    }

    #[test]
    fn planted_dependencies_are_distinct_pairs_of_order_two() {
        let exp = WideExperiment::generate(10, 3, 5, 6.0, &mut seeded_rng(4));
        assert_eq!(exp.planted().len(), 5);
        for (i, p) in exp.planted().iter().enumerate() {
            assert_eq!(p.assignment.order(), 2);
            assert!((p.strength - 6.0).abs() < 1e-12);
            for q in &exp.planted()[i + 1..] {
                assert_ne!(p.assignment.vars(), q.assignment.vars(), "pairs must not repeat");
            }
        }
    }

    #[test]
    fn ground_truth_matches_the_dense_joint_on_small_schemas() {
        // 4 binary attributes: small enough to cross-check the factored
        // ground truth against a dense materialisation.
        let exp = WideExperiment::generate(4, 2, 2, 3.0, &mut seeded_rng(5));
        let joint = exp.model().to_joint();
        assert!((exp.truth(&Assignment::empty()) - 1.0).abs() < 1e-9, "model is normalised");
        for cell in 0..exp.schema().cell_count() {
            let values = exp.schema().cell_values(cell);
            let probe = Assignment::from_pairs(values.iter().copied().enumerate());
            assert!((exp.truth(&probe) - joint.probability(&probe)).abs() < 1e-12);
        }
        for p in exp.planted() {
            let product: f64 = p
                .assignment
                .pairs()
                .map(|(attr, v)| exp.truth(&Assignment::single(attr, v)))
                .product();
            assert!(
                (exp.truth(&p.assignment) - product).abs() > 1e-4,
                "planted cell should deviate from independence"
            );
        }
    }

    #[test]
    fn chain_rule_sampling_approaches_the_ground_truth() {
        let exp = WideExperiment::generate(3, 2, 1, 5.0, &mut seeded_rng(6));
        let t = exp.sample_table(20_000, &mut seeded_rng(7));
        assert_eq!(t.total(), 20_000);
        // First-order marginals and the planted pair all converge.
        for attr in 0..3 {
            let a = Assignment::single(attr, 0);
            assert!(
                (t.frequency(&a) - exp.truth(&a)).abs() < 0.02,
                "marginal {attr} drifted: {} vs {}",
                t.frequency(&a),
                exp.truth(&a)
            );
        }
        let planted = &exp.planted()[0].assignment;
        assert!((t.frequency(planted) - exp.truth(planted)).abs() < 0.02);
    }

    #[test]
    fn twenty_attribute_schemas_generate_and_sample_without_the_joint() {
        // 2^20 joint cells: dense materialisation would be a megacell
        // allocation per probe; generation, normalisation, truth queries
        // and sampling all go through elimination instead.
        let exp = WideExperiment::generate(20, 2, 6, 4.0, &mut seeded_rng(8));
        assert_eq!(exp.schema().cell_count(), 1 << 20);
        assert!((exp.truth(&Assignment::empty()) - 1.0).abs() < 1e-9);
        let d = exp.sample_dataset(50, &mut seeded_rng(9));
        assert_eq!(d.len(), 50);
        for p in exp.planted() {
            let truth = exp.truth(&p.assignment);
            assert!(truth > 0.0 && truth < 1.0);
        }
    }
}
