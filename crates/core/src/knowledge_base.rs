//! The product of acquisition: a compact probabilistic knowledge base.

use crate::error::CoreError;
use crate::query::{Query, QueryResult};
use crate::Result;
use pka_contingency::{Assignment, Schema};
use pka_maxent::{
    Constraint, ConstraintSet, FactorGraph, JointDistribution, LogLinearModel, MarginalLattice,
    MaxEntError,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A probabilistic knowledge base: the significant joint probabilities found
/// in the data plus the fitted maximum-entropy model that ties them
/// together.
///
/// This is what the memo proposes storing instead of explicit rules: "it
/// generates and stores significant joint probabilities instead; particular
/// conditional probabilities can be calculated from this information as
/// required."
///
/// A knowledge base may additionally carry a [`MarginalLattice`] — every
/// marginal table up to a cutoff order, materialised once from the model's
/// joint (see [`KnowledgeBase::with_lattice`]).  With a lattice attached,
/// [`KnowledgeBase::probability`] answers covered assignments with one
/// table lookup instead of a sum over the joint's cells; without one (or
/// for varsets above the cutoff) it falls back to the model evaluation
/// unchanged.  The lattice is **derived state**: it is skipped by
/// serialisation and ignored by equality, exactly like the model's factor
/// index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnowledgeBase {
    schema: Arc<Schema>,
    constraints: ConstraintSet,
    model: LogLinearModel,
    sample_size: u64,
    #[serde(skip)]
    lattice: Option<Arc<MarginalLattice>>,
    #[serde(skip)]
    graph: Option<Arc<FactorGraph>>,
}

/// Equality ignores the lattice: it is derived from the model, so two
/// knowledge bases differing only in whether the cache is materialised
/// answer every query identically.
impl PartialEq for KnowledgeBase {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.constraints == other.constraints
            && self.model == other.model
            && self.sample_size == other.sample_size
    }
}

impl KnowledgeBase {
    /// Assembles a knowledge base from its parts (normally done by
    /// [`crate::Acquisition::run`]).
    pub fn new(
        schema: Arc<Schema>,
        constraints: ConstraintSet,
        model: LogLinearModel,
        sample_size: u64,
    ) -> Result<Self> {
        if constraints.schema() != schema.as_ref() || model.schema() != schema.as_ref() {
            return Err(CoreError::InvalidInput {
                reason: "constraints, model and knowledge base must share one schema".to_string(),
            });
        }
        Ok(Self { schema, constraints, model, sample_size, lattice: None, graph: None })
    }

    /// Returns the knowledge base with a marginal lattice up to `max_order`
    /// materialised from its model — one dense-joint build plus the lattice
    /// summation, after which every covered query is a table lookup.
    pub fn with_lattice(mut self, max_order: usize) -> Self {
        let joint = self.model.to_joint();
        self.lattice = Some(Arc::new(MarginalLattice::build(&joint, max_order)));
        self
    }

    /// Returns the knowledge base with the same lattice built **factored**:
    /// every table is produced by variable elimination over the model's
    /// factor graph, so the dense joint is never allocated.  The factor
    /// graph itself is cached, and uncovered assignments thereafter resolve
    /// through it instead of the model's dense stride walk.
    pub fn with_factored_lattice(mut self, max_order: usize) -> Self {
        let graph = Arc::new(FactorGraph::from_model(&self.model));
        self.lattice = Some(Arc::new(MarginalLattice::build_factored(&graph, max_order)));
        self.graph = Some(graph);
        self
    }

    /// Attaches an already-built lattice (e.g. the one a snapshot
    /// materialised from this knowledge base's own joint, shared by `Arc`).
    /// The lattice must be over the same schema.
    pub fn attach_lattice(&mut self, lattice: Arc<MarginalLattice>) -> Result<()> {
        if lattice.schema() != self.schema.as_ref() {
            return Err(CoreError::InvalidInput {
                reason: "lattice schema differs from the knowledge base schema".to_string(),
            });
        }
        self.lattice = Some(lattice);
        Ok(())
    }

    /// Attaches an already-built factor graph (e.g. the one a snapshot
    /// shares between its lattice build and its query fallback).  With a
    /// graph attached, assignments the lattice does not cover are answered
    /// by variable elimination rather than the model's dense stride walk.
    pub fn attach_factor_graph(&mut self, graph: Arc<FactorGraph>) -> Result<()> {
        if graph.schema() != self.schema.as_ref() {
            return Err(CoreError::InvalidInput {
                reason: "factor graph schema differs from the knowledge base schema".to_string(),
            });
        }
        self.graph = Some(graph);
        Ok(())
    }

    /// The attached marginal lattice, if one has been materialised.
    pub fn lattice(&self) -> Option<&Arc<MarginalLattice>> {
        self.lattice.as_ref()
    }

    /// The cached factor graph, if one has been attached or built.
    pub fn cached_factor_graph(&self) -> Option<&Arc<FactorGraph>> {
        self.graph.as_ref()
    }

    /// The attribute schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The schema as a shareable handle.
    pub fn shared_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// All constraints (first-order marginals plus discovered cells).
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// The discovered (order ≥ 2) constraints — the "significant
    /// correlations" the memo's procedure extracts.
    pub fn significant_constraints(&self) -> Vec<&Constraint> {
        self.constraints.higher_order().collect()
    }

    /// The fitted a-value model (the memo's "general formula").
    pub fn model(&self) -> &LogLinearModel {
        &self.model
    }

    /// Number of observations the knowledge base was acquired from.
    pub fn sample_size(&self) -> u64 {
        self.sample_size
    }

    /// Probability of a (partial) assignment under the model: one lattice
    /// lookup when a lattice is attached and covers the assignment's
    /// variable set; otherwise variable elimination over the cached factor
    /// graph when one is attached, and the model's dense stride walk as the
    /// last resort.
    pub fn probability(&self, assignment: &Assignment) -> f64 {
        if let Some(lattice) = &self.lattice {
            if let Some(p) = lattice.probability(assignment) {
                return p;
            }
        }
        if let Some(graph) = &self.graph {
            return graph.probability(assignment);
        }
        self.model.probability(assignment)
    }

    /// Conditional probability `P(target | evidence)` under the model — the
    /// memo's `P(A | B, C) = P(A, B, C) / P(B, C)`.  Both the numerator and
    /// the denominator resolve through [`KnowledgeBase::probability`], so
    /// an attached lattice serves conditionals too.
    pub fn conditional(&self, target: &Assignment, evidence: &Assignment) -> Result<f64> {
        if !target.compatible_with(evidence) {
            return Err(CoreError::MaxEnt(MaxEntError::InfeasibleConstraints {
                reason: "target and evidence assign different values to a shared attribute"
                    .to_string(),
            }));
        }
        let denominator = self.probability(evidence);
        if denominator <= 0.0 {
            return Err(CoreError::MaxEnt(MaxEntError::ZeroProbabilityEvidence {
                evidence: evidence.describe(&self.schema),
            }));
        }
        let merged = target.merge(evidence).expect("compatibility checked above");
        Ok(self.probability(&merged) / denominator)
    }

    /// Evaluates a [`Query`].
    pub fn query(&self, query: &Query) -> Result<QueryResult> {
        query.evaluate(self)
    }

    /// Builds and evaluates a query from attribute/value names, e.g.
    /// `P(cancer=yes | smoking=smoker)`.
    pub fn conditional_by_names(
        &self,
        target: &[(&str, &str)],
        evidence: &[(&str, &str)],
    ) -> Result<f64> {
        let target = Assignment::from_names(&self.schema, target)?;
        let evidence = Assignment::from_names(&self.schema, evidence)?;
        self.conditional(&target, &evidence)
    }

    /// The dense joint distribution the model defines.
    pub fn joint(&self) -> JointDistribution {
        self.model.to_joint()
    }

    /// The factored (Appendix-B) view of the model for query evaluation
    /// without materialising the joint.
    pub fn factor_graph(&self) -> FactorGraph {
        FactorGraph::from_model(&self.model)
    }

    /// Entropy (in nats) of the modelled joint distribution.
    pub fn entropy(&self) -> f64 {
        self.joint().entropy()
    }

    /// Number of constraints of each order, as `(order, count)` pairs in
    /// ascending order — a quick summary of how much structure was found.
    pub fn order_histogram(&self) -> Vec<(usize, usize)> {
        let max = self.constraints.max_order();
        (1..=max)
            .map(|order| (order, self.constraints.of_order(order).count()))
            .filter(|&(_, count)| count > 0)
            .collect()
    }

    /// Restores internal lookup indexes after deserialisation.
    pub fn rebuild_indexes(&mut self) {
        self.constraints.rebuild_index();
        self.model.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{Attribute, ContingencyTable};
    use pka_maxent::solver::fit;

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    fn sample_kb() -> KnowledgeBase {
        let t = paper_table();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (2, 1)])).unwrap();
        let (model, _) = fit(&constraints).unwrap();
        KnowledgeBase::new(t.shared_schema(), constraints, model, t.total()).unwrap()
    }

    #[test]
    fn construction_checks_schema_consistency() {
        let t = paper_table();
        let constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        let (model, _) = fit(&constraints).unwrap();
        let other_schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        assert!(KnowledgeBase::new(other_schema, constraints, model, 10).is_err());
    }

    #[test]
    fn accessors_and_summaries() {
        let kb = sample_kb();
        assert_eq!(kb.sample_size(), 3428);
        assert_eq!(kb.schema().len(), 3);
        assert_eq!(kb.significant_constraints().len(), 1);
        assert_eq!(kb.order_histogram(), vec![(1, 7), (2, 1)]);
        assert!(kb.entropy() > 0.0);
        let joint = kb.joint();
        assert!((joint.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probabilities_and_conditionals() {
        let kb = sample_kb();
        // The fitted model honours the discovered constraint exactly.
        let ac12 = Assignment::from_pairs([(0, 0), (2, 1)]);
        assert!((kb.probability(&ac12) - 750.0 / 3428.0).abs() < 1e-9);
        // Conditional by names matches conditional by assignments.
        let by_names =
            kb.conditional_by_names(&[("cancer", "yes")], &[("smoking", "smoker")]).unwrap();
        let by_assignment =
            kb.conditional(&Assignment::single(1, 0), &Assignment::single(0, 0)).unwrap();
        assert!((by_names - by_assignment).abs() < 1e-12);
        // Unknown names surface data errors.
        assert!(kb.conditional_by_names(&[("cancer", "maybe")], &[]).is_err());
    }

    #[test]
    fn factor_graph_agrees_with_model() {
        let kb = sample_kb();
        let graph = kb.factor_graph();
        let q = Assignment::from_pairs([(0, 0), (1, 0)]);
        assert!((graph.probability(&q) - kb.probability(&q)).abs() < 1e-9);
    }

    #[test]
    fn lattice_answers_match_the_model() {
        let kb = sample_kb();
        let fast = kb.clone().with_lattice(2);
        assert!(fast.lattice().is_some());
        assert_eq!(fast, kb, "the lattice is derived state, not identity");
        // Covered orders answer from the lattice, order 3 falls back to the
        // model — both must agree with the plain evaluation to fp noise.
        let probes = [
            Assignment::empty(),
            Assignment::single(1, 0),
            Assignment::from_pairs([(0, 0), (2, 1)]),
            Assignment::from_pairs([(0, 0), (1, 0), (2, 1)]),
        ];
        for a in &probes {
            assert!((fast.probability(a) - kb.probability(a)).abs() < 1e-12);
        }
        let target = Assignment::single(1, 0);
        let evidence = Assignment::single(0, 0);
        let a = fast.conditional(&target, &evidence).unwrap();
        let b = kb.conditional(&target, &evidence).unwrap();
        assert!((a - b).abs() < 1e-12);
        // Error contract survives the lattice path.
        assert!(fast.conditional(&Assignment::single(0, 0), &Assignment::single(0, 1)).is_err());
    }

    #[test]
    fn factored_lattice_answers_match_the_dense_lattice() {
        let kb = sample_kb();
        let dense = kb.clone().with_lattice(2);
        let factored = kb.clone().with_factored_lattice(2);
        assert!(factored.cached_factor_graph().is_some());
        assert_eq!(factored, kb, "derived state does not change identity");
        let probes = [
            Assignment::empty(),
            Assignment::single(1, 0),
            Assignment::from_pairs([(0, 0), (2, 1)]),
            // Order 3 misses the lattice: the factored KB answers it by
            // elimination, the dense one by the model's stride walk.
            Assignment::from_pairs([(0, 0), (1, 0), (2, 1)]),
        ];
        for a in &probes {
            assert!(
                (factored.probability(a) - dense.probability(a)).abs() < 1e-9,
                "probe {a:?} diverged"
            );
        }
    }

    #[test]
    fn attach_factor_graph_rejects_a_foreign_schema() {
        let mut kb = sample_kb();
        let foreign = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let foreign_model = LogLinearModel::uniform(foreign);
        let graph = Arc::new(FactorGraph::from_model(&foreign_model));
        assert!(kb.attach_factor_graph(graph).is_err());
        let own = Arc::new(kb.factor_graph());
        kb.attach_factor_graph(Arc::clone(&own)).unwrap();
        assert!(Arc::ptr_eq(kb.cached_factor_graph().unwrap(), &own));
    }

    #[test]
    fn attach_lattice_rejects_a_foreign_schema() {
        let mut kb = sample_kb();
        let foreign = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let joint = pka_maxent::JointDistribution::uniform(foreign);
        let lattice = std::sync::Arc::new(pka_maxent::MarginalLattice::build(&joint, 2));
        assert!(kb.attach_lattice(lattice).is_err());
        // The right schema attaches fine and is shared by Arc.
        let own = std::sync::Arc::new(pka_maxent::MarginalLattice::build(&kb.joint(), 2));
        kb.attach_lattice(std::sync::Arc::clone(&own)).unwrap();
        assert!(std::sync::Arc::ptr_eq(kb.lattice().unwrap(), &own));
    }

    #[test]
    fn rebuild_indexes_is_idempotent() {
        let mut kb = sample_kb();
        let before = kb.probability(&Assignment::single(0, 0));
        kb.rebuild_indexes();
        kb.rebuild_indexes();
        assert_eq!(kb.probability(&Assignment::single(0, 0)), before);
    }
}
