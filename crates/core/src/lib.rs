//! # pka-core
//!
//! The knowledge-acquisition procedure of NASA TM-88224 (Figures 3–4) and
//! the artefacts it produces.
//!
//! Starting from a contingency table, [`Acquisition::run`]:
//!
//! 1. constrains all first-order marginal probabilities and fits the
//!    maximum-entropy model (initially the independence model, Eqs. 57–62);
//! 2. at each order `n = 2, 3, …`, scores every order-`n` cell with the
//!    minimum-message-length test (Table 1), promotes the most significant
//!    cell to a constraint, refits the a-values (Table 2, warm-started), and
//!    repeats until no significant cell remains at that order;
//! 3. returns a [`KnowledgeBase`]: the compact set of significant joint
//!    probabilities plus the fitted a-value formula, from which **any**
//!    probability relation associated with the data can be computed.
//!
//! On top of the knowledge base the crate provides the conditional-probability
//! query engine ([`Query`]), IF–THEN rule induction with attached
//! probabilities ([`rules`]), human-readable reports mirroring the memo's
//! tables ([`report`]), and JSON serialisation ([`serialize`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acquisition;
pub mod config;
pub mod error;
pub mod knowledge_base;
pub mod query;
pub mod report;
pub mod rules;
pub mod serialize;
pub mod trace;

pub use acquisition::{Acquisition, AcquisitionOutcome};
pub use config::AcquisitionConfig;
pub use error::CoreError;
pub use knowledge_base::KnowledgeBase;
pub use query::{Query, QueryResult};
pub use rules::{induce_rules, Rule, RuleInductionConfig};
pub use trace::{AcquisitionTrace, CellEvaluation, RoundTrace};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
