//! JSON persistence of knowledge bases.
//!
//! The point of the memo's system is to *store* the significant joint
//! probabilities for later use by an expert system, so the knowledge base
//! must round-trip through a durable format.  JSON keeps the artefact
//! human-inspectable; the internal lookup indexes are rebuilt on load.

use crate::knowledge_base::KnowledgeBase;
use crate::Result;

/// Serialises a knowledge base to a pretty-printed JSON string.
pub fn to_json(kb: &KnowledgeBase) -> Result<String> {
    Ok(serde_json::to_string_pretty(kb)?)
}

/// Serialises a knowledge base to a compact JSON string.
pub fn to_json_compact(kb: &KnowledgeBase) -> Result<String> {
    Ok(serde_json::to_string(kb)?)
}

/// Restores a knowledge base from JSON produced by [`to_json`] /
/// [`to_json_compact`], rebuilding the internal indexes.
pub fn from_json(text: &str) -> Result<KnowledgeBase> {
    let mut kb: KnowledgeBase = serde_json::from_str(text)?;
    kb.rebuild_indexes();
    Ok(kb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::Acquisition;
    use pka_contingency::{Assignment, Attribute, ContingencyTable, Schema};

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    #[test]
    fn json_roundtrip_preserves_queries() {
        let t = paper_table();
        let kb = Acquisition::with_defaults().run(&t).unwrap().knowledge_base;
        let json = to_json(&kb).unwrap();
        assert!(json.contains("smoking"));
        let restored = from_json(&json).unwrap();
        assert_eq!(restored.sample_size(), kb.sample_size());
        assert_eq!(restored.significant_constraints().len(), kb.significant_constraints().len());
        // Queries after the round trip agree with the original.
        let target = Assignment::single(1, 0);
        let evidence = Assignment::single(0, 0);
        let a = kb.conditional(&target, &evidence).unwrap();
        let b = restored.conditional(&target, &evidence).unwrap();
        assert!((a - b).abs() < 1e-12);
        // Compact form round-trips too.
        let compact = to_json_compact(&kb).unwrap();
        assert!(compact.len() < json.len());
        let restored2 = from_json(&compact).unwrap();
        assert_eq!(restored2.constraints().len(), kb.constraints().len());
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_json("{").is_err());
        assert!(from_json("{\"not\": \"a kb\"}").is_err());
    }
}
