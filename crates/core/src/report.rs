//! Human-readable reports mirroring the memo's tables.
//!
//! The `reproduce` binary of the benchmark crate calls these renderers to
//! print Table 1 (significance of the second-order cells), Table 2 (the
//! a-value iteration) and a summary of the acquired knowledge base.

use crate::knowledge_base::KnowledgeBase;
use crate::trace::RoundTrace;
use pka_contingency::Schema;
use pka_maxent::SolveReport;
use std::fmt::Write as _;

/// Renders one acquisition round as a Table-1-style listing: one row per
/// candidate cell with predicted probability, observed count, mean, standard
/// deviation, z-score, `m2 − m1` and the posterior odds.
pub fn render_table1(schema: &Schema, round: &RoundTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<42} {:>8} {:>8} {:>8} {:>7} {:>8} {:>10}  p(H1|D)/p(H2|D)",
        "cell", "p_pred", "N_obs", "mean", "sd", "#sd", "m2-m1"
    );
    let _ = writeln!(out, "{}", "-".repeat(112));
    for e in &round.evaluations {
        let _ = writeln!(
            out,
            "{:<42} {:>8.3} {:>8} {:>8.1} {:>7.1} {:>8.2} {:>10.2}  {:<12}{}",
            e.assignment.describe(schema),
            e.predicted_p,
            e.observed,
            e.mean,
            e.std_dev,
            e.z_score,
            e.delta,
            format_ratio(e.likelihood_ratio),
            if e.significant { "  <-- significant" } else { "" },
        );
    }
    if let Some(selected) = &round.selected {
        let _ = writeln!(out, "selected constraint: {}", selected.describe(schema));
    } else {
        let _ = writeln!(out, "no significant cell remains at order {}", round.order);
    }
    out
}

fn format_ratio(r: f64) -> String {
    if r < 0.1 {
        "<.1".to_string()
    } else if r > 1000.0 {
        ">1000".to_string()
    } else {
        format!("{r:.1}")
    }
}

/// Renders a solver trace as a Table-2-style listing: one row per sweep with
/// `a0`, every constraint multiplier and the fitted probabilities.
pub fn render_table2(schema: &Schema, report: &SolveReport) -> String {
    let mut out = String::new();
    if report.trace.is_empty() {
        let _ = writeln!(
            out,
            "(no per-iteration trace recorded; converged = {}, iterations = {}, max violation = {:.3e})",
            report.converged, report.iterations, report.max_violation
        );
        return out;
    }
    let first = &report.trace[0];
    let _ = write!(out, "{:>5} {:>12} {:>14}", "sweep", "a0", "max violation");
    for (assignment, _) in &first.factors {
        let _ = write!(out, " {:>24}", format!("a[{}]", assignment.describe(schema)));
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(34 + 25 * first.factors.len()));
    for rec in &report.trace {
        let _ = write!(out, "{:>5} {:>12.5} {:>14.3e}", rec.iteration, rec.a0, rec.max_violation);
        for (_, value) in &rec.factors {
            let _ = write!(out, " {value:>24.5}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "converged = {}, iterations = {}, final max violation = {:.3e}",
        report.converged, report.iterations, report.max_violation
    );
    out
}

/// Renders a summary of a knowledge base: sample size, entropy, constraint
/// histogram and the discovered (higher-order) constraints.
pub fn render_summary(kb: &KnowledgeBase) -> String {
    let schema = kb.schema();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "knowledge base over {} attributes, {} cells",
        schema.len(),
        schema.cell_count()
    );
    let _ = writeln!(out, "  acquired from N = {} observations", kb.sample_size());
    let _ = writeln!(out, "  model entropy: {:.4} nats", kb.entropy());
    let _ = writeln!(out, "  constraints by order:");
    for (order, count) in kb.order_histogram() {
        let _ = writeln!(out, "    order {order}: {count}");
    }
    let significant = kb.significant_constraints();
    if significant.is_empty() {
        let _ = writeln!(out, "  no significant higher-order correlations found");
    } else {
        let _ = writeln!(out, "  significant joint probabilities:");
        for c in significant {
            let _ =
                writeln!(out, "    P[{}] = {:.4}", c.assignment.describe(schema), c.probability);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::Acquisition;
    use crate::config::AcquisitionConfig;
    use pka_contingency::{Attribute, ContingencyTable};
    use pka_maxent::{ConstraintSet, ConvergenceCriteria, Solver};

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    #[test]
    fn table1_report_contains_key_rows() {
        let t = paper_table();
        let outcome =
            Acquisition::new(AcquisitionConfig::new().with_evaluation_trace()).run(&t).unwrap();
        let round = outcome.trace.first_round_at_order(2).unwrap();
        let text = render_table1(t.schema(), round);
        assert!(text.contains("smoking=smoker, cancer=yes"));
        assert!(text.contains("240"));
        assert!(text.contains("significant"));
        assert!(text.contains("selected constraint"));
        assert_eq!(text.lines().count(), 16 + 3);
    }

    #[test]
    fn table2_report_lists_sweeps() {
        let t = paper_table();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        constraints
            .add_from_table(&t, pka_contingency::Assignment::from_pairs([(0, 0), (2, 1)]))
            .unwrap();
        let solver = Solver::new(ConvergenceCriteria::new().with_trace().with_tolerance(1e-4));
        let (_, report) = solver.fit(&constraints).unwrap();
        let text = render_table2(t.schema(), &report);
        assert!(text.contains("sweep"));
        assert!(text.contains("a0"));
        assert!(text.contains("smoking=smoker, family-history=no"));
        assert!(text.contains("converged = true"));
        // Without a trace the renderer degrades gracefully.
        let no_trace =
            SolveReport { iterations: 3, max_violation: 0.0, converged: true, trace: vec![] };
        assert!(render_table2(t.schema(), &no_trace).contains("no per-iteration trace"));
    }

    #[test]
    fn summary_report_mentions_discoveries() {
        let t = paper_table();
        let outcome = Acquisition::with_defaults().run(&t).unwrap();
        let text = render_summary(&outcome.knowledge_base);
        assert!(text.contains("N = 3428"));
        assert!(text.contains("order 1: 7"));
        assert!(text.contains("significant joint probabilities"));
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(format_ratio(0.01), "<.1");
        assert_eq!(format_ratio(5.8), "5.8");
        assert_eq!(format_ratio(5000.0), ">1000");
    }
}
