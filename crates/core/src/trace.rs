//! Records of what the acquisition procedure examined and decided.
//!
//! Table 1 of the memo is one round of this trace: every second-order cell,
//! its predicted probability, mean, standard deviation, number of standard
//! deviations, `m2 − m1` and the posterior odds.  The trace keeps that
//! information for every round at every order so the memo's tables can be
//! regenerated and so users can audit why a constraint was (or was not)
//! accepted.

use pka_contingency::{Assignment, Schema};
use pka_maxent::SolveReport;
use serde::{Deserialize, Serialize};

/// One scored candidate cell — one row of a Table-1-style report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellEvaluation {
    /// The cell under test.
    pub assignment: Assignment,
    /// Observed count in the data.
    pub observed: u64,
    /// Probability the model (fitted to the constraints known so far)
    /// assigns the cell.
    pub predicted_p: f64,
    /// Predicted mean count (Eq. 33).
    pub mean: f64,
    /// Predicted standard deviation (Eq. 34).
    pub std_dev: f64,
    /// Standardised deviation of the observation.
    pub z_score: f64,
    /// Message length of hypothesis H1.
    pub m1: f64,
    /// Message length of hypothesis H2.
    pub m2: f64,
    /// `m2 − m1`; negative means significant (Eq. 47).
    pub delta: f64,
    /// Posterior odds `p(H1|D)/p(H2|D) = exp(delta)`.
    pub likelihood_ratio: f64,
    /// Whether the cell passed the significance test.
    pub significant: bool,
}

impl CellEvaluation {
    /// Human-readable single-line rendering using schema names.
    pub fn describe(&self, schema: &Schema) -> String {
        format!(
            "{}: observed {} (predicted {:.1} ± {:.1}, {:+.2} sd), m2-m1 = {:+.2}{}",
            self.assignment.describe(schema),
            self.observed,
            self.mean,
            self.std_dev,
            self.z_score,
            self.delta,
            if self.significant { "  [significant]" } else { "" }
        )
    }
}

/// One round at one order: every candidate scored against the current model,
/// plus which cell (if any) was promoted to a constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundTrace {
    /// The constraint order being searched (2 for second-order cells, …).
    pub order: usize,
    /// 1-based round number within the order.
    pub round: usize,
    /// Scores of every candidate cell (empty unless evaluation recording was
    /// enabled in the configuration).
    pub evaluations: Vec<CellEvaluation>,
    /// The cell promoted to a constraint this round, if any.
    pub selected: Option<Assignment>,
    /// `m2 − m1` of the selected cell.
    pub selected_delta: Option<f64>,
    /// Number of candidate cells considered this round.
    pub candidates: usize,
    /// Number of candidates that tested significant this round.
    pub significant_count: usize,
    /// Report of the solver run that followed the promotion (absent when no
    /// cell was promoted).
    pub fit_report: Option<SolveReport>,
}

/// The full history of an acquisition run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AcquisitionTrace {
    /// Every round, in execution order.
    pub rounds: Vec<RoundTrace>,
    /// Report of the initial (first-order only) fit.
    pub initial_fit: Option<SolveReport>,
}

impl AcquisitionTrace {
    /// Rounds belonging to one order.
    pub fn rounds_at_order(&self, order: usize) -> impl Iterator<Item = &RoundTrace> {
        self.rounds.iter().filter(move |r| r.order == order)
    }

    /// The first round at a given order — for order 2 this is exactly the
    /// memo's Table 1 (all second-order cells scored against the
    /// independence model).
    pub fn first_round_at_order(&self, order: usize) -> Option<&RoundTrace> {
        self.rounds_at_order(order).next()
    }

    /// Every constraint the run promoted, in discovery order.
    pub fn selected_constraints(&self) -> Vec<Assignment> {
        self.rounds.iter().filter_map(|r| r.selected.clone()).collect()
    }

    /// Total number of candidate-cell evaluations performed.
    pub fn total_evaluations(&self) -> usize {
        self.rounds.iter().map(|r| r.candidates).sum()
    }

    /// Total solver sweeps spent across the run: the initial fit plus every
    /// per-promotion refit.  This is the cost the streaming engine's warm
    /// starts exist to reduce, so it is the headline number of the warm vs
    /// cold benchmark.
    pub fn total_solver_iterations(&self) -> usize {
        self.initial_fit.as_ref().map_or(0, |r| r.iterations)
            + self
                .rounds
                .iter()
                .filter_map(|r| r.fit_report.as_ref())
                .map(|r| r.iterations)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
        ])
        .unwrap()
    }

    fn evaluation(delta: f64) -> CellEvaluation {
        CellEvaluation {
            assignment: Assignment::from_pairs([(0, 0), (1, 0)]),
            observed: 240,
            predicted_p: 0.048,
            mean: 165.0,
            std_dev: 12.5,
            z_score: 6.03,
            m1: 20.0,
            m2: 20.0 + delta,
            delta,
            likelihood_ratio: delta.exp(),
            significant: delta < 0.0,
        }
    }

    #[test]
    fn describe_mentions_names_and_flag() {
        let s = schema();
        let e = evaluation(-11.5);
        let text = e.describe(&s);
        assert!(text.contains("smoking=smoker"));
        assert!(text.contains("cancer=yes"));
        assert!(text.contains("[significant]"));
        let e = evaluation(1.7);
        assert!(!e.describe(&s).contains("[significant]"));
    }

    #[test]
    fn trace_accessors() {
        let round = |order: usize, round: usize, selected: bool| RoundTrace {
            order,
            round,
            evaluations: vec![evaluation(-1.0)],
            selected: selected.then(|| Assignment::from_pairs([(0, 0), (1, 0)])),
            selected_delta: selected.then_some(-1.0),
            candidates: 16,
            significant_count: usize::from(selected),
            fit_report: None,
        };
        let trace = AcquisitionTrace {
            rounds: vec![round(2, 1, true), round(2, 2, false), round(3, 1, false)],
            initial_fit: None,
        };
        assert_eq!(trace.rounds_at_order(2).count(), 2);
        assert_eq!(trace.first_round_at_order(2).unwrap().round, 1);
        assert!(trace.first_round_at_order(4).is_none());
        assert_eq!(trace.selected_constraints().len(), 1);
        assert_eq!(trace.total_evaluations(), 48);
    }
}
