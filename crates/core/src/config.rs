//! Configuration of the acquisition procedure.

use crate::error::CoreError;
use crate::Result;
use pka_maxent::{ConvergenceCriteria, DEFAULT_DENSE_CEILING};
use pka_significance::HypothesisPriors;
use serde::{Deserialize, Serialize};

/// Tunable knobs of the acquisition loop (Figure 3 of the memo).
///
/// The defaults reproduce the memo's behaviour: search every order up to the
/// number of attributes, use even hypothesis priors (Eq. 63), and accept as
/// many constraints per order as the significance test promotes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcquisitionConfig {
    /// Highest constraint order to search (`None` = up to the number of
    /// attributes, the memo's full procedure).
    pub max_order: Option<usize>,
    /// Prior probabilities of the "one more constraint remains" hypothesis.
    pub priors: HypothesisPriors,
    /// Convergence criteria of the a-value solver used after each promoted
    /// constraint.
    pub convergence: ConvergenceCriteria,
    /// Safety cap on the number of constraints accepted per order (the memo
    /// has no such cap; the default is effectively unlimited).
    pub max_constraints_per_order: usize,
    /// Record the full per-round evaluation trace (every Table-1-style row).
    /// Needed to regenerate Table 1; adds memory proportional to the number
    /// of candidate cells per round.
    pub record_evaluations: bool,
    /// Joint cell count above which the solver and candidate scoring switch
    /// from dense sweeps to factored (variable-elimination) evaluation.
    /// `0` forces factored everywhere; `usize::MAX` forces dense.
    pub dense_ceiling: usize,
}

impl AcquisitionConfig {
    /// The memo's defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Limits the search to constraints of at most `order` attributes.
    pub fn with_max_order(mut self, order: usize) -> Self {
        self.max_order = Some(order);
        self
    }

    /// Sets the hypothesis priors.
    pub fn with_priors(mut self, priors: HypothesisPriors) -> Self {
        self.priors = priors;
        self
    }

    /// Sets the solver convergence criteria.
    pub fn with_convergence(mut self, convergence: ConvergenceCriteria) -> Self {
        self.convergence = convergence;
        self
    }

    /// Caps the number of constraints accepted per order.
    pub fn with_max_constraints_per_order(mut self, cap: usize) -> Self {
        self.max_constraints_per_order = cap;
        self
    }

    /// Enables recording of every cell evaluation (Table 1 reproduction).
    pub fn with_evaluation_trace(mut self) -> Self {
        self.record_evaluations = true;
        self
    }

    /// Sets the joint cell count above which evaluation goes factored.
    pub fn with_dense_ceiling(mut self, cells: usize) -> Self {
        self.dense_ceiling = cells;
        self
    }

    /// Validates the configuration against a given attribute count.
    pub fn validate(&self, attribute_count: usize) -> Result<()> {
        if let Some(order) = self.max_order {
            if order == 0 {
                return Err(CoreError::InvalidConfig {
                    reason: "max_order must be at least 1".to_string(),
                });
            }
            if order > attribute_count {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "max_order {order} exceeds the number of attributes {attribute_count}"
                    ),
                });
            }
        }
        if self.max_constraints_per_order == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "max_constraints_per_order must be at least 1".to_string(),
            });
        }
        Ok(())
    }

    /// The effective highest order searched for a schema with
    /// `attribute_count` attributes.
    pub fn effective_max_order(&self, attribute_count: usize) -> usize {
        self.max_order.unwrap_or(attribute_count).min(attribute_count)
    }
}

impl Default for AcquisitionConfig {
    fn default() -> Self {
        Self {
            max_order: None,
            priors: HypothesisPriors::even(),
            convergence: ConvergenceCriteria::default(),
            max_constraints_per_order: usize::MAX,
            record_evaluations: false,
            dense_ceiling: DEFAULT_DENSE_CEILING,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_memo() {
        let c = AcquisitionConfig::default();
        assert_eq!(c.max_order, None);
        assert_eq!(c.priors, HypothesisPriors::even());
        assert!(!c.record_evaluations);
        assert_eq!(c.dense_ceiling, DEFAULT_DENSE_CEILING);
        assert_eq!(c.effective_max_order(3), 3);
        assert_eq!(c.effective_max_order(7), 7);
        assert!(c.validate(3).is_ok());
    }

    #[test]
    fn builder_composition() {
        let c = AcquisitionConfig::new()
            .with_max_order(2)
            .with_priors(HypothesisPriors::new(0.6).unwrap())
            .with_max_constraints_per_order(5)
            .with_evaluation_trace()
            .with_dense_ceiling(0);
        assert_eq!(c.max_order, Some(2));
        assert_eq!(c.max_constraints_per_order, 5);
        assert_eq!(c.dense_ceiling, 0);
        assert!(c.record_evaluations);
        assert_eq!(c.effective_max_order(3), 2);
        assert_eq!(c.effective_max_order(1), 1);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(AcquisitionConfig::new().with_max_order(0).validate(3).is_err());
        assert!(AcquisitionConfig::new().with_max_order(4).validate(3).is_err());
        assert!(AcquisitionConfig::new().with_max_constraints_per_order(0).validate(3).is_err());
        assert!(AcquisitionConfig::new().with_max_order(3).validate(3).is_ok());
    }
}
