//! IF–THEN rule induction with attached probabilities.
//!
//! The memo's introduction shows the transformation it has in mind:
//! `P(A | B, C) = p` can be read as `IF B AND C THEN A (with probability p)`.
//! This module enumerates such rules from an acquired knowledge base,
//! filtering by support, probability and lift so only informative rules are
//! kept, and renders them in the familiar expert-system syntax.

use crate::knowledge_base::KnowledgeBase;
use crate::Result;
use pka_contingency::{Assignment, Schema, VarSet};
use serde::{Deserialize, Serialize};

/// One induced rule: `IF conditions THEN conclusion (with probability p)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// The condition part (one or more attribute=value tests).
    pub conditions: Assignment,
    /// The conclusion (a single attribute=value proposition).
    pub conclusion: Assignment,
    /// `P(conclusion | conditions)` under the knowledge base's model.
    pub probability: f64,
    /// `P(conditions)` — how often the rule fires.
    pub support: f64,
    /// `P(conclusion | conditions) / P(conclusion)` — how much the
    /// conditions change the belief in the conclusion (1 = not at all).
    pub lift: f64,
}

impl Rule {
    /// Renders the rule in the memo's `IF … THEN … (with probability p)`
    /// syntax using the schema's attribute and value names.
    pub fn format(&self, schema: &Schema) -> String {
        let conditions: Vec<String> = self
            .conditions
            .pairs()
            .map(|(attr, value)| {
                let a = schema.attribute(attr).expect("attribute in schema");
                format!("{}={}", a.name(), a.value_name(value).unwrap_or("?"))
            })
            .collect();
        format!(
            "IF {} THEN {} (probability {:.3}, support {:.3}, lift {:.2})",
            conditions.join(" AND "),
            self.conclusion.describe(schema),
            self.probability,
            self.support,
            self.lift
        )
    }

    /// Number of conditions in the IF part.
    pub fn condition_count(&self) -> usize {
        self.conditions.order()
    }
}

/// Filters applied during rule induction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuleInductionConfig {
    /// Maximum number of conditions in a rule's IF part.
    pub max_conditions: usize,
    /// Minimum `P(conditions)`: rules that almost never fire are dropped.
    pub min_support: f64,
    /// Minimum `P(conclusion | conditions)`.
    pub min_probability: f64,
    /// Minimum `|lift − 1|`: rules whose conditions barely change the
    /// conclusion's probability are dropped (they carry no knowledge beyond
    /// the first-order marginals).
    pub min_lift_deviation: f64,
    /// If set, only rules concluding about these attributes are produced.
    pub target_attributes: Option<VarSet>,
}

impl RuleInductionConfig {
    /// Reasonable defaults: up to two conditions, 1% support, no minimum
    /// probability, at least a 5% relative change in belief.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the maximum number of conditions.
    pub fn with_max_conditions(mut self, n: usize) -> Self {
        self.max_conditions = n;
        self
    }

    /// Sets the minimum support.
    pub fn with_min_support(mut self, s: f64) -> Self {
        self.min_support = s;
        self
    }

    /// Sets the minimum conditional probability.
    pub fn with_min_probability(mut self, p: f64) -> Self {
        self.min_probability = p;
        self
    }

    /// Sets the minimum lift deviation.
    pub fn with_min_lift_deviation(mut self, d: f64) -> Self {
        self.min_lift_deviation = d;
        self
    }

    /// Restricts conclusions to the given attributes.
    pub fn with_target_attributes(mut self, attrs: VarSet) -> Self {
        self.target_attributes = Some(attrs);
        self
    }
}

impl Default for RuleInductionConfig {
    fn default() -> Self {
        Self {
            max_conditions: 2,
            min_support: 0.01,
            min_probability: 0.0,
            min_lift_deviation: 0.05,
            target_attributes: None,
        }
    }
}

/// Enumerates every rule the knowledge base supports under the given
/// filters, sorted by decreasing lift deviation (the most surprising rules
/// first).
pub fn induce_rules(kb: &KnowledgeBase, config: &RuleInductionConfig) -> Result<Vec<Rule>> {
    let schema = kb.schema();
    let all = schema.all_vars();
    let target_attrs = config.target_attributes.unwrap_or(all).intersection(all);

    let mut rules = Vec::new();
    for target_attr in target_attrs.iter() {
        let prior_by_value: Vec<f64> = (0..schema.cardinality(target_attr)?)
            .map(|v| kb.probability(&Assignment::single(target_attr, v)))
            .collect();
        let condition_pool = all.without(target_attr);
        let max_conditions = config.max_conditions.min(condition_pool.len());
        for size in 1..=max_conditions {
            for condition_vars in condition_pool.subsets_of_size(size) {
                for condition_values in schema.configurations(condition_vars) {
                    let conditions = Assignment::new(condition_vars, condition_values);
                    let support = kb.probability(&conditions);
                    if support < config.min_support || support <= 0.0 {
                        continue;
                    }
                    for (value, &prior) in prior_by_value.iter().enumerate() {
                        let conclusion = Assignment::single(target_attr, value);
                        let probability = kb.conditional(&conclusion, &conditions)?;
                        if probability < config.min_probability {
                            continue;
                        }
                        let lift = if prior > 0.0 { probability / prior } else { f64::INFINITY };
                        if (lift - 1.0).abs() < config.min_lift_deviation {
                            continue;
                        }
                        rules.push(Rule {
                            conditions: conditions.clone(),
                            conclusion,
                            probability,
                            support,
                            lift,
                        });
                    }
                }
            }
        }
    }
    rules.sort_by(|a, b| {
        let da = (a.lift - 1.0).abs();
        let db = (b.lift - 1.0).abs();
        db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{Attribute, ContingencyTable, Schema};
    use pka_maxent::{solver::fit, ConstraintSet};
    use std::sync::Arc;

    fn kb() -> KnowledgeBase {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        let t = ContingencyTable::from_counts(
            Arc::clone(&schema),
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (1, 0)])).unwrap();
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (2, 1)])).unwrap();
        let (model, _) = fit(&constraints).unwrap();
        KnowledgeBase::new(schema, constraints, model, t.total()).unwrap()
    }

    #[test]
    fn induces_the_memo_style_smoking_rule() {
        let kb = kb();
        let rules = induce_rules(&kb, &RuleInductionConfig::default()).unwrap();
        assert!(!rules.is_empty());
        // The headline rule: IF smoking=smoker THEN cancer=yes with
        // probability ~0.186 (240/1290), lift ~1.47 over the prior 0.126.
        let rule = rules
            .iter()
            .find(|r| {
                r.conditions == Assignment::single(0, 0) && r.conclusion == Assignment::single(1, 0)
            })
            .expect("smoker->cancer rule present");
        assert!((rule.probability - 240.0 / 1290.0).abs() < 1e-3);
        assert!(rule.lift > 1.3 && rule.lift < 1.7);
        assert!((rule.support - 1290.0 / 3428.0).abs() < 1e-6);
        let text = rule.format(kb.schema());
        assert!(text.starts_with("IF smoking=smoker THEN cancer=yes"));
        assert_eq!(rule.condition_count(), 1);
    }

    #[test]
    fn rules_are_sorted_by_lift_deviation() {
        let kb = kb();
        let rules = induce_rules(&kb, &RuleInductionConfig::default()).unwrap();
        for pair in rules.windows(2) {
            assert!((pair[0].lift - 1.0).abs() + 1e-12 >= (pair[1].lift - 1.0).abs());
        }
    }

    #[test]
    fn uninformative_rules_are_filtered_out() {
        let kb = kb();
        let rules = induce_rules(&kb, &RuleInductionConfig::default()).unwrap();
        // In this model, family-history is conditionally independent of
        // cancer given nothing else was discovered linking them, so any rule
        // concluding cancer from family-history alone must have been filtered
        // (lift ~ 1), unless smoking mediates — only smoking-based rules
        // survive for the cancer target with a single condition.
        assert!(rules
            .iter()
            .filter(|r| r.condition_count() == 1 && r.conclusion.vars() == VarSet::singleton(1))
            .all(|r| (r.lift - 1.0).abs() >= 0.05));
        // All returned rules satisfy the filters.
        for r in &rules {
            assert!(r.support >= 0.01);
            assert!(r.condition_count() <= 2);
        }
    }

    #[test]
    fn target_attribute_restriction() {
        let kb = kb();
        let config = RuleInductionConfig::default().with_target_attributes(VarSet::singleton(1));
        let rules = induce_rules(&kb, &config).unwrap();
        assert!(!rules.is_empty());
        assert!(rules.iter().all(|r| r.conclusion.vars() == VarSet::singleton(1)));
    }

    #[test]
    fn filters_are_respected() {
        let kb = kb();
        let strict = RuleInductionConfig::default()
            .with_min_probability(0.5)
            .with_min_support(0.3)
            .with_max_conditions(1)
            .with_min_lift_deviation(0.0);
        let rules = induce_rules(&kb, &strict).unwrap();
        for r in &rules {
            assert!(r.probability >= 0.5);
            assert!(r.support >= 0.3);
            assert_eq!(r.condition_count(), 1);
        }
        // Tightening filters never yields more rules than the default.
        let default_rules = induce_rules(&kb, &RuleInductionConfig::default()).unwrap();
        let strict2 = RuleInductionConfig::default().with_min_support(0.2);
        let fewer = induce_rules(&kb, &strict2).unwrap();
        assert!(fewer.len() <= default_rules.len());
    }

    #[test]
    fn builder_methods() {
        let c = RuleInductionConfig::new()
            .with_max_conditions(3)
            .with_min_support(0.2)
            .with_min_probability(0.4)
            .with_min_lift_deviation(0.1)
            .with_target_attributes(VarSet::singleton(2));
        assert_eq!(c.max_conditions, 3);
        assert_eq!(c.min_support, 0.2);
        assert_eq!(c.min_probability, 0.4);
        assert_eq!(c.min_lift_deviation, 0.1);
        assert_eq!(c.target_attributes, Some(VarSet::singleton(2)));
    }
}
