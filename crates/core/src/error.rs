//! Error type for the acquisition layer.

use pka_contingency::ContingencyError;
use pka_maxent::MaxEntError;
use pka_significance::SignificanceError;
use std::fmt;

/// Errors produced by the acquisition procedure, queries or serialisation.
#[derive(Debug)]
pub enum CoreError {
    /// Error from the data layer.
    Data(ContingencyError),
    /// Error from the maximum-entropy layer.
    MaxEnt(MaxEntError),
    /// Error from the statistical layer.
    Significance(SignificanceError),
    /// The acquisition configuration is unusable (e.g. a zero maximum
    /// order).
    InvalidConfig {
        /// Explanation of the problem.
        reason: String,
    },
    /// The input table cannot support acquisition (e.g. it is empty).
    InvalidInput {
        /// Explanation of the problem.
        reason: String,
    },
    /// A knowledge base could not be serialised or deserialised.
    Serialization {
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Data(e) => write!(f, "data error: {e}"),
            Self::MaxEnt(e) => write!(f, "maximum-entropy error: {e}"),
            Self::Significance(e) => write!(f, "significance error: {e}"),
            Self::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Self::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            Self::Serialization { reason } => write!(f, "serialization error: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Data(e) => Some(e),
            Self::MaxEnt(e) => Some(e),
            Self::Significance(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ContingencyError> for CoreError {
    fn from(e: ContingencyError) -> Self {
        Self::Data(e)
    }
}

impl From<MaxEntError> for CoreError {
    fn from(e: MaxEntError) -> Self {
        Self::MaxEnt(e)
    }
}

impl From<SignificanceError> for CoreError {
    fn from(e: SignificanceError) -> Self {
        Self::Significance(e)
    }
}

impl From<serde_json::Error> for CoreError {
    fn from(e: serde_json::Error) -> Self {
        Self::Serialization { reason: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = ContingencyError::EmptySchema.into();
        assert!(e.to_string().contains("data error"));
        let e: CoreError = MaxEntError::InfeasibleConstraints { reason: "x".into() }.into();
        assert!(e.to_string().contains("maximum-entropy"));
        let e: CoreError = SignificanceError::InvalidCount { reason: "y".into() }.into();
        assert!(e.to_string().contains("significance"));
        let e = CoreError::InvalidConfig { reason: "max order is zero".into() };
        assert!(e.to_string().contains("max order"));
        let e = CoreError::InvalidInput { reason: "empty".into() };
        assert!(e.to_string().contains("empty"));
        let e = CoreError::Serialization { reason: "eof".into() };
        assert!(e.to_string().contains("eof"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: CoreError = ContingencyError::EmptySchema.into();
        assert!(e.source().is_some());
        let e = CoreError::InvalidConfig { reason: "x".into() };
        assert!(e.source().is_none());
    }
}
