//! The acquisition loop of Figure 3: order-by-order discovery of significant
//! joint probabilities.

use crate::config::AcquisitionConfig;
use crate::error::CoreError;
use crate::knowledge_base::KnowledgeBase;
use crate::trace::{AcquisitionTrace, CellEvaluation, RoundTrace};
use crate::Result;
use pka_contingency::{Assignment, ContingencyTable, VarSet};
use pka_maxent::{ConstraintSet, FactorGraph, IncidenceCache, LogLinearModel, Solver};
use pka_significance::{CandidateCell, MessageLengthTest, RangeContext};

/// Factors of a warm-start seed model are raised to at least this value so
/// cells a previous boundary fit drove to zero stay recoverable (see
/// [`Acquisition::run_warm_started`]).
const WARM_START_FACTOR_FLOOR: f64 = 1e-12;

/// The acquisition procedure.
///
/// One `Acquisition` value is a reusable, configured pipeline; call
/// [`Acquisition::run`] on any contingency table over any schema.
#[derive(Debug, Clone, Copy, Default)]
pub struct Acquisition {
    config: AcquisitionConfig,
}

/// What a run produces: the knowledge base plus the audit trace.
#[derive(Debug, Clone)]
pub struct AcquisitionOutcome {
    /// The acquired knowledge base.
    pub knowledge_base: KnowledgeBase,
    /// The per-round history (Table 1 / Table 2 style records).
    pub trace: AcquisitionTrace,
}

impl Acquisition {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: AcquisitionConfig) -> Self {
        Self { config }
    }

    /// Creates a pipeline with the memo's default configuration.
    pub fn with_defaults() -> Self {
        Self::default()
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcquisitionConfig {
        &self.config
    }

    /// Runs the procedure of Figure 3 on a contingency table.
    pub fn run(&self, table: &ContingencyTable) -> Result<AcquisitionOutcome> {
        self.run_with_prior(table, &[])
    }

    /// [`Acquisition::run`] with a caller-owned solver [`IncidenceCache`].
    ///
    /// Every solver fit inside the run (the initial fit plus one per
    /// promoted constraint) shares the cache, and the cache outlives the
    /// run — a streaming engine passes the same cache to every refit so
    /// repeated refits over an unchanged constraint set skip the
    /// `O(constraints × cells)` incidence pass entirely.
    pub fn run_cached(
        &self,
        table: &ContingencyTable,
        cache: &mut IncidenceCache,
    ) -> Result<AcquisitionOutcome> {
        self.run_seeded(table, &[], None, cache)
    }

    /// Runs the procedure with prior knowledge: marginal cells that are
    /// **already known to be significant** before looking at this data (the
    /// memo's "higher-order marginals … originally given as significant",
    /// Eq. 41's note).  Their probabilities are taken from the table, they
    /// constrain the model from the start, and they count towards `M` and
    /// towards the Eq. 41 range bounds at their order.
    ///
    /// Every prior cell must mention at least two attributes (first-order
    /// marginals are always constrained anyway).
    pub fn run_with_prior(
        &self,
        table: &ContingencyTable,
        prior_constraints: &[Assignment],
    ) -> Result<AcquisitionOutcome> {
        self.run_seeded(table, prior_constraints, None, &mut IncidenceCache::new())
    }

    /// Runs the procedure **warm-started** from a previously acquired
    /// knowledge base — the streaming-refresh entry point.
    ///
    /// The memo's Figure 4 instructs the solver to start "with the last
    /// previously calculated a values" whenever a constraint is added; this
    /// method lifts the same idea to the whole acquisition run.  The
    /// previous knowledge base contributes two things:
    ///
    /// 1. its higher-order constraint *cells* re-enter as prior knowledge
    ///    (their probabilities are re-read from the **new** table, so the
    ///    constraint set tracks the data as it grows), and
    /// 2. its fitted a-values seed the solver, so the initial fit starts
    ///    next to the solution instead of at the uniform model.
    ///
    /// The search then continues normally and may promote further cells.
    /// For a consistent table the fixed point is the same knowledge base a
    /// cold [`Acquisition::run`] would reach (the maximum-entropy solution
    /// is unique per constraint set); the warm start only reduces the
    /// solver work needed to get there.
    pub fn run_warm_started(
        &self,
        table: &ContingencyTable,
        previous: &KnowledgeBase,
    ) -> Result<AcquisitionOutcome> {
        self.run_warm_started_cached(table, previous, &mut IncidenceCache::new())
    }

    /// [`Acquisition::run_warm_started`] with a caller-owned solver
    /// [`IncidenceCache`] (see [`Acquisition::run_cached`]).  The
    /// steady-state streaming refit — same constraint set, new counts — is
    /// a pure cache hit.
    pub fn run_warm_started_cached(
        &self,
        table: &ContingencyTable,
        previous: &KnowledgeBase,
        cache: &mut IncidenceCache,
    ) -> Result<AcquisitionOutcome> {
        if previous.schema() != table.schema() {
            return Err(CoreError::InvalidInput {
                reason: "warm start requires the previous knowledge base and the new table \
                         to share a schema"
                    .to_string(),
            });
        }
        let priors: Vec<Assignment> =
            previous.constraints().higher_order().map(|c| c.assignment.clone()).collect();
        // Boundary solutions leave factors at (numerically) zero; on shifted
        // data those cells may need mass again, and the multiplicative
        // update cannot lift an exact zero.  Resurrect them to a tiny floor
        // so the warm start is robust to distribution shift.
        let mut model = previous.model().clone();
        model.floor_factors(WARM_START_FACTOR_FLOOR);
        self.run_seeded(table, &priors, Some(model), cache)
    }

    fn run_seeded(
        &self,
        table: &ContingencyTable,
        prior_constraints: &[Assignment],
        initial_model: Option<LogLinearModel>,
        cache: &mut IncidenceCache,
    ) -> Result<AcquisitionOutcome> {
        let schema = table.shared_schema();
        self.config.validate(schema.len())?;
        if table.total() == 0 {
            return Err(CoreError::InvalidInput {
                reason: "cannot acquire knowledge from an empty table".to_string(),
            });
        }
        for prior in prior_constraints {
            if prior.order() < 2 {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "prior constraint {} is first order; first-order marginals are always constrained",
                        prior.describe(&schema)
                    ),
                });
            }
        }

        let solver =
            Solver::new(self.config.convergence).with_dense_ceiling(self.config.dense_ceiling);
        let test = MessageLengthTest::new(self.config.priors);
        // Above the ceiling, candidate scoring never scatters the joint:
        // each candidate varset gets one eliminated marginal per round.
        let score_factored = schema.cell_count() > self.config.dense_ceiling;

        // Step 1: first-order marginals are always constraints (Eq. 48) and
        // any prior knowledge is added on top; the resulting maximum-entropy
        // model is the independence model when there is no prior knowledge.
        let mut constraints = ConstraintSet::first_order_from_table(table)?;
        for prior in prior_constraints {
            constraints.add_from_table(table, prior.clone())?;
        }
        let (mut model, initial_fit) = match initial_model {
            Some(previous) => solver.fit_from_cached(previous, &constraints, cache)?,
            None => solver.fit_from_cached(
                LogLinearModel::uniform(constraints.shared_schema()),
                &constraints,
                cache,
            )?,
        };

        let mut trace = AcquisitionTrace { rounds: Vec::new(), initial_fit: Some(initial_fit) };

        let max_order = self.config.effective_max_order(schema.len());

        // Step 2: search each order in turn.
        for order in 2..=max_order {
            let candidate_sets: Vec<VarSet> = schema.all_vars().subsets_of_size(order);
            let cells_at_order: usize =
                candidate_sets.iter().map(|&s| schema.cell_count_of(s)).sum();
            if cells_at_order == 0 {
                continue;
            }

            // Constraints of this order already present (prior knowledge or
            // carried over from a previous run) count as "found": they bound
            // the remaining cells (Eq. 41) and reduce the model-indexing term
            // of m2.
            let mut found_at_order: Vec<Assignment> =
                constraints.of_order(order).map(|c| c.assignment.clone()).collect();

            for round in 1..=cells_at_order {
                if found_at_order.len() >= self.config.max_constraints_per_order {
                    break;
                }
                if found_at_order.len() >= cells_at_order {
                    break;
                }

                let known_higher = constraints.higher_order_assignments();
                let range_ctx = RangeContext::new(table, &known_higher, &found_at_order);

                // Below the ceiling: one dense scatter of the model per
                // round; every candidate is then scored by a stride walk over
                // its covered cells instead of an O(factors) product per cell
                // per candidate.  Above it: no scatter at all — candidates
                // read their mass out of an eliminated marginal per varset.
                let dense = if score_factored { Vec::new() } else { model.dense_probabilities() };
                let graph = score_factored.then(|| FactorGraph::from_model(&model));

                // Score every unconstrained cell at this order.
                let mut evaluations: Vec<CellEvaluation> = Vec::new();
                let mut best: Option<(usize, f64)> = None;
                for &vars in &candidate_sets {
                    // `FactorGraph::marginal` tables and `configurations`
                    // share the same row-major layout, so the enumeration
                    // index doubles as the table index.
                    let marginal = graph.as_ref().map(|g| g.marginal(vars));
                    for (config_index, values) in schema.configurations(vars).enumerate() {
                        let assignment = Assignment::new(vars, values);
                        if constraints.contains(&assignment) {
                            continue;
                        }
                        let observed = table.count_matching(&assignment);
                        let predicted_p = match &marginal {
                            Some(m) => m[config_index],
                            None => {
                                schema.matching_cells(&assignment).map(|i| dense[i]).sum::<f64>()
                            }
                        }
                        .clamp(0.0, 1.0);
                        let range = range_ctx.range_of(&assignment);
                        let lengths = test.evaluate(
                            &CandidateCell {
                                assignment: assignment.clone(),
                                observed,
                                predicted_p,
                            },
                            table.total(),
                            cells_at_order,
                            found_at_order.len(),
                            &range,
                        )?;
                        let evaluation = CellEvaluation {
                            assignment,
                            observed,
                            predicted_p,
                            mean: lengths.mean,
                            std_dev: lengths.std_dev,
                            z_score: lengths.z_score,
                            m1: lengths.m1,
                            m2: lengths.m2,
                            delta: lengths.delta(),
                            likelihood_ratio: lengths.likelihood_ratio(),
                            significant: lengths.is_significant(),
                        };
                        if evaluation.significant && best.is_none_or(|(_, d)| evaluation.delta < d)
                        {
                            best = Some((evaluations.len(), evaluation.delta));
                        }
                        evaluations.push(evaluation);
                    }
                }

                let candidates = evaluations.len();
                let significant_count = evaluations.iter().filter(|e| e.significant).count();

                let Some((best_index, best_delta)) = best else {
                    // No significant cell remains at this order: record the
                    // final (empty-handed) round and move on (Figure 3's
                    // "done" branch for the order).
                    trace.rounds.push(RoundTrace {
                        order,
                        round,
                        evaluations: if self.config.record_evaluations {
                            evaluations
                        } else {
                            Vec::new()
                        },
                        selected: None,
                        selected_delta: None,
                        candidates,
                        significant_count,
                        fit_report: None,
                    });
                    break;
                };

                // Promote the most significant cell and refit, warm-starting
                // from the current a-values (Figure 4).
                let selected = evaluations[best_index].assignment.clone();
                constraints.add_from_table(table, selected.clone())?;
                found_at_order.push(selected.clone());
                let (new_model, fit_report) =
                    solver.fit_from_cached(model.clone(), &constraints, cache)?;
                model = new_model;

                trace.rounds.push(RoundTrace {
                    order,
                    round,
                    evaluations: if self.config.record_evaluations {
                        evaluations
                    } else {
                        Vec::new()
                    },
                    selected: Some(selected),
                    selected_delta: Some(best_delta),
                    candidates,
                    significant_count,
                    fit_report: Some(fit_report),
                });
            }
        }

        let knowledge_base =
            KnowledgeBase::new(schema, constraints, normalized(model), table.total())?;
        Ok(AcquisitionOutcome { knowledge_base, trace })
    }
}

fn normalized(mut model: LogLinearModel) -> LogLinearModel {
    // The solver leaves the model normalised to numerical precision; one
    // final exact renormalisation keeps downstream queries clean.
    let _ = model.normalize();
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{Attribute, Schema};
    use pka_significance::HypothesisPriors;
    use std::sync::Arc;

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    #[test]
    fn rejects_empty_tables_and_bad_configs() {
        let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let empty = ContingencyTable::zeros(Arc::clone(&schema));
        assert!(Acquisition::with_defaults().run(&empty).is_err());
        let t = paper_table();
        let bad = Acquisition::new(AcquisitionConfig::new().with_max_order(9));
        assert!(bad.run(&t).is_err());
    }

    #[test]
    fn paper_example_discovers_smoking_family_history_structure() {
        // Running the full procedure on the memo's survey must, at minimum,
        // discover the smoking × family-history association the memo's
        // Table 1 identifies as the most significant block (cells AB_11 /
        // AC_11 / AC_12 are the strongly significant ones).
        let t = paper_table();
        let acquisition = Acquisition::new(AcquisitionConfig::new().with_evaluation_trace());
        let outcome = acquisition.run(&t).unwrap();
        let kb = &outcome.knowledge_base;
        let discovered = kb.significant_constraints();
        assert!(!discovered.is_empty(), "no constraints discovered");
        // Every discovered constraint is honoured exactly by the model.
        for c in &discovered {
            assert!(
                (kb.probability(&c.assignment) - c.probability).abs() < 1e-6,
                "constraint {:?} not honoured",
                c.assignment
            );
        }
        // The A-C (smoking × family-history) interaction must be represented
        // among the second-order discoveries.
        let ac = VarSet::from_indices([0, 2]);
        assert!(
            discovered.iter().any(|c| c.assignment.vars() == ac),
            "no smoking × family-history constraint found: {:?}",
            discovered.iter().map(|c| c.assignment.clone()).collect::<Vec<_>>()
        );
        // First-order marginals remain exact.
        for attr in 0..3 {
            for v in 0..t.schema().cardinality(attr).unwrap() {
                let a = Assignment::single(attr, v);
                assert!((kb.probability(&a) - t.frequency(&a)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn first_round_trace_reproduces_table_1_shape() {
        let t = paper_table();
        let acquisition = Acquisition::new(AcquisitionConfig::new().with_evaluation_trace());
        let outcome = acquisition.run(&t).unwrap();
        let round = outcome.trace.first_round_at_order(2).expect("order 2 searched");
        // 16 second-order candidate cells, exactly as in Table 1.
        assert_eq!(round.candidates, 16);
        assert_eq!(round.evaluations.len(), 16);
        // Find the AB_11 row and check it is flagged significant with a
        // strongly negative delta, as in Table 1 (-11.57).
        let ab11 = round
            .evaluations
            .iter()
            .find(|e| e.assignment == Assignment::from_pairs([(0, 0), (1, 0)]))
            .unwrap();
        assert!(ab11.significant);
        assert!(ab11.delta < -8.0);
        assert_eq!(ab11.observed, 240);
        // And the BC_11 row is NOT significant despite its 3.3 sd deviation.
        let bc11 = round
            .evaluations
            .iter()
            .find(|e| e.assignment == Assignment::from_pairs([(1, 0), (2, 0)]))
            .unwrap();
        assert!(!bc11.significant);
        assert!(bc11.z_score > 3.0);
        // The selected cell is one of the strongly significant AB/AC cells.
        let selected = round.selected.clone().unwrap();
        let strong = [
            Assignment::from_pairs([(0, 0), (1, 0)]),
            Assignment::from_pairs([(0, 0), (2, 0)]),
            Assignment::from_pairs([(0, 0), (2, 1)]),
        ];
        assert!(strong.contains(&selected), "selected {selected:?}");
    }

    #[test]
    fn max_order_limits_the_search() {
        let t = paper_table();
        let acquisition = Acquisition::new(AcquisitionConfig::new().with_max_order(2));
        let outcome = acquisition.run(&t).unwrap();
        assert!(outcome.knowledge_base.significant_constraints().iter().all(|c| c.order() <= 2));
        assert!(outcome.trace.rounds_at_order(3).next().is_none());
    }

    #[test]
    fn constraint_cap_is_respected() {
        let t = paper_table();
        let acquisition = Acquisition::new(
            AcquisitionConfig::new().with_max_order(2).with_max_constraints_per_order(1),
        );
        let outcome = acquisition.run(&t).unwrap();
        assert_eq!(outcome.knowledge_base.significant_constraints().len(), 1);
    }

    #[test]
    fn stronger_h2_prior_finds_at_least_as_many_constraints() {
        let t = paper_table();
        let even = Acquisition::new(AcquisitionConfig::new()).run(&t).unwrap();
        let eager = Acquisition::new(
            AcquisitionConfig::new().with_priors(HypothesisPriors::new(0.8).unwrap()),
        )
        .run(&t)
        .unwrap();
        assert!(
            eager.knowledge_base.significant_constraints().len()
                >= even.knowledge_base.significant_constraints().len()
        );
    }

    #[test]
    fn independent_data_yields_no_higher_order_constraints() {
        // A perfectly independent table (counts are exact products) should
        // produce no significant higher-order constraints.
        let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        // P(a=0)=.5, P(b=0)=.5, N=400 -> each cell exactly 100.
        let t =
            ContingencyTable::from_counts(Arc::clone(&schema), vec![100, 100, 100, 100]).unwrap();
        let outcome = Acquisition::with_defaults().run(&t).unwrap();
        assert!(outcome.knowledge_base.significant_constraints().is_empty());
        assert_eq!(outcome.knowledge_base.order_histogram(), vec![(1, 4)]);
    }

    #[test]
    fn strongly_dependent_data_yields_constraints() {
        // Two perfectly correlated binary attributes.
        let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let t = ContingencyTable::from_counts(Arc::clone(&schema), vec![200, 0, 0, 200]).unwrap();
        let outcome = Acquisition::with_defaults().run(&t).unwrap();
        assert!(!outcome.knowledge_base.significant_constraints().is_empty());
        // The model must reproduce the perfect correlation.
        let kb = &outcome.knowledge_base;
        let p = kb.conditional(&Assignment::single(1, 0), &Assignment::single(0, 0)).unwrap();
        assert!(p > 0.95, "P(b=0 | a=0) = {p}");
    }

    #[test]
    fn prior_constraints_are_honoured_and_counted() {
        let t = paper_table();
        // Give the memo's N^AC_12 cell as prior knowledge (the constraint the
        // memo itself chooses to walk through in Table 2).
        let prior = Assignment::from_pairs([(0, 0), (2, 1)]);
        let outcome = Acquisition::new(AcquisitionConfig::new().with_evaluation_trace())
            .run_with_prior(&t, std::slice::from_ref(&prior))
            .unwrap();
        let kb = &outcome.knowledge_base;
        // The prior cell is a constraint and is honoured exactly.
        assert!(kb.constraints().contains(&prior));
        assert!((kb.probability(&prior) - 750.0 / 3428.0).abs() < 1e-6);
        // It is never re-evaluated as a candidate.
        for round in &outcome.trace.rounds {
            assert!(round.evaluations.iter().all(|e| e.assignment != prior));
            assert!(round.selected.as_ref() != Some(&prior));
        }
        // The first order-2 round therefore screens only 15 candidates.
        let first = outcome.trace.first_round_at_order(2).unwrap();
        assert_eq!(first.candidates, 15);
    }

    #[test]
    fn warm_started_run_reaches_the_cold_fixed_point_cheaper() {
        let t = paper_table();
        let acquisition = Acquisition::with_defaults();
        let cold = acquisition.run(&t).unwrap();
        // Refitting the same data warm-started from the cold result must
        // reproduce the knowledge base while spending (much) less solver
        // work: the seed model already satisfies every constraint.
        let warm = acquisition.run_warm_started(&t, &cold.knowledge_base).unwrap();
        assert_eq!(warm.knowledge_base.order_histogram(), cold.knowledge_base.order_histogram());
        for c in cold.knowledge_base.constraints().constraints() {
            assert!(
                (warm.knowledge_base.probability(&c.assignment) - c.probability).abs() < 1e-8,
                "warm run lost constraint {:?}",
                c.assignment
            );
        }
        assert!(
            warm.trace.total_solver_iterations() < cold.trace.total_solver_iterations(),
            "warm {} vs cold {} iterations",
            warm.trace.total_solver_iterations(),
            cold.trace.total_solver_iterations()
        );
    }

    #[test]
    fn shared_incidence_cache_is_reused_across_warm_refits() {
        let t = paper_table();
        let acquisition = Acquisition::with_defaults();
        let mut cache = IncidenceCache::new();
        let cold = acquisition.run_cached(&t, &mut cache).unwrap();
        let after_cold = cache.stats();
        assert_eq!(after_cold.rebuilds, 1, "one structural build for the whole cold run");
        assert_eq!(
            after_cold.extensions as usize,
            cold.knowledge_base.significant_constraints().len(),
            "each promotion extends the cached prefix instead of rebuilding"
        );

        // A warm refit over the same constraint set is pure cache hits: its
        // initial constraint list equals the cold run's final list.
        let warm =
            acquisition.run_warm_started_cached(&t, &cold.knowledge_base, &mut cache).unwrap();
        let after_warm = cache.stats();
        assert_eq!(after_warm.rebuilds, after_cold.rebuilds, "warm refit never rebuilds");
        assert_eq!(after_warm.extensions, after_cold.extensions);
        assert!(after_warm.full_hits > after_cold.full_hits, "warm refit reuses the cache");
        assert_eq!(warm.knowledge_base.order_histogram(), cold.knowledge_base.order_histogram());
    }

    #[test]
    fn warm_start_requires_matching_schemas() {
        let t = paper_table();
        let cold = Acquisition::with_defaults().run(&t).unwrap();
        let other = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let foreign = ContingencyTable::from_counts(other, vec![10, 20, 30, 40]).unwrap();
        assert!(matches!(
            Acquisition::with_defaults().run_warm_started(&foreign, &cold.knowledge_base),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    fn warm_start_survives_distribution_shift_from_boundary_models() {
        // Perfectly correlated data drives the off-diagonal cells to zero
        // mass; a later shift gives those cells real probability.  The
        // factor floor must let the warm refit recover instead of failing
        // with infeasible constraints.
        let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let correlated =
            ContingencyTable::from_counts(Arc::clone(&schema), vec![200, 0, 0, 200]).unwrap();
        let first = Acquisition::with_defaults().run(&correlated).unwrap();
        // Shifted data: the formerly-zero cell (0,1) now dominates.
        let shifted =
            ContingencyTable::from_counts(Arc::clone(&schema), vec![50, 300, 25, 25]).unwrap();
        let warm = Acquisition::with_defaults()
            .run_warm_started(&shifted, &first.knowledge_base)
            .expect("warm start must survive the shift");
        let p01 = warm.knowledge_base.probability(&Assignment::from_pairs([(0, 0), (1, 1)]));
        assert!(p01 > 0.5, "shifted mass recovered: {p01}");
    }

    #[test]
    fn first_order_prior_constraints_are_rejected() {
        let t = paper_table();
        let err = Acquisition::with_defaults().run_with_prior(&t, &[Assignment::single(0, 0)]);
        assert!(matches!(err, Err(CoreError::InvalidConfig { .. })));
    }

    #[test]
    fn prior_knowledge_changes_what_else_is_discovered() {
        // With the whole AC structure given up front, acquisition should not
        // need to rediscover it (no AC cells among the newly selected ones).
        let t = paper_table();
        let ac = VarSet::from_indices([0, 2]);
        let priors: Vec<Assignment> =
            t.schema().configurations(ac).map(|values| Assignment::new(ac, values)).collect();
        let outcome = Acquisition::new(AcquisitionConfig::new().with_max_order(2))
            .run_with_prior(&t, &priors)
            .unwrap();
        let selected = outcome.trace.selected_constraints();
        assert!(selected.iter().all(|a| a.vars() != ac));
        // But the AC structure is in the knowledge base (as prior knowledge).
        assert!(outcome
            .knowledge_base
            .significant_constraints()
            .iter()
            .any(|c| c.assignment.vars() == ac));
    }

    #[test]
    fn factored_scoring_reproduces_the_dense_discoveries() {
        // dense_ceiling = 0 forces both the solver and candidate scoring
        // onto the factored path; the acquired knowledge base must match the
        // dense run constraint-for-constraint.
        let t = paper_table();
        let dense = Acquisition::with_defaults().run(&t).unwrap();
        let factored =
            Acquisition::new(AcquisitionConfig::new().with_dense_ceiling(0)).run(&t).unwrap();
        assert_eq!(
            factored.knowledge_base.order_histogram(),
            dense.knowledge_base.order_histogram()
        );
        let mut dense_cells: Vec<Assignment> = dense
            .knowledge_base
            .significant_constraints()
            .iter()
            .map(|c| c.assignment.clone())
            .collect();
        let mut factored_cells: Vec<Assignment> = factored
            .knowledge_base
            .significant_constraints()
            .iter()
            .map(|c| c.assignment.clone())
            .collect();
        dense_cells.sort_by_key(|a| (a.vars().bits(), a.values().to_vec()));
        factored_cells.sort_by_key(|a| (a.vars().bits(), a.values().to_vec()));
        assert_eq!(dense_cells, factored_cells, "the two paths promoted different cells");
        for c in dense.knowledge_base.constraints().constraints() {
            assert!(
                (factored.knowledge_base.probability(&c.assignment) - c.probability).abs() < 1e-6,
                "constraint {:?} drifted on the factored path",
                c.assignment
            );
        }
    }

    #[test]
    fn trace_is_empty_of_evaluations_unless_requested() {
        let t = paper_table();
        let outcome = Acquisition::with_defaults().run(&t).unwrap();
        assert!(outcome.trace.rounds.iter().all(|r| r.evaluations.is_empty()));
        assert!(outcome.trace.total_evaluations() > 0);
    }
}
