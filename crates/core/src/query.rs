//! Conditional-probability queries against a knowledge base.
//!
//! The memo's motivating output is the ability to compute
//! `P(A | B, C) = P(A, B, C) / P(B, C)` for *any* proposition and *any*
//! combination of evidence, directly from the stored joint probabilities.
//! [`Query`] packages one such question; [`QueryResult`] is the answer plus
//! the intermediate quantities useful for explanation.

use crate::error::CoreError;
use crate::knowledge_base::KnowledgeBase;
use crate::Result;
use pka_contingency::{Assignment, Schema};
use serde::{Deserialize, Serialize};

/// A conditional-probability question: `P(target | evidence)`.
///
/// With empty evidence the query is the plain marginal `P(target)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The proposition whose probability is sought.
    pub target: Assignment,
    /// The conditioning evidence (may be empty).
    pub evidence: Assignment,
}

impl Query {
    /// Creates a marginal query `P(target)`.
    pub fn marginal(target: Assignment) -> Self {
        Self { target, evidence: Assignment::empty() }
    }

    /// Creates a conditional query `P(target | evidence)`.
    pub fn conditional(target: Assignment, evidence: Assignment) -> Self {
        Self { target, evidence }
    }

    /// Builds a query from attribute/value names.
    pub fn from_names(
        schema: &Schema,
        target: &[(&str, &str)],
        evidence: &[(&str, &str)],
    ) -> Result<Self> {
        Ok(Self {
            target: Assignment::from_names(schema, target)?,
            evidence: Assignment::from_names(schema, evidence)?,
        })
    }

    /// Adds one more piece of evidence.
    pub fn given(mut self, attribute: usize, value: usize) -> Self {
        self.evidence = self.evidence.with(attribute, value);
        self
    }

    /// Evaluates the query against a knowledge base.
    pub fn evaluate(&self, kb: &KnowledgeBase) -> Result<QueryResult> {
        if !self.target.compatible_with(&self.evidence) {
            return Err(CoreError::InvalidInput {
                reason: "target and evidence assign different values to a shared attribute"
                    .to_string(),
            });
        }
        let joint_assignment =
            self.target.merge(&self.evidence).expect("compatibility checked above");
        let evidence_probability = kb.probability(&self.evidence);
        if evidence_probability <= 0.0 {
            return Err(CoreError::MaxEnt(pka_maxent::MaxEntError::ZeroProbabilityEvidence {
                evidence: self.evidence.describe(kb.schema()),
            }));
        }
        let joint_probability = kb.probability(&joint_assignment);
        let prior = kb.probability(&self.target);
        Ok(QueryResult {
            query: self.clone(),
            probability: joint_probability / evidence_probability,
            joint_probability,
            evidence_probability,
            prior_probability: prior,
        })
    }

    /// Human-readable rendering, e.g. `P(cancer=yes | smoking=smoker)`.
    pub fn describe(&self, schema: &Schema) -> String {
        if self.evidence.vars().is_empty() {
            format!("P({})", self.target.describe(schema))
        } else {
            format!("P({} | {})", self.target.describe(schema), self.evidence.describe(schema))
        }
    }
}

/// The answer to a [`Query`], with the pieces of Bayes' identity exposed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// The question asked.
    pub query: Query,
    /// `P(target | evidence)`.
    pub probability: f64,
    /// `P(target, evidence)`.
    pub joint_probability: f64,
    /// `P(evidence)`.
    pub evidence_probability: f64,
    /// The unconditional `P(target)` — comparing it against `probability`
    /// shows how much the evidence moved the belief.
    pub prior_probability: f64,
}

impl QueryResult {
    /// The ratio `P(target | evidence) / P(target)` ("lift"); 1 when the
    /// evidence is uninformative about the target.
    ///
    /// Returns `f64::INFINITY` when the prior is zero — fine for in-process
    /// arithmetic and ordering, but **not representable in JSON**.  Anything
    /// that puts a lift on the wire must use [`QueryResult::finite_lift`]
    /// (or its serve-side equivalent), which maps that case to `None`/`null`.
    pub fn lift(&self) -> f64 {
        if self.prior_probability <= 0.0 {
            f64::INFINITY
        } else {
            self.probability / self.prior_probability
        }
    }

    /// The lift in wire-safe form: `None` instead of infinity when the
    /// prior is zero (and for any other non-finite ratio), so serialising
    /// the value can never produce invalid JSON.
    pub fn finite_lift(&self) -> Option<f64> {
        let lift = self.lift();
        lift.is_finite().then_some(lift)
    }

    /// Human-readable rendering of the result.
    pub fn describe(&self, schema: &Schema) -> String {
        format!(
            "{} = {:.4} (prior {:.4}, lift {:.2})",
            self.query.describe(schema),
            self.probability,
            self.prior_probability,
            self.lift()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{Attribute, ContingencyTable};
    use pka_maxent::{solver::fit, ConstraintSet};
    use std::sync::Arc;

    fn kb() -> KnowledgeBase {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        let t = ContingencyTable::from_counts(
            Arc::clone(&schema),
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap();
        let mut constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        constraints.add_from_table(&t, Assignment::from_pairs([(0, 0), (1, 0)])).unwrap();
        let (model, _) = fit(&constraints).unwrap();
        KnowledgeBase::new(schema, constraints, model, t.total()).unwrap()
    }

    #[test]
    fn marginal_query() {
        let kb = kb();
        let q = Query::marginal(Assignment::single(1, 0));
        let r = q.evaluate(&kb).unwrap();
        assert!((r.probability - 433.0 / 3428.0).abs() < 1e-6);
        assert!((r.evidence_probability - 1.0).abs() < 1e-9);
        assert!((r.lift() - 1.0).abs() < 1e-9);
        assert_eq!(q.describe(kb.schema()), "P(cancer=yes)");
    }

    #[test]
    fn conditional_query_reflects_discovered_association() {
        let kb = kb();
        // The AB_11 constraint was added: P(cancer=yes | smoking=smoker)
        // should be 240/1290 = .186, well above the prior .126.
        let q =
            Query::from_names(kb.schema(), &[("cancer", "yes")], &[("smoking", "smoker")]).unwrap();
        let r = q.evaluate(&kb).unwrap();
        assert!((r.probability - 240.0 / 1290.0).abs() < 1e-4, "p = {}", r.probability);
        assert!(r.lift() > 1.3);
        let text = r.describe(kb.schema());
        assert!(text.contains("P(cancer=yes | smoking=smoker)"));
    }

    #[test]
    fn given_builder_adds_evidence() {
        let kb = kb();
        let q = Query::marginal(Assignment::single(1, 0)).given(0, 0).given(2, 1);
        assert_eq!(q.evidence.order(), 2);
        let r = q.evaluate(&kb).unwrap();
        assert!(r.probability > 0.0 && r.probability < 1.0);
    }

    #[test]
    fn incompatible_and_impossible_queries_error() {
        let kb = kb();
        let incompatible = Query::conditional(Assignment::single(0, 0), Assignment::single(0, 1));
        assert!(incompatible.evaluate(&kb).is_err());
        // Evidence with probability zero.
        let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let t = ContingencyTable::from_counts(Arc::clone(&schema), vec![10, 10, 0, 0]).unwrap();
        let constraints = ConstraintSet::first_order_from_table(&t).unwrap();
        let (model, _) = fit(&constraints).unwrap();
        let zero_kb = KnowledgeBase::new(schema, constraints, model, t.total()).unwrap();
        let q = Query::conditional(Assignment::single(1, 0), Assignment::single(0, 1));
        assert!(q.evaluate(&zero_kb).is_err());
    }

    #[test]
    fn finite_lift_guards_the_zero_prior() {
        let kb = kb();
        let q = Query::marginal(Assignment::single(1, 0));
        let r = q.evaluate(&kb).unwrap();
        assert_eq!(r.finite_lift(), Some(r.lift()));
        // A zero prior makes lift() infinite but finite_lift() None.
        let zero_prior = QueryResult { prior_probability: 0.0, ..r };
        assert!(zero_prior.lift().is_infinite());
        assert_eq!(zero_prior.finite_lift(), None);
    }

    #[test]
    fn query_from_names_validates() {
        let kb = kb();
        assert!(Query::from_names(kb.schema(), &[("cancer", "maybe")], &[]).is_err());
        assert!(Query::from_names(kb.schema(), &[("age", "old")], &[]).is_err());
    }
}
