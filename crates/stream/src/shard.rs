//! Mergeable count shards — the unit of parallel ingestion.
//!
//! A [`CountShard`] is a contingency table owned by one worker.  Because
//! cell counts form a commutative monoid under addition (identity: the
//! all-zero table), shards can be built independently, in any order, over
//! any partition of the stream, and combined with [`CountShard::merge`]
//! into exactly the table a single sequential pass would have produced.
//! Those algebraic laws are what make sharded ingestion *exact*; they are
//! property-tested in `tests/shard_laws.rs` at the workspace root.

use crate::error::StreamError;
use crate::{Result, WIRE_FORMAT_VERSION};
use pka_contingency::{ContingencyTable, Sample, Schema};
use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;

/// One worker's private slice of the stream's contingency counts.
///
/// Shards serialise (schema + dense counts) so they can cross process and
/// node boundaries: because merge is associative and commutative, a
/// coordinator can deserialise shards produced anywhere and combine them in
/// any order — the groundwork for multi-node shard placement.  The wire
/// form is an object `{"format_version": …, "table": …}`; the version
/// stamp is checked on deserialisation (see [`WIRE_FORMAT_VERSION`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountShard {
    table: ContingencyTable,
}

/// Reads the `format_version` stamp of a wire payload, rejecting payloads
/// that declare a different version than [`WIRE_FORMAT_VERSION`] — or none.
pub(crate) fn check_format_version(value: &Value) -> Result<()> {
    let found = value.get("format_version").and_then(Value::as_u64);
    if found == Some(WIRE_FORMAT_VERSION) {
        Ok(())
    } else {
        Err(StreamError::FormatVersion { found })
    }
}

impl Serialize for CountShard {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("format_version".to_string(), Value::U64(WIRE_FORMAT_VERSION)),
            ("table".to_string(), self.table.serialize()),
        ])
    }
}

impl Deserialize for CountShard {
    fn deserialize(value: &Value) -> std::result::Result<Self, serde::Error> {
        check_format_version(value).map_err(|e| serde::Error::custom(e.to_string()))?;
        let table = serde::de_field(value, "table")?;
        Ok(Self { table })
    }
}

impl CountShard {
    /// An empty shard over a schema — the monoid identity.
    pub fn new(schema: Arc<Schema>) -> Self {
        Self { table: ContingencyTable::zeros(schema) }
    }

    /// Wraps an existing table as a shard (e.g. counts recovered from a
    /// checkpoint).
    pub fn from_table(table: ContingencyTable) -> Self {
        Self { table }
    }

    /// The schema the shard counts over.
    pub fn schema(&self) -> &Schema {
        self.table.schema()
    }

    /// Number of tuples recorded in this shard.
    pub fn tuple_count(&self) -> u64 {
        self.table.total()
    }

    /// True if no tuple has been recorded.
    pub fn is_empty(&self) -> bool {
        self.table.total() == 0
    }

    /// Records one tuple given as raw value indices.
    pub fn record(&mut self, values: &[usize]) -> Result<()> {
        self.table.increment(values)?;
        Ok(())
    }

    /// Records one validated sample.
    pub fn record_sample(&mut self, sample: &Sample) -> Result<()> {
        self.table.increment_sample(sample)?;
        Ok(())
    }

    /// Records a batch of raw rows.  Returns the number recorded; on error
    /// nothing before the offending row is rolled back (callers wanting
    /// atomic batches validate first — see `ingest::tabulate_sharded`).
    pub fn record_batch<R: AsRef<[usize]>>(&mut self, rows: &[R]) -> Result<u64> {
        for row in rows {
            self.record(row.as_ref())?;
        }
        Ok(rows.len() as u64)
    }

    /// Combines two shards by value.  Associative and commutative: for any
    /// shards `a, b, c` over one schema,
    /// `a.merge(b.merge(c)?)? == a.merge(b)?.merge(c)?` and
    /// `a.merge(b)? == b.merge(a)?`.
    pub fn merge(self, other: CountShard) -> Result<CountShard> {
        Ok(Self { table: self.table.combined(other.table)? })
    }

    /// In-place variant of [`CountShard::merge`].
    pub fn absorb(&mut self, other: &CountShard) -> Result<()> {
        self.table.merge(&other.table)?;
        Ok(())
    }

    /// Serialises the shard to compact JSON — the on-the-wire form for
    /// shipping counts between nodes.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| StreamError::InvalidConfig { reason: e.to_string() })
    }

    /// Restores a shard from [`CountShard::to_json`] output, re-validating
    /// the internal consistency a hostile or corrupted payload could break
    /// (cell-count arity, overflow, and the stored total).
    pub fn from_json(text: &str) -> Result<Self> {
        let value: Value = serde_json::from_str(text)
            .map_err(|e| StreamError::InvalidConfig { reason: e.to_string() })?;
        Self::from_value(&value)
    }

    /// Restores a shard from its wire [`Value`] form — the in-protocol
    /// counterpart of [`CountShard::from_json`], with the same format
    /// version check and hostile-payload re-validation.
    pub fn from_value(value: &Value) -> Result<Self> {
        // Checked here (not only inside `Deserialize`) so callers get the
        // structured `FormatVersion` error rather than message text.
        check_format_version(value)?;
        let shard: CountShard = Deserialize::deserialize(value)
            .map_err(|e| StreamError::InvalidConfig { reason: e.to_string() })?;
        let table = shard.table;
        // Rebuild through the checked constructor so counts/schema/total
        // cannot disagree.
        let rebuilt = ContingencyTable::from_counts(table.shared_schema(), table.counts().to_vec())
            .map_err(StreamError::from)?;
        if rebuilt.total() != table.total() {
            return Err(StreamError::InvalidConfig {
                reason: format!(
                    "shard payload claims {} tuples but its counts sum to {}",
                    table.total(),
                    rebuilt.total()
                ),
            });
        }
        Ok(Self { table: rebuilt })
    }

    /// Read access to the underlying counts.
    pub fn table(&self) -> &ContingencyTable {
        &self.table
    }

    /// Unwraps into the underlying table.
    pub fn into_table(self) -> ContingencyTable {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::uniform(&[2, 3]).unwrap().into_shared()
    }

    #[test]
    fn record_and_merge_counts_add() {
        let mut a = CountShard::new(schema());
        let mut b = CountShard::new(schema());
        a.record(&[0, 1]).unwrap();
        a.record(&[0, 1]).unwrap();
        b.record(&[0, 1]).unwrap();
        b.record(&[1, 2]).unwrap();
        let merged = a.merge(b).unwrap();
        assert_eq!(merged.tuple_count(), 4);
        assert_eq!(merged.table().count_values(&[0, 1]), 3);
        assert_eq!(merged.table().count_values(&[1, 2]), 1);
    }

    #[test]
    fn empty_shard_is_identity() {
        let mut a = CountShard::new(schema());
        a.record_batch(&[vec![0, 0], vec![1, 1]]).unwrap();
        let merged = a.clone().merge(CountShard::new(schema())).unwrap();
        assert_eq!(merged, a);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let a = CountShard::new(schema());
        let b = CountShard::new(Schema::uniform(&[4]).unwrap().into_shared());
        assert!(a.merge(b).is_err());
    }

    #[test]
    fn json_round_trip_preserves_counts_and_merge() {
        let mut a = CountShard::new(schema());
        a.record_batch(&[vec![0, 0], vec![1, 2], vec![1, 2]]).unwrap();
        let json = a.to_json().unwrap();
        let back = CountShard::from_json(&json).unwrap();
        assert_eq!(back, a);
        // A deserialised shard merges exactly like the original — the
        // property multi-node placement depends on.
        let mut b = CountShard::new(schema());
        b.record(&[0, 1]).unwrap();
        assert_eq!(back.merge(b.clone()).unwrap(), a.merge(b).unwrap());
    }

    #[test]
    fn tampered_payloads_are_rejected() {
        let mut a = CountShard::new(schema());
        a.record(&[0, 0]).unwrap();
        let json = a.to_json().unwrap();
        // A total that disagrees with the counts must not be trusted.
        let tampered = json.replace("\"total\":1", "\"total\":999");
        assert!(tampered != json, "fixture must actually tamper");
        assert!(CountShard::from_json(&tampered).is_err());
        assert!(CountShard::from_json("{").is_err());
        assert!(CountShard::from_json("{\"not\":\"a shard\"}").is_err());
        // Forged schema strides must not survive either: the schema's
        // derived index layout is recomputed on deserialisation, so a
        // payload claiming strides [100, 1] (which would index out of
        // bounds) round-trips to the correct [3, 1] layout.
        let forged = json.replace("\"strides\":[3,1]", "\"strides\":[100,1]");
        assert!(forged != json, "fixture must actually forge strides");
        let restored = CountShard::from_json(&forged).unwrap();
        assert_eq!(restored, a, "derived schema state is rebuilt, not trusted");
        assert_eq!(restored.schema().strides(), &[3, 1]);
    }

    #[test]
    fn format_version_is_stamped_and_enforced() {
        let mut a = CountShard::new(schema());
        a.record(&[1, 1]).unwrap();
        let json = a.to_json().unwrap();
        assert!(
            json.starts_with(&format!("{{\"format_version\":{WIRE_FORMAT_VERSION}")),
            "wire payload must lead with its version stamp: {json}"
        );
        // A mismatched version is a structured error naming what was found.
        let bumped = json.replace(
            &format!("\"format_version\":{WIRE_FORMAT_VERSION}"),
            "\"format_version\":999",
        );
        assert!(matches!(
            CountShard::from_json(&bumped),
            Err(StreamError::FormatVersion { found: Some(999) })
        ));
        // A payload with no stamp at all (e.g. from a pre-fabric build) is
        // rejected the same way rather than being trusted.
        let stripped = json.replace(&format!("\"format_version\":{WIRE_FORMAT_VERSION},"), "");
        assert!(matches!(
            CountShard::from_json(&stripped),
            Err(StreamError::FormatVersion { found: None })
        ));
    }

    #[test]
    fn invalid_rows_are_rejected() {
        let mut a = CountShard::new(schema());
        assert!(a.record(&[0, 9]).is_err());
        assert!(a.record(&[0]).is_err());
        assert_eq!(a.tuple_count(), 0);
    }
}
