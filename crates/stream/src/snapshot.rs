//! Snapshot isolation: versioned, immutable knowledge-base handles.
//!
//! Queries must keep being answered while a refit runs.  The engine
//! publishes each refitted [`KnowledgeBase`] as an immutable, versioned
//! [`Snapshot`] behind an `Arc`, and swaps the shared slot atomically.  The
//! slot is an [`arc_swap::ArcSwapOption`] — an atomic pointer guarded by
//! striped borrow counters, whose **readers are wait-free**:
//! [`SnapshotHandle::load`] is a fixed, loop-free instruction sequence
//! that never contends with a publish, so a refit landing mid-query costs
//! readers nothing.  Readers load an `Arc` once per query (or per request
//! batch) and then work against a consistent knowledge base, no matter how
//! many swaps happen meanwhile.
//!
//! Loads are *monotone* per thread: once a reader has observed version
//! `v`, every later load it performs (on any clone of the handle) observes
//! a version `>= v` — and a load always returns the snapshot that is
//! current at the instant the pointer is read.  `tests/snapshot_stress.rs`
//! at the workspace root hammers these guarantees with concurrent readers
//! under 10k publishes.

use arc_swap::ArcSwapOption;
use pka_core::KnowledgeBase;
use pka_maxent::{
    FactorGraph, JointDistribution, MarginalLattice, DEFAULT_DENSE_CEILING, DEFAULT_LATTICE_ORDER,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One published, immutable state of the streaming knowledge base.
///
/// Beyond the knowledge base itself, a snapshot carries the model's
/// **factor graph** (the Appendix-B sum-of-products form), the **marginal
/// lattice** (every marginal table up to a cutoff order, default
/// [`DEFAULT_LATTICE_ORDER`]), and — only when the schema's cell count is
/// at or below the dense ceiling — the **dense joint distribution**, all
/// materialised once at publish time.  Query serving answers any
/// assignment whose variable set the lattice covers with one table lookup;
/// other assignments fall back to a stride walk over the dense joint when
/// it exists, or to a [`FactorGraph::marginal`] elimination when it does
/// not.  Above the ceiling the lattice itself is built by eliminating down
/// to each planned varset, so publishing a wide-schema snapshot never
/// allocates `O(total cells)`.  A snapshot rebuilt from decayed or
/// re-merged counts simply rebuilds these caches at publish, so staleness
/// policies never have to reason about them.
#[derive(Debug, Clone)]
pub struct Snapshot {
    knowledge_base: KnowledgeBase,
    joint: Option<JointDistribution>,
    graph: Arc<FactorGraph>,
    lattice: Arc<MarginalLattice>,
    version: u64,
    observations: u64,
    warm_started: bool,
}

/// The serialisable identity card of a [`Snapshot`] — what a server reports
/// for `stats`/`snapshot-version` requests and what `pka-fabric` followers
/// exchange (inside `snapshot-sync` payloads) to decide whether a replica
/// is current.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotMeta {
    /// Wire-format stamp; always [`crate::WIRE_FORMAT_VERSION`] for
    /// locally-built metadata.  Checked by [`SnapshotMeta::from_value`] so
    /// cross-node payloads from an incompatible build fail loudly.
    pub format_version: u64,
    /// Monotonically increasing publication number (1 for the first fit).
    pub version: u64,
    /// Number of stream tuples the snapshot was fitted on.
    pub observations: u64,
    /// Whether the refit was warm-started from its predecessor.
    pub warm_started: bool,
    /// Total constraints in the fitted knowledge base.
    pub constraints: usize,
    /// Number of schema attributes.
    pub attributes: usize,
}

impl Snapshot {
    /// Assembles a snapshot with the default lattice order.  Normally done
    /// by the engine's refresh; public so replication layers (and stress
    /// tests) can publish snapshots they received or rebuilt themselves.
    pub fn new(
        knowledge_base: KnowledgeBase,
        version: u64,
        observations: u64,
        warm_started: bool,
    ) -> Self {
        Self::with_lattice_order(
            knowledge_base,
            version,
            observations,
            warm_started,
            DEFAULT_LATTICE_ORDER,
        )
    }

    /// Assembles a snapshot, materialising the marginal lattice up to
    /// `lattice_order`, with the default dense ceiling (see
    /// [`Snapshot::with_lattice_order_and_ceiling`]).
    pub fn with_lattice_order(
        knowledge_base: KnowledgeBase,
        version: u64,
        observations: u64,
        warm_started: bool,
        lattice_order: usize,
    ) -> Self {
        Self::with_lattice_order_and_ceiling(
            knowledge_base,
            version,
            observations,
            warm_started,
            lattice_order,
            DEFAULT_DENSE_CEILING,
        )
    }

    /// Assembles a snapshot, materialising the marginal lattice up to
    /// `lattice_order`.  At or below `dense_ceiling` joint cells the
    /// publish-time cost is one dense-joint build plus the lattice
    /// summation; above it no dense joint is ever allocated — the lattice
    /// is built by variable elimination over the model's factor graph.
    /// Both the lattice and the factor graph are attached to the carried
    /// knowledge base, so in-process `knowledge_base().probability` calls
    /// take the same paths queries do.
    pub fn with_lattice_order_and_ceiling(
        mut knowledge_base: KnowledgeBase,
        version: u64,
        observations: u64,
        warm_started: bool,
        lattice_order: usize,
        dense_ceiling: usize,
    ) -> Self {
        let graph = Arc::new(FactorGraph::from_model(knowledge_base.model()));
        let (joint, lattice) = if knowledge_base.schema().cell_count() > dense_ceiling {
            (None, Arc::new(MarginalLattice::build_factored(&graph, lattice_order)))
        } else {
            let joint = knowledge_base.joint();
            let lattice = Arc::new(MarginalLattice::build(&joint, lattice_order));
            (Some(joint), lattice)
        };
        knowledge_base
            .attach_lattice(Arc::clone(&lattice))
            .expect("lattice was built from this knowledge base's own model");
        knowledge_base
            .attach_factor_graph(Arc::clone(&graph))
            .expect("graph was built from this knowledge base's own model");
        Self { knowledge_base, joint, graph, lattice, version, observations, warm_started }
    }

    /// The acquired knowledge base: query it freely, it never changes.
    pub fn knowledge_base(&self) -> &KnowledgeBase {
        &self.knowledge_base
    }

    /// The dense joint distribution of the knowledge base, materialised at
    /// publish time — the fallback path for queries the lattice does not
    /// cover.  `None` when the schema is above the snapshot's dense
    /// ceiling; such queries go through [`Snapshot::factor_graph`] instead.
    pub fn joint(&self) -> Option<&JointDistribution> {
        self.joint.as_ref()
    }

    /// The model's factor graph, built once at publish time — the fallback
    /// evaluation path when no dense joint is materialised, and the source
    /// the factored lattice build eliminates from.
    pub fn factor_graph(&self) -> &Arc<FactorGraph> {
        &self.graph
    }

    /// The marginal lattice materialised at publish time — the fast path
    /// for every marginal/conditional query of order at most the lattice's
    /// cutoff.
    pub fn lattice(&self) -> &MarginalLattice {
        &self.lattice
    }

    /// Monotonically increasing publication number (1 for the first fit).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of stream tuples this snapshot was fitted on.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Whether this snapshot's refit was warm-started from its predecessor.
    pub fn warm_started(&self) -> bool {
        self.warm_started
    }

    /// The serialisable metadata of this snapshot.
    pub fn meta(&self) -> SnapshotMeta {
        SnapshotMeta {
            format_version: crate::WIRE_FORMAT_VERSION,
            version: self.version,
            observations: self.observations,
            warm_started: self.warm_started,
            constraints: self.knowledge_base.constraints().len(),
            attributes: self.knowledge_base.schema().len(),
        }
    }
}

impl SnapshotMeta {
    /// Restores metadata from its wire [`serde::Value`] form, rejecting
    /// payloads whose `format_version` is missing or not
    /// [`crate::WIRE_FORMAT_VERSION`] with the structured
    /// [`crate::StreamError::FormatVersion`] error.
    pub fn from_value(value: &serde::Value) -> crate::Result<Self> {
        crate::shard::check_format_version(value)?;
        Deserialize::deserialize(value)
            .map_err(|e| crate::StreamError::InvalidConfig { reason: e.to_string() })
    }

    /// Checks an already-deserialised stamp (e.g. a meta rebuilt field by
    /// field) against [`crate::WIRE_FORMAT_VERSION`].
    pub fn validate_format(&self) -> crate::Result<()> {
        if self.format_version == crate::WIRE_FORMAT_VERSION {
            Ok(())
        } else {
            Err(crate::StreamError::FormatVersion { found: Some(self.format_version) })
        }
    }
}

/// A cloneable read handle onto the engine's latest snapshot.
///
/// Handles are cheap to clone and safe to move to reader threads; they see
/// every published snapshot and a refit never blocks them at all: the load
/// path is wait-free (no lock, no retry loop).  A publish only ever waits
/// for loads already in flight — a handful of instructions each — never
/// for readers between loads, which is where reader threads spend
/// virtually all of their time.
#[derive(Debug, Clone, Default)]
pub struct SnapshotHandle {
    slot: Arc<ArcSwapOption<Snapshot>>,
}

impl SnapshotHandle {
    /// A handle with no published snapshot yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// The latest snapshot, if any fit has been published (wait-free).
    pub fn load(&self) -> Option<Arc<Snapshot>> {
        self.slot.load_full()
    }

    /// The latest published version, if any.
    pub fn version(&self) -> Option<u64> {
        self.load().map(|s| s.version())
    }

    /// Publishes a new snapshot, making it visible to every handle clone.
    ///
    /// Public for the same reason [`Snapshot::new`] is: a replication layer
    /// that receives snapshots from a leader publishes them through the
    /// same slot local refits use.  Versions should be monotonically
    /// increasing; readers rely on it to detect staleness.
    pub fn publish(&self, snapshot: Snapshot) {
        self.slot.store(Some(Arc::new(snapshot)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{ContingencyTable, Schema};
    use pka_core::Acquisition;

    fn snapshot(version: u64) -> Snapshot {
        let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let t = ContingencyTable::from_counts(schema, vec![40, 10, 10, 40]).unwrap();
        let kb = Acquisition::with_defaults().run(&t).unwrap().knowledge_base;
        Snapshot::new(kb, version, 100, version > 1)
    }

    #[test]
    fn handles_share_published_snapshots() {
        let handle = SnapshotHandle::new();
        let reader = handle.clone();
        assert!(reader.load().is_none());
        handle.publish(snapshot(1));
        assert_eq!(reader.version(), Some(1));

        // A reader that loaded before a swap keeps its consistent state.
        let held = reader.load().unwrap();
        handle.publish(snapshot(2));
        assert_eq!(held.version(), 1);
        assert_eq!(reader.version(), Some(2));
        assert!(reader.load().unwrap().warm_started());
    }

    #[test]
    fn snapshot_lattice_serves_covered_queries() {
        use pka_contingency::Assignment;
        let s = snapshot(1);
        // The default order-2 lattice over a 2-attribute schema covers
        // everything, including the full joint cells.
        assert_eq!(s.lattice().max_order(), 2);
        let a = Assignment::from_pairs([(0, 0), (1, 0)]);
        let from_lattice = s.lattice().probability(&a).unwrap();
        let joint = s.joint().expect("4 cells is far below the dense ceiling");
        assert!((from_lattice - joint.probability(&a)).abs() < 1e-12);
        // The carried knowledge base shares the same lattice.
        let kb_lattice = s.knowledge_base().lattice().expect("attached at publish");
        assert!((kb_lattice.probability(&a).unwrap() - from_lattice).abs() < 1e-15);
        // A custom order is honoured (order 1: pairs fall back).
        let kb = s.knowledge_base().clone();
        let shallow = Snapshot::with_lattice_order(kb, 2, 100, false, 1);
        assert_eq!(shallow.lattice().max_order(), 1);
        assert_eq!(shallow.lattice().probability(&a), None);
        assert!(shallow.lattice().probability(&Assignment::single(0, 0)).is_some());
    }

    #[test]
    fn factored_publish_skips_the_dense_joint_and_answers_identically() {
        use pka_contingency::Assignment;
        let dense = snapshot(1);
        // Rebuild the same knowledge base with a zero ceiling: the joint
        // must not be materialised and every query must still agree.
        let kb = dense.knowledge_base().clone();
        let factored = Snapshot::with_lattice_order_and_ceiling(kb, 1, 100, false, 2, 0);
        assert!(factored.joint().is_none(), "ceiling 0 must skip the dense joint");
        let probes = [
            Assignment::empty(),
            Assignment::single(0, 0),
            Assignment::single(1, 1),
            Assignment::from_pairs([(0, 0), (1, 0)]),
            Assignment::from_pairs([(0, 1), (1, 0)]),
        ];
        for a in &probes {
            let fast = factored.lattice().probability(a).unwrap();
            let truth = dense.joint().unwrap().probability(a);
            assert!((fast - truth).abs() < 1e-9, "probe {a:?}: {fast} vs {truth}");
            // The graph fallback agrees too (what uncovered queries use).
            assert!((factored.factor_graph().probability(a) - truth).abs() < 1e-9);
            // And so does the carried knowledge base.
            assert!((factored.knowledge_base().probability(a) - truth).abs() < 1e-9);
        }
    }

    #[test]
    fn meta_reports_the_snapshot_identity() {
        let s = snapshot(3);
        let meta = s.meta();
        assert_eq!(meta.version, 3);
        assert_eq!(meta.observations, 100);
        assert!(meta.warm_started);
        assert_eq!(meta.attributes, 2);
        assert_eq!(meta.constraints, s.knowledge_base().constraints().len());
        assert_eq!(meta.format_version, crate::WIRE_FORMAT_VERSION);
        meta.validate_format().unwrap();
        // The metadata round-trips through the wire format.
        let json = serde_json::to_string(&meta).unwrap();
        let value: serde::Value = serde_json::from_str(&json).unwrap();
        let back = SnapshotMeta::from_value(&value).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn meta_format_version_is_enforced() {
        use crate::StreamError;
        let meta = snapshot(1).meta();
        let json = serde_json::to_string(&meta).unwrap();
        let bumped = json.replace(
            &format!("\"format_version\":{}", crate::WIRE_FORMAT_VERSION),
            "\"format_version\":77",
        );
        let value: serde::Value = serde_json::from_str(&bumped).unwrap();
        assert!(matches!(
            SnapshotMeta::from_value(&value),
            Err(StreamError::FormatVersion { found: Some(77) })
        ));
        let mut forged = meta;
        forged.format_version = 0;
        assert!(matches!(
            forged.validate_format(),
            Err(StreamError::FormatVersion { found: Some(0) })
        ));
    }
}
