//! Snapshot isolation: versioned, immutable knowledge-base handles.
//!
//! Queries must keep being answered while a refit runs.  The engine
//! publishes each refitted [`KnowledgeBase`] as an immutable, versioned
//! [`Snapshot`] behind an `Arc`, and swaps the shared slot atomically (an
//! `RwLock<Option<Arc<Snapshot>>>` held only for the duration of the
//! pointer copy).  Readers [`SnapshotHandle::load`] an `Arc` once per query
//! (or per request batch) and then work lock-free against a consistent
//! knowledge base, no matter how many swaps happen meanwhile.

use pka_core::KnowledgeBase;
use std::sync::{Arc, RwLock};

/// One published, immutable state of the streaming knowledge base.
#[derive(Debug, Clone)]
pub struct Snapshot {
    knowledge_base: KnowledgeBase,
    version: u64,
    observations: u64,
    warm_started: bool,
}

impl Snapshot {
    pub(crate) fn new(
        knowledge_base: KnowledgeBase,
        version: u64,
        observations: u64,
        warm_started: bool,
    ) -> Self {
        Self { knowledge_base, version, observations, warm_started }
    }

    /// The acquired knowledge base: query it freely, it never changes.
    pub fn knowledge_base(&self) -> &KnowledgeBase {
        &self.knowledge_base
    }

    /// Monotonically increasing publication number (1 for the first fit).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of stream tuples this snapshot was fitted on.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Whether this snapshot's refit was warm-started from its predecessor.
    pub fn warm_started(&self) -> bool {
        self.warm_started
    }
}

/// A cloneable read handle onto the engine's latest snapshot.
///
/// Handles are cheap to clone and safe to move to reader threads; they see
/// every published snapshot but never block a refit (and a refit never
/// blocks them beyond an `Arc` pointer swap).
#[derive(Debug, Clone, Default)]
pub struct SnapshotHandle {
    slot: Arc<RwLock<Option<Arc<Snapshot>>>>,
}

impl SnapshotHandle {
    /// A handle with no published snapshot yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// The latest snapshot, if any fit has been published.
    pub fn load(&self) -> Option<Arc<Snapshot>> {
        self.slot.read().expect("snapshot slot poisoned").clone()
    }

    /// The latest published version, if any.
    pub fn version(&self) -> Option<u64> {
        self.load().map(|s| s.version())
    }

    /// Publishes a new snapshot, making it visible to every handle clone.
    pub(crate) fn publish(&self, snapshot: Snapshot) {
        *self.slot.write().expect("snapshot slot poisoned") = Some(Arc::new(snapshot));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{ContingencyTable, Schema};
    use pka_core::Acquisition;

    fn snapshot(version: u64) -> Snapshot {
        let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let t = ContingencyTable::from_counts(schema, vec![40, 10, 10, 40]).unwrap();
        let kb = Acquisition::with_defaults().run(&t).unwrap().knowledge_base;
        Snapshot::new(kb, version, 100, version > 1)
    }

    #[test]
    fn handles_share_published_snapshots() {
        let handle = SnapshotHandle::new();
        let reader = handle.clone();
        assert!(reader.load().is_none());
        handle.publish(snapshot(1));
        assert_eq!(reader.version(), Some(1));

        // A reader that loaded before a swap keeps its consistent state.
        let held = reader.load().unwrap();
        handle.publish(snapshot(2));
        assert_eq!(held.version(), 1);
        assert_eq!(reader.version(), Some(2));
        assert!(reader.load().unwrap().warm_started());
    }
}
