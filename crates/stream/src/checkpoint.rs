//! Coordinator checkpoints — the shard-placement map made durable.
//!
//! A coordinator's irreplaceable state is its [`RemoteShardMap`]: the
//! highest-seq cumulative [`CountShard`] it has accepted from each source.
//! Live sources will eventually re-push their counts, but a source that
//! died (or was decommissioned) never will — without a checkpoint, its
//! tuples silently vanish from every knowledge base fitted after a
//! coordinator restart.  A [`FabricCheckpoint`] snapshots that map, the
//! coordinator's own locally ingested counts, and the last published
//! snapshot version, all stamped with the wire `format_version`.
//!
//! Restore composes with the existing replication invariants instead of
//! adding new ones: restored per-source shards enter through the same
//! strictly-newer seq gate as live pushes, so a source that kept running
//! while the coordinator was down simply supersedes its checkpointed entry
//! on its next push, and a replayed older push is a no-op.  Restoring the
//! published version lets the restarted coordinator resume the snapshot
//! version sequence above anything replicas have already acknowledged —
//! keeping replica versions monotone across the crash.
//!
//! Writes are atomic (sibling temp file + fsync + rename), so a crash
//! mid-checkpoint leaves the previous checkpoint intact: any file that
//! exists is a complete, valid recovery point.
//!
//! [`RemoteShardMap`]: crate::remote::RemoteShardMap

use crate::error::StreamError;
use crate::shard::CountShard;
use crate::{Result, WIRE_FORMAT_VERSION};
use serde::{Serialize, Value};
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// One source's entry in a checkpointed shard-placement map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSource {
    /// The source's self-declared name (`--name` on the ingest node).
    pub name: String,
    /// The seq high-water mark held for this source.
    pub seq: u64,
    /// The source's cumulative counts as last pushed.
    pub shard: CountShard,
}

/// A point-in-time durable image of a coordinator engine's merged state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricCheckpoint {
    /// The last snapshot version published before this checkpoint (0 if
    /// none was ever published).
    pub version: u64,
    /// Tuples the engine had ingested locally (its own shards, not remote
    /// sources) when the checkpoint was taken.
    pub local: Option<CountShard>,
    /// The shard-placement map: one cumulative shard per known source.
    pub sources: Vec<CheckpointSource>,
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> StreamError {
    StreamError::Durability { reason: format!("{context} {}: {e}", path.display()) }
}

impl FabricCheckpoint {
    /// Total tuples this checkpoint carries across local and remote counts.
    pub fn total_tuples(&self) -> u64 {
        let local = self.local.as_ref().map_or(0, CountShard::tuple_count);
        let remote: u64 = self.sources.iter().map(|s| s.shard.tuple_count()).sum();
        local + remote
    }

    /// The wire [`Value`] form, `format_version`-stamped like every other
    /// cross-boundary payload.
    pub fn to_value(&self) -> Value {
        let sources = self
            .sources
            .iter()
            .map(|source| {
                Value::Object(vec![
                    ("name".to_string(), Value::Str(source.name.clone())),
                    ("seq".to_string(), Value::U64(source.seq)),
                    ("shard".to_string(), source.shard.serialize()),
                ])
            })
            .collect();
        let local = match &self.local {
            Some(shard) => shard.serialize(),
            None => Value::Null,
        };
        Value::Object(vec![
            ("format_version".to_string(), Value::U64(WIRE_FORMAT_VERSION)),
            ("version".to_string(), Value::U64(self.version)),
            ("local".to_string(), local),
            ("sources".to_string(), Value::Array(sources)),
        ])
    }

    /// Parses and re-validates a checkpoint payload.  Every shard goes
    /// through [`CountShard::from_value`]'s hostile-payload checks; a
    /// payload with a foreign `format_version` is refused outright.
    pub fn from_value(value: &Value) -> Result<Self> {
        crate::shard::check_format_version(value)?;
        let bad = |reason: &str| StreamError::Durability {
            reason: format!("malformed checkpoint: {reason}"),
        };
        let version =
            value.get("version").and_then(Value::as_u64).ok_or_else(|| bad("missing version"))?;
        let local = match value.get("local") {
            None | Some(Value::Null) => None,
            Some(shard) => Some(CountShard::from_value(shard)?),
        };
        let Some(Value::Array(entries)) = value.get("sources") else {
            return Err(bad("missing sources array"));
        };
        let mut sources = Vec::with_capacity(entries.len());
        for entry in entries {
            let name = match entry.get("name") {
                Some(Value::Str(name)) => name.clone(),
                _ => return Err(bad("source entry missing name")),
            };
            let seq = entry
                .get("seq")
                .and_then(Value::as_u64)
                .ok_or_else(|| bad("source entry missing seq"))?;
            let shard = entry
                .get("shard")
                .ok_or_else(|| bad("source entry missing shard"))
                .and_then(CountShard::from_value)?;
            sources.push(CheckpointSource { name, seq, shard });
        }
        Ok(Self { version, local, sources })
    }

    /// Atomically writes the checkpoint to `path` and returns the byte
    /// size.  The sequence is write-temp → fsync → rename, so `path` always
    /// holds either the previous complete checkpoint or this one.
    pub fn save(&self, path: &Path) -> Result<u64> {
        let json = serde_json::to_string(&self.to_value()).map_err(|e| {
            StreamError::Durability { reason: format!("cannot encode checkpoint: {e}") }
        })?;
        let tmp_path = path.with_extension("checkpoint.tmp");
        let mut tmp = File::create(&tmp_path)
            .map_err(|e| io_err("cannot create checkpoint", &tmp_path, e))?;
        tmp.write_all(json.as_bytes())
            .and_then(|()| tmp.sync_all())
            .map_err(|e| io_err("cannot write checkpoint", &tmp_path, e))?;
        std::fs::rename(&tmp_path, path)
            .map_err(|e| io_err("cannot swap checkpoint into", path, e))?;
        Ok(json.len() as u64)
    }

    /// Loads and validates a checkpoint written by [`FabricCheckpoint::save`].
    pub fn load(path: &Path) -> Result<Self> {
        let text =
            std::fs::read_to_string(path).map_err(|e| io_err("cannot read checkpoint", path, e))?;
        let value: Value = serde_json::from_str(&text).map_err(|e| StreamError::Durability {
            reason: format!("corrupt checkpoint {}: {e}", path.display()),
        })?;
        Self::from_value(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::Schema;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::uniform(&[3, 2]).unwrap().into_shared()
    }

    fn shard_with(rows: &[[usize; 2]]) -> CountShard {
        let mut shard = CountShard::new(schema());
        shard.record_batch(rows).expect("rows fit schema");
        shard
    }

    fn sample_checkpoint() -> FabricCheckpoint {
        FabricCheckpoint {
            version: 7,
            local: Some(shard_with(&[[0, 0], [1, 1]])),
            sources: vec![
                CheckpointSource {
                    name: "node-a".to_string(),
                    seq: 5,
                    shard: shard_with(&[[2, 1], [2, 0], [0, 1]]),
                },
                CheckpointSource {
                    name: "node-b".to_string(),
                    seq: 1,
                    shard: shard_with(&[[1, 0]]),
                },
            ],
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("pka-checkpoint-{tag}-{}-{n}.json", std::process::id()))
    }

    #[test]
    fn round_trips_through_disk() {
        let path = temp_path("roundtrip");
        let checkpoint = sample_checkpoint();
        let bytes = checkpoint.save(&path).unwrap();
        assert!(bytes > 0);
        let loaded = FabricCheckpoint::load(&path).unwrap();
        assert_eq!(loaded, checkpoint);
        assert_eq!(loaded.total_tuples(), 6);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_local_round_trips_as_null() {
        let path = temp_path("nolocal");
        let checkpoint = FabricCheckpoint { version: 0, local: None, sources: Vec::new() };
        checkpoint.save(&path).unwrap();
        assert_eq!(FabricCheckpoint::load(&path).unwrap(), checkpoint);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_format_version_is_refused() {
        let mut value = sample_checkpoint().to_value();
        if let Value::Object(fields) = &mut value {
            for (key, field) in fields.iter_mut() {
                if key == "format_version" {
                    *field = Value::U64(99);
                }
            }
        }
        let err = FabricCheckpoint::from_value(&value).unwrap_err();
        assert!(matches!(err, StreamError::FormatVersion { found: Some(99) }));
    }

    #[test]
    fn truncated_file_is_refused() {
        let path = temp_path("truncated");
        sample_checkpoint().save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(FabricCheckpoint::load(&path), Err(StreamError::Durability { .. })));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_replaces_previous_checkpoint_atomically() {
        let path = temp_path("replace");
        let first = sample_checkpoint();
        first.save(&path).unwrap();
        let second = FabricCheckpoint { version: 8, ..first };
        second.save(&path).unwrap();
        assert_eq!(FabricCheckpoint::load(&path).unwrap().version, 8);
        let _ = std::fs::remove_file(&path);
    }
}
