//! Crash-durable shard journal — an ingest node's local write-ahead log.
//!
//! An ingest node is a tabulator: its whole durable state is one cumulative
//! [`CountShard`] plus the sequence number (= local tuple count) it pushes
//! to the coordinator.  Because the shard is *cumulative* — every record
//! supersedes every earlier one — a journal of shards is trivially
//! replay-safe: recovery only needs the **last valid record**, and
//! re-pushing it upstream is a no-op thanks to the coordinator's
//! strictly-newer seq gate.  That makes the journal format deliberately
//! simple:
//!
//! ```text
//! [ 8-byte magic "PKAJRNL1" ]
//! [ u32 len (LE) | u32 crc32 (LE) | len bytes of JSON payload ]*
//! payload = {"format_version": 1, "seq": <u64>, "shard": <CountShard wire form>}
//! ```
//!
//! On open, the file is scanned from the start; the first record whose
//! length, checksum, JSON, or shard payload fails validation ends the scan,
//! and everything from that offset on (a torn tail after `kill -9`, or
//! corruption) is truncated so the file is again append-clean.  A corrupt
//! record is therefore *refused*, never merged — the journal recovers the
//! longest valid prefix and nothing else (property-tested in
//! `tests/journal_torn_writes.rs` at the workspace root).
//!
//! Durability is tunable per deployment via [`FsyncPolicy`]: fsync every
//! record (no acknowledged tuple is ever lost), fsync on an interval
//! (bounded loss window, near-zero overhead), or never fsync (leave
//! flushing to the OS — survives process crash, not power loss).
//!
//! Since records are cumulative, the journal would grow O(records), not
//! O(data).  [`ShardJournal::append`] therefore compacts opportunistically:
//! once the file is several times larger than its own last record, it is
//! atomically rewritten (temp file + rename) to contain just that record.

use crate::error::StreamError;
use crate::shard::CountShard;
use crate::{Result, WIRE_FORMAT_VERSION};
use serde::{Serialize, Value};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// File magic: identifies a shard journal and pins its container layout.
const MAGIC: &[u8; 8] = b"PKAJRNL1";

/// Upper bound on a single record's payload, used as a sanity check while
/// scanning: a torn length prefix that decodes to something absurd must not
/// trigger a multi-gigabyte read.  64 MiB is orders of magnitude above any
/// real contingency table this engine fits.
const MAX_RECORD_BYTES: u32 = 64 << 20;

/// Compact once the file exceeds this many bytes *and* is more than
/// [`COMPACT_FACTOR`]× its own last record — small journals are never worth
/// a rewrite.
const COMPACT_MIN_BYTES: u64 = 1 << 20;

/// See [`COMPACT_MIN_BYTES`].
const COMPACT_FACTOR: u64 = 4;

/// When to push journal writes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record: an acknowledged tuple survives
    /// power loss.  Slowest option; cost is one fsync per ingest command.
    PerRecord,
    /// `fsync` at most once per interval: bounds the power-loss window to
    /// the interval while keeping appends at memory speed.
    Interval(Duration),
    /// Never `fsync`: appends survive a process crash (`kill -9`) because
    /// the OS holds the pages, but not kernel panic or power loss.
    Off,
}

impl FsyncPolicy {
    /// Parses a CLI spec: `per-record`, `off`, or `interval=<ms>`.
    pub fn parse(spec: &str) -> Result<Self> {
        if spec == "per-record" {
            return Ok(FsyncPolicy::PerRecord);
        }
        if spec == "off" {
            return Ok(FsyncPolicy::Off);
        }
        if let Some(ms) = spec.strip_prefix("interval=") {
            let ms: u64 = ms.parse().map_err(|_| StreamError::InvalidConfig {
                reason: format!("invalid fsync interval in `{spec}` (want interval=<ms>)"),
            })?;
            if ms == 0 {
                return Err(StreamError::InvalidConfig {
                    reason: "fsync interval must be positive (use per-record instead)".to_string(),
                });
            }
            return Ok(FsyncPolicy::Interval(Duration::from_millis(ms)));
        }
        Err(StreamError::InvalidConfig {
            reason: format!("unknown fsync policy `{spec}` (want per-record, interval=<ms>, off)"),
        })
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
/// checksum gzip and PNG use, computed bitwise so no table needs vendoring.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// What `open` salvaged from an existing journal file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JournalRecovery {
    /// Sequence number of the last valid record (the node's tuple count at
    /// the time it was written), if any record survived.
    pub seq: Option<u64>,
    /// The last valid cumulative shard — the node's complete recovered
    /// count state.  Earlier records are subsumed and ignored.
    pub shard: Option<CountShard>,
    /// How many intact records the scan walked over (including the one
    /// recovered).
    pub valid_records: u64,
    /// Bytes discarded past the last valid record: a torn tail from an
    /// unclean shutdown, or deliberate corruption.  Zero on a clean file.
    pub truncated_bytes: u64,
}

impl JournalRecovery {
    /// Tuples carried by the recovered shard (0 when nothing survived).
    pub fn tuples(&self) -> u64 {
        self.shard.as_ref().map_or(0, CountShard::tuple_count)
    }
}

/// Append-only journal of cumulative [`CountShard`] records.
///
/// See the [module docs](self) for the on-disk format and recovery rules.
#[derive(Debug)]
pub struct ShardJournal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Current file length — maintained so append/compaction decisions need
    /// no extra metadata syscalls.
    len: u64,
    /// Total on-disk size of the most recently appended (or recovered)
    /// record, driving the compaction heuristic.
    last_record_bytes: u64,
    /// Appends since the last fsync (any policy).
    unsynced: u64,
    last_sync: Instant,
    records_appended: u64,
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> StreamError {
    StreamError::Durability { reason: format!("{context} {}: {e}", path.display()) }
}

fn encode_record(seq: u64, shard: &CountShard) -> Result<Vec<u8>> {
    let payload = Value::Object(vec![
        ("format_version".to_string(), Value::U64(WIRE_FORMAT_VERSION)),
        ("seq".to_string(), Value::U64(seq)),
        ("shard".to_string(), shard.serialize()),
    ]);
    let json = serde_json::to_string(&payload).map_err(|e| StreamError::Durability {
        reason: format!("cannot encode journal record: {e}"),
    })?;
    let bytes = json.as_bytes();
    let mut record = Vec::with_capacity(8 + bytes.len());
    record.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    record.extend_from_slice(&crc32(bytes).to_le_bytes());
    record.extend_from_slice(bytes);
    Ok(record)
}

/// Parses one payload; `None` means the record is invalid and the scan must
/// stop.  The shard goes through [`CountShard::from_value`], which rebuilds
/// and re-validates the table — a bit-flipped count that still checksums
/// (possible only pre-checksum, e.g. hand-edited files) cannot smuggle an
/// inconsistent table into the engine.
fn decode_payload(bytes: &[u8]) -> Option<(u64, CountShard)> {
    let text = std::str::from_utf8(bytes).ok()?;
    let value: Value = serde_json::from_str(text).ok()?;
    crate::shard::check_format_version(&value).ok()?;
    let seq = value.get("seq").and_then(Value::as_u64)?;
    let shard = CountShard::from_value(value.get("shard")?).ok()?;
    Some((seq, shard))
}

impl ShardJournal {
    /// Opens (creating if absent) the journal at `path`, scans it, truncates
    /// any invalid tail, and returns the journal positioned for appends plus
    /// what was recovered.
    ///
    /// A file with a missing or wrong magic header is treated as wholly
    /// invalid: its entire content counts as `truncated_bytes` and it is
    /// rewritten as an empty journal.  (Point the journal at a dedicated
    /// file — recovery will not preserve foreign content.)
    pub fn open(path: impl Into<PathBuf>, policy: FsyncPolicy) -> Result<(Self, JournalRecovery)> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("cannot open journal", &path, e))?;

        let mut contents = Vec::new();
        file.read_to_end(&mut contents).map_err(|e| io_err("cannot read journal", &path, e))?;

        let mut recovery = JournalRecovery::default();
        let mut valid_end = 0u64;
        let mut last_record_bytes = 0u64;

        if contents.len() >= MAGIC.len() && &contents[..MAGIC.len()] == MAGIC {
            valid_end = MAGIC.len() as u64;
            let mut offset = MAGIC.len();
            // A torn or absent header ends the scan.
            while let Some(header) = contents.get(offset..offset + 8) {
                let len = u32::from_le_bytes(header[..4].try_into().expect("4-byte slice"));
                let crc = u32::from_le_bytes(header[4..].try_into().expect("4-byte slice"));
                if len == 0 || len > MAX_RECORD_BYTES {
                    break;
                }
                let Some(payload) = contents.get(offset + 8..offset + 8 + len as usize) else {
                    break; // torn payload
                };
                if crc32(payload) != crc {
                    break;
                }
                let Some((seq, shard)) = decode_payload(payload) else {
                    break;
                };
                recovery.seq = Some(seq);
                recovery.shard = Some(shard);
                recovery.valid_records += 1;
                last_record_bytes = 8 + u64::from(len);
                offset += last_record_bytes as usize;
                valid_end = offset as u64;
            }
        }

        recovery.truncated_bytes = contents.len() as u64 - valid_end;
        if valid_end == 0 {
            // Missing/corrupt magic (or brand-new file): start clean.
            file.set_len(0).map_err(|e| io_err("cannot truncate journal", &path, e))?;
            file.seek(SeekFrom::Start(0)).map_err(|e| io_err("cannot seek journal", &path, e))?;
            file.write_all(MAGIC).map_err(|e| io_err("cannot write journal header", &path, e))?;
            valid_end = MAGIC.len() as u64;
        } else if recovery.truncated_bytes > 0 {
            file.set_len(valid_end)
                .map_err(|e| io_err("cannot truncate journal tail", &path, e))?;
        }
        file.seek(SeekFrom::Start(valid_end))
            .map_err(|e| io_err("cannot seek journal", &path, e))?;
        if recovery.truncated_bytes > 0 {
            // Make the repaired tail (and fresh header) durable before
            // acknowledging anything appended after it.
            file.sync_all().map_err(|e| io_err("cannot sync journal", &path, e))?;
        }

        let journal = Self {
            file,
            path,
            policy,
            len: valid_end,
            last_record_bytes,
            unsynced: 0,
            last_sync: Instant::now(),
            records_appended: 0,
        };
        Ok((journal, recovery))
    }

    /// Appends one cumulative record and applies the fsync policy.  `seq`
    /// is the node's tuple count after the ingest this record captures.
    pub fn append(&mut self, seq: u64, shard: &CountShard) -> Result<()> {
        let record = encode_record(seq, shard)?;
        if self.should_compact(record.len() as u64) {
            self.compact(&record)?;
        } else {
            self.file
                .write_all(&record)
                .map_err(|e| io_err("cannot append to journal", &self.path, e))?;
            self.len += record.len() as u64;
        }
        self.last_record_bytes = record.len() as u64;
        self.unsynced += 1;
        self.records_appended += 1;
        match self.policy {
            FsyncPolicy::PerRecord => self.sync()?,
            FsyncPolicy::Interval(interval) => {
                if self.last_sync.elapsed() >= interval {
                    self.sync()?;
                }
            }
            FsyncPolicy::Off => {}
        }
        Ok(())
    }

    fn should_compact(&self, incoming_bytes: u64) -> bool {
        self.len > COMPACT_MIN_BYTES && self.len > COMPACT_FACTOR * incoming_bytes
    }

    /// Atomically rewrites the journal to hold only `record` (valid because
    /// records are cumulative): write a sibling temp file, fsync it, rename
    /// over the live path, reopen.  A crash at any point leaves either the
    /// old journal or the new one — never a mix.
    fn compact(&mut self, record: &[u8]) -> Result<()> {
        let tmp_path = self.path.with_extension("journal.tmp");
        let mut tmp = File::create(&tmp_path)
            .map_err(|e| io_err("cannot create compaction file", &tmp_path, e))?;
        tmp.write_all(MAGIC)
            .and_then(|()| tmp.write_all(record))
            .and_then(|()| tmp.sync_all())
            .map_err(|e| io_err("cannot write compaction file", &tmp_path, e))?;
        std::fs::rename(&tmp_path, &self.path)
            .map_err(|e| io_err("cannot swap compacted journal into", &self.path, e))?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| io_err("cannot reopen compacted journal", &self.path, e))?;
        self.len = MAGIC.len() as u64 + record.len() as u64;
        file.seek(SeekFrom::Start(self.len))
            .map_err(|e| io_err("cannot seek journal", &self.path, e))?;
        self.file = file;
        Ok(())
    }

    /// Forces buffered appends to stable storage regardless of policy.
    pub fn sync(&mut self) -> Result<()> {
        if self.unsynced > 0 {
            self.file.sync_all().map_err(|e| io_err("cannot sync journal", &self.path, e))?;
            self.unsynced = 0;
        }
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Runs an interval-policy sync if one is due; no-op otherwise.  Engine
    /// tick loops call this so an idle node still drains its sync debt.
    pub fn sync_if_due(&mut self) -> Result<()> {
        if let FsyncPolicy::Interval(interval) = self.policy {
            if self.unsynced > 0 && self.last_sync.elapsed() >= interval {
                self.sync()?;
            }
        }
        Ok(())
    }

    /// How long until the interval policy next wants a sync: `None` when no
    /// timed sync is pending (nothing unsynced, or a non-interval policy).
    pub fn next_sync_due(&self) -> Option<Duration> {
        match self.policy {
            FsyncPolicy::Interval(interval) if self.unsynced > 0 => {
                Some(interval.saturating_sub(self.last_sync.elapsed()))
            }
            _ => None,
        }
    }

    /// Current file length in bytes (header included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Records appended through this handle (excludes recovered ones).
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::Schema;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::uniform(&[3, 2]).unwrap().into_shared()
    }

    fn shard_with(rows: &[[usize; 2]]) -> CountShard {
        let mut shard = CountShard::new(schema());
        shard.record_batch(rows).expect("rows fit schema");
        shard
    }

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("pka-journal-{tag}-{}-{n}.journal", std::process::id()))
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fsync_policy_parses_specs() {
        assert_eq!(FsyncPolicy::parse("per-record").unwrap(), FsyncPolicy::PerRecord);
        assert_eq!(FsyncPolicy::parse("off").unwrap(), FsyncPolicy::Off);
        assert_eq!(
            FsyncPolicy::parse("interval=250").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(250))
        );
        assert!(FsyncPolicy::parse("interval=0").is_err());
        assert!(FsyncPolicy::parse("always").is_err());
    }

    #[test]
    fn fresh_journal_recovers_nothing_and_round_trips() {
        let path = temp_path("fresh");
        let (mut journal, recovery) = ShardJournal::open(&path, FsyncPolicy::Off).unwrap();
        assert_eq!(recovery, JournalRecovery::default());

        let first = shard_with(&[[0, 0], [1, 1]]);
        let second = shard_with(&[[0, 0], [1, 1], [2, 0]]);
        journal.append(2, &first).unwrap();
        journal.append(3, &second).unwrap();
        drop(journal);

        let (_journal, recovery) = ShardJournal::open(&path, FsyncPolicy::Off).unwrap();
        assert_eq!(recovery.seq, Some(3));
        assert_eq!(recovery.shard.as_ref(), Some(&second));
        assert_eq!(recovery.valid_records, 2);
        assert_eq!(recovery.truncated_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_earlier_record_survives() {
        let path = temp_path("torn");
        let (mut journal, _) = ShardJournal::open(&path, FsyncPolicy::PerRecord).unwrap();
        let first = shard_with(&[[1, 0]]);
        journal.append(1, &first).unwrap();
        let clean_len = journal.len_bytes();
        journal.append(2, &shard_with(&[[1, 0], [2, 1]])).unwrap();
        drop(journal);

        // Tear the second record mid-payload, as an interrupted write would.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        let (journal, recovery) = ShardJournal::open(&path, FsyncPolicy::PerRecord).unwrap();
        assert_eq!(recovery.seq, Some(1));
        assert_eq!(recovery.shard.as_ref(), Some(&first));
        assert_eq!(recovery.valid_records, 1);
        assert_eq!(recovery.truncated_bytes, full.len() as u64 - 3 - clean_len);
        assert_eq!(journal.len_bytes(), clean_len);
        // The repaired file must itself reopen cleanly.
        drop(journal);
        let (_journal, recovery) = ShardJournal::open(&path, FsyncPolicy::PerRecord).unwrap();
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(recovery.seq, Some(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_record_is_refused_not_merged() {
        let path = temp_path("corrupt");
        let (mut journal, _) = ShardJournal::open(&path, FsyncPolicy::Off).unwrap();
        let first = shard_with(&[[0, 1]]);
        journal.append(1, &first).unwrap();
        journal.append(2, &shard_with(&[[0, 1], [1, 0]])).unwrap();
        drop(journal);

        // Flip one payload byte inside the second record: CRC must catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 5] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (_journal, recovery) = ShardJournal::open(&path, FsyncPolicy::Off).unwrap();
        assert_eq!(recovery.seq, Some(1));
        assert_eq!(recovery.shard.as_ref(), Some(&first));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_file_is_reset_to_an_empty_journal() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"this is not a journal at all").unwrap();
        let (journal, recovery) = ShardJournal::open(&path, FsyncPolicy::Off).unwrap();
        assert_eq!(recovery.seq, None);
        assert_eq!(recovery.truncated_bytes, 28);
        assert_eq!(journal.len_bytes(), MAGIC.len() as u64);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_after_recovery_continues_the_log() {
        let path = temp_path("resume");
        let (mut journal, _) = ShardJournal::open(&path, FsyncPolicy::Off).unwrap();
        journal.append(1, &shard_with(&[[0, 0]])).unwrap();
        drop(journal);

        let (mut journal, recovery) = ShardJournal::open(&path, FsyncPolicy::Off).unwrap();
        assert_eq!(recovery.seq, Some(1));
        let latest = shard_with(&[[0, 0], [2, 1]]);
        journal.append(2, &latest).unwrap();
        drop(journal);

        let (_journal, recovery) = ShardJournal::open(&path, FsyncPolicy::Off).unwrap();
        assert_eq!(recovery.seq, Some(2));
        assert_eq!(recovery.shard.as_ref(), Some(&latest));
        assert_eq!(recovery.valid_records, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_keeps_only_the_latest_record_and_preserves_state() {
        let path = temp_path("compact");
        let (mut journal, _) = ShardJournal::open(&path, FsyncPolicy::Off).unwrap();
        // Force the heuristic with a tiny threshold stand-in: append far
        // past COMPACT_MIN_BYTES worth of records.  Each record here is a
        // few hundred bytes, so drive the file over the 1 MiB floor.
        let mut rows: Vec<[usize; 2]> = Vec::new();
        let mut seq = 0;
        while journal.len_bytes() <= COMPACT_MIN_BYTES {
            rows.push([seq as usize % 3, (seq as usize / 3) % 2]);
            seq += 1;
            journal.append(seq, &shard_with(&rows)).unwrap();
        }
        // The next append must compact: the file is > COMPACT_FACTOR× one
        // record.
        rows.push([0, 0]);
        seq += 1;
        let latest = shard_with(&rows);
        journal.append(seq, &latest).unwrap();
        assert!(
            journal.len_bytes() < COMPACT_MIN_BYTES / 2,
            "journal did not compact (len {})",
            journal.len_bytes()
        );
        drop(journal);

        let (_journal, recovery) = ShardJournal::open(&path, FsyncPolicy::Off).unwrap();
        assert_eq!(recovery.seq, Some(seq));
        assert_eq!(recovery.shard.as_ref(), Some(&latest));
        assert_eq!(recovery.valid_records, 1);
        assert_eq!(recovery.truncated_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }
}
