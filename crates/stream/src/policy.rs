//! Staleness policies: when does accumulated data trip a refresh?
//!
//! The engine tracks a *dirty counter* — tuples ingested since the last
//! refit — and consults a [`RefreshPolicy`] after every ingest.  Policies
//! are deliberately cheap pure functions of `(pending, fitted)` so the
//! decision adds nothing measurable to the ingest hot path.

use crate::error::StreamError;
use crate::Result;

/// When to re-run acquisition over the accumulated counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefreshPolicy {
    /// Refresh once `n` tuples have arrived since the last fit.
    EveryNTuples(u64),
    /// Refresh once the pending tuples amount to at least this fraction of
    /// the data the current snapshot was fitted on (e.g. `0.1` = refresh on
    /// 10 % growth).  Trips on the first tuple when nothing has been fitted
    /// yet.
    DirtyFraction(f64),
    /// Never refresh automatically; the caller drives
    /// [`crate::StreamingEngine::refresh`] explicitly.
    Manual,
}

impl RefreshPolicy {
    /// Validates the policy's parameters.
    pub fn validate(&self) -> Result<()> {
        match *self {
            RefreshPolicy::EveryNTuples(0) => Err(StreamError::InvalidConfig {
                reason: "EveryNTuples(0) would refresh before any data arrives".to_string(),
            }),
            RefreshPolicy::DirtyFraction(f) if !(f > 0.0) || !f.is_finite() => {
                Err(StreamError::InvalidConfig {
                    reason: format!("DirtyFraction must be a positive finite number, got {f}"),
                })
            }
            _ => Ok(()),
        }
    }

    /// Whether `pending` tuples on top of a snapshot fitted on `fitted`
    /// tuples warrant a refresh.
    pub fn should_refresh(&self, pending: u64, fitted: u64) -> bool {
        match *self {
            RefreshPolicy::EveryNTuples(n) => pending >= n,
            RefreshPolicy::DirtyFraction(f) => {
                if pending == 0 {
                    false
                } else if fitted == 0 {
                    true
                } else {
                    pending as f64 >= f * fitted as f64
                }
            }
            RefreshPolicy::Manual => false,
        }
    }
}

impl Default for RefreshPolicy {
    /// Refresh on 10 % growth — a reasonable freshness/cost balance for
    /// serving workloads.
    fn default() -> Self {
        RefreshPolicy::DirtyFraction(0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_n_trips_at_n() {
        let p = RefreshPolicy::EveryNTuples(100);
        assert!(!p.should_refresh(99, 0));
        assert!(p.should_refresh(100, 0));
        assert!(p.should_refresh(101, 1_000_000));
    }

    #[test]
    fn dirty_fraction_scales_with_fitted_size() {
        let p = RefreshPolicy::DirtyFraction(0.5);
        assert!(!p.should_refresh(0, 0), "no data, nothing to do");
        assert!(p.should_refresh(1, 0), "first data always trips");
        assert!(!p.should_refresh(49, 100));
        assert!(p.should_refresh(50, 100));
    }

    #[test]
    fn manual_never_trips() {
        assert!(!RefreshPolicy::Manual.should_refresh(u64::MAX, 0));
    }

    #[test]
    fn validation_rejects_degenerate_parameters() {
        assert!(RefreshPolicy::EveryNTuples(0).validate().is_err());
        assert!(RefreshPolicy::DirtyFraction(0.0).validate().is_err());
        assert!(RefreshPolicy::DirtyFraction(-1.0).validate().is_err());
        assert!(RefreshPolicy::DirtyFraction(f64::NAN).validate().is_err());
        assert!(RefreshPolicy::EveryNTuples(1).validate().is_ok());
        assert!(RefreshPolicy::DirtyFraction(0.25).validate().is_ok());
        assert!(RefreshPolicy::Manual.validate().is_ok());
    }
}
