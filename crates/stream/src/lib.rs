//! # pka-stream
//!
//! An incremental, sharded **streaming-acquisition engine** on top of the
//! NASA TM-88224 reproduction: the memo's batch procedure (Figures 3–4)
//! operated as a long-lived service whose knowledge base stays fresh while
//! tuples keep arriving — the operating mode of maximum-entropy shells like
//! SPIRIT, and the incremental-scoring setting Cooper & Herskovits motivate
//! for database-resident data.
//!
//! Three ideas make it work:
//!
//! 1. **Sharded, mergeable counts** ([`shard`], [`ingest`]) — contingency
//!    cell counts form a commutative monoid under addition, so each worker
//!    accumulates a private [`CountShard`] and the engine combines them
//!    with an associative `merge`.  Sharded ingestion is therefore *exact*:
//!    any partition of the stream, tabulated in any order on any number of
//!    threads, reproduces the single-pass contingency table bit for bit.
//! 2. **Staleness tracking + warm restarts** ([`policy`], and
//!    [`Acquisition::run_warm_started`] in `pka-core`) — a dirty counter
//!    trips a [`RefreshPolicy`], and the refit re-enters acquisition from
//!    the previous knowledge base's constraint set and a-values (the memo's
//!    own Table-2 warm start, lifted to the whole run) instead of from the
//!    independence model.  The maximum-entropy solution per constraint set
//!    is unique, so warm refits converge to the same knowledge base a cold
//!    run would — just with far fewer solver sweeps.
//! 3. **Snapshot isolation** ([`snapshot`]) — every refit publishes an
//!    immutable, versioned [`Snapshot`] behind an `Arc`; queries load the
//!    current snapshot once and are never blocked (or torn) by a refit
//!    running concurrently.
//!
//! [`StreamingEngine`] ties the three together: `ingest → maybe-refit →
//! snapshot swap`.  See `examples/streaming_survey.rs` for a continuous
//! survey feed with live queries, and `tests/streaming_equivalence.rs` for
//! the end-to-end proof that a streamed, twice-warm-refitted knowledge base
//! answers queries identically to a one-shot acquisition over the same
//! data.
//!
//! [`Acquisition::run_warm_started`]: pka_core::Acquisition::run_warm_started

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod engine;
pub mod error;
pub mod ingest;
pub mod journal;
pub mod policy;
pub mod remote;
pub mod shard;
pub mod snapshot;

pub use checkpoint::{CheckpointSource, FabricCheckpoint};
pub use engine::{
    IngestReport, RecoveryStats, RefitOutcome, RefitReport, RemoteDelivery, RemoteShardReport,
    StreamConfig, StreamingEngine, SyncReport,
};
pub use error::StreamError;
pub use journal::{FsyncPolicy, JournalRecovery, ShardJournal};
pub use policy::RefreshPolicy;
pub use remote::{RemoteApply, RemoteShardMap, RemoteSource};
pub use shard::CountShard;
pub use snapshot::{Snapshot, SnapshotHandle, SnapshotMeta};

/// Version stamp embedded in every cross-node payload ([`CountShard`] and
/// [`SnapshotMeta`] JSON).  Nodes reject payloads declaring any other
/// version — or none — with [`StreamError::FormatVersion`], so a mixed
/// deployment fails loudly at the wire instead of silently mis-merging
/// counts across incompatible encodings.
pub const WIRE_FORMAT_VERSION: u64 = 1;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StreamError>;
