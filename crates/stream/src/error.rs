//! Error type of the streaming-acquisition engine.

use pka_contingency::ContingencyError;
use pka_core::CoreError;
use pka_maxent::MaxEntError;
use std::fmt;

/// Anything that can go wrong while ingesting or refreshing.
#[derive(Debug)]
pub enum StreamError {
    /// A tuple or batch failed validation against the schema.
    Data(ContingencyError),
    /// The acquisition refresh failed.
    Acquisition(CoreError),
    /// The maximum-entropy fit failed.
    MaxEnt(MaxEntError),
    /// The engine was asked to refresh before any tuple arrived.
    EmptyStream,
    /// The engine configuration is unusable.
    InvalidConfig {
        /// Human-readable explanation.
        reason: String,
    },
    /// A cross-node payload declared a wire format this build does not
    /// speak (or declared none at all).  Rejected loudly instead of being
    /// mis-merged across future schema changes.
    FormatVersion {
        /// The `format_version` the payload carried, if any.
        found: Option<u64>,
    },
    /// A durability operation (shard journal or checkpoint I/O) failed.
    Durability {
        /// Human-readable explanation, including the underlying I/O error.
        reason: String,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Data(e) => write!(f, "stream data error: {e}"),
            StreamError::Acquisition(e) => write!(f, "stream refresh failed: {e}"),
            StreamError::MaxEnt(e) => write!(f, "stream model fit failed: {e}"),
            StreamError::EmptyStream => {
                write!(f, "cannot refresh a knowledge base from an empty stream")
            }
            StreamError::InvalidConfig { reason } => {
                write!(f, "invalid streaming configuration: {reason}")
            }
            StreamError::FormatVersion { found: Some(found) } => write!(
                f,
                "payload declares wire format_version {found} but this build speaks {}",
                crate::WIRE_FORMAT_VERSION
            ),
            StreamError::FormatVersion { found: None } => write!(
                f,
                "payload carries no wire format_version (this build requires {})",
                crate::WIRE_FORMAT_VERSION
            ),
            StreamError::Durability { reason } => {
                write!(f, "durability error: {reason}")
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Data(e) => Some(e),
            StreamError::Acquisition(e) => Some(e),
            StreamError::MaxEnt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ContingencyError> for StreamError {
    fn from(e: ContingencyError) -> Self {
        StreamError::Data(e)
    }
}

impl From<CoreError> for StreamError {
    fn from(e: CoreError) -> Self {
        StreamError::Acquisition(e)
    }
}

impl From<MaxEntError> for StreamError {
    fn from(e: MaxEntError) -> Self {
        StreamError::MaxEnt(e)
    }
}
