//! Batch ingestion: validation, sharded parallel tabulation, and merging.
//!
//! The hot path of the streaming engine is turning a batch of raw tuples
//! into contingency counts.  [`tabulate_sharded`] splits a batch into `k`
//! contiguous chunks and tabulates each chunk on its own OS thread via
//! `std::thread::scope` (the vendored-dependency build has no rayon; scoped
//! threads give the same fork-join shape with zero dependencies), producing
//! one [`CountShard`] per worker.  Because shard merge is associative and
//! commutative, the result is bit-identical to a sequential pass.
//!
//! Each tuple is validated exactly once, by the checked increment inside
//! the worker that counts it — there is no separate validation pass and no
//! per-row allocation.  Callers that need all-or-nothing batch semantics
//! (the engine does) get them by treating the returned shards as scratch:
//! an `Err` means some row was rejected, and the partial shards are simply
//! dropped.

use crate::shard::CountShard;
use crate::Result;
use pka_contingency::{Sample, Schema};
use std::sync::Arc;

/// Minimum rows per worker before parallel tabulation pays for its thread
/// spawns: counting a tuple is tens of nanoseconds of memory-bound work,
/// so a thread needs thousands of them to amortise its ~10 µs spawn/join.
const MIN_ROWS_PER_WORKER: usize = 8192;

/// Validates every row of a batch against the schema, returning owned
/// samples.  All-or-nothing: a single bad row rejects the whole batch.
///
/// This is a convenience for callers that want to keep validated [`Sample`]s
/// around; the tabulation path does **not** need it — [`tabulate_sharded`]
/// validates as it counts.
pub fn validate_batch<R: AsRef<[usize]>>(schema: &Schema, rows: &[R]) -> Result<Vec<Sample>> {
    rows.iter()
        .map(|r| Sample::validated(schema, r.as_ref().to_vec()).map_err(crate::StreamError::from))
        .collect()
}

/// Tabulates a batch of raw rows into up to `shard_count` count shards.
///
/// The batch is split into contiguous chunks; each chunk is counted
/// independently (in parallel once every worker has
/// [`MIN_ROWS_PER_WORKER`]-ish rows to chew on — below that threshold a
/// single inline pass is faster than spawning threads) and returned as its
/// own shard so the caller can keep per-worker counts or merge them with
/// [`merge_shards`].  Fewer shards than requested are returned for small
/// batches.
///
/// Rows are validated by the counting itself (checked cell lookup), exactly
/// once per row.  On the first invalid row an `Err` is returned and the
/// partially built shards are dropped, so the result is all-or-nothing.
pub fn tabulate_sharded<R: AsRef<[usize]> + Sync>(
    schema: &Arc<Schema>,
    rows: &[R],
    shard_count: usize,
) -> Result<Vec<CountShard>> {
    let shard_count = shard_count.max(1);
    if rows.is_empty() {
        return Ok(Vec::new());
    }

    // Below the parallel threshold a single inline pass wins.
    if shard_count == 1 || rows.len() < 2 * MIN_ROWS_PER_WORKER {
        let mut shard = CountShard::new(Arc::clone(schema));
        for row in rows {
            shard.record(row.as_ref())?;
        }
        return Ok(vec![shard]);
    }

    // Cap the fan-out so every worker gets a meaningful slice.
    let workers = shard_count.min(rows.len() / MIN_ROWS_PER_WORKER).max(2);
    let chunk_size = rows.len().div_ceil(workers);
    let shards: Vec<Result<CountShard>> = std::thread::scope(|scope| {
        let handles: Vec<_> = rows
            .chunks(chunk_size)
            .map(|chunk| {
                let schema = Arc::clone(schema);
                scope.spawn(move || {
                    let mut shard = CountShard::new(schema);
                    for row in chunk {
                        shard.record(row.as_ref())?;
                    }
                    Ok(shard)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("tabulation worker panicked")).collect()
    });
    shards.into_iter().collect()
}

/// Folds any number of shards into one.  Returns the empty shard over
/// `schema` for an empty input.
pub fn merge_shards(schema: &Arc<Schema>, shards: Vec<CountShard>) -> Result<CountShard> {
    shards.into_iter().try_fold(CountShard::new(Arc::clone(schema)), CountShard::merge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::ContingencyTable;

    fn schema() -> Arc<Schema> {
        Schema::uniform(&[3, 2]).unwrap().into_shared()
    }

    fn rows(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|i| vec![i % 3, (i / 3) % 2]).collect()
    }

    #[test]
    fn validate_batch_is_all_or_nothing() {
        let s = schema();
        assert_eq!(validate_batch(&s, &rows(10)).unwrap().len(), 10);
        let mut bad = rows(10);
        bad[7] = vec![0, 5];
        assert!(validate_batch(&s, &bad).is_err());
    }

    #[test]
    fn sharded_tabulation_matches_sequential_for_any_shard_count() {
        let s = schema();
        // Enough rows to cross the parallel threshold so both the inline
        // and the threaded path are exercised.
        let data = rows(2 * MIN_ROWS_PER_WORKER + 101);
        let mut sequential = ContingencyTable::zeros(Arc::clone(&s));
        for row in &data {
            sequential.increment(row).unwrap();
        }
        for k in [1, 2, 3, 7, 16, 500] {
            let shards = tabulate_sharded(&s, &data, k).unwrap();
            let merged = merge_shards(&s, shards).unwrap();
            assert_eq!(merged.into_table(), sequential, "shard_count = {k}");
        }
        // Small batches take the inline path and still match.
        let small = rows(101);
        let mut small_sequential = ContingencyTable::zeros(Arc::clone(&s));
        for row in &small {
            small_sequential.increment(row).unwrap();
        }
        let merged = merge_shards(&s, tabulate_sharded(&s, &small, 4).unwrap()).unwrap();
        assert_eq!(merged.into_table(), small_sequential);
    }

    #[test]
    fn invalid_rows_reject_the_whole_batch() {
        let s = schema();
        // Inline path.
        let mut bad = rows(100);
        bad[50] = vec![9, 9];
        assert!(tabulate_sharded(&s, &bad, 4).is_err());
        // Threaded path.
        let mut big_bad = rows(3 * MIN_ROWS_PER_WORKER);
        big_bad[MIN_ROWS_PER_WORKER + 1] = vec![9, 9];
        assert!(tabulate_sharded(&s, &big_bad, 4).is_err());
    }

    #[test]
    fn empty_batch_yields_no_shards() {
        let s = schema();
        assert!(tabulate_sharded(&s, &rows(0), 4).unwrap().is_empty());
        let merged = merge_shards(&s, Vec::new()).unwrap();
        assert!(merged.is_empty());
    }
}
