//! The [`StreamingEngine`]: ingest → maybe-refit → snapshot swap.

use crate::checkpoint::{CheckpointSource, FabricCheckpoint};
use crate::error::StreamError;
use crate::ingest::tabulate_sharded;
use crate::journal::JournalRecovery;
use crate::policy::RefreshPolicy;
use crate::remote::{RemoteShardMap, RemoteSource};
use crate::shard::CountShard;
use crate::snapshot::{Snapshot, SnapshotHandle, SnapshotMeta};
use crate::Result;
use pka_contingency::{ContingencyTable, Dataset, Sample, Schema};
use pka_core::{Acquisition, AcquisitionConfig, KnowledgeBase};
use pka_maxent::{CacheStats, IncidenceCache};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a [`StreamingEngine`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of count shards (parallel ingestion workers).
    pub shard_count: usize,
    /// When accumulated data trips an automatic refresh.
    pub policy: RefreshPolicy,
    /// Configuration of the underlying acquisition procedure.
    pub acquisition: AcquisitionConfig,
    /// Cutoff order of the marginal lattice each published snapshot
    /// materialises for the query fast path (see
    /// [`pka_maxent::MarginalLattice`]).
    pub lattice_order: usize,
}

impl StreamConfig {
    /// Defaults: one shard per available core (capped at 8), 10 %-growth
    /// refresh, the memo's acquisition defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the shard count.
    pub fn with_shard_count(mut self, shard_count: usize) -> Self {
        self.shard_count = shard_count;
        self
    }

    /// Sets the refresh policy.
    pub fn with_policy(mut self, policy: RefreshPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the acquisition configuration.
    pub fn with_acquisition(mut self, acquisition: AcquisitionConfig) -> Self {
        self.acquisition = acquisition;
        self
    }

    /// Sets the lattice cutoff order for published snapshots (default
    /// [`pka_maxent::DEFAULT_LATTICE_ORDER`]; 0 still materialises the
    /// order-0 grand-total table).
    pub fn with_lattice_order(mut self, lattice_order: usize) -> Self {
        self.lattice_order = lattice_order;
        self
    }

    /// Sets the dense ceiling for both acquisition and snapshot publishing:
    /// joints above this many cells are solved, lattice-built and served
    /// factored, never materialised densely (default
    /// [`pka_maxent::DEFAULT_DENSE_CEILING`]).
    pub fn with_dense_ceiling(mut self, cells: usize) -> Self {
        self.acquisition = self.acquisition.with_dense_ceiling(cells);
        self
    }

    /// Caps the constraint order the acquisition search explores on each
    /// refit (default: up to the attribute count).  On wide schemas the
    /// candidate space explodes combinatorially with order, so servers for
    /// many-attribute deployments should cap this at 2 or 3.
    pub fn with_max_order(mut self, order: usize) -> Self {
        self.acquisition = self.acquisition.with_max_order(order);
        self
    }

    fn validate(&self) -> Result<()> {
        if self.shard_count == 0 {
            return Err(StreamError::InvalidConfig {
                reason: "shard_count must be at least 1".to_string(),
            });
        }
        self.policy.validate()
    }
}

impl Default for StreamConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
        Self {
            shard_count: cores.clamp(1, 8),
            policy: RefreshPolicy::default(),
            acquisition: AcquisitionConfig::default(),
            lattice_order: pka_maxent::DEFAULT_LATTICE_ORDER,
        }
    }
}

/// What one refit produced — the numbers behind the warm-vs-cold benchmark.
#[derive(Debug, Clone)]
pub struct RefitReport {
    /// Version the produced snapshot was published under.
    pub version: u64,
    /// Whether the refit was warm-started from the previous snapshot.
    pub warm_started: bool,
    /// Tuples the refit was performed over.
    pub observations: u64,
    /// Total constraints in the refitted knowledge base.
    pub constraints: usize,
    /// Solver sweeps spent across the whole run (initial fit + every
    /// per-promotion refit) — the cost warm starts reduce.
    pub solver_iterations: usize,
    /// Wall-clock time of the refit.
    pub wall_time: Duration,
}

/// What one ingest call did.
#[derive(Debug)]
pub struct IngestReport {
    /// Tuples accepted into the shards.
    pub accepted: u64,
    /// What the refresh policy did after the tuples were absorbed.
    pub refit: RefitOutcome,
}

/// One `shard-push` delivery awaiting absorption — the input element of
/// [`StreamingEngine::accept_remote_shards`].
#[derive(Debug)]
pub struct RemoteDelivery {
    /// The pushing node's self-declared source name.
    pub source: String,
    /// The delivery's monotone sequence number.
    pub seq: u64,
    /// The source's cumulative counts.
    pub shard: CountShard,
}

/// What absorbing one remote shard delivery did — the fabric-facing
/// counterpart of [`IngestReport`].
#[derive(Debug)]
pub struct RemoteShardReport {
    /// Whether the delivery replaced the source's held shard (false means
    /// it was stale and discarded — a no-op).
    pub applied: bool,
    /// Tuples the source gained over its previously-held shard.
    pub delta_tuples: u64,
    /// Tuples now held for the source.
    pub source_tuples: u64,
    /// What the refresh policy did after the delivery was absorbed.
    pub refit: RefitOutcome,
}

/// What applying one `snapshot-sync` delivery to a replica engine did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// Whether the delivery was published (false means it was stale — its
    /// version did not exceed the replica's current one — and was
    /// discarded, keeping replica versions monotone under replays and
    /// reorders).
    pub applied: bool,
    /// The replica's current snapshot version after the call.
    pub version: u64,
}

/// What [`StreamingEngine::restore`] brought back from durable state,
/// surfaced through `stats` so operators can see a recovery happened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Count-sources restored: every checkpointed remote source, plus one
    /// for non-empty locally-journalled (or checkpointed local) counts.
    pub recovered_sources: u64,
    /// Total tuples the restored counts carry.
    pub recovered_tuples: u64,
    /// Bytes of torn/corrupt journal tail discarded during recovery.
    pub journal_truncated_bytes: u64,
}

/// The refresh-policy outcome attached to an ingest call.
///
/// An `Err` from an ingest method always means the batch was **rejected**
/// (nothing was recorded).  A refit failure after a successfully absorbed
/// batch is therefore reported here instead of as an ingest error —
/// otherwise a caller retrying the "failed" call would double-count every
/// tuple.
#[derive(Debug)]
pub enum RefitOutcome {
    /// The policy did not trip; no refit was attempted.
    NotTriggered,
    /// A refit ran and published a new snapshot.
    Completed(RefitReport),
    /// The policy tripped but the refit failed.  The tuples **are**
    /// ingested, the previous snapshot keeps serving queries, and the dirty
    /// counter is preserved so the next ingest (or a manual
    /// [`StreamingEngine::refresh`]) retries.
    Failed(StreamError),
}

impl RefitOutcome {
    /// The published refit report, if one completed.
    pub fn report(&self) -> Option<&RefitReport> {
        match self {
            RefitOutcome::Completed(report) => Some(report),
            _ => None,
        }
    }

    /// True if a refit completed and published a new snapshot.
    pub fn is_completed(&self) -> bool {
        matches!(self, RefitOutcome::Completed(_))
    }

    /// The refit error, if the policy tripped and the refit failed.
    pub fn error(&self) -> Option<&StreamError> {
        match self {
            RefitOutcome::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// A long-lived streaming-acquisition engine.
///
/// The engine owns `shard_count` mergeable [`CountShard`]s fed by
/// [`StreamingEngine::ingest_batch`] (batches are tabulated on parallel OS
/// threads), tracks staleness with a dirty counter consulted against its
/// [`RefreshPolicy`], and on refresh re-runs acquisition **warm-started**
/// from the previous snapshot's constraint set and a-values.  Each refit is
/// published as an immutable versioned [`Snapshot`]; readers hold
/// [`SnapshotHandle`] clones and keep querying the last consistent snapshot
/// while a refit runs.
///
/// ```
/// use pka_contingency::{Assignment, Schema};
/// use pka_stream::{RefreshPolicy, StreamConfig, StreamingEngine};
///
/// let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
/// let config = StreamConfig::new()
///     .with_shard_count(2)
///     .with_policy(RefreshPolicy::EveryNTuples(4));
/// let mut engine = StreamingEngine::new(schema, config).unwrap();
///
/// // Two correlated attributes, arriving as a stream.
/// let report = engine
///     .ingest_batch(&[[0, 0], [0, 0], [1, 1], [1, 1]])
///     .unwrap();
/// assert!(report.refit.is_completed(), "policy tripped on the 4th tuple");
///
/// let snapshot = engine.snapshot().unwrap();
/// assert_eq!(snapshot.version(), 1);
/// assert_eq!(snapshot.observations(), 4);
/// // Four tuples is far too little evidence for the significance test, so
/// // the snapshot holds the independence model: P(0,0) = 0.5 × 0.5.
/// let p = snapshot
///     .knowledge_base()
///     .probability(&Assignment::from_pairs([(0, 0), (1, 0)]));
/// assert!((p - 0.25).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct StreamingEngine {
    schema: Arc<Schema>,
    acquisition: Acquisition,
    policy: RefreshPolicy,
    shards: Vec<CountShard>,
    /// Tuples ingested since the last published fit.
    pending: u64,
    /// Tuples covered by the last published fit.
    fitted: u64,
    /// Round-robin cursor for single-tuple ingestion.
    next_shard: usize,
    next_version: u64,
    handle: SnapshotHandle,
    refits: u64,
    /// Solver sweeps spent across every refit so far — the cost the warm
    /// starts and the incidence cache exist to reduce, surfaced through
    /// [`StreamingEngine::total_solver_iterations`] and `pka-serve` stats.
    solver_iterations: u64,
    /// Constraint-to-cell incidence lists shared by every refit: the
    /// steady-state warm refit re-solves the same constraint set, so its
    /// structural pass is served from here instead of being recomputed.
    solver_cache: IncidenceCache,
    /// Cutoff order of the marginal lattice built into each published
    /// snapshot.
    lattice_order: usize,
    /// Cumulative shards accepted from remote ingest nodes, one slot per
    /// source (the coordinator role of `pka-fabric`).
    remote: RemoteShardMap,
    /// Snapshots accepted via [`StreamingEngine::apply_synced_snapshot`]
    /// (the replica role of `pka-fabric`).
    synced: u64,
    /// What [`StreamingEngine::restore`] recovered at boot (all zero when
    /// the engine started fresh).
    recovery: RecoveryStats,
}

impl StreamingEngine {
    /// Creates an engine over a schema.
    pub fn new(schema: Arc<Schema>, config: StreamConfig) -> Result<Self> {
        config.validate()?;
        let shards =
            (0..config.shard_count).map(|_| CountShard::new(Arc::clone(&schema))).collect();
        Ok(Self {
            schema,
            acquisition: Acquisition::new(config.acquisition),
            policy: config.policy,
            shards,
            pending: 0,
            fitted: 0,
            next_shard: 0,
            next_version: 1,
            handle: SnapshotHandle::new(),
            refits: 0,
            solver_iterations: 0,
            solver_cache: IncidenceCache::new(),
            lattice_order: config.lattice_order,
            remote: RemoteShardMap::new(),
            synced: 0,
            recovery: RecoveryStats::default(),
        })
    }

    /// Creates an engine with the default configuration.
    pub fn with_defaults(schema: Arc<Schema>) -> Result<Self> {
        Self::new(schema, StreamConfig::default())
    }

    /// The schema the stream is defined over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of count shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total tuples counted by the engine: locally-ingested tuples plus
    /// everything currently held from remote sources.
    pub fn total_ingested(&self) -> u64 {
        self.local_tuples() + self.remote.total_tuples()
    }

    /// Tuples ingested locally (excluding remote shard deliveries).
    pub fn local_tuples(&self) -> u64 {
        self.shards.iter().map(CountShard::tuple_count).sum()
    }

    /// Number of remote sources currently holding a slot in the placement
    /// map.
    pub fn remote_source_count(&self) -> usize {
        self.remote.source_count()
    }

    /// Total tuples held from remote sources.
    pub fn remote_tuples(&self) -> u64 {
        self.remote.total_tuples()
    }

    /// Current standing of every remote source, in name order.
    pub fn remote_sources(&self) -> Vec<RemoteSource> {
        self.remote.sources()
    }

    /// Snapshots accepted via [`StreamingEngine::apply_synced_snapshot`].
    pub fn synced_snapshots(&self) -> u64 {
        self.synced
    }

    /// Tuples ingested since the last published fit.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// Number of refits performed so far.
    pub fn refit_count(&self) -> u64 {
        self.refits
    }

    /// Per-shard tuple counts, in shard order.
    pub fn shard_tuple_counts(&self) -> Vec<u64> {
        self.shards.iter().map(CountShard::tuple_count).collect()
    }

    /// Reuse counters of the solver's incidence cache — how often refits
    /// skipped the `O(constraints × cells)` structural pass.
    pub fn solver_cache_stats(&self) -> CacheStats {
        self.solver_cache.stats()
    }

    /// Total solver sweeps spent across every refit so far.
    pub fn total_solver_iterations(&self) -> u64 {
        self.solver_iterations
    }

    /// A cloneable read handle for query threads.
    pub fn handle(&self) -> SnapshotHandle {
        self.handle.clone()
    }

    /// The latest published snapshot, if any.
    pub fn snapshot(&self) -> Option<Arc<Snapshot>> {
        self.handle.load()
    }

    /// Ingests one tuple (round-robin across shards), refreshing if the
    /// policy trips.
    pub fn ingest(&mut self, row: &[usize]) -> Result<IngestReport> {
        let shard = self.next_shard;
        self.next_shard = (self.next_shard + 1) % self.shards.len();
        self.shards[shard].record(row)?;
        self.pending += 1;
        let refit = self.maybe_refresh();
        Ok(IngestReport { accepted: 1, refit })
    }

    /// Ingests a batch of raw tuples.
    ///
    /// The batch is tabulated into per-worker scratch shards (in parallel
    /// for large batches), each tuple validated exactly once by its
    /// worker's checked increment.  Only if the whole batch counts cleanly
    /// are the scratch shards merged into the engine's persistent shards —
    /// so an `Err` always means nothing was recorded (all-or-nothing) —
    /// and, if the dirty counter trips the policy, a warm-started refit
    /// follows.
    pub fn ingest_batch<R: AsRef<[usize]> + Sync>(&mut self, rows: &[R]) -> Result<IngestReport> {
        if rows.is_empty() {
            return Ok(IngestReport { accepted: 0, refit: RefitOutcome::NotTriggered });
        }
        let batch_shards = tabulate_sharded(&self.schema, rows, self.shards.len())?;
        let shard_count = self.shards.len();
        for (i, batch_shard) in batch_shards.into_iter().enumerate() {
            self.shards[i % shard_count].absorb(&batch_shard)?;
        }
        self.pending += rows.len() as u64;
        let refit = self.maybe_refresh();
        Ok(IngestReport { accepted: rows.len() as u64, refit })
    }

    /// Ingests a batch of samples (e.g. straight from a [`Dataset`]).
    pub fn ingest_samples(&mut self, samples: &[Sample]) -> Result<IngestReport> {
        self.ingest_batch(samples)
    }

    /// Ingests every sample of a dataset.
    pub fn ingest_dataset(&mut self, dataset: &Dataset) -> Result<IngestReport> {
        if dataset.schema() != self.schema.as_ref() {
            return Err(StreamError::InvalidConfig {
                reason: "dataset schema differs from the engine's schema".to_string(),
            });
        }
        self.ingest_samples(dataset.samples())
    }

    /// The combined contingency table over everything counted so far:
    /// local shards plus every held remote shard.  Count addition is
    /// associative and commutative, so the fold order is irrelevant and
    /// the result equals a single sequential pass over all nodes' tuples.
    pub fn current_table(&self) -> Result<ContingencyTable> {
        ContingencyTable::merged(
            Arc::clone(&self.schema),
            self.shards.iter().map(|s| s.table().clone()).chain(self.remote.tables()),
        )
        .map_err(StreamError::from)
    }

    /// Merges the engine's **local** shards into one exportable
    /// [`CountShard`] — what an ingest node ships to its coordinator.
    /// Remote deliveries are deliberately excluded so a relaying node can
    /// never echo another source's counts back into the fabric.
    pub fn export_local_shard(&self) -> Result<CountShard> {
        let table = ContingencyTable::merged(
            Arc::clone(&self.schema),
            self.shards.iter().map(|s| s.table().clone()),
        )
        .map_err(StreamError::from)?;
        Ok(CountShard::from_table(table))
    }

    /// Absorbs one remote shard delivery (the coordinator half of the
    /// fabric's `shard-push`): applies it to the placement map with
    /// replay/reorder-safe sequence gating, counts the gained tuples as
    /// pending, and consults the refresh policy exactly like a local
    /// ingest.
    ///
    /// An `Err` always means the delivery was **rejected** (foreign
    /// schema); a stale delivery is a successful no-op with
    /// `applied: false`, and a refit failure after an applied delivery is
    /// reported in `refit`, mirroring [`StreamingEngine::ingest_batch`].
    pub fn accept_remote_shard(
        &mut self,
        source: &str,
        seq: u64,
        shard: CountShard,
    ) -> Result<RemoteShardReport> {
        let delivery = RemoteDelivery { source: source.to_string(), seq, shard };
        self.accept_remote_shards(vec![delivery]).pop().expect("one delivery in, one outcome out")
    }

    /// Absorbs a whole batch of remote deliveries in one pass: every shard
    /// is applied to the placement map first, then the refresh policy is
    /// consulted **once** for the combined pending mass.  This is the
    /// engine half of the server's queue-drain batching — under a push
    /// storm the coordinator pays one policy check (and at most one refit)
    /// per wakeup instead of one per delivery.
    ///
    /// Outcomes are per-delivery and positional.  A refit triggered by the
    /// batch is reported on the **last applied** delivery (the one that
    /// completed the pending mass); the rest report
    /// [`RefitOutcome::NotTriggered`], exactly as if the deliveries had
    /// arrived back-to-back with the policy tripping on the final one.
    pub fn accept_remote_shards(
        &mut self,
        deliveries: Vec<RemoteDelivery>,
    ) -> Vec<Result<RemoteShardReport>> {
        let mut outcomes: Vec<Result<RemoteShardReport>> = Vec::with_capacity(deliveries.len());
        let mut last_applied = None;
        for delivery in deliveries {
            let RemoteDelivery { source, seq, shard } = delivery;
            match self.remote.apply(&self.schema, &source, seq, shard) {
                Err(e) => outcomes.push(Err(e)),
                Ok(outcome) => {
                    let source_tuples = self
                        .remote
                        .sources()
                        .into_iter()
                        .find(|s| s.name == source)
                        .map_or(0, |s| s.tuples);
                    if outcome.applied() {
                        self.pending += outcome.delta_tuples();
                        last_applied = Some(outcomes.len());
                    }
                    outcomes.push(Ok(RemoteShardReport {
                        applied: outcome.applied(),
                        delta_tuples: outcome.delta_tuples(),
                        source_tuples,
                        refit: RefitOutcome::NotTriggered,
                    }));
                }
            }
        }
        if let Some(i) = last_applied {
            let refit = self.maybe_refresh();
            if let Some(Ok(report)) = outcomes.get_mut(i) {
                report.refit = refit;
            }
        }
        outcomes
    }

    /// Publishes a snapshot received from a coordinator (the replica half
    /// of the fabric's `snapshot-sync`), version-gated so stale, duplicate
    /// and reordered deliveries are no-ops and the replica's served
    /// versions stay monotone.
    ///
    /// The payload is treated as hostile until proven otherwise: the wire
    /// format stamp, schema identity, metadata consistency and the model's
    /// probability mass are all checked before anything is published.  The
    /// joint distribution and marginal lattice are rebuilt locally at
    /// publish — exactly what a local refit would have materialised.
    pub fn apply_synced_snapshot(
        &mut self,
        meta: &SnapshotMeta,
        mut knowledge_base: KnowledgeBase,
    ) -> Result<SyncReport> {
        meta.validate_format()?;
        if knowledge_base.schema() != self.schema.as_ref() {
            return Err(StreamError::InvalidConfig {
                reason: "synced snapshot is over a different schema".to_string(),
            });
        }
        // Derived indexes are never trusted from the wire.
        knowledge_base.rebuild_indexes();
        if meta.constraints != knowledge_base.constraints().len()
            || meta.attributes != knowledge_base.schema().len()
        {
            return Err(StreamError::InvalidConfig {
                reason: "snapshot metadata disagrees with its knowledge base".to_string(),
            });
        }
        let current = self.handle.version().unwrap_or(0);
        if meta.version <= current {
            return Ok(SyncReport { applied: false, version: current });
        }
        let dense_ceiling = self.acquisition.config().dense_ceiling;
        if knowledge_base.schema().cell_count() <= dense_ceiling {
            let joint = knowledge_base.joint();
            let mass: f64 = joint.probabilities().iter().sum();
            if joint.probabilities().iter().any(|p| !p.is_finite() || *p < 0.0)
                || (mass - 1.0).abs() > 1e-6
            {
                return Err(StreamError::InvalidConfig {
                    reason: format!(
                        "synced knowledge base does not define a probability distribution \
                         (mass {mass})"
                    ),
                });
            }
        } else {
            // Above the ceiling the dense joint is never materialised; the
            // partition function (one variable elimination) carries the same
            // sanity signal.
            let z = knowledge_base.factor_graph().partition();
            if !z.is_finite() || z <= 0.0 {
                return Err(StreamError::InvalidConfig {
                    reason: format!(
                        "synced knowledge base does not define a probability distribution \
                         (partition {z})"
                    ),
                });
            }
        }
        self.handle.publish(Snapshot::with_lattice_order_and_ceiling(
            knowledge_base,
            meta.version,
            meta.observations,
            meta.warm_started,
            self.lattice_order,
            dense_ceiling,
        ));
        self.fitted = meta.observations;
        // Keep local version numbering ahead of the synced stream so a
        // hypothetical local refit on this engine could never regress the
        // served version.
        self.next_version = meta.version + 1;
        self.synced += 1;
        Ok(SyncReport { applied: true, version: meta.version })
    }

    /// What [`StreamingEngine::restore`] recovered at boot — all zero when
    /// the engine started fresh.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Captures the engine's durable state as a [`FabricCheckpoint`]: the
    /// local cumulative counts, every remote source's held shard + seq, and
    /// the last published snapshot version.  The fitted model itself is
    /// deliberately *not* captured — it is a pure function of the counts
    /// and is refitted on demand after a restore.
    pub fn capture_checkpoint(&self) -> Result<FabricCheckpoint> {
        let local = self.export_local_shard()?;
        Ok(FabricCheckpoint {
            version: self.next_version - 1,
            local: if local.is_empty() { None } else { Some(local) },
            sources: self
                .remote
                .entries()
                .map(|(name, seq, shard)| CheckpointSource {
                    name: name.to_string(),
                    seq,
                    shard: shard.clone(),
                })
                .collect(),
        })
    }

    /// Rehydrates a freshly-created engine from durable state: a journal
    /// recovery (the node's own counts), a checkpoint (placement map +
    /// local counts + published version), or both.
    ///
    /// When both carry local counts, the one with **more tuples** wins —
    /// counts are cumulative and monotone, so larger means newer — and the
    /// other is discarded rather than merged, which is what makes restore
    /// double-count-proof.  Checkpointed remote sources re-enter through
    /// the normal strictly-newer seq gate, so a source that outlived the
    /// crash reconciles on its next push.  The snapshot version sequence
    /// resumes above the checkpointed version, keeping replica-observed
    /// versions monotone across the restart.
    ///
    /// Restored tuples count as pending: the refresh policy sees them, and
    /// the first post-recovery refresh rebuilds the model they imply.
    pub fn restore(
        &mut self,
        journal: Option<&JournalRecovery>,
        checkpoint: Option<FabricCheckpoint>,
    ) -> Result<RecoveryStats> {
        if self.total_ingested() != 0 || self.refits != 0 || self.synced != 0 {
            return Err(StreamError::Durability {
                reason: "restore requires a pristine engine (counts already present)".to_string(),
            });
        }
        let mut stats = RecoveryStats {
            journal_truncated_bytes: journal.map_or(0, |r| r.truncated_bytes),
            ..RecoveryStats::default()
        };

        let (mut local, mut checkpoint_sources, mut checkpoint_version) = (None, Vec::new(), 0);
        if let Some(recovery) = journal {
            local = recovery.shard.clone();
        }
        if let Some(checkpoint) = checkpoint {
            // Larger cumulative count = newer local state; on a tie the
            // journal wins (it is the node's primary log).
            let journal_tuples = local.as_ref().map_or(0, CountShard::tuple_count);
            if let Some(shard) = checkpoint.local {
                if shard.tuple_count() > journal_tuples {
                    local = Some(shard);
                }
            }
            checkpoint_sources = checkpoint.sources;
            checkpoint_version = checkpoint.version;
        }

        if let Some(shard) = local {
            if shard.schema() != self.schema.as_ref() {
                return Err(StreamError::Durability {
                    reason: "recovered local counts are over a different schema".to_string(),
                });
            }
            if !shard.is_empty() {
                stats.recovered_sources += 1;
                stats.recovered_tuples += shard.tuple_count();
                self.shards[0].absorb(&shard)?;
            }
        }
        for source in checkpoint_sources {
            let applied = self
                .remote
                .apply(&self.schema, &source.name, source.seq, source.shard)
                .map_err(|e| StreamError::Durability {
                reason: format!("checkpointed source `{}` is unusable: {e}", source.name),
            })?;
            stats.recovered_sources += 1;
            stats.recovered_tuples += applied.delta_tuples();
        }

        self.pending = stats.recovered_tuples;
        self.next_version = self.next_version.max(checkpoint_version + 1);
        self.recovery = stats;
        Ok(stats)
    }

    /// Consults the refresh policy and refits if it trips.  Refit failures
    /// are folded into the outcome, never propagated as ingest errors: by
    /// this point the tuples are already absorbed, and `pending` is only
    /// reset on success, so the next ingest or manual refresh retries.
    fn maybe_refresh(&mut self) -> RefitOutcome {
        if !self.policy.should_refresh(self.pending, self.fitted) {
            return RefitOutcome::NotTriggered;
        }
        match self.refresh() {
            Ok(report) => RefitOutcome::Completed(report),
            Err(e) => RefitOutcome::Failed(e),
        }
    }

    /// Re-runs acquisition over all accumulated counts and publishes the
    /// result as a new snapshot.
    ///
    /// If a previous snapshot exists, the run is warm-started from its
    /// constraint set and a-values ([`Acquisition::run_warm_started`]);
    /// otherwise a cold [`Acquisition::run`] starts from the independence
    /// model.  Readers holding [`SnapshotHandle`]s keep being served from
    /// the previous snapshot for the whole duration of the refit; they see
    /// the new version only at the final pointer swap.
    pub fn refresh(&mut self) -> Result<RefitReport> {
        let table = self.current_table()?;
        if table.total() == 0 {
            return Err(StreamError::EmptyStream);
        }
        let started = Instant::now();
        let previous = self.handle.load();
        // Warm-start from the previous snapshot when there is one.  A warm
        // refit can still fail on adversarial distribution shift (the old
        // constraint cells may have become infeasible together); a serving
        // engine must stay up, so that case falls back to a cold run rather
        // than surfacing an error for data that a fresh fit handles fine.
        let (outcome, warm_started) = match previous.as_deref() {
            Some(snapshot) => {
                match self.acquisition.run_warm_started_cached(
                    &table,
                    snapshot.knowledge_base(),
                    &mut self.solver_cache,
                ) {
                    Ok(outcome) => (outcome, true),
                    Err(_) => (self.acquisition.run_cached(&table, &mut self.solver_cache)?, false),
                }
            }
            None => (self.acquisition.run_cached(&table, &mut self.solver_cache)?, false),
        };
        let wall_time = started.elapsed();

        let version = self.next_version;
        self.next_version += 1;
        self.refits += 1;
        self.solver_iterations += outcome.trace.total_solver_iterations() as u64;
        self.fitted = table.total();
        self.pending = 0;

        let report = RefitReport {
            version,
            warm_started,
            observations: table.total(),
            constraints: outcome.knowledge_base.constraints().len(),
            solver_iterations: outcome.trace.total_solver_iterations(),
            wall_time,
        };
        self.handle.publish(Snapshot::with_lattice_order_and_ceiling(
            outcome.knowledge_base,
            version,
            table.total(),
            warm_started,
            self.lattice_order,
            self.acquisition.config().dense_ceiling,
        ));
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::Assignment;

    fn schema() -> Arc<Schema> {
        Schema::uniform(&[2, 2]).unwrap().into_shared()
    }

    /// Two perfectly correlated attributes, as a replayable stream.
    fn correlated_rows(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|i| vec![i % 2, i % 2]).collect()
    }

    #[test]
    fn config_validation() {
        assert!(StreamingEngine::new(schema(), StreamConfig::new().with_shard_count(0)).is_err());
        assert!(StreamingEngine::new(
            schema(),
            StreamConfig::new().with_policy(RefreshPolicy::EveryNTuples(0)),
        )
        .is_err());
    }

    #[test]
    fn refresh_on_empty_stream_is_an_error() {
        let mut engine = StreamingEngine::with_defaults(schema()).unwrap();
        assert!(matches!(engine.refresh(), Err(StreamError::EmptyStream)));
    }

    #[test]
    fn first_refresh_is_cold_then_warm() {
        let config = StreamConfig::new().with_shard_count(2).with_policy(RefreshPolicy::Manual);
        let mut engine = StreamingEngine::new(schema(), config).unwrap();
        engine.ingest_batch(&correlated_rows(100)).unwrap();
        let first = engine.refresh().unwrap();
        assert!(!first.warm_started);
        assert_eq!(first.version, 1);
        engine.ingest_batch(&correlated_rows(100)).unwrap();
        let second = engine.refresh().unwrap();
        assert!(second.warm_started);
        assert_eq!(second.version, 2);
        assert_eq!(second.observations, 200);
        assert_eq!(engine.refit_count(), 2);
        assert_eq!(engine.pending(), 0);
        assert_eq!(
            engine.total_solver_iterations(),
            (first.solver_iterations + second.solver_iterations) as u64,
            "cumulative sweep counter must track every refit"
        );
    }

    #[test]
    fn policy_triggers_refits_during_ingest() {
        let config =
            StreamConfig::new().with_shard_count(2).with_policy(RefreshPolicy::EveryNTuples(50));
        let mut engine = StreamingEngine::new(schema(), config).unwrap();
        let mut refits = 0;
        for batch in correlated_rows(200).chunks(25) {
            if engine.ingest_batch(batch).unwrap().refit.is_completed() {
                refits += 1;
            }
        }
        assert_eq!(refits, 4, "one refit per 50 tuples");
        assert_eq!(engine.snapshot().unwrap().observations(), 200);
    }

    #[test]
    fn single_tuple_ingest_round_robins_and_refits() {
        let config =
            StreamConfig::new().with_shard_count(3).with_policy(RefreshPolicy::EveryNTuples(10));
        let mut engine = StreamingEngine::new(schema(), config).unwrap();
        for row in correlated_rows(30) {
            engine.ingest(&row).unwrap();
        }
        assert_eq!(engine.total_ingested(), 30);
        assert_eq!(engine.refit_count(), 3);
        // Round-robin spreads tuples across all shards.
        assert!(engine.shard_count() == 3);
        let table = engine.current_table().unwrap();
        assert_eq!(table.total(), 30);
    }

    #[test]
    fn repeated_refits_reuse_the_incidence_cache() {
        let config = StreamConfig::new().with_policy(RefreshPolicy::Manual);
        let mut engine = StreamingEngine::new(schema(), config).unwrap();
        engine.ingest_batch(&correlated_rows(200)).unwrap();
        engine.refresh().unwrap();
        let after_first = engine.solver_cache_stats();
        assert!(after_first.rebuilds >= 1);

        // Same distribution, more data: the warm refit re-solves the same
        // constraint set and must be served from the cache — no new
        // rebuilds, strictly more hits.
        engine.ingest_batch(&correlated_rows(200)).unwrap();
        engine.refresh().unwrap();
        let after_second = engine.solver_cache_stats();
        assert_eq!(after_second.rebuilds, after_first.rebuilds, "unchanged set must not rebuild");
        assert!(
            after_second.full_hits > after_first.full_hits,
            "repeated refit did not reuse the cache: {after_second:?}"
        );
        assert_eq!(engine.shard_tuple_counts().iter().sum::<u64>(), 400);
    }

    #[test]
    fn snapshot_reflects_the_correlation() {
        let config = StreamConfig::new().with_policy(RefreshPolicy::Manual);
        let mut engine = StreamingEngine::new(schema(), config).unwrap();
        engine.ingest_batch(&correlated_rows(400)).unwrap();
        engine.refresh().unwrap();
        let snapshot = engine.snapshot().unwrap();
        let p = snapshot
            .knowledge_base()
            .conditional(&Assignment::single(1, 0), &Assignment::single(0, 0))
            .unwrap();
        assert!(p > 0.95, "P(b=0 | a=0) = {p} under perfect correlation");
    }

    #[test]
    fn readers_keep_serving_across_refits() {
        let config = StreamConfig::new().with_policy(RefreshPolicy::Manual);
        let mut engine = StreamingEngine::new(schema(), config).unwrap();
        engine.ingest_batch(&correlated_rows(100)).unwrap();
        engine.refresh().unwrap();

        let handle = engine.handle();
        // Pin the snapshot before spawning: on a single-core box the
        // spawned thread may not run until after the second refresh, and a
        // reader that pinned version 2 would wait forever for version 3.
        let pinned = engine.snapshot().unwrap();
        let reader = std::thread::spawn(move || {
            let version = pinned.version();
            let p_before = pinned.knowledge_base().probability(&Assignment::single(0, 0));
            // Spin until the engine publishes a newer version, proving the
            // pinned snapshot stayed valid and unchanged throughout.
            loop {
                if handle.version() != Some(version) {
                    let p_after = pinned.knowledge_base().probability(&Assignment::single(0, 0));
                    return (version, p_before, p_after);
                }
                std::thread::yield_now();
            }
        });

        // Skew the distribution and refit; the reader's pinned snapshot must
        // be untouched by the swap.
        let skew: Vec<Vec<usize>> = (0..300).map(|_| vec![0, 1]).collect();
        engine.ingest_batch(&skew).unwrap();
        engine.refresh().unwrap();
        let (version, p_before, p_after) = reader.join().unwrap();
        assert_eq!(version, 1);
        assert_eq!(p_before, p_after, "pinned snapshot changed under the reader");
        assert_eq!(engine.snapshot().unwrap().version(), 2);
    }

    #[test]
    fn failed_automatic_refit_does_not_poison_ingest() {
        use pka_core::AcquisitionConfig;
        use pka_maxent::ConvergenceCriteria;
        // A solver budget that cannot converge, in strict mode: every
        // policy-triggered refit fails.
        let impossible = AcquisitionConfig::new().with_convergence(
            ConvergenceCriteria::new().with_max_iterations(1).with_tolerance(1e-16).strict(),
        );
        let config = StreamConfig::new()
            .with_shard_count(2)
            .with_policy(RefreshPolicy::EveryNTuples(400))
            .with_acquisition(impossible);
        let mut engine = StreamingEngine::new(schema(), config).unwrap();

        // Perfect correlation promotes a boundary constraint whose fit
        // cannot reach 1e-16 in one sweep, so the policy-triggered refit
        // fails.  The ingest itself still succeeds — the tuples are in the
        // shards — and the failure is reported in the outcome, not as an
        // error a retry loop would re-send the batch for.
        let report = engine.ingest_batch(&correlated_rows(400)).unwrap();
        assert_eq!(report.accepted, 400);
        assert!(report.refit.error().is_some(), "refit must fail: {:?}", report.refit);
        assert!(report.refit.report().is_none());
        assert_eq!(engine.total_ingested(), 400, "tuples counted exactly once");
        assert_eq!(engine.pending(), 400, "dirty counter preserved for retry");
        assert!(engine.snapshot().is_none());
    }

    #[test]
    fn remote_shards_merge_exactly_and_gate_on_sequence() {
        let manual = StreamConfig::new().with_shard_count(2).with_policy(RefreshPolicy::Manual);
        // A remote ingest node tabulates 40 tuples locally…
        let mut node = StreamingEngine::new(schema(), manual.clone()).unwrap();
        node.ingest_batch(&correlated_rows(40)).unwrap();
        let exported = node.export_local_shard().unwrap();
        assert_eq!(exported.tuple_count(), 40);

        // …and the coordinator absorbs the cumulative shard next to its own
        // local ingestion.
        let mut coord = StreamingEngine::new(schema(), manual).unwrap();
        coord.ingest_batch(&correlated_rows(10)).unwrap();
        let report = coord.accept_remote_shard("node-a", 40, exported.clone()).unwrap();
        assert!(report.applied);
        assert_eq!(report.delta_tuples, 40);
        assert_eq!(report.source_tuples, 40);
        assert_eq!(coord.total_ingested(), 50);
        assert_eq!(coord.local_tuples(), 10);
        assert_eq!(coord.remote_tuples(), 40);
        assert_eq!(coord.remote_source_count(), 1);
        assert_eq!(coord.pending(), 50);

        // The merged table is bit-for-bit the single-pass tabulation.
        let mut single = StreamingEngine::new(schema(), StreamConfig::new()).unwrap();
        single.ingest_batch(&correlated_rows(40)).unwrap();
        single.ingest_batch(&correlated_rows(10)).unwrap();
        assert_eq!(coord.current_table().unwrap(), single.current_table().unwrap());

        // A replayed delivery is a no-op.
        let dup = coord.accept_remote_shard("node-a", 40, exported).unwrap();
        assert!(!dup.applied);
        assert_eq!(coord.total_ingested(), 50);
        assert_eq!(coord.pending(), 50, "stale deliveries must not inflate the dirty counter");
    }

    #[test]
    fn remote_deltas_trip_the_refresh_policy() {
        let mut node =
            StreamingEngine::new(schema(), StreamConfig::new().with_policy(RefreshPolicy::Manual))
                .unwrap();
        node.ingest_batch(&correlated_rows(100)).unwrap();
        let mut coord = StreamingEngine::new(
            schema(),
            StreamConfig::new().with_policy(RefreshPolicy::EveryNTuples(50)),
        )
        .unwrap();
        let report =
            coord.accept_remote_shard("node-a", 100, node.export_local_shard().unwrap()).unwrap();
        assert!(report.refit.is_completed(), "100 remote tuples must trip an every-50 policy");
        assert_eq!(coord.snapshot().unwrap().observations(), 100);
        assert_eq!(coord.pending(), 0);
    }

    #[test]
    fn export_excludes_remote_deliveries() {
        let manual = StreamConfig::new().with_policy(RefreshPolicy::Manual);
        let mut node = StreamingEngine::new(schema(), manual.clone()).unwrap();
        node.ingest_batch(&correlated_rows(30)).unwrap();
        let mut relay = StreamingEngine::new(schema(), manual).unwrap();
        relay.ingest_batch(&correlated_rows(5)).unwrap();
        relay.accept_remote_shard("node-a", 30, node.export_local_shard().unwrap()).unwrap();
        // The relay's export carries only its own 5 tuples — it can never
        // echo node-a's counts back into the fabric.
        assert_eq!(relay.export_local_shard().unwrap().tuple_count(), 5);
        assert_eq!(relay.current_table().unwrap().total(), 35);
    }

    #[test]
    fn synced_snapshots_are_version_gated() {
        let manual = StreamConfig::new().with_policy(RefreshPolicy::Manual);
        let mut leader = StreamingEngine::new(schema(), manual.clone()).unwrap();
        leader.ingest_batch(&correlated_rows(100)).unwrap();
        leader.refresh().unwrap();
        let v1 = leader.snapshot().unwrap();
        leader.ingest_batch(&correlated_rows(100)).unwrap();
        leader.refresh().unwrap();
        let v2 = leader.snapshot().unwrap();

        let mut replica = StreamingEngine::new(schema(), manual).unwrap();
        let first = replica.apply_synced_snapshot(&v1.meta(), v1.knowledge_base().clone()).unwrap();
        assert_eq!(first, SyncReport { applied: true, version: 1 });
        assert_eq!(replica.snapshot().unwrap().version(), 1);
        // The replica rebuilds the query fast path locally.
        assert!(replica.snapshot().unwrap().lattice().max_order() >= 1);

        let second =
            replica.apply_synced_snapshot(&v2.meta(), v2.knowledge_base().clone()).unwrap();
        assert_eq!(second, SyncReport { applied: true, version: 2 });
        assert_eq!(replica.synced_snapshots(), 2);

        // Replays and reordered deliveries are no-ops; the served version
        // never regresses.
        let replay =
            replica.apply_synced_snapshot(&v2.meta(), v2.knowledge_base().clone()).unwrap();
        assert_eq!(replay, SyncReport { applied: false, version: 2 });
        let reorder =
            replica.apply_synced_snapshot(&v1.meta(), v1.knowledge_base().clone()).unwrap();
        assert_eq!(reorder, SyncReport { applied: false, version: 2 });
        assert_eq!(replica.snapshot().unwrap().version(), 2);
        assert_eq!(replica.synced_snapshots(), 2, "no-ops are not counted as syncs");
    }

    #[test]
    fn synced_snapshots_reject_hostile_payloads() {
        let manual = StreamConfig::new().with_policy(RefreshPolicy::Manual);
        let mut leader = StreamingEngine::new(schema(), manual.clone()).unwrap();
        leader.ingest_batch(&correlated_rows(100)).unwrap();
        leader.refresh().unwrap();
        let snap = leader.snapshot().unwrap();

        let mut replica = StreamingEngine::new(schema(), manual.clone()).unwrap();
        // Wrong wire format.
        let mut bad_format = snap.meta();
        bad_format.format_version = 99;
        assert!(matches!(
            replica.apply_synced_snapshot(&bad_format, snap.knowledge_base().clone()),
            Err(StreamError::FormatVersion { found: Some(99) })
        ));
        // Metadata that disagrees with the carried knowledge base.
        let mut lying = snap.meta();
        lying.constraints += 3;
        assert!(replica.apply_synced_snapshot(&lying, snap.knowledge_base().clone()).is_err());
        // Foreign schema.
        let mut foreign =
            StreamingEngine::new(Schema::uniform(&[3, 3]).unwrap().into_shared(), manual).unwrap();
        foreign.ingest_batch(&[[0, 0], [1, 1], [2, 2], [0, 0]]).unwrap();
        foreign.refresh().unwrap();
        let foreign_snap = foreign.snapshot().unwrap();
        assert!(replica
            .apply_synced_snapshot(&foreign_snap.meta(), foreign_snap.knowledge_base().clone())
            .is_err());
        assert!(replica.snapshot().is_none(), "rejected payloads publish nothing");
    }

    #[test]
    fn journal_recovery_restores_local_counts_and_replays_are_noops() {
        let manual = StreamConfig::new().with_shard_count(2).with_policy(RefreshPolicy::Manual);
        // A node tabulates 40 tuples, "crashes", and its replacement boots
        // from the journal's last cumulative record.
        let mut node = StreamingEngine::new(schema(), manual.clone()).unwrap();
        node.ingest_batch(&correlated_rows(40)).unwrap();
        let recovery = JournalRecovery {
            seq: Some(40),
            shard: Some(node.export_local_shard().unwrap()),
            valid_records: 3,
            truncated_bytes: 17,
        };

        let mut reborn = StreamingEngine::new(schema(), manual.clone()).unwrap();
        let stats = reborn.restore(Some(&recovery), None).unwrap();
        assert_eq!(stats.recovered_sources, 1);
        assert_eq!(stats.recovered_tuples, 40);
        assert_eq!(stats.journal_truncated_bytes, 17);
        assert_eq!(reborn.recovery_stats(), stats);
        assert_eq!(reborn.local_tuples(), 40);
        assert_eq!(reborn.pending(), 40, "restored tuples must be visible to the policy");
        assert_eq!(
            reborn.export_local_shard().unwrap(),
            node.export_local_shard().unwrap(),
            "recovered counts are bit-exact"
        );

        // A coordinator that already saw seq 40 treats the replayed push
        // from the reborn node as stale — recovery cannot double-count.
        let mut coord = StreamingEngine::new(schema(), manual).unwrap();
        coord.accept_remote_shard("node-a", 40, node.export_local_shard().unwrap()).unwrap();
        let replay =
            coord.accept_remote_shard("node-a", 40, reborn.export_local_shard().unwrap()).unwrap();
        assert!(!replay.applied);
        assert_eq!(coord.remote_tuples(), 40);
    }

    #[test]
    fn checkpoint_round_trip_restores_the_placement_map() {
        let manual = StreamConfig::new().with_shard_count(2).with_policy(RefreshPolicy::Manual);
        let mut node = StreamingEngine::new(schema(), manual.clone()).unwrap();
        node.ingest_batch(&correlated_rows(30)).unwrap();

        let mut coord = StreamingEngine::new(schema(), manual.clone()).unwrap();
        coord.ingest_batch(&correlated_rows(10)).unwrap();
        coord.accept_remote_shard("node-a", 30, node.export_local_shard().unwrap()).unwrap();
        coord.refresh().unwrap();
        let checkpoint = coord.capture_checkpoint().unwrap();
        assert_eq!(checkpoint.version, 1);
        assert_eq!(checkpoint.total_tuples(), 40);

        // The restarted coordinator rebuilds the merged table exactly, even
        // though node-a never pushes again (the dead-source case).
        let mut reborn = StreamingEngine::new(schema(), manual).unwrap();
        let stats = reborn.restore(None, Some(checkpoint)).unwrap();
        assert_eq!(stats.recovered_sources, 2, "local counts + one remote source");
        assert_eq!(stats.recovered_tuples, 40);
        assert_eq!(reborn.total_ingested(), 40);
        assert_eq!(reborn.remote_source_count(), 1);
        assert_eq!(reborn.current_table().unwrap(), coord.current_table().unwrap());

        // The version sequence resumes above the checkpoint: replicas that
        // acknowledged version 1 see the next publish as strictly newer.
        let report = reborn.refresh().unwrap();
        assert_eq!(report.version, 2);

        // A live source that outlived the crash reconciles via the seq
        // gate: replaying its checkpointed push is a no-op…
        let stale =
            reborn.accept_remote_shard("node-a", 30, node.export_local_shard().unwrap()).unwrap();
        assert!(!stale.applied);
        // …and newer cumulative counts supersede the restored entry.
        node.ingest_batch(&correlated_rows(12)).unwrap();
        let newer =
            reborn.accept_remote_shard("node-a", 42, node.export_local_shard().unwrap()).unwrap();
        assert!(newer.applied);
        assert_eq!(newer.delta_tuples, 12);
        assert_eq!(reborn.total_ingested(), 52, "reconciliation never double-counts");
    }

    #[test]
    fn restore_prefers_the_larger_local_record() {
        let manual = StreamConfig::new().with_shard_count(2).with_policy(RefreshPolicy::Manual);
        // The journal saw 25 tuples; an older checkpoint captured only 10.
        let mut newer = StreamingEngine::new(schema(), manual.clone()).unwrap();
        newer.ingest_batch(&correlated_rows(25)).unwrap();
        let mut older = StreamingEngine::new(schema(), manual.clone()).unwrap();
        older.ingest_batch(&correlated_rows(10)).unwrap();

        let recovery = JournalRecovery {
            seq: Some(25),
            shard: Some(newer.export_local_shard().unwrap()),
            valid_records: 1,
            truncated_bytes: 0,
        };
        let checkpoint = FabricCheckpoint {
            version: 0,
            local: Some(older.export_local_shard().unwrap()),
            sources: Vec::new(),
        };
        let mut reborn = StreamingEngine::new(schema(), manual).unwrap();
        let stats = reborn.restore(Some(&recovery), Some(checkpoint)).unwrap();
        assert_eq!(stats.recovered_tuples, 25, "larger cumulative record wins, never the sum");
        assert_eq!(reborn.local_tuples(), 25);
    }

    #[test]
    fn restore_requires_a_pristine_engine() {
        let mut engine = StreamingEngine::with_defaults(schema()).unwrap();
        engine.ingest_batch(&correlated_rows(4)).unwrap();
        let err = engine.restore(None, None).unwrap_err();
        assert!(matches!(err, StreamError::Durability { .. }));
    }

    #[test]
    fn rejects_foreign_schema_datasets() {
        let mut engine = StreamingEngine::with_defaults(schema()).unwrap();
        let other = Dataset::new(Schema::uniform(&[3]).unwrap());
        assert!(engine.ingest_dataset(&other).is_err());
        assert!(engine.ingest_batch(&[[0, 5]]).is_err());
        assert_eq!(engine.total_ingested(), 0, "failed batches leave no trace");
    }
}
