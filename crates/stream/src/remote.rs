//! The coordinator's shard-placement map: one slot per remote ingest node.
//!
//! Each ingest node tabulates locally and ships its **cumulative** counts as
//! a [`CountShard`] tagged with a monotone sequence number (its local tuple
//! count).  The map keeps exactly one entry per source and replaces it only
//! when a strictly newer sequence arrives, so the delivery pathologies of a
//! real network — replays, reorders, overlapping push and pull paths — all
//! collapse to no-ops.  Merging the held shards with the coordinator's own
//! local shards is then the same commutative-monoid fold single-node
//! ingestion uses, which is what keeps the distributed fabric *exact*: the
//! merged table is bit-for-bit the table a single sequential pass over every
//! node's tuples would have produced.

use crate::shard::CountShard;
use crate::{Result, StreamError};
use pka_contingency::{ContingencyTable, Schema};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// What applying one remote delivery did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteApply {
    /// The delivery was newer than the held entry and replaced it.
    Applied {
        /// Tuples the source gained since its previously-held shard.
        delta_tuples: u64,
    },
    /// The delivery was stale (sequence not newer than the held one) and
    /// was discarded — idempotence under replay and reorder.
    Stale {
        /// The sequence number the map already holds for the source.
        held_seq: u64,
    },
}

impl RemoteApply {
    /// True if the delivery replaced the held entry.
    pub fn applied(&self) -> bool {
        matches!(self, RemoteApply::Applied { .. })
    }

    /// Tuples gained by the apply (0 for a stale delivery).
    pub fn delta_tuples(&self) -> u64 {
        match self {
            RemoteApply::Applied { delta_tuples } => *delta_tuples,
            RemoteApply::Stale { .. } => 0,
        }
    }
}

/// One remote source's current standing in the placement map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteSource {
    /// The source's self-declared name.
    pub name: String,
    /// Highest sequence number accepted from the source.
    pub seq: u64,
    /// Tuples in the source's held cumulative shard.
    pub tuples: u64,
    /// Time since the source last delivered *anything* — a stale replay
    /// counts, because it still proves the node is alive and pushing.  A
    /// growing age is the first observable sign of a dead ingest node.
    pub last_push_age: Duration,
}

#[derive(Debug)]
struct RemoteEntry {
    seq: u64,
    shard: CountShard,
    /// When the source last delivered (applied *or* stale) — liveness, not
    /// data freshness.
    last_update: Instant,
}

/// Placement map from source name to the latest cumulative [`CountShard`]
/// accepted from that source.
#[derive(Debug, Default)]
pub struct RemoteShardMap {
    entries: BTreeMap<String, RemoteEntry>,
}

impl RemoteShardMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct sources currently placed.
    pub fn source_count(&self) -> usize {
        self.entries.len()
    }

    /// Total tuples across every held shard.
    pub fn total_tuples(&self) -> u64 {
        self.entries.values().map(|e| e.shard.tuple_count()).sum()
    }

    /// Current standing of every source, in name order.
    pub fn sources(&self) -> Vec<RemoteSource> {
        self.entries
            .iter()
            .map(|(name, e)| RemoteSource {
                name: name.clone(),
                seq: e.seq,
                tuples: e.shard.tuple_count(),
                last_push_age: e.last_update.elapsed(),
            })
            .collect()
    }

    /// Applies one delivery: replaces the source's entry if `seq` is
    /// strictly newer than the held one, otherwise discards it as stale.
    ///
    /// The shard must be over `schema`; a foreign-schema delivery is
    /// rejected before any state changes.
    pub fn apply(
        &mut self,
        schema: &Schema,
        source: &str,
        seq: u64,
        shard: CountShard,
    ) -> Result<RemoteApply> {
        if shard.schema() != schema {
            return Err(StreamError::InvalidConfig {
                reason: format!("shard from `{source}` is over a different schema"),
            });
        }
        match self.entries.get_mut(source) {
            Some(held) if seq <= held.seq => {
                // Stale data is still a liveness signal: the source reached
                // us, its counts just weren't news.
                held.last_update = Instant::now();
                Ok(RemoteApply::Stale { held_seq: held.seq })
            }
            Some(held) => {
                // Cumulative counts: the delta is what the source gained.
                // `saturating_sub` guards against a source that restarted
                // with fewer tuples but a newer sequence — the shard is
                // still replaced (latest wins), the delta is just 0.
                let delta_tuples = shard.tuple_count().saturating_sub(held.shard.tuple_count());
                held.seq = seq;
                held.shard = shard;
                held.last_update = Instant::now();
                Ok(RemoteApply::Applied { delta_tuples })
            }
            None => {
                let delta_tuples = shard.tuple_count();
                self.entries.insert(
                    source.to_string(),
                    RemoteEntry { seq, shard, last_update: Instant::now() },
                );
                Ok(RemoteApply::Applied { delta_tuples })
            }
        }
    }

    /// Every held entry as `(name, seq, shard)`, in name order — the raw
    /// material of a [`FabricCheckpoint`](crate::checkpoint::FabricCheckpoint).
    pub fn entries(&self) -> impl Iterator<Item = (&str, u64, &CountShard)> {
        self.entries.iter().map(|(name, e)| (name.as_str(), e.seq, &e.shard))
    }

    /// The held cumulative tables, for merging into the engine's fold.
    pub fn tables(&self) -> impl Iterator<Item = ContingencyTable> + '_ {
        self.entries.values().map(|e| e.shard.table().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::uniform(&[2, 2]).unwrap().into_shared()
    }

    fn shard_with(n: usize) -> CountShard {
        let mut s = CountShard::new(schema());
        for i in 0..n {
            s.record(&[i % 2, i % 2]).unwrap();
        }
        s
    }

    #[test]
    fn newer_sequences_replace_and_report_deltas() {
        let s = schema();
        let mut map = RemoteShardMap::new();
        let first = map.apply(&s, "node-a", 3, shard_with(3)).unwrap();
        assert_eq!(first, RemoteApply::Applied { delta_tuples: 3 });
        let second = map.apply(&s, "node-a", 8, shard_with(8)).unwrap();
        assert_eq!(second, RemoteApply::Applied { delta_tuples: 5 });
        assert_eq!(map.source_count(), 1);
        assert_eq!(map.total_tuples(), 8);
        let standing = map.sources();
        assert_eq!(standing.len(), 1);
        assert_eq!(standing[0].name, "node-a");
        assert_eq!(standing[0].seq, 8);
        assert_eq!(standing[0].tuples, 8);
    }

    #[test]
    fn stale_duplicate_and_reordered_deliveries_are_noops() {
        let s = schema();
        let mut map = RemoteShardMap::new();
        map.apply(&s, "node-a", 8, shard_with(8)).unwrap();
        // Duplicate of the current delivery.
        let dup = map.apply(&s, "node-a", 8, shard_with(8)).unwrap();
        assert_eq!(dup, RemoteApply::Stale { held_seq: 8 });
        // A delayed older delivery arriving after a newer one.
        let reordered = map.apply(&s, "node-a", 3, shard_with(3)).unwrap();
        assert_eq!(reordered, RemoteApply::Stale { held_seq: 8 });
        assert_eq!(map.total_tuples(), 8, "stale deliveries must not change held counts");
        assert_eq!(dup.delta_tuples(), 0);
        assert!(!reordered.applied());
    }

    #[test]
    fn sources_are_independent() {
        let s = schema();
        let mut map = RemoteShardMap::new();
        map.apply(&s, "node-a", 4, shard_with(4)).unwrap();
        map.apply(&s, "node-b", 2, shard_with(2)).unwrap();
        assert_eq!(map.source_count(), 2);
        assert_eq!(map.total_tuples(), 6);
        // node-b's sequence numbering does not interact with node-a's.
        assert!(map.apply(&s, "node-b", 3, shard_with(3)).unwrap().applied());
        assert_eq!(map.total_tuples(), 7);
    }

    #[test]
    fn foreign_schema_deliveries_are_rejected() {
        let mut map = RemoteShardMap::new();
        let other = Schema::uniform(&[5]).unwrap().into_shared();
        let foreign = CountShard::new(Arc::clone(&other));
        assert!(map.apply(&schema(), "node-a", 1, foreign).is_err());
        assert_eq!(map.source_count(), 0, "rejected deliveries leave no trace");
    }

    #[test]
    fn stale_deliveries_still_refresh_liveness_age() {
        let s = schema();
        let mut map = RemoteShardMap::new();
        map.apply(&s, "node-a", 8, shard_with(8)).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert!(map.sources()[0].last_push_age >= Duration::from_millis(25));
        // A stale replay carries no new data but proves the node is alive.
        map.apply(&s, "node-a", 8, shard_with(8)).unwrap();
        assert!(map.sources()[0].last_push_age < Duration::from_millis(25));
    }

    #[test]
    fn restarted_source_with_fewer_tuples_still_wins_by_sequence() {
        let s = schema();
        let mut map = RemoteShardMap::new();
        map.apply(&s, "node-a", 5, shard_with(5)).unwrap();
        let restarted = map.apply(&s, "node-a", 6, shard_with(2)).unwrap();
        assert_eq!(restarted, RemoteApply::Applied { delta_tuples: 0 });
        assert_eq!(map.total_tuples(), 2, "latest cumulative shard wins");
    }
}
