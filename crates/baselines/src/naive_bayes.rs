//! A naive-Bayes classifier baseline.
//!
//! The memo positions its method against "automatic production of
//! classification-oriented expert systems from examples" (TIMM,
//! Expert-Ease).  Naive Bayes is the simplest probabilistic member of that
//! family: pick one target attribute, assume every other attribute is
//! conditionally independent given the target, and classify by posterior.
//! Unlike the memo's method it models only `P(target | rest)` — it cannot
//! answer arbitrary probability queries — which is exactly the contrast the
//! comparison experiment draws.

use pka_contingency::{Assignment, ContingencyTable, Schema};
use std::sync::Arc;

/// A fitted naive-Bayes classifier for one target attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayes {
    schema: Arc<Schema>,
    target: usize,
    /// `log P(target = t)` for each target value.
    log_prior: Vec<f64>,
    /// `log P(attribute = v | target = t)` indexed `[target][attribute][value]`.
    log_likelihood: Vec<Vec<Vec<f64>>>,
    alpha: f64,
}

impl NaiveBayes {
    /// Fits the classifier from a contingency table with add-`alpha`
    /// (Laplace) smoothing.
    ///
    /// # Panics
    /// Panics if `target` is out of range or `alpha` is negative.
    pub fn fit(table: &ContingencyTable, target: usize, alpha: f64) -> Self {
        let schema = table.shared_schema();
        assert!(target < schema.len(), "target attribute out of range");
        assert!(alpha >= 0.0 && alpha.is_finite(), "alpha must be non-negative");
        let target_card = schema.cardinality(target).expect("target in schema");
        let n = table.total() as f64;

        let mut log_prior = Vec::with_capacity(target_card);
        let mut log_likelihood = Vec::with_capacity(target_card);
        for t in 0..target_card {
            let target_assignment = Assignment::single(target, t);
            let target_count = table.count_matching(&target_assignment) as f64;
            let prior = (target_count + alpha) / (n + alpha * target_card as f64);
            log_prior.push(safe_ln(prior));

            let mut per_attr = Vec::with_capacity(schema.len());
            for attr in 0..schema.len() {
                let card = schema.cardinality(attr).expect("attr in schema");
                if attr == target {
                    per_attr.push(vec![0.0; card]);
                    continue;
                }
                let mut per_value = Vec::with_capacity(card);
                for v in 0..card {
                    let joint = table
                        .count_matching(&Assignment::from_pairs([(target, t), (attr, v)]))
                        as f64;
                    let p = (joint + alpha) / (target_count + alpha * card as f64);
                    per_value.push(safe_ln(p));
                }
                per_attr.push(per_value);
            }
            log_likelihood.push(per_attr);
        }
        Self { schema, target, log_prior, log_likelihood, alpha }
    }

    /// The target attribute index.
    pub fn target(&self) -> usize {
        self.target
    }

    /// The smoothing parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Posterior distribution `P(target | evidence)` for evidence over any
    /// subset of the non-target attributes.  Attributes not mentioned in the
    /// evidence are ignored (marginalised by the naive-Bayes assumption).
    pub fn posterior(&self, evidence: &Assignment) -> Vec<f64> {
        let target_card = self.log_prior.len();
        let mut log_post = Vec::with_capacity(target_card);
        for t in 0..target_card {
            let mut lp = self.log_prior[t];
            for (attr, value) in evidence.pairs() {
                if attr == self.target || attr >= self.schema.len() {
                    continue;
                }
                lp += self.log_likelihood[t][attr][value];
            }
            log_post.push(lp);
        }
        // Normalise in log space.
        let max = log_post.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if !max.is_finite() {
            return vec![1.0 / target_card as f64; target_card];
        }
        let weights: Vec<f64> = log_post.iter().map(|&lp| (lp - max).exp()).collect();
        let total: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / total).collect()
    }

    /// Probability of a specific target value given evidence.
    pub fn probability_of(&self, target_value: usize, evidence: &Assignment) -> f64 {
        self.posterior(evidence)[target_value]
    }

    /// The most probable target value given evidence.
    pub fn classify(&self, evidence: &Assignment) -> usize {
        let post = self.posterior(evidence);
        post.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .map(|(i, _)| i)
            .expect("target has at least one value")
    }

    /// Classification accuracy over a table (each cell weighted by its
    /// count), predicting the target from all other attributes.
    pub fn accuracy(&self, table: &ContingencyTable) -> f64 {
        if table.total() == 0 {
            return 0.0;
        }
        let mut correct = 0u64;
        for (values, count) in table.nonzero_cells() {
            if count == 0 {
                continue;
            }
            let evidence = Assignment::from_pairs(
                values
                    .iter()
                    .enumerate()
                    .filter(|&(attr, _)| attr != self.target)
                    .map(|(attr, &v)| (attr, v)),
            );
            if self.classify(&evidence) == values[self.target] {
                correct += count;
            }
        }
        correct as f64 / table.total() as f64
    }
}

fn safe_ln(p: f64) -> f64 {
    if p <= 0.0 {
        f64::NEG_INFINITY
    } else {
        p.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{Attribute, Schema};

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    #[test]
    fn prior_matches_marginal() {
        let t = paper_table();
        let nb = NaiveBayes::fit(&t, 1, 0.0);
        let posterior = nb.posterior(&Assignment::empty());
        assert!((posterior[0] - 433.0 / 3428.0).abs() < 1e-9);
        assert!((posterior[0] + posterior[1] - 1.0).abs() < 1e-12);
        assert_eq!(nb.target(), 1);
        assert_eq!(nb.alpha(), 0.0);
    }

    #[test]
    fn smokers_have_higher_cancer_posterior() {
        let t = paper_table();
        let nb = NaiveBayes::fit(&t, 1, 1.0);
        let smoker = nb.probability_of(0, &Assignment::single(0, 0));
        let nonsmoker = nb.probability_of(0, &Assignment::single(0, 1));
        assert!(smoker > nonsmoker);
        // Conditioning only on one attribute reproduces the empirical
        // conditional (up to smoothing): 240/1290 = .186.
        assert!((smoker - 240.0 / 1290.0).abs() < 0.01);
    }

    #[test]
    fn classify_picks_argmax() {
        let t = paper_table();
        let nb = NaiveBayes::fit(&t, 1, 1.0);
        // Cancer prevalence is low, so the classifier predicts "no" for
        // every evidence combination in this data.
        assert_eq!(nb.classify(&Assignment::single(0, 0)), 1);
        let acc = nb.accuracy(&t);
        assert!((acc - 2995.0 / 3428.0).abs() < 1e-9);
    }

    #[test]
    fn smoothing_prevents_degenerate_posteriors() {
        let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        // Target value 1 never observed with attr0 = 0.
        let t = ContingencyTable::from_counts(schema, vec![10, 0, 5, 5]).unwrap();
        let raw = NaiveBayes::fit(&t, 1, 0.0);
        assert_eq!(raw.probability_of(1, &Assignment::single(0, 0)), 0.0);
        let smoothed = NaiveBayes::fit(&t, 1, 1.0);
        assert!(smoothed.probability_of(1, &Assignment::single(0, 0)) > 0.0);
    }

    #[test]
    fn evidence_on_target_attribute_is_ignored() {
        let t = paper_table();
        let nb = NaiveBayes::fit(&t, 1, 1.0);
        let with = nb.posterior(&Assignment::from_pairs([(0, 0), (1, 0)]));
        let without = nb.posterior(&Assignment::single(0, 0));
        assert_eq!(with, without);
    }

    #[test]
    #[should_panic]
    fn out_of_range_target_panics() {
        let _ = NaiveBayes::fit(&paper_table(), 9, 1.0);
    }
}
