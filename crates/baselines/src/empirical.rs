//! The empirical (relative-frequency) joint distribution baseline.

use pka_contingency::{Assignment, ContingencyTable};
use pka_maxent::JointDistribution;

/// A model that memorises the training table: every cell's probability is
/// its observed relative frequency.
///
/// With optional add-`alpha` (Laplace) smoothing so held-out samples in
/// unobserved cells do not get probability zero.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalModel {
    joint: JointDistribution,
    alpha: f64,
}

impl EmpiricalModel {
    /// Fits the unsmoothed empirical distribution.
    pub fn fit(table: &ContingencyTable) -> Self {
        Self::fit_smoothed(table, 0.0)
    }

    /// Fits with add-`alpha` smoothing: each cell's count is increased by
    /// `alpha` pseudo-observations before normalising.
    pub fn fit_smoothed(table: &ContingencyTable, alpha: f64) -> Self {
        assert!(alpha >= 0.0 && alpha.is_finite(), "alpha must be a non-negative finite number");
        let weights: Vec<f64> = table.counts().iter().map(|&c| c as f64 + alpha).collect();
        Self { joint: JointDistribution::from_unnormalized(table.shared_schema(), weights), alpha }
    }

    /// The smoothing parameter used.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The estimated joint distribution.
    pub fn joint(&self) -> &JointDistribution {
        &self.joint
    }

    /// Probability of a (partial) assignment.
    pub fn probability(&self, assignment: &Assignment) -> f64 {
        self.joint.probability(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::Schema;
    use std::sync::Arc;

    fn table() -> ContingencyTable {
        let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        ContingencyTable::from_counts(Arc::clone(&schema), vec![6, 2, 0, 2]).unwrap()
    }

    #[test]
    fn unsmoothed_matches_frequencies() {
        let t = table();
        let m = EmpiricalModel::fit(&t);
        assert!((m.probability(&Assignment::from_pairs([(0, 0), (1, 0)])) - 0.6).abs() < 1e-12);
        assert_eq!(m.probability(&Assignment::from_pairs([(0, 1), (1, 0)])), 0.0);
        assert_eq!(m.alpha(), 0.0);
    }

    #[test]
    fn smoothing_removes_zeros() {
        let t = table();
        let m = EmpiricalModel::fit_smoothed(&t, 1.0);
        let p = m.probability(&Assignment::from_pairs([(0, 1), (1, 0)]));
        assert!(p > 0.0);
        // (0 + 1) / (10 + 4)
        assert!((p - 1.0 / 14.0).abs() < 1e-12);
        assert!((m.joint().probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn negative_alpha_is_rejected() {
        let _ = EmpiricalModel::fit_smoothed(&table(), -1.0);
    }
}
