//! # pka-baselines
//!
//! Baseline estimators the maximum-entropy knowledge-acquisition system is
//! compared against in the evaluation harness (experiments X3 and X5 of
//! DESIGN.md):
//!
//! * [`empirical`] — the raw relative-frequency joint distribution (no
//!   generalisation at all; the strongest possible fit to the training data
//!   and the weakest on held-out data when cells are sparse).
//! * [`independence`] — the product of first-order marginals (the memo's
//!   starting model, Eqs. 57–62, never updated).
//! * [`naive_bayes`] — a naive-Bayes classifier for a chosen target
//!   attribute, the classical "expert system from examples" baseline the
//!   memo contrasts itself with (TIMM/Expert-Ease style decision aids).
//! * [`chi2_miner`] — an association miner that promotes cells by classical
//!   per-cell χ² (or G-test) significance instead of the memo's
//!   minimum-message-length criterion; used in the constraint-selection
//!   ablation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chi2_miner;
pub mod empirical;
pub mod independence;
pub mod naive_bayes;

pub use chi2_miner::{Chi2Miner, MinedConstraint, SelectionRule};
pub use empirical::EmpiricalModel;
pub use independence::IndependenceModel;
pub use naive_bayes::NaiveBayes;
