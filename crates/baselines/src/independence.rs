//! The independence-model baseline: the product of first-order marginals.
//!
//! This is exactly the model the memo's procedure *starts from* (Eqs. 57–62)
//! and never improves if no cell tests significant.  Comparing the acquired
//! model against it quantifies how much the discovered constraints are
//! worth.

use pka_contingency::{Assignment, ContingencyTable};
use pka_maxent::JointDistribution;

/// The product-of-marginals model.
#[derive(Debug, Clone, PartialEq)]
pub struct IndependenceModel {
    joint: JointDistribution,
}

impl IndependenceModel {
    /// Fits the model from a contingency table's first-order marginals.
    pub fn fit(table: &ContingencyTable) -> Self {
        let schema = table.shared_schema();
        let n = table.total() as f64;
        let marginals: Vec<Vec<f64>> = (0..schema.len())
            .map(|attr| {
                (0..schema.cardinality(attr).expect("attr in schema"))
                    .map(|v| {
                        if n == 0.0 {
                            1.0 / schema.cardinality(attr).expect("attr in schema") as f64
                        } else {
                            table.count_matching(&Assignment::single(attr, v)) as f64 / n
                        }
                    })
                    .collect()
            })
            .collect();
        let weights: Vec<f64> = schema
            .cells()
            .map(|values| values.iter().enumerate().map(|(a, &v)| marginals[a][v]).product())
            .collect();
        Self { joint: JointDistribution::from_unnormalized(schema, weights) }
    }

    /// The estimated joint distribution.
    pub fn joint(&self) -> &JointDistribution {
        &self.joint
    }

    /// Probability of a (partial) assignment.
    pub fn probability(&self, assignment: &Assignment) -> f64 {
        self.joint.probability(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{Attribute, Schema};
    use std::sync::Arc;

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    #[test]
    fn reproduces_eq_61_predictions() {
        let t = paper_table();
        let m = IndependenceModel::fit(&t);
        let pa = 1290.0 / 3428.0;
        let pb = 433.0 / 3428.0;
        let pc = 1780.0 / 3428.0;
        let p = m.joint().probability_of_values(&[0, 0, 0]);
        assert!((p - pa * pb * pc).abs() < 1e-12);
        let p_ab = m.probability(&Assignment::from_pairs([(0, 0), (1, 0)]));
        assert!((p_ab - pa * pb).abs() < 1e-12);
    }

    #[test]
    fn marginals_are_preserved_exactly() {
        let t = paper_table();
        let m = IndependenceModel::fit(&t);
        for attr in 0..3 {
            for v in 0..t.schema().cardinality(attr).unwrap() {
                let a = Assignment::single(attr, v);
                assert!((m.probability(&a) - t.frequency(&a)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn empty_table_gives_uniform() {
        let schema = Schema::uniform(&[2, 3]).unwrap().into_shared();
        let t = ContingencyTable::zeros(Arc::clone(&schema));
        let m = IndependenceModel::fit(&t);
        assert!((m.joint().probability_of_values(&[0, 0]) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn independence_misses_real_associations() {
        // The independence model assigns the N^AB_11 cell ~.048 while the
        // data show .07 — the discrepancy the memo's Table 1 flags.
        let t = paper_table();
        let m = IndependenceModel::fit(&t);
        let predicted = m.probability(&Assignment::from_pairs([(0, 0), (1, 0)]));
        let observed = t.frequency(&Assignment::from_pairs([(0, 0), (1, 0)]));
        assert!(observed > 1.4 * predicted);
    }
}
