//! A classical association miner: promote cells by per-cell χ² or G-test
//! significance instead of the memo's message-length criterion.
//!
//! The miner follows the same outer loop as the acquisition procedure —
//! score all cells of an order against the current maximum-entropy model,
//! promote the most significant, refit, repeat — but the *selection rule* is
//! a frequentist p-value threshold.  The ablation experiment (X5) compares
//! the constraints each rule selects on identical data.

use pka_contingency::{Assignment, ContingencyTable};
use pka_maxent::{ConstraintSet, LogLinearModel, Solver};
use pka_significance::{chi_square_cell_test, g_test_cell};

/// Which classical test drives the selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionRule {
    /// Per-cell Pearson χ² (1 degree of freedom).
    ChiSquare,
    /// Per-cell likelihood-ratio G-test (1 degree of freedom).
    GTest,
}

/// A constraint selected by the miner, with the p-value that selected it.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedConstraint {
    /// The promoted cell.
    pub assignment: Assignment,
    /// The p-value of the classical test at promotion time.
    pub p_value: f64,
    /// The constraint order.
    pub order: usize,
}

/// The classical miner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Miner {
    /// Significance level: cells with `p < alpha` are promoted.
    pub alpha: f64,
    /// The classical test to use.
    pub rule: SelectionRule,
    /// Highest constraint order to search.
    pub max_order: usize,
}

impl Chi2Miner {
    /// Creates a miner with the given significance level, rule and maximum
    /// order.
    pub fn new(alpha: f64, rule: SelectionRule, max_order: usize) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
        Self { alpha, rule, max_order }
    }

    /// Runs the miner, returning the fitted model and the constraints it
    /// promoted (in promotion order).
    pub fn run(
        &self,
        table: &ContingencyTable,
    ) -> Result<(LogLinearModel, Vec<MinedConstraint>), pka_maxent::MaxEntError> {
        let schema = table.shared_schema();
        let solver = Solver::default();
        let mut constraints = ConstraintSet::first_order_from_table(table)?;
        let (mut model, _) = solver.fit(&constraints)?;
        let mut mined = Vec::new();
        let n = table.total();

        let max_order = self.max_order.min(schema.len());
        for order in 2..=max_order {
            loop {
                // Score all unconstrained cells of this order.
                let mut best: Option<(Assignment, f64)> = None;
                for vars in schema.all_vars().subsets_of_size(order) {
                    for values in schema.configurations(vars) {
                        let assignment = Assignment::new(vars, values);
                        if constraints.contains(&assignment) {
                            continue;
                        }
                        let observed = table.count_matching(&assignment);
                        let predicted = model.probability(&assignment).clamp(0.0, 1.0);
                        let p_value = match self.rule {
                            SelectionRule::ChiSquare => {
                                chi_square_cell_test(observed, predicted, n)
                                    .map(|r| r.p_value)
                                    .unwrap_or(1.0)
                            }
                            SelectionRule::GTest => g_test_cell(observed, predicted, n)
                                .map(|r| r.p_value)
                                .unwrap_or(1.0),
                        };
                        if p_value < self.alpha && best.as_ref().is_none_or(|&(_, bp)| p_value < bp)
                        {
                            best = Some((assignment, p_value));
                        }
                    }
                }
                let Some((assignment, p_value)) = best else {
                    break;
                };
                constraints.add_from_table(table, assignment.clone())?;
                let (new_model, _) = solver.fit_from(model.clone(), &constraints)?;
                model = new_model;
                mined.push(MinedConstraint { order: assignment.order(), assignment, p_value });
            }
        }
        Ok((model, mined))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_contingency::{Attribute, Schema, VarSet};

    fn paper_table() -> ContingencyTable {
        let schema = Schema::new(vec![
            Attribute::new("smoking", ["smoker", "non-smoker", "married-to-smoker"]),
            Attribute::yes_no("cancer"),
            Attribute::yes_no("family-history"),
        ])
        .unwrap()
        .into_shared();
        ContingencyTable::from_counts(
            schema,
            vec![130, 110, 410, 640, 62, 31, 580, 460, 78, 22, 520, 385],
        )
        .unwrap()
    }

    #[test]
    fn miner_finds_the_paper_associations() {
        let t = paper_table();
        let miner = Chi2Miner::new(0.001, SelectionRule::ChiSquare, 2);
        let (model, mined) = miner.run(&t).unwrap();
        assert!(!mined.is_empty());
        // The strongest association (smoking × family history or smoking ×
        // cancer) must be among the findings.
        let varsets: Vec<VarSet> = mined.iter().map(|m| m.assignment.vars()).collect();
        assert!(
            varsets.contains(&VarSet::from_indices([0, 2]))
                || varsets.contains(&VarSet::from_indices([0, 1]))
        );
        // The model honours every mined constraint.
        for m in &mined {
            let p = model.probability(&m.assignment);
            let observed = t.frequency(&m.assignment);
            assert!((p - observed).abs() < 1e-4);
            assert!(m.p_value < 0.001);
            assert_eq!(m.order, 2);
        }
    }

    #[test]
    fn g_test_rule_behaves_similarly() {
        let t = paper_table();
        let chi = Chi2Miner::new(0.001, SelectionRule::ChiSquare, 2).run(&t).unwrap().1;
        let g = Chi2Miner::new(0.001, SelectionRule::GTest, 2).run(&t).unwrap().1;
        assert!(!g.is_empty());
        // Both rules find a comparable number of constraints on this data.
        let diff = (chi.len() as i64 - g.len() as i64).abs();
        assert!(diff <= 4, "chi {} vs g {}", chi.len(), g.len());
    }

    #[test]
    fn looser_alpha_finds_at_least_as_many() {
        let t = paper_table();
        let strict = Chi2Miner::new(1e-6, SelectionRule::ChiSquare, 2).run(&t).unwrap().1;
        let loose = Chi2Miner::new(0.05, SelectionRule::ChiSquare, 2).run(&t).unwrap().1;
        assert!(loose.len() >= strict.len());
    }

    #[test]
    fn independent_data_yields_nothing() {
        let schema = Schema::uniform(&[2, 2]).unwrap().into_shared();
        let t = ContingencyTable::from_counts(schema, vec![100, 100, 100, 100]).unwrap();
        let (_, mined) = Chi2Miner::new(0.01, SelectionRule::ChiSquare, 2).run(&t).unwrap();
        assert!(mined.is_empty());
    }

    #[test]
    #[should_panic]
    fn invalid_alpha_panics() {
        let _ = Chi2Miner::new(0.0, SelectionRule::ChiSquare, 2);
    }
}
