//! One entry point per experiment.
//!
//! Every function here is deterministic (seeds are explicit parameters) and
//! returns plain data, so the same code path serves three callers: the
//! Criterion benchmarks (timing), the `reproduce` binary (printing
//! paper-vs-measured) and the integration tests (asserting the shape of the
//! results).

use pka_baselines::{Chi2Miner, EmpiricalModel, IndependenceModel, NaiveBayes, SelectionRule};
use pka_contingency::{Assignment, ContingencyTable, Marginal, Schema, VarSet};
use pka_core::{Acquisition, AcquisitionConfig, AcquisitionOutcome, KnowledgeBase, RoundTrace};
use pka_datagen::{
    sample_dataset, sample_table, sampler::seeded_rng, smoking, survey, PlantedExperiment,
    WideExperiment,
};
use pka_maxent::{
    metrics, solver::Solver, ConstraintSet, ConvergenceCriteria, FactorGraph, IncidenceCache,
    JointDistribution, LogLinearModel, MarginalLattice, SolveReport,
};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// F1 / F2 — the survey data and its marginals
// ---------------------------------------------------------------------------

/// Experiment F1: rebuild the contingency table of Figure 1 from the raw
/// per-respondent samples (Appendix A path: samples → tuples → table).
pub fn fig1_contingency() -> ContingencyTable {
    smoking::dataset().to_table()
}

/// Experiment F2: all first- and second-order marginals of Figure 2.
pub fn fig2_marginals(table: &ContingencyTable) -> Vec<Marginal> {
    let schema = table.schema();
    let mut out = Vec::new();
    for attr in 0..schema.len() {
        out.push(table.marginal(VarSet::singleton(attr)));
    }
    for pair in schema.all_vars().subsets_of_size(2) {
        out.push(table.marginal(pair));
    }
    out.push(table.marginal(VarSet::empty()));
    out
}

// ---------------------------------------------------------------------------
// E1 — first-order fit (Eqs. 48-62)
// ---------------------------------------------------------------------------

/// Experiment E1: fit the maximum-entropy model to the first-order marginals
/// only; the result is the independence model of Eqs. 57–62.
pub fn eq57_initial_model(table: &ContingencyTable) -> (LogLinearModel, SolveReport) {
    let constraints = ConstraintSet::first_order_from_table(table).expect("valid table");
    Solver::default().fit(&constraints).expect("first-order fit always converges")
}

// ---------------------------------------------------------------------------
// T1 — Table 1 (second-order significance screen)
// ---------------------------------------------------------------------------

/// Experiment T1: score every second-order cell of the smoking survey
/// against the independence model — the memo's Table 1.  Returns the first
/// round of the order-2 search with all 16 evaluations recorded.
pub fn table1_significance(table: &ContingencyTable) -> RoundTrace {
    let outcome =
        Acquisition::new(AcquisitionConfig::new().with_evaluation_trace().with_max_order(2))
            .run(table)
            .expect("acquisition on the paper data succeeds");
    outcome.trace.first_round_at_order(2).expect("order 2 is always searched").clone()
}

// ---------------------------------------------------------------------------
// T2 — Table 2 (iterative a-value computation for the N^AC_12 constraint)
// ---------------------------------------------------------------------------

/// Experiment T2: add the memo's first discovered constraint
/// (`p^AC_12 = 750/3428 ≈ 0.219`) to the first-order constraints and record
/// the solver trace — the modern equivalent of Table 2's hand iteration.
///
/// `tolerance` controls how closely the constraint must be honoured; the
/// memo's printed table corresponds to roughly `1e-3`.
pub fn table2_iteration(table: &ContingencyTable, tolerance: f64) -> SolveReport {
    let mut constraints = ConstraintSet::first_order_from_table(table).expect("valid table");
    constraints
        .add_from_table(
            table,
            Assignment::from_pairs([(smoking::SMOKING, 0), (smoking::FAMILY_HISTORY, 1)]),
        )
        .expect("constraint is consistent");
    let solver = Solver::new(ConvergenceCriteria::new().with_trace().with_tolerance(tolerance));
    solver.fit(&constraints).expect("the paper constraint set is feasible").1
}

// ---------------------------------------------------------------------------
// F5/F6 — Appendix A conversion
// ---------------------------------------------------------------------------

/// Experiment F5/F6: the Appendix-A conversion path measured end to end —
/// expand the paper table to raw samples, then tabulate them again.
pub fn fig6_roundtrip() -> ContingencyTable {
    let dataset = smoking::dataset();
    dataset.to_table()
}

// ---------------------------------------------------------------------------
// X1 — full acquisition on the paper data
// ---------------------------------------------------------------------------

/// Experiment X1: the full acquisition run (all orders) on the smoking
/// survey.
pub fn full_acquisition(table: &ContingencyTable) -> AcquisitionOutcome {
    Acquisition::new(AcquisitionConfig::new().with_evaluation_trace())
        .run(table)
        .expect("acquisition on the paper data succeeds")
}

// ---------------------------------------------------------------------------
// X2 — planted-correlation recovery vs sample size
// ---------------------------------------------------------------------------

/// One point of the recovery curve.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPoint {
    /// Sample size used.
    pub n: u64,
    /// Fraction of planted cells recovered exactly.
    pub cell_recovery: f64,
    /// Fraction of planted variable sets recovered.
    pub varset_recovery: f64,
    /// Constraints discovered that match no planted variable set.
    pub false_positives: usize,
    /// Number of constraints discovered in total.
    pub discovered: usize,
}

/// Experiment X2: plant `planted_count` second-order interactions of the
/// given strength in a 4-attribute schema, sample `n` observations, run
/// acquisition, and measure recovery.
pub fn recovery_experiment(
    n: u64,
    strength: f64,
    planted_count: usize,
    seed: u64,
) -> RecoveryPoint {
    let schema = Schema::uniform(&[3, 2, 2, 3]).expect("schema valid").into_shared();
    let mut rng = seeded_rng(seed);
    let experiment =
        PlantedExperiment::generate(Arc::clone(&schema), 2, planted_count, strength, &mut rng);
    let table = sample_table(&experiment.joint, n, &mut rng);
    let outcome = Acquisition::new(AcquisitionConfig::new().with_max_order(2))
        .run(&table)
        .expect("acquisition succeeds");
    let discovered: Vec<Assignment> = outcome
        .knowledge_base
        .significant_constraints()
        .iter()
        .map(|c| c.assignment.clone())
        .collect();
    RecoveryPoint {
        n,
        cell_recovery: experiment.cell_recovery(&discovered),
        varset_recovery: experiment.varset_recovery(&discovered),
        false_positives: experiment.false_positives(&discovered),
        discovered: discovered.len(),
    }
}

// ---------------------------------------------------------------------------
// X3 — model quality vs baselines
// ---------------------------------------------------------------------------

/// One row of the baseline-comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Estimator name.
    pub method: &'static str,
    /// Average negative log-likelihood (nats) on held-out data.
    pub held_out_log_loss: f64,
    /// KL divergence (nats) from the ground-truth distribution to the
    /// estimate.
    pub kl_from_truth: f64,
    /// Number of parameters beyond the first-order marginals (0 for the
    /// independence baseline; number of cells for the empirical model).
    pub extra_parameters: usize,
}

/// Experiment X3: draw a training and a held-out test set from the survey
/// simulator, fit the acquired model and the baselines on the training data
/// and compare held-out log-loss and divergence from the ground truth.
pub fn baseline_comparison(n_train: u64, n_test: u64, seed: u64) -> Vec<ComparisonRow> {
    let truth = survey::ground_truth();
    let mut rng = seeded_rng(seed);
    let train = sample_table(&truth, n_train, &mut rng);
    let test = sample_dataset(&truth, n_test, &mut rng);

    let kl = |joint: &JointDistribution| {
        pka_maxent::entropy::kl_divergence(truth.probabilities(), joint.probabilities())
    };

    // Acquired maximum-entropy model (orders limited to 3 to keep the sweep
    // bounded; the ground truth has no structure above order 3).
    let outcome = Acquisition::new(AcquisitionConfig::new().with_max_order(3))
        .run(&train)
        .expect("acquisition succeeds");
    let acquired_joint = outcome.knowledge_base.joint();
    let acquired_extra = outcome.knowledge_base.significant_constraints().len();

    let independence = IndependenceModel::fit(&train);
    let empirical = EmpiricalModel::fit_smoothed(&train, 0.5);

    vec![
        ComparisonRow {
            method: "maxent-acquisition",
            held_out_log_loss: metrics::log_loss(&acquired_joint, &test).expect("same schema"),
            kl_from_truth: kl(&acquired_joint),
            extra_parameters: acquired_extra,
        },
        ComparisonRow {
            method: "independence",
            held_out_log_loss: metrics::log_loss(independence.joint(), &test).expect("same schema"),
            kl_from_truth: kl(independence.joint()),
            extra_parameters: 0,
        },
        ComparisonRow {
            method: "empirical+0.5",
            held_out_log_loss: metrics::log_loss(empirical.joint(), &test).expect("same schema"),
            kl_from_truth: kl(empirical.joint()),
            extra_parameters: train.cell_count(),
        },
    ]
}

/// Classification accuracy comparison on the survey simulator: the acquired
/// model used as a classifier vs naive Bayes, both predicting `cancer`.
pub fn classification_comparison(n_train: u64, n_test: u64, seed: u64) -> Vec<(String, f64)> {
    let truth = survey::ground_truth();
    let mut rng = seeded_rng(seed);
    let train = sample_table(&truth, n_train, &mut rng);
    let test = sample_table(&truth, n_test, &mut rng);
    let target = survey::attrs::CANCER;

    let nb = NaiveBayes::fit(&train, target, 1.0);
    let nb_accuracy = nb.accuracy(&test);

    let outcome = Acquisition::new(AcquisitionConfig::new().with_max_order(2))
        .run(&train)
        .expect("acquisition succeeds");
    let kb = outcome.knowledge_base;
    let maxent_accuracy = classify_with_kb(&kb, &test, target);

    vec![
        ("maxent-acquisition".to_string(), maxent_accuracy),
        ("naive-bayes".to_string(), nb_accuracy),
    ]
}

fn classify_with_kb(kb: &KnowledgeBase, test: &ContingencyTable, target: usize) -> f64 {
    if test.total() == 0 {
        return 0.0;
    }
    let schema = kb.schema();
    let card = schema.cardinality(target).expect("target in schema");
    let mut correct = 0u64;
    for (values, count) in test.nonzero_cells() {
        let evidence = Assignment::from_pairs(
            values.iter().enumerate().filter(|&(a, _)| a != target).map(|(a, &v)| (a, v)),
        );
        let prediction = (0..card)
            .map(|v| kb.conditional(&Assignment::single(target, v), &evidence).unwrap_or(0.0))
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(v, _)| v)
            .expect("at least one value");
        if prediction == values[target] {
            correct += count;
        }
    }
    correct as f64 / test.total() as f64
}

// ---------------------------------------------------------------------------
// X4 — scaling
// ---------------------------------------------------------------------------

/// A scaling workload: a sampled table over a schema with `attributes`
/// attributes of `cardinality` values each.
pub fn scaling_workload(
    attributes: usize,
    cardinality: usize,
    n: u64,
    seed: u64,
) -> ContingencyTable {
    let cards = vec![cardinality; attributes];
    let schema = Schema::uniform(&cards).expect("schema valid").into_shared();
    let mut rng = seeded_rng(seed);
    let joint = pka_datagen::synthetic::random_joint(Arc::clone(&schema), 1.0, &mut rng);
    sample_table(&joint, n, &mut rng)
}

/// Runs acquisition (up to order 2) on a scaling workload and returns the
/// number of constraints found — the quantity the scaling bench times.
pub fn scaling_acquisition(table: &ContingencyTable) -> usize {
    Acquisition::new(AcquisitionConfig::new().with_max_order(2))
        .run(table)
        .expect("acquisition succeeds")
        .knowledge_base
        .significant_constraints()
        .len()
}

// ---------------------------------------------------------------------------
// X6 — solver kernel workloads (the `solver_sweep` bench)
// ---------------------------------------------------------------------------

/// A reusable iterative-scaling workload at one schema size, pitting the
/// fast kernel (deferred normalization, CSR incidence, scatter init)
/// against the retained eagerly-normalised reference solver on three
/// scenarios: a cold fit, a steady-state warm refit (same constraint
/// cells, targets shifted by a new batch of data) and a promotion refit
/// (one constraint appended to a cached prefix).
#[derive(Debug)]
pub struct SweepWorkload {
    label: &'static str,
    schema: Arc<Schema>,
    /// First fit: first-order marginals + two planted second-order cells.
    cold: ConstraintSet,
    /// Same cells re-read from the perturbed table (the steady-state warm
    /// refit of a streaming engine).
    warm: ConstraintSet,
    /// `warm` plus one extra promoted cell (the acquisition-loop refit).
    promoted: ConstraintSet,
    /// The cold fit's model — the warm starts' seed.
    seed_model: LogLinearModel,
}

impl SweepWorkload {
    /// The memo's survey schema (12 cells) with the Table 2 constraint —
    /// the "Table 2 workload".
    pub fn paper() -> Self {
        Self::build("paper_3x2x2", &[3, 2, 2])
    }

    /// A mid-sized schema (144 cells).
    pub fn medium() -> Self {
        Self::build("medium_4x4x3x3", &[4, 4, 3, 3])
    }

    /// A large schema (480 cells).
    pub fn large() -> Self {
        Self::build("large_6x5x4x4", &[6, 5, 4, 4])
    }

    fn build(label: &'static str, cards: &[usize]) -> Self {
        let schema = Schema::uniform(cards).expect("schema valid").into_shared();
        let base = synthetic_counts(&schema, 0);
        // The steady-state drift: one more batch from (nearly) the same
        // distribution, shifting every target by a percent or so — the
        // magnitude a streaming refresh actually sees, so the warm refit
        // does real sweeps without degenerating into a cold re-solve.
        let shifted: Vec<u64> = base
            .iter()
            .enumerate()
            .map(|(i, &c)| c + c / 50 + (i as u64).wrapping_mul(2654435761) % 3)
            .collect();
        let t1 = ContingencyTable::from_counts(Arc::clone(&schema), base).expect("valid counts");
        let t2 = ContingencyTable::from_counts(Arc::clone(&schema), shifted).expect("valid counts");
        let planted =
            [Assignment::from_pairs([(0, 0), (1, 0)]), Assignment::from_pairs([(0, 1), (2, 1)])];
        let extra = Assignment::from_pairs([(1, 1), (2, 0)]);

        let mut cold = ConstraintSet::first_order_from_table(&t1).expect("valid table");
        for cell in &planted {
            cold.add_from_table(&t1, cell.clone()).expect("consistent cell");
        }
        let mut warm = ConstraintSet::first_order_from_table(&t2).expect("valid table");
        for cell in &planted {
            warm.add_from_table(&t2, cell.clone()).expect("consistent cell");
        }
        let mut promoted = warm.clone();
        promoted.add_from_table(&t2, extra).expect("consistent cell");

        let (seed_model, _) = Solver::default().fit(&cold).expect("cold fit converges");
        Self { label, schema, cold, warm, promoted, seed_model }
    }

    /// The workload's display label (`paper_3x2x2`, …).
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Cold fit with the fast kernel (fresh cache: one rebuild included).
    pub fn cold_fit_fast(&self) -> SolveReport {
        Solver::default().fit(&self.cold).expect("cold fit converges").1
    }

    /// Cold fit with the reference solver.
    pub fn cold_fit_reference(&self) -> SolveReport {
        pka_maxent::solver::reference::fit_from(
            ConvergenceCriteria::default(),
            LogLinearModel::uniform(Arc::clone(&self.schema)),
            &self.cold,
        )
        .expect("cold fit converges")
        .1
    }

    /// Steady-state warm refit with the fast kernel: seeded from the cold
    /// model, served from `cache` (a full hit once the cache is primed).
    pub fn warm_refit_fast(&self, cache: &mut IncidenceCache) -> SolveReport {
        Solver::default()
            .fit_from_cached(self.seed_model.clone(), &self.warm, cache)
            .expect("warm refit converges")
            .1
    }

    /// Steady-state warm refit with the reference solver.
    pub fn warm_refit_reference(&self) -> SolveReport {
        pka_maxent::solver::reference::fit_from(
            ConvergenceCriteria::default(),
            self.seed_model.clone(),
            &self.warm,
        )
        .expect("warm refit converges")
        .1
    }

    /// Zero-sweep refit (already-satisfied constraint set) with the fast
    /// kernel — isolates per-fit fixed costs.
    pub fn rezero_refit_fast(&self, cache: &mut IncidenceCache) -> SolveReport {
        Solver::default()
            .fit_from_cached(self.seed_model.clone(), &self.cold, cache)
            .expect("refit of a satisfied set succeeds")
            .1
    }

    /// Zero-sweep refit with the reference solver.
    pub fn rezero_refit_reference(&self) -> SolveReport {
        pka_maxent::solver::reference::fit_from(
            ConvergenceCriteria::default(),
            self.seed_model.clone(),
            &self.cold,
        )
        .expect("refit of a satisfied set succeeds")
        .1
    }

    /// Promotion refit with the fast kernel: one constraint appended to the
    /// cached prefix (the extension path).
    pub fn promotion_refit_fast(&self, cache: &mut IncidenceCache) -> SolveReport {
        Solver::default()
            .fit_from_cached(self.seed_model.clone(), &self.promoted, cache)
            .expect("promotion refit converges")
            .1
    }

    /// Promotion refit with the reference solver.
    pub fn promotion_refit_reference(&self) -> SolveReport {
        pka_maxent::solver::reference::fit_from(
            ConvergenceCriteria::default(),
            self.seed_model.clone(),
            &self.promoted,
        )
        .expect("promotion refit converges")
        .1
    }

    /// Correctness gate for the bench: the two kernels must agree per cell
    /// to 1e-12 on every timed scenario of this workload — cold fit, warm
    /// refit, zero-sweep hit and promotion refit (the CSR extension path).
    pub fn assert_kernels_agree(&self) {
        let mut fast_cache = IncidenceCache::new();
        let _ = self.warm_refit_fast(&mut fast_cache);
        let mut hit_cache = IncidenceCache::new();
        let pairs = [
            (
                Solver::default().fit(&self.cold).expect("fast cold").0,
                pka_maxent::solver::reference::fit_from(
                    ConvergenceCriteria::default(),
                    LogLinearModel::uniform(Arc::clone(&self.schema)),
                    &self.cold,
                )
                .expect("reference cold")
                .0,
            ),
            (
                Solver::default()
                    .fit_from(self.seed_model.clone(), &self.warm)
                    .expect("fast warm")
                    .0,
                pka_maxent::solver::reference::fit_from(
                    ConvergenceCriteria::default(),
                    self.seed_model.clone(),
                    &self.warm,
                )
                .expect("reference warm")
                .0,
            ),
            (
                // Promotion against a cache primed with the warm prefix, so
                // the fast side exercises the CSR extension path it times.
                Solver::default()
                    .fit_from_cached(self.seed_model.clone(), &self.promoted, &mut fast_cache)
                    .expect("fast promotion")
                    .0,
                pka_maxent::solver::reference::fit_from(
                    ConvergenceCriteria::default(),
                    self.seed_model.clone(),
                    &self.promoted,
                )
                .expect("reference promotion")
                .0,
            ),
            (
                Solver::default()
                    .fit_from_cached(self.seed_model.clone(), &self.cold, &mut hit_cache)
                    .expect("fast zero-sweep hit")
                    .0,
                pka_maxent::solver::reference::fit_from(
                    ConvergenceCriteria::default(),
                    self.seed_model.clone(),
                    &self.cold,
                )
                .expect("reference zero-sweep hit")
                .0,
            ),
        ];
        for (fast, slow) in &pairs {
            for (i, (a, b)) in
                fast.dense_probabilities().iter().zip(slow.dense_probabilities()).enumerate()
            {
                assert!(
                    (a - b).abs() <= 1e-12,
                    "{}: kernels diverged at cell {i}: {a} vs {b}",
                    self.label
                );
            }
        }
    }
}

/// Deterministic synthetic counts with a planted correlation between the
/// first two attributes (cells where they agree mod 2 are heavier), plus a
/// pseudo-random ripple so no marginal is degenerate.
fn synthetic_counts(schema: &Schema, salt: u64) -> Vec<u64> {
    (0..schema.cell_count())
        .map(|i| {
            let values = schema.cell_values(i);
            let ripple = (i as u64).wrapping_add(salt).wrapping_mul(2654435761) % 97;
            let bonus = if values[0] % 2 == values[1] % 2 { 150 } else { 0 };
            40 + ripple + bonus
        })
        .collect()
}

// ---------------------------------------------------------------------------
// X7 — query-evaluation workloads (the `query_eval` bench)
// ---------------------------------------------------------------------------

/// A reusable query-evaluation workload at one schema size, pitting the
/// snapshot-resident [`MarginalLattice`] (one index computation + lookup
/// per marginal) against the dense-joint stride walk (a sum over all
/// matching cells) on the mixes the serve read path actually sees:
/// first-/second-order marginals, conditionals via Bayes' identity, and a
/// mixed batch that includes above-cutoff probes exercising the fallback.
#[derive(Debug)]
pub struct QueryEvalWorkload {
    label: &'static str,
    joint: JointDistribution,
    lattice: MarginalLattice,
    /// Order-1 and order-2 marginal probes (all of them — the query
    /// population a SPIRIT-style shell mostly answers).
    marginals: Vec<Assignment>,
    /// `(target, evidence)` conditional probes, order ≤ 2 after merging.
    conditionals: Vec<(Assignment, Assignment)>,
    /// Probes strictly above the lattice cutoff (the stride-walk fallback).
    above_cutoff: Vec<Assignment>,
}

impl QueryEvalWorkload {
    /// The memo's 12-cell survey schema.
    pub fn paper() -> Self {
        Self::build("paper_3x2x2", &[3, 2, 2])
    }

    /// A mid-sized schema (144 cells).
    pub fn medium() -> Self {
        Self::build("medium_4x4x3x3", &[4, 4, 3, 3])
    }

    /// A large schema (480 cells).
    pub fn large() -> Self {
        Self::build("large_6x5x4x4", &[6, 5, 4, 4])
    }

    fn build(label: &'static str, cards: &[usize]) -> Self {
        let schema = Schema::uniform(cards).expect("schema valid").into_shared();
        let counts = synthetic_counts(&schema, 7);
        let table = ContingencyTable::from_counts(Arc::clone(&schema), counts).expect("valid");
        let joint = JointDistribution::empirical(&table);
        let lattice = MarginalLattice::build(&joint, pka_maxent::DEFAULT_LATTICE_ORDER);

        // Every first- and second-order marginal cell.
        let mut marginals = Vec::new();
        for vars in (1..=2).flat_map(|m| schema.all_vars().subsets_of_size(m)) {
            for values in schema.configurations(vars) {
                marginals.push(Assignment::new(vars, values));
            }
        }
        // Conditionals P(a=v | b=w) over every ordered attribute pair,
        // values cycled deterministically.
        let mut conditionals = Vec::new();
        for a in 0..schema.len() {
            for b in 0..schema.len() {
                if a == b {
                    continue;
                }
                let va = (a + b) % schema.cardinality(a).expect("in schema");
                let vb = b % schema.cardinality(b).expect("in schema");
                conditionals.push((Assignment::single(a, va), Assignment::single(b, vb)));
            }
        }
        // Order-3 probes (above the default cutoff of 2): cycled cells of
        // every attribute triple.
        let mut above_cutoff = Vec::new();
        for (i, vars) in schema.all_vars().subsets_of_size(3).into_iter().enumerate() {
            let cell = (i * 17) % schema.cell_count();
            above_cutoff.push(Assignment::project(vars, &schema.cell_values(cell)));
        }
        Self { label, joint, lattice, marginals, conditionals, above_cutoff }
    }

    /// The workload's display label (`paper_3x2x2`, …).
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Number of probes per category: `(marginals, conditionals, fallback)`.
    pub fn probe_counts(&self) -> (usize, usize, usize) {
        (self.marginals.len(), self.conditionals.len(), self.above_cutoff.len())
    }

    /// One marginal probability through the lattice-first path the serve
    /// layer uses: lookup when covered, stride walk otherwise.
    #[inline]
    fn lattice_first(&self, a: &Assignment) -> f64 {
        match self.lattice.probability(a) {
            Some(p) => p,
            None => self.joint.probability(a),
        }
    }

    /// All marginal probes through the lattice (the fast path).
    pub fn marginals_lattice(&self) -> f64 {
        self.marginals.iter().map(|a| self.lattice.probability(a).expect("covered")).sum()
    }

    /// All marginal probes through the dense-joint stride walk.
    pub fn marginals_stride(&self) -> f64 {
        self.marginals.iter().map(|a| self.joint.probability(a)).sum()
    }

    /// All conditional probes through the lattice: evidence, merged and
    /// prior each one lookup (the serve read path's Bayes' identity).
    pub fn conditionals_lattice(&self) -> f64 {
        self.conditionals
            .iter()
            .map(|(target, evidence)| {
                let denominator = self.lattice.probability(evidence).expect("covered");
                let merged = target.merge(evidence).expect("disjoint probes");
                let joint = self.lattice.probability(&merged).expect("covered");
                let prior = self.lattice.probability(target).expect("covered");
                if denominator > 0.0 {
                    joint / denominator + prior
                } else {
                    prior
                }
            })
            .sum()
    }

    /// All conditional probes through the stride walk.
    pub fn conditionals_stride(&self) -> f64 {
        self.conditionals
            .iter()
            .map(|(target, evidence)| {
                let denominator = self.joint.probability(evidence);
                let merged = target.merge(evidence).expect("disjoint probes");
                let joint = self.joint.probability(&merged);
                let prior = self.joint.probability(target);
                if denominator > 0.0 {
                    joint / denominator + prior
                } else {
                    prior
                }
            })
            .sum()
    }

    /// The mixed batch — marginals, conditionals and above-cutoff probes —
    /// through the lattice-first path (fallback included, as served).
    pub fn batch_mix_lattice(&self) -> f64 {
        let mut total = self.marginals.iter().map(|a| self.lattice_first(a)).sum::<f64>()
            + self.conditionals_lattice();
        total += self.above_cutoff.iter().map(|a| self.lattice_first(a)).sum::<f64>();
        total
    }

    /// The mixed batch entirely through the stride walk.
    pub fn batch_mix_stride(&self) -> f64 {
        let mut total = self.marginals_stride() + self.conditionals_stride();
        total += self.above_cutoff.iter().map(|a| self.joint.probability(a)).sum::<f64>();
        total
    }

    /// Correctness gate for the bench (runs in CI smoke mode too): the two
    /// paths agree per probe to 1e-12, and above-cutoff probes really do
    /// miss the lattice.
    pub fn assert_paths_agree(&self) {
        for a in &self.marginals {
            let fast = self.lattice.probability(a).expect("covered marginal probe");
            let slow = self.joint.probability(a);
            assert!(
                (fast - slow).abs() <= 1e-12,
                "{}: lattice diverged on {a:?}: {fast} vs {slow}",
                self.label
            );
        }
        for (target, evidence) in &self.conditionals {
            let merged = target.merge(evidence).expect("disjoint probes");
            for probe in [target, evidence, &merged] {
                let fast = self.lattice.probability(probe).expect("covered conditional probe");
                let slow = self.joint.probability(probe);
                assert!(
                    (fast - slow).abs() <= 1e-12,
                    "{}: lattice diverged on {probe:?}: {fast} vs {slow}",
                    self.label
                );
            }
        }
        for a in &self.above_cutoff {
            assert_eq!(
                self.lattice.probability(a),
                None,
                "{}: order-3 probe unexpectedly covered",
                self.label
            );
        }
        let mix_fast = self.batch_mix_lattice();
        let mix_slow = self.batch_mix_stride();
        assert!(
            (mix_fast - mix_slow).abs() <= 1e-9,
            "{}: batch mixes diverged: {mix_fast} vs {mix_slow}",
            self.label
        );
    }
}

// ---------------------------------------------------------------------------
// X8 — wide-schema workloads (the `wide_schema` bench)
// ---------------------------------------------------------------------------

/// The dense side of a [`WideWorkload`]: only built where the joint is
/// small enough to materialise (the pre-factored serve path).
#[derive(Debug)]
struct DenseSide {
    model: LogLinearModel,
    joint: JointDistribution,
    lattice: MarginalLattice,
}

/// A factored-vs-dense workload at one schema width.
///
/// Fits the same maxent problem (first-order constraints plus a handful of
/// pairwise ones) with the factored kernel and — where the joint is small
/// enough — the dense CSR kernel, then evaluates the serve read mix two
/// ways:
///
/// * **factored**: lattice hit when covered, [`FactorGraph`] elimination on
///   a miss — the wide-snapshot read path;
/// * **dense**: lattice hit when covered, dense-joint stride walk on a miss
///   — the read path before factored evaluation existed, and the one that
///   simply cannot exist above the dense ceiling.
///
/// The 20-attribute constructor has no dense side at all: its joint
/// (2^20 cells) is past the default ceiling, which is the point.
#[derive(Debug)]
pub struct WideWorkload {
    label: &'static str,
    criteria: ConvergenceCriteria,
    constraints: ConstraintSet,
    model: LogLinearModel,
    graph: FactorGraph,
    lattice: MarginalLattice,
    dense: Option<DenseSide>,
    /// Order ≤ 2 probes, all covered by the lattice.
    covered: Vec<Assignment>,
    /// Order-3 probes, all of which miss the lattice (the fallback).
    fallback: Vec<Assignment>,
}

impl WideWorkload {
    /// The memo's 3-attribute survey schema (12 cells).
    pub fn paper() -> Self {
        Self::from_counts("paper_3x2x2", &[3, 2, 2])
    }

    /// 4 attributes, 144 cells — the mid-size acceptance point.
    pub fn medium() -> Self {
        Self::from_counts("medium_4x4x3x3", &[4, 4, 3, 3])
    }

    /// 4 attributes, 480 cells — the large acceptance point.
    pub fn large() -> Self {
        Self::from_counts("large_6x5x4x4", &[6, 5, 4, 4])
    }

    /// 8 binary attributes (256 cells): both kernels still run.
    pub fn wide8() -> Self {
        Self::from_wide("wide_2pow8", 8, 2000)
    }

    /// 12 binary attributes (4096 cells): both kernels still run.
    pub fn wide12() -> Self {
        Self::from_wide("wide_2pow12", 12, 2000)
    }

    /// 20 binary attributes (2^20 cells): past the dense ceiling, so the
    /// workload is factored-only — the dense side would be a megacell
    /// allocation per snapshot.
    pub fn wide20() -> Self {
        Self::from_wide("wide_2pow20", 20, 500)
    }

    fn from_counts(label: &'static str, cards: &[usize]) -> Self {
        let schema = Schema::uniform(cards).expect("schema valid").into_shared();
        let counts = synthetic_counts(&schema, 11);
        let table = ContingencyTable::from_counts(Arc::clone(&schema), counts).expect("valid");
        Self::build(label, &table)
    }

    fn from_wide(label: &'static str, attributes: usize, samples: u64) -> Self {
        let experiment = WideExperiment::generate(attributes, 2, 4, 5.0, &mut seeded_rng(31));
        let table = experiment.sample_table(samples, &mut seeded_rng(32));
        Self::build(label, &table)
    }

    fn build(label: &'static str, table: &ContingencyTable) -> Self {
        let schema = table.shared_schema();
        let criteria = ConvergenceCriteria::new().with_tolerance(1e-13).with_max_iterations(5000);

        // First-order constraints plus a ring of pairwise ones, so the
        // factored problem has real (but bounded-width) structure.
        let mut constraints = ConstraintSet::first_order_from_table(table).expect("valid table");
        for attr in 0..schema.len().min(4) {
            let next = (attr + 1) % schema.len();
            let assignment = Assignment::from_pairs([(attr.min(next), 0), (attr.max(next), 0)]);
            constraints.add_from_table(table, assignment).expect("pair in schema");
        }

        let (model, report) = Solver::new(criteria)
            .with_dense_ceiling(0)
            .fit(&constraints)
            .expect("factored fit succeeds");
        assert!(report.converged, "{label}: factored kernel must converge");
        let graph = FactorGraph::from_model(&model);
        let lattice = MarginalLattice::build_factored(&graph, pka_maxent::DEFAULT_LATTICE_ORDER);

        // The dense side only exists below the default ceiling (all sizes
        // here except 2^20), fitted by the CSR kernel as before this PR.
        let dense = (schema.cell_count() <= pka_maxent::DEFAULT_DENSE_CEILING).then(|| {
            let (dense_model, dense_report) =
                Solver::new(criteria).fit(&constraints).expect("dense fit succeeds");
            assert!(dense_report.converged, "{label}: dense kernel must converge");
            let joint = dense_model.to_joint();
            let lattice = MarginalLattice::build(&joint, pka_maxent::DEFAULT_LATTICE_ORDER);
            DenseSide { model: dense_model, joint, lattice }
        });

        // Probes: every order-1 cell, order-2 cells over a bounded varset
        // sample, and order-3 fallback probes that miss the lattice.
        let mut covered = Vec::new();
        for vars in schema.all_vars().subsets_of_size(1) {
            for values in schema.configurations(vars) {
                covered.push(Assignment::new(vars, values));
            }
        }
        for vars in schema.all_vars().subsets_of_size(2).into_iter().take(64) {
            for values in schema.configurations(vars) {
                covered.push(Assignment::new(vars, values));
            }
        }
        let mut fallback = Vec::new();
        for (i, vars) in schema.all_vars().subsets_of_size(3).into_iter().take(24).enumerate() {
            let values: Vec<usize> = vars
                .iter()
                .enumerate()
                .map(|(pos, attr)| (i + pos) % schema.cardinality(attr).expect("in schema"))
                .collect();
            fallback.push(Assignment::new(vars, values));
        }

        Self { label, criteria, constraints, model, graph, lattice, dense, covered, fallback }
    }

    /// The workload's display label (`wide_2pow20`, …).
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Whether a dense side exists (false only past the dense ceiling).
    pub fn has_dense(&self) -> bool {
        self.dense.is_some()
    }

    /// Probe counts: `(covered, fallback)`.
    pub fn probe_counts(&self) -> (usize, usize) {
        (self.covered.len(), self.fallback.len())
    }

    /// Every covered (order ≤ 2) probe through the factored snapshot's
    /// lattice.  The tables were built by elimination instead of dense
    /// summation, but a lookup is a lookup — this is the head-to-head for
    /// the "factored path within 2× of the lattice" acceptance point.
    pub fn covered_factored(&self) -> f64 {
        self.covered.iter().map(|a| self.lattice.probability(a).expect("covered probe")).sum()
    }

    /// Every covered probe through the dense snapshot's lattice; `None`
    /// past the ceiling.
    pub fn covered_dense(&self) -> Option<f64> {
        let side = self.dense.as_ref()?;
        Some(self.covered.iter().map(|a| side.lattice.probability(a).expect("covered")).sum())
    }

    /// Every fallback (order-3, uncovered) probe by variable elimination —
    /// what a lattice miss costs on a factored snapshot.
    pub fn fallback_factored(&self) -> f64 {
        self.fallback.iter().map(|a| self.graph.probability(a)).sum()
    }

    /// Every fallback probe by the dense-joint stride walk — what a miss
    /// cost before this PR; `None` past the ceiling, where no dense joint
    /// exists to walk.
    pub fn fallback_dense(&self) -> Option<f64> {
        let side = self.dense.as_ref()?;
        Some(self.fallback.iter().map(|a| side.joint.probability(a)).sum())
    }

    /// One factored fit from scratch (what a wide refit pays).
    pub fn fit_factored(&self) -> SolveReport {
        let (_, report) = Solver::new(self.criteria)
            .with_dense_ceiling(0)
            .fit(&self.constraints)
            .expect("factored fit succeeds");
        report
    }

    /// One dense CSR fit from scratch; `None` past the ceiling.
    pub fn fit_dense(&self) -> Option<SolveReport> {
        self.dense.as_ref()?;
        let (_, report) = Solver::new(self.criteria).fit(&self.constraints).expect("dense fit");
        Some(report)
    }

    /// Largest per-cell gap between the factored and dense fixed points;
    /// `None` past the ceiling (nothing to compare against).
    pub fn max_fixed_point_delta(&self) -> Option<f64> {
        let side = self.dense.as_ref()?;
        let factored = self.model.dense_probabilities();
        let dense = side.model.dense_probabilities();
        Some(factored.iter().zip(&dense).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max))
    }

    /// Correctness gate (runs in CI smoke mode too): wherever both paths
    /// run they agree ≤ 1e-9 per probe and at the fixed point, and the
    /// fallback probes really do miss the lattice.
    pub fn assert_paths_agree(&self) {
        for a in &self.fallback {
            assert_eq!(
                self.lattice.probability(a),
                None,
                "{}: order-3 probe unexpectedly covered",
                self.label
            );
        }
        let Some(side) = self.dense.as_ref() else {
            // Factored-only: the mix must still be well-formed probability
            // mass.
            let total = self.covered_factored() + self.fallback_factored();
            assert!(total.is_finite() && total >= 0.0, "{}: broken factored mix", self.label);
            return;
        };
        for a in self.covered.iter().chain(&self.fallback) {
            let factored = match self.lattice.probability(a) {
                Some(p) => p,
                None => self.graph.probability(a),
            };
            let dense = match side.lattice.probability(a) {
                Some(p) => p,
                None => side.joint.probability(a),
            };
            assert!(
                (factored - dense).abs() <= 1e-9,
                "{}: paths diverged on {a:?}: {factored} vs {dense}",
                self.label
            );
        }
        let delta = self.max_fixed_point_delta().expect("dense side exists");
        assert!(delta <= 1e-9, "{}: fixed points diverged by {delta}", self.label);
    }
}

// ---------------------------------------------------------------------------
// X5 — constraint-selection ablation (MML vs chi-square vs G-test)
// ---------------------------------------------------------------------------

/// One row of the ablation: which cells each selection rule promotes on the
/// same data.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Selection rule name.
    pub rule: &'static str,
    /// Constraints promoted (order ≥ 2), in promotion order.
    pub selected: Vec<Assignment>,
}

/// Experiment X5: run the memo's message-length selection and the classical
/// χ²/G-test selections (at `alpha`) on the same table, restricted to second
/// order, and report what each promoted.
pub fn ablation_selection(table: &ContingencyTable, alpha: f64) -> Vec<AblationRow> {
    let mml = Acquisition::new(AcquisitionConfig::new().with_max_order(2))
        .run(table)
        .expect("acquisition succeeds");
    let mml_selected: Vec<Assignment> =
        mml.knowledge_base.significant_constraints().iter().map(|c| c.assignment.clone()).collect();

    let chi = Chi2Miner::new(alpha, SelectionRule::ChiSquare, 2)
        .run(table)
        .expect("miner succeeds")
        .1
        .into_iter()
        .map(|m| m.assignment)
        .collect();
    let g = Chi2Miner::new(alpha, SelectionRule::GTest, 2)
        .run(table)
        .expect("miner succeeds")
        .1
        .into_iter()
        .map(|m| m.assignment)
        .collect();

    vec![
        AblationRow { rule: "minimum-message-length", selected: mml_selected },
        AblationRow { rule: "chi-square", selected: chi },
        AblationRow { rule: "g-test", selected: g },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_matches_the_embedded_counts() {
        let t = fig1_contingency();
        assert_eq!(t.total(), smoking::TOTAL);
        assert_eq!(t.counts(), smoking::table().counts());
    }

    #[test]
    fn fig2_produces_all_marginals() {
        let t = smoking::table();
        let marginals = fig2_marginals(&t);
        // 3 first-order + 3 second-order + the grand total.
        assert_eq!(marginals.len(), 7);
        assert!(marginals.iter().all(|m| m.sum() == smoking::TOTAL));
    }

    #[test]
    fn eq57_fit_is_the_independence_model() {
        let t = smoking::table();
        let (model, report) = eq57_initial_model(&t);
        assert!(report.converged);
        let p = model.probability(&Assignment::from_pairs([(0, 0), (1, 0)]));
        assert!((p - (1290.0 / 3428.0) * (433.0 / 3428.0)).abs() < 1e-9);
    }

    #[test]
    fn table1_has_sixteen_rows_and_the_memo_verdicts() {
        let t = smoking::table();
        let round = table1_significance(&t);
        assert_eq!(round.evaluations.len(), 16);
        // The memo's strongly significant cells (m2 − m1 around −10 or
        // below) all live in the AB and AC tables; the BC table contributes
        // at most the marginal BC_12 row (m2 − m1 = −0.21 in the memo).
        let mut by_delta: Vec<_> = round.evaluations.iter().collect();
        by_delta.sort_by(|a, b| a.delta.partial_cmp(&b.delta).unwrap());
        let bc = VarSet::from_indices([1, 2]);
        for strong in by_delta.iter().take(3) {
            assert!(strong.significant);
            assert_ne!(strong.assignment.vars(), bc, "a BC cell ranked in the top three");
        }
        // BC_11 is more than 3 sd out yet not significant (the memo's point).
        let bc11 = round
            .evaluations
            .iter()
            .find(|e| e.assignment == Assignment::from_pairs([(1, 0), (2, 0)]))
            .unwrap();
        assert!(!bc11.significant);
    }

    #[test]
    fn table2_trace_converges_to_the_constraint() {
        let t = smoking::table();
        let report = table2_iteration(&t, 1e-3);
        assert!(report.converged);
        assert!(report.iterations <= 20);
        assert!(!report.trace.is_empty());
    }

    #[test]
    fn recovery_improves_with_sample_size() {
        let small = recovery_experiment(300, 6.0, 2, 42);
        let large = recovery_experiment(20_000, 6.0, 2, 42);
        assert!(large.varset_recovery >= small.varset_recovery);
        assert!(large.varset_recovery > 0.0);
    }

    #[test]
    fn baseline_comparison_has_expected_shape() {
        let rows = baseline_comparison(4000, 1000, 7);
        assert_eq!(rows.len(), 3);
        let get = |name: &str| rows.iter().find(|r| r.method == name).unwrap();
        let maxent = get("maxent-acquisition");
        let independence = get("independence");
        // The acquired model must beat the independence baseline on both
        // divergence from the truth and held-out likelihood.
        assert!(maxent.kl_from_truth < independence.kl_from_truth);
        assert!(maxent.held_out_log_loss <= independence.held_out_log_loss + 1e-9);
        assert!(maxent.extra_parameters > 0);
        assert_eq!(independence.extra_parameters, 0);
    }

    #[test]
    fn ablation_rules_agree_on_the_strong_structure() {
        let t = smoking::table();
        let rows = ablation_selection(&t, 0.001);
        assert_eq!(rows.len(), 3);
        let mml = &rows[0];
        assert!(!mml.selected.is_empty());
        // Every rule finds at least one constraint involving smoking (A).
        for row in &rows {
            assert!(
                row.selected.iter().any(|a| a.vars().contains(0)),
                "rule {} found nothing involving smoking",
                row.rule
            );
        }
    }

    #[test]
    fn scaling_workload_shapes() {
        let t = scaling_workload(4, 3, 2000, 3);
        assert_eq!(t.schema().len(), 4);
        assert_eq!(t.total(), 2000);
        let _found = scaling_acquisition(&t);
    }

    #[test]
    fn query_eval_workload_paths_agree() {
        let w = QueryEvalWorkload::paper();
        w.assert_paths_agree();
        let (marginals, conditionals, fallback) = w.probe_counts();
        // 3 first-order tables (3+2+2 cells) + 3 second-order (6+6+4).
        assert_eq!(marginals, 23);
        assert_eq!(conditionals, 6);
        assert_eq!(fallback, 1);
        // The summed answers are finite and positive.
        assert!(w.marginals_lattice() > 0.0);
        assert!(w.batch_mix_lattice().is_finite());
    }

    #[test]
    fn sweep_workload_scenarios_run_and_agree() {
        let w = SweepWorkload::paper();
        w.assert_kernels_agree();
        let mut cache = IncidenceCache::new();
        let primed = w.warm_refit_fast(&mut cache);
        assert!(primed.converged);
        let before = cache.stats();
        let steady = w.warm_refit_fast(&mut cache);
        assert!(steady.converged);
        assert_eq!(cache.stats().rebuilds, before.rebuilds, "steady refit must not rebuild");
        assert!(cache.stats().full_hits > before.full_hits, "steady refit must hit the cache");
        let promotion = w.promotion_refit_fast(&mut cache);
        assert!(promotion.converged);
        assert_eq!(cache.stats().extensions, before.extensions + 1, "promotion extends the CSR");
        // The warm refit really does work (the perturbed batch shifted the
        // targets) — the steady-state scenario the bench times is never a
        // trivial zero-sweep early return.
        assert!(steady.iterations >= 1);
    }
}
