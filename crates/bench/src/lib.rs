//! # pka-bench
//!
//! The experiment harness: one function per table/figure of NASA TM-88224
//! plus the extension experiments of DESIGN.md.  The Criterion benchmarks in
//! `benches/` time these functions; the `reproduce` binary prints their
//! results side by side with the numbers printed in the memo
//! (EXPERIMENTS.md records the comparison).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

pub use experiments::*;
