//! Regenerates every table and figure of NASA TM-88224 plus the extension
//! experiments, printing measured values next to the memo's printed numbers.
//!
//! ```text
//! cargo run -p pka-bench --bin reproduce            # everything
//! cargo run -p pka-bench --bin reproduce -- table1  # one artefact
//! ```
//!
//! Valid selectors: `fig1`, `fig2`, `eq57`, `table1`, `table2`, `x1`, `x2`,
//! `x3`, `x5` (the scaling experiment X4 is timing-only and lives in
//! `cargo bench`).

use pka_contingency::{display, Assignment, VarSet};
use pka_core::report;
use pka_datagen::smoking;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    if want("fig1") {
        fig1();
    }
    if want("fig2") {
        fig2();
    }
    if want("eq57") {
        eq57();
    }
    if want("table1") {
        table1();
    }
    if want("table2") {
        table2();
    }
    if want("x1") {
        x1_full_acquisition();
    }
    if want("x2") {
        x2_recovery();
    }
    if want("x3") {
        x3_baselines();
    }
    if want("x5") {
        x5_ablation();
    }
}

fn heading(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

fn fig1() {
    heading("Figure 1 — smoking/cancer survey contingency table (N = 3428)");
    let table = pka_bench::fig1_contingency();
    println!("{}", display::render_cells(&table));
    println!("total N = {} (paper: 3428)", table.total());
}

fn fig2() {
    heading("Figure 2 — marginal counts");
    let table = smoking::table();
    println!("Figure 2c (smoking x cancer):");
    println!("{}", display::render_two_way(&table, smoking::SMOKING, smoking::CANCER));
    println!("paper values: 240/1050, 93/1040, 100/905, totals 1290/1133/1005 and 433/2995");
    println!("\nsmoking x family-history:");
    println!("{}", display::render_two_way(&table, smoking::SMOKING, smoking::FAMILY_HISTORY));
    println!("\ncancer x family-history:");
    println!("{}", display::render_two_way(&table, smoking::CANCER, smoking::FAMILY_HISTORY));
}

fn eq57() {
    heading("Eqs. 48-62 — first-order probabilities, initial a-values, independence predictions");
    let table = smoking::table();
    let (model, report) = pka_bench::eq57_initial_model(&table);
    println!("first-order fit converged in {} sweeps", report.iterations);
    println!("\nfirst-order probabilities (paper Eq. 48-56: .38/.33/.29, .13/.87, .52/.48):");
    let schema = table.schema();
    for attr in 0..schema.len() {
        for value in 0..schema.cardinality(attr).unwrap() {
            let a = Assignment::single(attr, value);
            println!(
                "  P[{}] = {:.3} (empirical {:.3})",
                a.describe(schema),
                model.probability(&a),
                table.frequency(&a)
            );
        }
    }
    println!("\nindependence predictions (paper Table 1 column 1):");
    for (pairs, paper) in [
        ([(0usize, 0usize), (1usize, 0usize)], 0.048),
        ([(0, 0), (1, 1)], 0.329),
        ([(1, 0), (2, 0)], 0.065),
        ([(0, 0), (2, 0)], 0.195),
        ([(0, 0), (2, 1)], 0.181),
    ] {
        let a = Assignment::from_pairs(pairs);
        println!("  P[{}] = {:.3} (paper {:.3})", a.describe(schema), model.probability(&a), paper);
    }
}

fn table1() {
    heading("Table 1 — significance of the second-order cells");
    let table = smoking::table();
    let round = pka_bench::table1_significance(&table);
    println!("{}", report::render_table1(table.schema(), &round));
    println!("paper reference (m2-m1): AB_11 -11.57, AB_12 +1.75, AB_21 -4.74, AB_22 +3.83,");
    println!("  AB_31 +2.44, AB_32 +4.97, BC_11 +0.59, BC_12 -0.21, BC_21 +4.77, BC_22 +4.62,");
    println!("  AC_11 -10.54, AC_12 -9.95, AC_21 +2.87, AC_22 +2.63, AC_31 -0.64, AC_32 -1.49");
}

fn table2() {
    heading("Table 2 — iterative a-value computation for the N^AC_12 constraint");
    let table = smoking::table();
    let solve = pka_bench::table2_iteration(&table, 1e-3);
    println!("{}", report::render_table2(table.schema(), &solve));
    println!("paper reference: the hand iteration of Table 2 converges in ~7 passes;");
    println!("the fitted p^AC_12 approaches 750/3428 = 0.219 (the b-row of the memo's table).");
}

fn x1_full_acquisition() {
    heading("X1 — full acquisition on the paper survey");
    let table = smoking::table();
    let outcome = pka_bench::full_acquisition(&table);
    println!("{}", report::render_summary(&outcome.knowledge_base));
    println!("discovery order:");
    for (i, round) in outcome.trace.rounds.iter().enumerate() {
        if let Some(selected) = &round.selected {
            println!(
                "  {}. order {} cell {} (m2-m1 = {:+.2})",
                i + 1,
                round.order,
                selected.describe(table.schema()),
                round.selected_delta.unwrap_or(f64::NAN)
            );
        }
    }
    println!("\nexample queries:");
    let kb = &outcome.knowledge_base;
    for (target, evidence) in [
        (vec![("cancer", "yes")], vec![("smoking", "smoker")]),
        (vec![("cancer", "yes")], vec![("smoking", "non-smoker")]),
        (vec![("cancer", "yes")], vec![("smoking", "smoker"), ("family-history", "yes")]),
        (vec![("family-history", "yes")], vec![("smoking", "smoker")]),
    ] {
        let p = kb.conditional_by_names(&target, &evidence).expect("query evaluates");
        println!("  P({target:?} | {evidence:?}) = {p:.4}");
    }
    println!("\ninduced rules (top 10 by lift):");
    let rules =
        pka_core::induce_rules(kb, &pka_core::RuleInductionConfig::default()).expect("rules");
    for rule in rules.iter().take(10) {
        println!("  {}", rule.format(kb.schema()));
    }
}

fn x2_recovery() {
    heading("X2 — recovery of planted interactions vs sample size");
    println!(
        "{:>8} {:>16} {:>16} {:>16} {:>12}",
        "N", "cell recovery", "varset recovery", "false positives", "discovered"
    );
    for &n in &[250u64, 1_000, 4_000, 16_000, 64_000] {
        // Average over a few seeds to smooth sampling noise.
        let seeds = [11u64, 23, 47, 81, 99];
        let mut cell = 0.0;
        let mut varset = 0.0;
        let mut fp = 0usize;
        let mut found = 0usize;
        for &seed in &seeds {
            let point = pka_bench::recovery_experiment(n, 6.0, 2, seed);
            cell += point.cell_recovery;
            varset += point.varset_recovery;
            fp += point.false_positives;
            found += point.discovered;
        }
        let k = seeds.len() as f64;
        println!(
            "{:>8} {:>16.2} {:>16.2} {:>16.1} {:>12.1}",
            n,
            cell / k,
            varset / k,
            fp as f64 / k,
            found as f64 / k
        );
    }
}

fn x3_baselines() {
    heading("X3 — model quality vs baselines (survey simulator)");
    let rows = pka_bench::baseline_comparison(4_000, 1_000, 7);
    println!(
        "{:<22} {:>18} {:>16} {:>14}",
        "method", "held-out log-loss", "KL from truth", "extra params"
    );
    for r in &rows {
        println!(
            "{:<22} {:>18.4} {:>16.4} {:>14}",
            r.method, r.held_out_log_loss, r.kl_from_truth, r.extra_parameters
        );
    }
    println!("\nclassification of `cancer` (accuracy):");
    for (method, acc) in pka_bench::classification_comparison(4_000, 2_000, 7) {
        println!("  {method:<22} {acc:.4}");
    }
}

fn x5_ablation() {
    heading("X5 — constraint selection: minimum message length vs chi-square vs G-test");
    let table = smoking::table();
    let rows = pka_bench::ablation_selection(&table, 0.001);
    let schema = table.schema();
    for row in &rows {
        println!("{} ({} constraints):", row.rule, row.selected.len());
        for a in &row.selected {
            let vars: Vec<usize> = a.vars().iter().collect();
            let _ = VarSet::from_indices(vars);
            println!("  {}", a.describe(schema));
        }
    }
}
