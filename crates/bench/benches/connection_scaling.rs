//! Connection scaling of the reactor front end: active-client query
//! throughput while 0 / 256 / 1024 / 4096 idle connections sit parked on
//! the event loops, plus connect→query→close churn at each fan-in level.
//!
//! The thread-per-connection server this replaces spent one OS thread per
//! parked connection, which put a practical ceiling of ~380 sources on
//! fabric fan-in (BENCH_fabric.json).  The claim measured here is that the
//! reactor holds thousands of idle connections on `loop_shards + 2`
//! threads with active-client throughput independent of the parked count.
//!
//! Set `PKA_NET_BENCH_MAX_IDLE` to clamp the largest parked count on
//! fd-limited machines (each parked connection costs two descriptors in
//! this single-process harness).  Smoke mode (`--test` or
//! `PKA_BENCH_SMOKE=1`) clamps to 256 on its own.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pka_datagen::sampler::{sample_dataset, seeded_rng};
use pka_serve::{protocol, LineClient, ServeConfig, Server, ServerHandle};
use pka_stream::{RefreshPolicy, StreamConfig};
use serde::Value;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Queries per pipelined batch (matches `serve_throughput` so the zero-idle
/// numbers are directly comparable).
const PIPELINE_DEPTH: usize = 256;
/// Active client connections driving load while the rest sit parked.
const ACTIVE_THREADS: usize = 2;
/// Parked-connection counts swept by the fan-in benchmark.
const IDLE_COUNTS: [usize; 4] = [0, 256, 1024, 4096];

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test") || std::env::var_os("PKA_BENCH_SMOKE").is_some()
}

/// Largest parked count this run is allowed to open.
fn max_idle() -> usize {
    match std::env::var("PKA_NET_BENCH_MAX_IDLE") {
        Ok(v) => v.parse().expect("PKA_NET_BENCH_MAX_IDLE must be a count"),
        Err(_) => {
            if smoke_mode() {
                256
            } else {
                usize::MAX
            }
        }
    }
}

fn boot_server() -> ServerHandle {
    let joint = pka_datagen::survey::ground_truth();
    let dataset = sample_dataset(&joint, 20_000, &mut seeded_rng(7));
    let schema = dataset.shared_schema();
    // Idle reaping off so parked connections stay parked for the whole
    // sweep; the cap stays above the largest count plus the active set.
    let config = ServeConfig::new()
        .with_stream(StreamConfig::new().with_shard_count(4).with_policy(RefreshPolicy::Manual))
        .with_idle_timeout_ms(0)
        .with_max_connections(8192);
    let server = Server::start(schema, config).expect("server start");
    let mut client = LineClient::connect(server.addr()).expect("loader connect");
    let rows: Vec<Vec<usize>> = dataset.samples().iter().map(|s| s.values().to_vec()).collect();
    for chunk in rows.chunks(5_000) {
        client.ingest(chunk).expect("seed ingest");
    }
    client.refresh().expect("seed refresh");
    server
}

/// One name-based query shape: target pairs and evidence pairs.
type QueryShape =
    (&'static [(&'static str, &'static str)], &'static [(&'static str, &'static str)]);

fn query_params(k: usize) -> Value {
    let shapes: [QueryShape; 3] = [
        (&[("cancer", "yes")], &[("smoking", "smoker")]),
        (&[("condition", "present")], &[]),
        (&[("cancer", "no")], &[("exposure", "exposed"), ("age", "over-60")]),
    ];
    let (target, evidence) = shapes[k % 3];
    let to_obj = |pairs: &[(&str, &str)]| {
        Value::Object(
            pairs.iter().map(|&(a, v)| (a.to_string(), Value::Str(v.to_string()))).collect(),
        )
    };
    protocol::object([("target", to_obj(target)), ("evidence", to_obj(evidence))])
}

/// Runs `batches` pipelined query batches on each of `threads` client
/// connections; returns total wall time.
fn drive_clients(addr: SocketAddr, threads: usize, batches: u64) -> Duration {
    let start = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = LineClient::connect(addr).expect("bench connect");
                let requests: Vec<(&str, Value)> =
                    (0..PIPELINE_DEPTH).map(|k| ("query", query_params(k))).collect();
                for _ in 0..batches {
                    let responses = client.pipeline(&requests).expect("pipeline");
                    for response in responses {
                        response.expect("query failed");
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("bench client panicked");
    }
    start.elapsed()
}

/// Tops the parked set up to `target` connections and waits until the
/// reactor has adopted every one of them.
fn park_idle(server: &ServerHandle, parked: &mut Vec<TcpStream>, target: usize) {
    let metrics = server.net_metrics();
    let start = Instant::now();
    while parked.len() < target {
        // Loopback connects can transiently fail while the accept queue
        // drains a burst; retry briefly rather than giving up.
        let deadline = Instant::now() + Duration::from_secs(5);
        let stream = loop {
            match TcpStream::connect(server.addr()) {
                Ok(stream) => break stream,
                Err(err) => {
                    assert!(Instant::now() < deadline, "connect kept failing: {err}");
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        };
        parked.push(stream);
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while (metrics.open() as usize) < target {
        assert!(
            Instant::now() < deadline,
            "reactor adopted only {} of {target} parked connections",
            metrics.open()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    if target > 0 {
        eprintln!(
            "  (parked {target} idle connections in {:?}; shard occupancy {:?})",
            start.elapsed(),
            metrics.shard_open()
        );
    }
}

/// Active pipelined-query throughput and connect churn at each fan-in
/// level: the numbers should be flat across the sweep.
fn idle_fanin(c: &mut Criterion) {
    let server = boot_server();
    let addr = server.addr();
    let clamp = max_idle();
    let mut parked: Vec<TcpStream> = Vec::new();

    let mut group = c.benchmark_group("connection_scaling");
    for &idle in IDLE_COUNTS.iter() {
        if idle > clamp {
            eprintln!("  (skipping idle={idle}: above PKA_NET_BENCH_MAX_IDLE/smoke clamp {clamp})");
            continue;
        }
        park_idle(&server, &mut parked, idle);

        let batches_per_iter = 2u64;
        group.throughput(Throughput::Elements(
            ACTIVE_THREADS as u64 * batches_per_iter * PIPELINE_DEPTH as u64,
        ));
        group.bench_with_input(BenchmarkId::new("pipelined_queries", idle), &idle, |b, _| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += drive_clients(addr, ACTIVE_THREADS, batches_per_iter);
                }
                total
            })
        });

        // Accept-path latency under the same fan-in: connect, one query
        // round trip, close — the cost a newly joining fabric source pays.
        group.throughput(Throughput::Elements(32));
        group.bench_with_input(BenchmarkId::new("connect_churn", idle), &idle, |b, _| {
            b.iter(|| {
                for k in 0..32 {
                    let mut client = LineClient::connect(addr).expect("churn connect");
                    let result = client.call("query", query_params(k)).expect("churn query");
                    assert!(result.get("probability").is_some());
                }
            })
        });
    }
    group.finish();

    drop(parked);
    server.shutdown().expect("shutdown");
}

criterion_group!(benches, idle_fanin);
criterion_main!(benches);
