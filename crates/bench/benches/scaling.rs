//! Experiment X4 — scaling of the acquisition procedure with the number of
//! attributes, attribute cardinality and sample size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);

    // Sweep the number of attributes at fixed cardinality and sample size.
    for &attributes in &[3usize, 4, 5, 6] {
        let table = pka_bench::scaling_workload(attributes, 3, 5_000, 13);
        group.bench_with_input(BenchmarkId::new("attributes", attributes), &table, |b, table| {
            b.iter(|| black_box(pka_bench::scaling_acquisition(table)))
        });
    }

    // Sweep the attribute cardinality.
    for &cardinality in &[2usize, 3, 4, 5] {
        let table = pka_bench::scaling_workload(4, cardinality, 5_000, 13);
        group.bench_with_input(BenchmarkId::new("cardinality", cardinality), &table, |b, table| {
            b.iter(|| black_box(pka_bench::scaling_acquisition(table)))
        });
    }

    // Sweep the sample size (cost is dominated by the candidate screening,
    // so this should be nearly flat).
    for &n in &[1_000u64, 10_000, 100_000] {
        let table = pka_bench::scaling_workload(4, 3, n, 13);
        group.bench_with_input(BenchmarkId::new("samples", n), &table, |b, table| {
            b.iter(|| black_box(pka_bench::scaling_acquisition(table)))
        });
    }
    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
