//! Graceful degradation under overload: write goodput, shed rate, queue
//! depth and read-path p99 while an open-loop ingest storm offers 1× / 2×
//! / 4× the server's measured write capacity.
//!
//! The claim measured here (BENCH_overload.json at the repository root):
//! when offered load exceeds capacity, the bounded engine queue converts
//! the excess into cheap structured `server-overloaded` refusals instead
//! of latency — goodput stays pinned near capacity, the queue-depth gauge
//! never escapes its cap, and the wait-free read path keeps its latency.
//!
//! The storm is open-loop (paced senders do not slow down when refused),
//! so offered load is a property of the generator, not of the server's
//! backpressure — the only honest way to measure shedding.

use criterion::{criterion_group, criterion_main, Criterion};
use pka_datagen::sampler::{sample_dataset, seeded_rng};
use pka_serve::{protocol, LineClient, ServeConfig, Server, ServerHandle};
use pka_stream::{RefreshPolicy, StreamConfig};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bounded write-class queue: small relative to the sender count, so the
/// storm actually contends for slots (each connection holds at most one
/// deferred request, so depth can only reach the cap when more
/// connections than slots race).
const QUEUE_CAP: usize = 8;
/// Storm connections (each is one paced sender + one reader thread).
const SENDERS: usize = 32;
/// Rows per `ingest` request; goodput is measured in rows/s.
const ROWS_PER_REQUEST: usize = 16;

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test") || std::env::var_os("PKA_BENCH_SMOKE").is_some()
}

fn boot_server() -> ServerHandle {
    let joint = pka_datagen::survey::ground_truth();
    let seed_rows = if smoke_mode() { 2_000 } else { 20_000 };
    let dataset = sample_dataset(&joint, seed_rows, &mut seeded_rng(7));
    let schema = dataset.shared_schema();
    // Periodic refits give ingest a realistic service cost (the engine is
    // the bottleneck, not JSON parsing), so the bounded queue is what is
    // being measured, not the line framer.
    let config = ServeConfig::new()
        .with_stream(StreamConfig::new().with_policy(RefreshPolicy::EveryNTuples(512)))
        .with_engine_queue_cap(QUEUE_CAP)
        .with_max_connections(256);
    let server = Server::start(schema, config).expect("server start");
    let mut client = LineClient::connect(server.addr()).expect("loader connect");
    let rows: Vec<Vec<usize>> = dataset.samples().iter().map(|s| s.values().to_vec()).collect();
    for chunk in rows.chunks(5_000) {
        client.ingest(chunk).expect("seed ingest");
    }
    client.refresh().expect("seed refresh");
    server
}

fn ingest_line(id: u64, rows: &[Vec<usize>]) -> String {
    let rows_value = Value::Array(
        rows.iter()
            .map(|row| Value::Array(row.iter().map(|&v| Value::U64(v as u64)).collect()))
            .collect(),
    );
    let mut line = protocol::request_line(id, "ingest", &protocol::object([("rows", rows_value)]));
    line.push('\n');
    line
}

/// One load level's outcome, all counts in requests unless noted.
#[derive(Debug, Default)]
struct LevelReport {
    offered: u64,
    accepted: u64,
    overloaded: u64,
    other_errors: u64,
    elapsed: Duration,
    max_queue_depth: u64,
    read_p99: Duration,
    read_samples: usize,
}

impl LevelReport {
    fn offered_rps(&self) -> f64 {
        self.offered as f64 / self.elapsed.as_secs_f64()
    }

    fn goodput_rows_per_s(&self) -> f64 {
        (self.accepted * ROWS_PER_REQUEST as u64) as f64 / self.elapsed.as_secs_f64()
    }

    fn shed_fraction(&self) -> f64 {
        self.overloaded as f64 / self.offered.max(1) as f64
    }
}

/// p99 of a latency sample (max for tiny smoke samples).
fn p99(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples
        .get(samples.len().saturating_sub(1).min(samples.len() * 99 / 100))
        .copied()
        .unwrap_or(Duration::ZERO)
}

/// The probing reader's cadence.  The reader is a *light* observer — a
/// probe every 2 ms, sleeping in between — not a throughput client: a
/// hot-looping reader would both be its own dominant load and measure an
/// artificially fast cache-warm / never-descheduled round trip.  Idle
/// and under-storm latency are measured at the same cadence so the
/// degradation ratio compares like with like.
const READ_PROBE_INTERVAL: Duration = Duration::from_millis(1);

/// Measures read-path (query) round-trip p99 on an otherwise-idle
/// server: the median of three measurement rounds, because a single
/// round's p99 swings ~2x with scheduler/timer noise on a small box and
/// the degradation ratio is only as stable as its denominator.
fn idle_read_p99(addr: SocketAddr) -> Duration {
    let mut client = LineClient::connect(addr).expect("read connect");
    let samples = if smoke_mode() { 50 } else { 700 };
    let mut rounds: Vec<Duration> = (0..3)
        .map(|_| {
            let mut latencies = Vec::with_capacity(samples);
            for _ in 0..samples {
                let start = Instant::now();
                client.query(&[("cancer", "yes")], &[("smoking", "smoker")]).expect("idle query");
                latencies.push(start.elapsed());
                std::thread::sleep(READ_PROBE_INTERVAL);
            }
            p99(&mut latencies)
        })
        .collect();
    rounds.sort_unstable();
    rounds[1]
}

/// Drives `SENDERS` open-loop connections at `rate` ingest requests/s
/// total (unpaced when `None`) for `duration`, while a reader thread
/// samples query latency and a stats sampler tracks the queue-depth
/// high-water mark.  Every request is drained and classified before the
/// level returns, so counts always reconcile.
fn run_level(
    addr: SocketAddr,
    rate: Option<f64>,
    duration: Duration,
    row_seed: u64,
) -> LevelReport {
    let joint = pka_datagen::survey::ground_truth();
    let dataset =
        sample_dataset(&joint, (SENDERS * ROWS_PER_REQUEST) as u64, &mut seeded_rng(row_seed));
    let pool: Vec<Vec<usize>> = dataset.samples().iter().map(|s| s.values().to_vec()).collect();

    let stop = Arc::new(AtomicBool::new(false));

    // Queue-depth high-water sampler (control-class stats stay admissible
    // under overload by design, so this works *during* the storm).
    let max_depth = Arc::new(AtomicU64::new(0));
    let sampler = {
        let stop = Arc::clone(&stop);
        let max_depth = Arc::clone(&max_depth);
        std::thread::spawn(move || {
            let mut client = LineClient::connect(addr).expect("sampler connect");
            while !stop.load(Ordering::Relaxed) {
                let depth = client.server_stats().expect("sampler stats").engine_queue_depth;
                max_depth.fetch_max(depth, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    // Concurrent reader probing query p99 while the storm runs, at the
    // same light cadence as the idle baseline.
    let reader = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = LineClient::connect(addr).expect("reader connect");
            let mut latencies = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let start = Instant::now();
                client.query(&[("cancer", "yes")], &[("smoking", "smoker")]).expect("storm query");
                latencies.push(start.elapsed());
                std::thread::sleep(READ_PROBE_INTERVAL);
            }
            latencies
        })
    };

    let per_sender_interval = rate.map(|r| Duration::from_secs_f64(SENDERS as f64 / r.max(1.0)));
    let level_start = Instant::now();
    let senders: Vec<_> = (0..SENDERS)
        .map(|s| {
            let rows: Vec<Vec<usize>> =
                pool.iter().cycle().skip(s).take(ROWS_PER_REQUEST).cloned().collect();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("sender connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut writer = stream.try_clone().expect("clone");
                let line = ingest_line(s as u64, &rows);

                // Classify answers on a second thread so the writer's
                // pacing never depends on response latency (open loop).
                // The writer half-closes when its clock runs out; the
                // server drains the pipeline, answers every request, and
                // closes — so EOF here means "all answers are in".
                let classifier = std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream);
                    let mut answer = String::new();
                    let (mut accepted, mut overloaded, mut other) = (0u64, 0u64, 0u64);
                    loop {
                        answer.clear();
                        if reader.read_line(&mut answer).expect("storm read") == 0 {
                            break;
                        }
                        if answer.contains("\"ok\":true") {
                            accepted += 1;
                        } else if answer.contains("server-overloaded") {
                            overloaded += 1;
                        } else {
                            other += 1;
                        }
                    }
                    (accepted, overloaded, other)
                });

                // Stagger senders across the pacing interval so the level
                // offers a steady stream, not a thundering herd per tick.
                let start = Instant::now();
                let mut next = start
                    + per_sender_interval
                        .map(|i| i.mul_f64(s as f64 / SENDERS as f64))
                        .unwrap_or(Duration::ZERO);
                let mut written = 0u64;
                while start.elapsed() < duration {
                    if let Some(interval) = per_sender_interval {
                        let now = Instant::now();
                        if now < next {
                            std::thread::sleep(next - now);
                        }
                        next += interval;
                    }
                    writer.write_all(line.as_bytes()).expect("storm write");
                    written += 1;
                }
                writer.shutdown(std::net::Shutdown::Write).expect("half-close");
                let (accepted, overloaded, other) = classifier.join().expect("classifier");
                assert_eq!(
                    accepted + overloaded + other,
                    written,
                    "every request must be answered before the server closes"
                );
                (written, accepted, overloaded, other)
            })
        })
        .collect();

    let mut report = LevelReport::default();
    for sender in senders {
        let (written, accepted, overloaded, other) = sender.join().expect("sender panicked");
        report.offered += written;
        report.accepted += accepted;
        report.overloaded += overloaded;
        report.other_errors += other;
    }
    report.elapsed = level_start.elapsed();
    stop.store(true, Ordering::Relaxed);
    sampler.join().expect("sampler panicked");
    let mut read_latencies = reader.join().expect("reader panicked");
    report.read_samples = read_latencies.len();
    report.read_p99 = p99(&mut read_latencies);
    report.max_queue_depth = max_depth.load(Ordering::Relaxed);
    report
}

/// The sweep: idle read p99, unpaced capacity probe, then paced levels at
/// 1× / 2× / 4× of measured capacity.
fn overload_degradation(_c: &mut Criterion) {
    let server = boot_server();
    let addr = server.addr();
    let duration = if smoke_mode() { Duration::from_millis(200) } else { Duration::from_secs(4) };

    let idle_p99 = idle_read_p99(addr);
    eprintln!("\noverload_degradation (queue cap {QUEUE_CAP}, {SENDERS} senders, {ROWS_PER_REQUEST} rows/request)");
    eprintln!("  idle read p99: {:.3} ms", idle_p99.as_secs_f64() * 1e3);

    // Capacity probe: unpaced open loop — goodput here IS the capacity.
    let probe = run_level(addr, None, duration, 11);
    assert_eq!(probe.other_errors, 0, "capacity probe saw non-shed errors: {probe:?}");
    let capacity_rps = probe.accepted as f64 / probe.elapsed.as_secs_f64();
    eprintln!(
        "  capacity probe: offered {:.0} req/s, goodput {:.0} rows/s, shed {:.1}%, depth max {}",
        probe.offered_rps(),
        probe.goodput_rows_per_s(),
        probe.shed_fraction() * 100.0,
        probe.max_queue_depth,
    );

    let mut goodput_1x = 0.0f64;
    for multiplier in [1u32, 2, 4] {
        let level = run_level(
            addr,
            Some(capacity_rps * f64::from(multiplier)),
            duration,
            13 + u64::from(multiplier),
        );
        assert_eq!(level.other_errors, 0, "storm at {multiplier}x saw non-shed errors: {level:?}");
        // The gauge counts both classes; allow the sampler's own control
        // command on top of the write cap.
        assert!(
            level.max_queue_depth <= (QUEUE_CAP + 2) as u64,
            "queue depth {} escaped cap {QUEUE_CAP} at {multiplier}x",
            level.max_queue_depth
        );
        if multiplier == 1 {
            goodput_1x = level.goodput_rows_per_s();
        }
        eprintln!(
            "  {multiplier}x: offered {:.0} req/s, goodput {:.0} rows/s ({:.0}% of 1x), shed {:.1}%, depth max {}, read p99 {:.3} ms ({:.2}x idle, {} samples)",
            level.offered_rps(),
            level.goodput_rows_per_s(),
            100.0 * level.goodput_rows_per_s() / goodput_1x.max(1.0),
            level.shed_fraction() * 100.0,
            level.max_queue_depth,
            level.read_p99.as_secs_f64() * 1e3,
            level.read_p99.as_secs_f64() / idle_p99.as_secs_f64().max(1e-9),
            level.read_samples,
        );
    }

    server.shutdown().expect("shutdown");
}

criterion_group!(benches, overload_degradation);
criterion_main!(benches);
