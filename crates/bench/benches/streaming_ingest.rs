//! Streaming-engine benchmarks: sharded ingestion throughput vs one-shot
//! dataset construction, and warm- vs cold-started refit cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pka_contingency::{Dataset, Sample};
use pka_core::{Acquisition, AcquisitionConfig};
use pka_datagen::sampler::{sample_dataset, seeded_rng};
use pka_stream::{ingest, RefreshPolicy, StreamConfig, StreamingEngine};
use std::hint::black_box;
use std::sync::Arc;

const STREAM_LEN: u64 = 200_000;

fn survey_samples(n: u64) -> Dataset {
    let joint = pka_datagen::survey::ground_truth();
    sample_dataset(&joint, n, &mut seeded_rng(42))
}

/// Tuples/sec: one-shot sequential construction vs sharded parallel
/// tabulation of the same batch.
fn ingest_throughput(c: &mut Criterion) {
    let dataset = survey_samples(STREAM_LEN);
    let schema = dataset.shared_schema();
    let samples: Vec<Sample> = dataset.samples().to_vec();

    let mut group = c.benchmark_group("streaming_ingest");
    group.throughput(Throughput::Elements(STREAM_LEN));

    group.bench_function("one_shot_dataset_to_table", |b| b.iter(|| black_box(dataset.to_table())));

    for shards in [1, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("sharded_tabulate", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let parts = ingest::tabulate_sharded(&schema, &samples, shards).unwrap();
                    black_box(ingest::merge_shards(&schema, parts).unwrap())
                })
            },
        );
    }
    group.finish();
}

/// Warm- vs cold-started refit latency on a growing stream: the engine has
/// fitted a prefix, a new batch arrives, and the knowledge base must be
/// refreshed over the union.
fn refit_latency(c: &mut Criterion) {
    let dataset = survey_samples(30_000);
    let (prefix, growth) = dataset.split_every(4, 0); // 75 % fitted, 25 % new

    let acquisition = Acquisition::new(AcquisitionConfig::new());
    let prefix_outcome = acquisition.run(&prefix.to_table()).unwrap();

    let mut full = prefix.clone();
    full.merge_from(&growth).unwrap();
    let full_table = full.to_table();

    let mut group = c.benchmark_group("streaming_refit");
    group.sample_size(10);
    group.bench_function("cold_refit_full_data", |b| {
        b.iter(|| black_box(acquisition.run(&full_table).unwrap()))
    });
    group.bench_function("warm_refit_full_data", |b| {
        b.iter(|| {
            black_box(
                acquisition.run_warm_started(&full_table, &prefix_outcome.knowledge_base).unwrap(),
            )
        })
    });
    group.finish();

    // Solver-iteration comparison (printed once; the wall-clock numbers
    // above are what criterion measures).
    let warm = acquisition.run_warm_started(&full_table, &prefix_outcome.knowledge_base).unwrap();
    let cold = acquisition.run(&full_table).unwrap();
    eprintln!(
        "  refit solver iterations: warm {} vs cold {}",
        warm.trace.total_solver_iterations(),
        cold.trace.total_solver_iterations()
    );
}

/// End-to-end engine throughput: batched stream with policy-driven refits.
fn engine_stream(c: &mut Criterion) {
    let dataset = survey_samples(50_000);
    let schema = dataset.shared_schema();
    let batches: Vec<Dataset> = dataset.split_chunks(50);

    let mut group = c.benchmark_group("streaming_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(50_000));
    group.bench_function("stream_50_batches_dirty10pct", |b| {
        b.iter(|| {
            let config = StreamConfig::new()
                .with_shard_count(4)
                .with_policy(RefreshPolicy::DirtyFraction(0.1));
            let mut engine = StreamingEngine::new(Arc::clone(&schema), config).unwrap();
            for batch in &batches {
                engine.ingest_dataset(batch).unwrap();
            }
            black_box(engine.refit_count())
        })
    });
    group.finish();
}

criterion_group!(benches, ingest_throughput, refit_latency, engine_stream);
criterion_main!(benches);
