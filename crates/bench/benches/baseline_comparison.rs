//! Experiment X3 — model quality of the acquired maximum-entropy model
//! against the empirical and independence baselines, plus a classification
//! comparison against naive Bayes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_comparison");
    group.sample_size(10);
    group.bench_function("density_estimation_4000_train", |b| {
        b.iter(|| black_box(pka_bench::baseline_comparison(4_000, 1_000, 7)))
    });
    group.bench_function("classification_4000_train", |b| {
        b.iter(|| black_box(pka_bench::classification_comparison(4_000, 2_000, 7)))
    });
    group.finish();

    // Print the comparison table and gate on the expected ordering.
    let rows = pka_bench::baseline_comparison(4_000, 1_000, 7);
    println!("\ndensity estimation on the survey simulator (4000 train / 1000 test):");
    println!(
        "{:<22} {:>18} {:>16} {:>14}",
        "method", "held-out log-loss", "KL from truth", "extra params"
    );
    for r in &rows {
        println!(
            "{:<22} {:>18.4} {:>16.4} {:>14}",
            r.method, r.held_out_log_loss, r.kl_from_truth, r.extra_parameters
        );
    }
    let maxent = rows.iter().find(|r| r.method == "maxent-acquisition").unwrap();
    let independence = rows.iter().find(|r| r.method == "independence").unwrap();
    assert!(maxent.kl_from_truth < independence.kl_from_truth);

    let accuracy = pka_bench::classification_comparison(4_000, 2_000, 7);
    println!("\nclassification of `cancer` (accuracy):");
    for (method, acc) in &accuracy {
        println!("  {method:<22} {acc:.4}");
    }
}

criterion_group!(benches, baselines);
criterion_main!(benches);
