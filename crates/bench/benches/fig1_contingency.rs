//! Experiment F1 — Figure 1 of the memo: building the smoking/cancer
//! contingency table from raw per-respondent samples.
//!
//! Regenerates the 3×2×2 table (N = 3428) and times the Appendix-A
//! conversion path (samples → attribute tuples → cell counts).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig1(c: &mut Criterion) {
    let dataset = pka_datagen::smoking::dataset();

    let mut group = c.benchmark_group("fig1_contingency");
    group.bench_function("tabulate_3428_samples", |b| b.iter(|| black_box(dataset.to_table())));
    group.bench_function("expand_and_tabulate", |b| {
        b.iter(|| {
            let table = pka_bench::fig1_contingency();
            black_box(table.total())
        })
    });
    group.finish();

    // Correctness gate: the regenerated table must match Figure 1 exactly.
    let table = pka_bench::fig1_contingency();
    assert_eq!(table.counts(), pka_datagen::smoking::table().counts());
    assert_eq!(table.total(), 3428);
}

criterion_group!(benches, fig1);
criterion_main!(benches);
