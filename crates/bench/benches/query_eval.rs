//! Query evaluation, lattice vs stride walk, at three schema sizes.
//!
//! Three mixes per schema — all first-/second-order marginals, conditional
//! queries via Bayes' identity (evidence + merged + prior per question, the
//! serve read path's arithmetic) and a mixed batch that includes
//! above-cutoff probes taking the stride-walk fallback — each timed for
//! the snapshot-resident marginal lattice (one index computation + lookup
//! per covered probe) and for the dense-joint stride walk the serve layer
//! used before the lattice existed.  The measured numbers are snapshotted
//! in `BENCH_query.json` at the repository root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pka_bench::QueryEvalWorkload;
use std::hint::black_box;

fn query_eval(c: &mut Criterion) {
    let workloads =
        [QueryEvalWorkload::paper(), QueryEvalWorkload::medium(), QueryEvalWorkload::large()];
    let mut group = c.benchmark_group("query_eval");
    for w in &workloads {
        group.bench_with_input(BenchmarkId::new("marginal/lattice", w.label()), w, |b, w| {
            b.iter(|| black_box(w.marginals_lattice()))
        });
        group.bench_with_input(BenchmarkId::new("marginal/stride", w.label()), w, |b, w| {
            b.iter(|| black_box(w.marginals_stride()))
        });

        group.bench_with_input(BenchmarkId::new("conditional/lattice", w.label()), w, |b, w| {
            b.iter(|| black_box(w.conditionals_lattice()))
        });
        group.bench_with_input(BenchmarkId::new("conditional/stride", w.label()), w, |b, w| {
            b.iter(|| black_box(w.conditionals_stride()))
        });

        group.bench_with_input(BenchmarkId::new("batch_mix/lattice", w.label()), w, |b, w| {
            b.iter(|| black_box(w.batch_mix_lattice()))
        });
        group.bench_with_input(BenchmarkId::new("batch_mix/stride", w.label()), w, |b, w| {
            b.iter(|| black_box(w.batch_mix_stride()))
        });
    }
    group.finish();

    // Correctness gate: the two paths agree to 1e-12 per probe on every
    // workload, and above-cutoff probes really exercise the fallback (runs
    // in smoke mode too, so CI checks it).
    for w in &workloads {
        w.assert_paths_agree();
    }
}

criterion_group!(benches, query_eval);
criterion_main!(benches);
