//! Experiment F5/F6 — Appendix A of the memo: converting raw samples to
//! attribute-tuple form and summing them into the contingency table.

use criterion::{criterion_group, criterion_main, Criterion};
use pka_contingency::builder;
use std::hint::black_box;

fn fig6(c: &mut Criterion) {
    let table = pka_datagen::smoking::table();
    let dataset = pka_datagen::smoking::dataset();

    let mut group = c.benchmark_group("fig6_tuples");
    group.bench_function("expand_table_to_samples", |b| {
        b.iter(|| black_box(builder::expand(&table)))
    });
    group.bench_function("tabulate_samples", |b| b.iter(|| black_box(builder::tabulate(&dataset))));
    group.finish();

    // Correctness gate: the round trip is lossless.
    let roundtrip = builder::tabulate(&builder::expand(&table));
    assert_eq!(roundtrip.counts(), table.counts());
}

criterion_group!(benches, fig6);
criterion_main!(benches);
