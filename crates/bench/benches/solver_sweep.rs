//! The iterative-scaling kernel, fast vs reference, at three schema sizes.
//!
//! Three scenarios per schema — cold fit, steady-state warm refit (the
//! `pka-serve` hot path: same constraint cells, targets shifted by a new
//! batch) and promotion refit (one constraint appended to a cached
//! prefix) — each timed for the deferred-normalization CSR kernel and for
//! the retained eagerly-normalised reference solver.  The measured numbers
//! are snapshotted in `BENCH_solver.json` at the repository root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pka_bench::SweepWorkload;
use pka_maxent::IncidenceCache;
use std::hint::black_box;

fn solver_sweep(c: &mut Criterion) {
    let workloads = [SweepWorkload::paper(), SweepWorkload::medium(), SweepWorkload::large()];
    let mut group = c.benchmark_group("solver_sweep");
    for w in &workloads {
        group.bench_with_input(BenchmarkId::new("cold_fit/kernel", w.label()), w, |b, w| {
            b.iter(|| black_box(w.cold_fit_fast()))
        });
        group.bench_with_input(BenchmarkId::new("cold_fit/reference", w.label()), w, |b, w| {
            b.iter(|| black_box(w.cold_fit_reference()))
        });

        // Prime the cache outside the timed region: the steady state of a
        // streaming engine is a pure full hit.
        let mut cache = IncidenceCache::new();
        let _ = w.warm_refit_fast(&mut cache);
        group.bench_with_input(BenchmarkId::new("warm_refit/kernel", w.label()), w, |b, w| {
            b.iter(|| black_box(w.warm_refit_fast(&mut cache)))
        });
        group.bench_with_input(BenchmarkId::new("warm_refit/reference", w.label()), w, |b, w| {
            b.iter(|| black_box(w.warm_refit_reference()))
        });

        // Zero-sweep refit of an already-satisfied set: isolates the per-fit
        // fixed costs (incidence, init, feasibility) the CSR cache and the
        // scatter build eliminate.
        let mut hit_cache = IncidenceCache::new();
        let _ = w.rezero_refit_fast(&mut hit_cache);
        group.bench_with_input(BenchmarkId::new("refit_hit/kernel", w.label()), w, |b, w| {
            b.iter(|| black_box(w.rezero_refit_fast(&mut hit_cache)))
        });
        group.bench_with_input(BenchmarkId::new("refit_hit/reference", w.label()), w, |b, w| {
            b.iter(|| black_box(w.rezero_refit_reference()))
        });

        group.bench_with_input(BenchmarkId::new("promotion_refit/kernel", w.label()), w, |b, w| {
            b.iter(|| {
                // Each iteration re-plays the real promotion sequence:
                // cached prefix (warm set) → one appended constraint.
                let mut cache = IncidenceCache::new();
                let _ = w.warm_refit_fast(&mut cache);
                black_box(w.promotion_refit_fast(&mut cache))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("promotion_refit/reference", w.label()),
            w,
            |b, w| {
                b.iter(|| {
                    let _ = w.warm_refit_reference();
                    black_box(w.promotion_refit_reference())
                })
            },
        );
    }
    group.finish();

    // Correctness gate: the timed kernels must agree to 1e-12 per cell on
    // every workload (runs in smoke mode too, so CI exercises it).
    for w in &workloads {
        w.assert_kernels_agree();
    }
}

criterion_group!(benches, solver_sweep);
criterion_main!(benches);
