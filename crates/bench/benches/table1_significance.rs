//! Experiment T1 — Table 1 of the memo: the minimum-message-length
//! significance screen of all 16 second-order cells against the
//! independence model.

use criterion::{criterion_group, criterion_main, Criterion};
use pka_contingency::Assignment;
use std::hint::black_box;

fn table1(c: &mut Criterion) {
    let table = pka_datagen::smoking::table();

    let mut group = c.benchmark_group("table1_significance");
    group.bench_function("score_all_second_order_cells", |b| {
        b.iter(|| black_box(pka_bench::table1_significance(&table)))
    });
    group.finish();

    // Correctness gates mirroring the memo's printed verdicts.
    let round = pka_bench::table1_significance(&table);
    assert_eq!(round.evaluations.len(), 16);
    let find = |pairs: [(usize, usize); 2]| {
        round
            .evaluations
            .iter()
            .find(|e| e.assignment == Assignment::from_pairs(pairs))
            .expect("cell present")
            .clone()
    };
    // AB_11: observed 240, ~6 sd, strongly significant (memo: -11.57).
    let ab11 = find([(0, 0), (1, 0)]);
    assert!(ab11.significant && ab11.delta < -8.0);
    // AC_11 and AC_12: strongly significant (memo: -10.54 / -9.95).
    assert!(find([(0, 0), (2, 0)]).significant);
    assert!(find([(0, 0), (2, 1)]).significant);
    // BC_11: > 3 sd but NOT significant (memo: +0.59).
    let bc11 = find([(1, 0), (2, 0)]);
    assert!(!bc11.significant && bc11.z_score > 3.0);
}

criterion_group!(benches, table1);
criterion_main!(benches);
