//! Query-server throughput: N client threads hammering a live `pka-serve`
//! instance — idle, and during continuous ingest with policy-triggered
//! warm refits landing mid-measurement (which readers, being wait-free,
//! must not notice).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pka_datagen::sampler::{sample_dataset, seeded_rng};
use pka_serve::{protocol, LineClient, ServeConfig, Server, ServerHandle};
use pka_stream::{RefreshPolicy, StreamConfig};
use serde::Value;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Queries per pipelined batch: one write + one read pass per batch keeps
/// syscall overhead amortised the way a real high-throughput client would.
const PIPELINE_DEPTH: usize = 256;

fn boot_server(policy: RefreshPolicy) -> ServerHandle {
    let joint = pka_datagen::survey::ground_truth();
    let dataset = sample_dataset(&joint, 20_000, &mut seeded_rng(7));
    let schema = dataset.shared_schema();
    let config =
        ServeConfig::new().with_stream(StreamConfig::new().with_shard_count(4).with_policy(policy));
    let server = Server::start(schema, config).expect("server start");
    let mut client = LineClient::connect(server.addr()).expect("loader connect");
    let rows: Vec<Vec<usize>> = dataset.samples().iter().map(|s| s.values().to_vec()).collect();
    for chunk in rows.chunks(5_000) {
        client.ingest(chunk).expect("seed ingest");
    }
    client.refresh().expect("seed refresh");
    server
}

/// One name-based query shape: target pairs and evidence pairs.
type QueryShape =
    (&'static [(&'static str, &'static str)], &'static [(&'static str, &'static str)]);

fn query_params(k: usize) -> Value {
    // Cycle through a few distinct query shapes so the server does real
    // per-request work (parse, resolve names, evaluate, serialise).
    let shapes: [QueryShape; 3] = [
        (&[("cancer", "yes")], &[("smoking", "smoker")]),
        (&[("condition", "present")], &[]),
        (&[("cancer", "no")], &[("exposure", "exposed"), ("age", "over-60")]),
    ];
    let (target, evidence) = shapes[k % 3];
    let to_obj = |pairs: &[(&str, &str)]| {
        Value::Object(
            pairs.iter().map(|&(a, v)| (a.to_string(), Value::Str(v.to_string()))).collect(),
        )
    };
    protocol::object([("target", to_obj(target)), ("evidence", to_obj(evidence))])
}

/// One `query-batch` request carrying `PIPELINE_DEPTH` mixed queries: the
/// same work as a pipelined batch of single `query` lines, amortising the
/// envelope parse and the response line down to one each.
fn batch_params() -> Value {
    let entries: Vec<Value> = (0..PIPELINE_DEPTH).map(query_params).collect();
    protocol::object([("queries", Value::Array(entries))])
}

/// Runs `batches` single-line `query-batch` requests on each of `threads`
/// client connections; returns total wall time.  Each response is checked
/// to carry exactly `PIPELINE_DEPTH` per-entry answers.
fn drive_clients_batched(addr: SocketAddr, threads: usize, batches: u64) -> Duration {
    let start = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = LineClient::connect(addr).expect("bench connect");
                let params = batch_params();
                for _ in 0..batches {
                    let result = client.call_ref("query-batch", &params).expect("query-batch");
                    let count = result.get("count").and_then(Value::as_u64).expect("count");
                    assert_eq!(count, PIPELINE_DEPTH as u64, "short batch answer");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("bench client panicked");
    }
    start.elapsed()
}

/// Runs `batches` pipelined query batches on each of `threads` client
/// connections; returns total wall time.
fn drive_clients(addr: SocketAddr, threads: usize, batches: u64) -> Duration {
    let start = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = LineClient::connect(addr).expect("bench connect");
                let requests: Vec<(&str, Value)> =
                    (0..PIPELINE_DEPTH).map(|k| ("query", query_params(k))).collect();
                for _ in 0..batches {
                    let responses = client.pipeline(&requests).expect("pipeline");
                    for response in responses {
                        response.expect("query failed");
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("bench client panicked");
    }
    start.elapsed()
}

/// Queries/s against an idle knowledge base (no concurrent writes).
fn query_throughput(c: &mut Criterion) {
    let server = boot_server(RefreshPolicy::Manual);
    let addr = server.addr();

    let mut group = c.benchmark_group("serve_throughput");
    for threads in [1usize, 2, 4] {
        let batches_per_iter = 2u64;
        group.throughput(Throughput::Elements(
            threads as u64 * batches_per_iter * PIPELINE_DEPTH as u64,
        ));
        group.bench_with_input(
            BenchmarkId::new("pipelined_queries", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += drive_clients(addr, threads, batches_per_iter);
                    }
                    total
                })
            },
        );
    }

    // The same mixed load as one `query-batch` line per round: parse one
    // envelope and write one response line per PIPELINE_DEPTH queries
    // instead of one each — the amortisation the protocol method exists
    // for.
    for threads in [1usize, 2, 4] {
        let batches_per_iter = 2u64;
        group.throughput(Throughput::Elements(
            threads as u64 * batches_per_iter * PIPELINE_DEPTH as u64,
        ));
        group.bench_with_input(
            BenchmarkId::new("batched_queries", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += drive_clients_batched(addr, threads, batches_per_iter);
                    }
                    total
                })
            },
        );
    }

    // One request per round trip: the latency-bound lower bound a
    // non-pipelining client sees.  This is the baseline `query-batch`
    // exists to beat — the same mixed query shapes, one line each way per
    // *query* here versus one line each way per *batch* above.
    group.throughput(Throughput::Elements(64));
    group.bench_function("sequential_roundtrips", |b| {
        let mut client = LineClient::connect(addr).expect("bench connect");
        b.iter(|| {
            for k in 0..64 {
                let result = client.call("query", query_params(k)).expect("query");
                assert!(result.get("probability").is_some());
            }
        })
    });
    group.finish();
    server.shutdown().expect("shutdown");
}

/// Queries/s while a writer continuously ingests and policy-triggered warm
/// refits publish new snapshots mid-stream.
fn query_throughput_under_ingest(c: &mut Criterion) {
    let server = boot_server(RefreshPolicy::EveryNTuples(4_000));
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let joint = pka_datagen::survey::ground_truth();
            let mut rng = seeded_rng(99);
            let mut client = LineClient::connect(addr).expect("writer connect");
            let mut refits = 0u64;
            while !stop.load(Ordering::Acquire) {
                let batch = sample_dataset(&joint, 1_000, &mut rng);
                let rows: Vec<Vec<usize>> =
                    batch.samples().iter().map(|s| s.values().to_vec()).collect();
                let summary = client.ingest(&rows).expect("bench ingest");
                if summary.refit.is_some() {
                    refits += 1;
                }
            }
            refits
        })
    };

    let mut group = c.benchmark_group("serve_throughput_under_ingest");
    let batches_per_iter = 2u64;
    for threads in [2usize, 4] {
        group.throughput(Throughput::Elements(
            threads as u64 * batches_per_iter * PIPELINE_DEPTH as u64,
        ));
        group.bench_with_input(
            BenchmarkId::new("pipelined_queries", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += drive_clients(addr, threads, batches_per_iter);
                    }
                    total
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched_queries", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += drive_clients_batched(addr, threads, batches_per_iter);
                    }
                    total
                })
            },
        );
    }
    group.finish();

    stop.store(true, Ordering::Release);
    let refits = writer.join().expect("writer panicked");
    eprintln!("  (background ingest triggered {refits} warm refits during measurement)");
    server.shutdown().expect("shutdown");
}

criterion_group!(benches, query_throughput, query_throughput_under_ingest);
criterion_main!(benches);
