//! Experiment X1 — the full acquisition run (all orders, Figure 3) on the
//! memo's smoking survey, plus rule induction from the resulting knowledge
//! base.

use criterion::{criterion_group, criterion_main, Criterion};
use pka_core::{induce_rules, RuleInductionConfig};
use std::hint::black_box;

fn full_acquisition(c: &mut Criterion) {
    let table = pka_datagen::smoking::table();

    let mut group = c.benchmark_group("full_acquisition");
    group.bench_function("paper_survey_all_orders", |b| {
        b.iter(|| black_box(pka_bench::full_acquisition(&table)))
    });
    let outcome = pka_bench::full_acquisition(&table);
    group.bench_function("rule_induction", |b| {
        b.iter(|| {
            black_box(
                induce_rules(&outcome.knowledge_base, &RuleInductionConfig::default()).unwrap(),
            )
        })
    });
    group.finish();

    // Correctness gates: structure is discovered, the model honours it, and
    // the memo's headline rule is derivable.
    let kb = &outcome.knowledge_base;
    assert!(!kb.significant_constraints().is_empty());
    for constraint in kb.significant_constraints() {
        assert!((kb.probability(&constraint.assignment) - constraint.probability).abs() < 1e-6);
    }
    let p = kb
        .conditional_by_names(&[("cancer", "yes")], &[("smoking", "smoker")])
        .expect("query evaluates");
    assert!(p > 433.0 / 3428.0, "smoking should raise the cancer probability");
}

criterion_group!(benches, full_acquisition);
criterion_main!(benches);
