//! Experiment X2 — recovery of planted second-order interactions as a
//! function of sample size.
//!
//! The printed series (sample size → recovery fraction / false positives)
//! is the extension-experiment analogue of the memo's claim that the
//! procedure finds "all the observed statistically significant
//! correlations": with enough data the planted structure is recovered, with
//! little data it is (correctly) not asserted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_vs_n");
    group.sample_size(10);
    for &n in &[500u64, 2_000, 8_000, 32_000] {
        group.bench_with_input(BenchmarkId::new("acquire", n), &n, |b, &n| {
            b.iter(|| black_box(pka_bench::recovery_experiment(n, 6.0, 2, 42)))
        });
    }
    group.finish();

    // Print the curve so `cargo bench` output doubles as the experiment's
    // data series, and gate on the expected shape (recovery improves with n).
    println!("\nrecovery of 2 planted order-2 interactions (strength 6.0, seed 42):");
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "N", "cell recovery", "varset recovery", "false positives"
    );
    let mut recoveries = Vec::new();
    for &n in &[500u64, 2_000, 8_000, 32_000] {
        let point = pka_bench::recovery_experiment(n, 6.0, 2, 42);
        println!(
            "{:>8} {:>16.2} {:>16.2} {:>16}",
            point.n, point.cell_recovery, point.varset_recovery, point.false_positives
        );
        recoveries.push(point.varset_recovery);
    }
    assert!(
        recoveries.last().unwrap() >= recoveries.first().unwrap(),
        "recovery should not degrade with more data"
    );
    assert!(*recoveries.last().unwrap() > 0.0);
}

criterion_group!(benches, recovery);
criterion_main!(benches);
