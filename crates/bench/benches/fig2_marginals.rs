//! Experiment F2 — Figure 2 of the memo: marginal counts of the smoking
//! survey (Eqs. 1–6).

use criterion::{criterion_group, criterion_main, Criterion};
use pka_contingency::VarSet;
use std::hint::black_box;

fn fig2(c: &mut Criterion) {
    let table = pka_datagen::smoking::table();

    let mut group = c.benchmark_group("fig2_marginals");
    group.bench_function("all_marginals", |b| {
        b.iter(|| black_box(pka_bench::fig2_marginals(&table)))
    });
    group.bench_function("single_two_way_marginal", |b| {
        b.iter(|| black_box(table.marginal(VarSet::from_indices([0, 1]))))
    });
    group.finish();

    // Correctness gate: the Figure 2c numbers.
    let ab = table.marginal(VarSet::from_indices([0, 1]));
    assert_eq!(ab.count_by_values(&[0, 0]), 240);
    assert_eq!(ab.count_by_values(&[0, 1]), 1050);
    assert_eq!(ab.count_by_values(&[1, 0]), 93);
    assert_eq!(ab.count_by_values(&[2, 1]), 905);
    assert_eq!(table.marginal(VarSet::singleton(0)).count_by_values(&[0]), 1290);
}

criterion_group!(benches, fig2);
criterion_main!(benches);
