//! Experiment T2 — Table 2 of the memo: the iterative a-value computation
//! that incorporates the `N^AC_12` constraint (target probability 0.219).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn table2(c: &mut Criterion) {
    let table = pka_datagen::smoking::table();

    let mut group = c.benchmark_group("table2_iteration");
    for &tolerance in &[1e-3f64, 1e-6, 1e-10] {
        group.bench_with_input(
            BenchmarkId::new("fit_ac12_constraint", format!("tol_{tolerance:.0e}")),
            &tolerance,
            |b, &tol| b.iter(|| black_box(pka_bench::table2_iteration(&table, tol))),
        );
    }
    group.finish();

    // Correctness gate: at the memo's printed precision the iteration
    // converges in a handful of sweeps and honours the constraint.
    let report = pka_bench::table2_iteration(&table, 1e-3);
    assert!(report.converged);
    assert!(report.iterations <= 20, "took {} sweeps", report.iterations);
    let last = report.last_record().expect("trace recorded");
    let fitted_ac12 = *last.fitted.last().expect("constraint fitted");
    assert!((fitted_ac12 - 750.0 / 3428.0).abs() < 2e-3, "fitted {fitted_ac12}");
}

criterion_group!(benches, table2);
criterion_main!(benches);
