//! Experiment E1 — Eqs. 48–62 of the memo: the first-order fit whose
//! a-values reproduce the marginal probabilities and whose predictions are
//! the independence model.

use criterion::{criterion_group, criterion_main, Criterion};
use pka_contingency::Assignment;
use std::hint::black_box;

fn eq57(c: &mut Criterion) {
    let table = pka_datagen::smoking::table();

    let mut group = c.benchmark_group("eq57_initial_a");
    group.bench_function("first_order_fit", |b| {
        b.iter(|| black_box(pka_bench::eq57_initial_model(&table)))
    });
    group.finish();

    // Correctness gate: Eq. 61/62 independence predictions.
    let (model, report) = pka_bench::eq57_initial_model(&table);
    assert!(report.converged);
    let pa = 1290.0 / 3428.0;
    let pb = 433.0 / 3428.0;
    let pc = 1780.0 / 3428.0;
    assert!((model.cell_probability(&[0, 0, 0]) - pa * pb * pc).abs() < 1e-9);
    assert!((model.probability(&Assignment::from_pairs([(0, 0), (1, 0)])) - pa * pb).abs() < 1e-9);
}

criterion_group!(benches, eq57);
criterion_main!(benches);
