//! Fabric fan-in and propagation: cumulative shard-push throughput into a
//! live coordinator, snapshot propagation latency from a coordinator
//! refresh to the version being visible on a replica, and end-to-end
//! convergence of a full mini-fabric (2 ingest nodes -> coordinator -> 1
//! replica).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pka_datagen::sampler::{sample_dataset, seeded_rng};
use pka_fabric::{
    Coordinator, CoordinatorConfig, IngestNode, IngestNodeConfig, Replica, ReplicaConfig,
    RetryPolicy,
};
use pka_serve::{FabricRole, LineClient, ServeConfig, Server, ServerHandle};
use pka_stream::{CountShard, RefreshPolicy, StreamConfig};
use std::time::{Duration, Instant};

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn survey_rows(n: usize, seed: u64) -> Vec<Vec<usize>> {
    let joint = pka_datagen::survey::ground_truth();
    let dataset = sample_dataset(&joint, n as u64, &mut seeded_rng(seed));
    dataset.samples().iter().map(|s| s.values().to_vec()).collect()
}

fn manual_coordinator() -> ServerHandle {
    let schema = pka_datagen::survey::ground_truth().shared_schema();
    let config = ServeConfig::new()
        .with_role(FabricRole::Coordinator)
        .with_stream(StreamConfig::new().with_policy(RefreshPolicy::Manual));
    Server::start(schema, config).expect("coordinator start")
}

/// Pushes/s and tuples/s of the `shard-push` fan-in path: one source
/// shipping its cumulative shard after every local delta of `delta_rows`
/// tuples, exactly as an ingest-node pusher does.
fn shard_push_throughput(c: &mut Criterion) {
    let server = manual_coordinator();
    let addr = server.addr();
    let schema = pka_datagen::survey::ground_truth().shared_schema();

    let mut group = c.benchmark_group("fabric_shard_push");
    for delta_rows in [64usize, 512, 4096] {
        let pushes_per_iter = if smoke_mode() { 2u64 } else { 32 };
        group.throughput(Throughput::Elements(delta_rows as u64 * pushes_per_iter));
        group.bench_with_input(
            BenchmarkId::new("cumulative_delta", delta_rows),
            &delta_rows,
            |b, &delta_rows| {
                let mut client = LineClient::connect(addr).expect("bench connect");
                let rows = survey_rows(delta_rows, 11);
                // Each benchmarked source gets its own name, so cumulative
                // seq restarts at zero and counts never saturate another
                // run's high-water mark.
                let mut run = 0u64;
                b.iter_custom(|iters| {
                    run += 1;
                    let source = format!("bench-node-{delta_rows}-{run}");
                    let mut shard = CountShard::new(schema.clone());
                    let start = Instant::now();
                    for _ in 0..iters {
                        for _ in 0..pushes_per_iter {
                            shard.record_batch(&rows).expect("record delta");
                            let summary = client
                                .shard_push(&source, shard.tuple_count(), &shard)
                                .expect("shard push");
                            assert!(summary.applied, "cumulative push must apply");
                            assert_eq!(summary.delta_tuples, delta_rows as u64);
                        }
                    }
                    start.elapsed()
                });
            },
        );
    }
    group.finish();
    server.shutdown().expect("shutdown");
}

/// Wall time from a coordinator `refresh` returning to the new version
/// being served by a push-fed replica (pump interval + snapshot-sync +
/// replica apply).
fn snapshot_propagation(c: &mut Criterion) {
    let schema = pka_datagen::survey::ground_truth().shared_schema();
    let replica = Replica::start(schema.clone(), ReplicaConfig::new()).expect("replica start");
    let coordinator = Coordinator::start(
        schema,
        CoordinatorConfig::new()
            .with_serve(
                ServeConfig::new()
                    .with_stream(StreamConfig::new().with_policy(RefreshPolicy::Manual)),
            )
            .with_sync_interval(Duration::from_millis(2))
            .with_replica(replica.addr().to_string())
            .with_retry(RetryPolicy::fast()),
    )
    .expect("coordinator start");

    let mut writer = LineClient::connect(coordinator.addr()).expect("writer connect");
    let mut reader = LineClient::connect(replica.addr()).expect("reader connect");
    let rows = survey_rows(256, 23);

    c.bench_function("fabric_snapshot_propagation", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                writer.ingest(&rows).expect("ingest");
                let refit = writer.refresh().expect("refresh");
                let start = Instant::now();
                loop {
                    let seen = reader.snapshot_version().expect("version").unwrap_or(0);
                    if seen >= refit.version {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                total += start.elapsed();
            }
            total
        })
    });

    coordinator.shutdown().expect("coordinator shutdown");
    replica.shutdown().expect("replica shutdown");
}

/// End-to-end convergence of the full fabric: rows land on 2 ingest nodes,
/// their pushers fan the counts into the coordinator, a refresh publishes,
/// and the measurement ends when the replica serves the new version.
/// Throughput is rows/s through the whole fabric.
fn end_to_end_convergence(c: &mut Criterion) {
    let schema = pka_datagen::survey::ground_truth().shared_schema();
    let retry = RetryPolicy::fast();
    let replica = Replica::start(schema.clone(), ReplicaConfig::new().with_retry(retry.clone()))
        .expect("replica start");
    let coordinator = Coordinator::start(
        schema.clone(),
        CoordinatorConfig::new()
            .with_serve(
                ServeConfig::new()
                    .with_stream(StreamConfig::new().with_policy(RefreshPolicy::Manual)),
            )
            .with_sync_interval(Duration::from_millis(2))
            .with_replica(replica.addr().to_string())
            .with_retry(retry.clone()),
    )
    .expect("coordinator start");
    let nodes: Vec<IngestNode> = ["bench-a", "bench-b"]
        .iter()
        .map(|name| {
            IngestNode::start(
                schema.clone(),
                IngestNodeConfig::new(coordinator.addr().to_string())
                    .with_serve(ServeConfig::new().with_node_name(*name))
                    .with_push_interval(Duration::from_millis(2))
                    .with_retry(retry.clone()),
            )
            .expect("ingest node start")
        })
        .collect();

    let mut node_clients: Vec<LineClient> =
        nodes.iter().map(|n| LineClient::connect(n.addr()).expect("node connect")).collect();
    let mut coordinator_client =
        LineClient::connect(coordinator.addr()).expect("coordinator connect");
    let mut reader = LineClient::connect(replica.addr()).expect("reader connect");

    let batch = if smoke_mode() { 128usize } else { 2048 };
    let rows = survey_rows(batch, 41);
    let mut delivered = 0u64;

    let mut group = c.benchmark_group("fabric_end_to_end");
    group.throughput(Throughput::Elements(batch as u64));
    group.bench_function(BenchmarkId::new("rows_to_replica_visibility", batch), |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let start = Instant::now();
                let fan_out = node_clients.len();
                for (i, client) in node_clients.iter_mut().enumerate() {
                    let share: Vec<Vec<usize>> =
                        rows.iter().skip(i).step_by(fan_out).cloned().collect();
                    client.ingest(&share).expect("node ingest");
                }
                delivered += batch as u64;
                loop {
                    if coordinator_client.stats().expect("stats").total_ingested >= delivered {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                let refit = coordinator_client.refresh().expect("refresh");
                loop {
                    let seen = reader.snapshot_version().expect("version").unwrap_or(0);
                    if seen >= refit.version {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                total += start.elapsed();
            }
            total
        })
    });
    group.finish();

    for node in nodes {
        node.shutdown().expect("node shutdown");
    }
    replica.shutdown().expect("replica shutdown");
    coordinator.shutdown().expect("coordinator shutdown");
}

criterion_group!(benches, shard_push_throughput, snapshot_propagation, end_to_end_convergence);
criterion_main!(benches);
