//! Factored vs dense evaluation across schema widths.
//!
//! Each workload fits the same maxent problem with the factored
//! (variable-elimination) kernel and — below the dense ceiling — the CSR
//! kernel, then times covered probes (lattice lookups, factored-built vs
//! dense-built tables), fallback probes (elimination vs dense stride
//! walk), and one from-scratch fit per kernel.  The 2^20-cell workload is
//! factored-only: its dense side cannot exist, which is what the factored
//! path is for.  Measured numbers are snapshotted in `BENCH_wide.json` at
//! the repository root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pka_bench::WideWorkload;
use std::hint::black_box;

fn wide_schema(c: &mut Criterion) {
    let workloads = [
        WideWorkload::paper(),
        WideWorkload::medium(),
        WideWorkload::large(),
        WideWorkload::wide8(),
        WideWorkload::wide12(),
        WideWorkload::wide20(),
    ];

    let mut group = c.benchmark_group("wide_schema");
    group.sample_size(20);
    for w in &workloads {
        group.bench_with_input(BenchmarkId::new("covered/factored", w.label()), w, |b, w| {
            b.iter(|| black_box(w.covered_factored()))
        });
        if w.has_dense() {
            group.bench_with_input(BenchmarkId::new("covered/dense", w.label()), w, |b, w| {
                b.iter(|| black_box(w.covered_dense()))
            });
        }
        group.bench_with_input(BenchmarkId::new("fallback/factored", w.label()), w, |b, w| {
            b.iter(|| black_box(w.fallback_factored()))
        });
        if w.has_dense() {
            group.bench_with_input(BenchmarkId::new("fallback/dense", w.label()), w, |b, w| {
                b.iter(|| black_box(w.fallback_dense()))
            });
        }
        group.bench_with_input(BenchmarkId::new("fit/factored", w.label()), w, |b, w| {
            b.iter(|| black_box(w.fit_factored()))
        });
        if w.has_dense() {
            group.bench_with_input(BenchmarkId::new("fit/dense", w.label()), w, |b, w| {
                b.iter(|| black_box(w.fit_dense()))
            });
        }
    }
    group.finish();

    // Correctness gate (runs in CI smoke mode too): both paths agree ≤1e-9
    // per probe and at the fixed point wherever the dense side exists, and
    // the fallback probes really do miss the lattice.
    for w in &workloads {
        w.assert_paths_agree();
    }
}

criterion_group!(benches, wide_schema);
criterion_main!(benches);
