//! Experiment X5 — constraint-selection ablation: the memo's
//! minimum-message-length criterion vs classical per-cell χ² and G-test
//! selection on the same data.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn ablation(c: &mut Criterion) {
    let table = pka_datagen::smoking::table();

    let mut group = c.benchmark_group("ablation_tests");
    group.bench_function("mml_vs_chi2_vs_gtest", |b| {
        b.iter(|| black_box(pka_bench::ablation_selection(&table, 0.001)))
    });
    group.finish();

    // Print which cells each rule promotes and gate on the overlap.
    let rows = pka_bench::ablation_selection(&table, 0.001);
    let schema = table.schema();
    println!("\nconstraints promoted on the paper survey (alpha = 0.001 for the classical rules):");
    for row in &rows {
        println!("  {}:", row.rule);
        for a in &row.selected {
            println!("    {}", a.describe(schema));
        }
    }
    let mml = &rows[0].selected;
    assert!(!mml.is_empty());
    for row in &rows[1..] {
        // Every rule must find at least one constraint over the smoking
        // attribute — the structure genuinely present in the data.
        assert!(row.selected.iter().any(|a| a.vars().contains(0)));
    }
}

criterion_group!(benches, ablation);
criterion_main!(benches);
