//! Reactor configuration.

use serde::{Deserialize, Serialize};

/// Tuning knobs of a [`crate::Reactor`].
///
/// The derived serde impls make the config round-trippable on the wire
/// (flag files, stats dumps); [`NetConfig::normalized`] is what the
/// reactor actually runs with, so a zero or absurd value can never put a
/// loop into an unservable state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Number of event-loop shards.  Connections are assigned round-robin
    /// at accept time and stay on their shard for life.
    pub loop_shards: usize,
    /// Cap on concurrently open connections across all shards; past it the
    /// acceptor refuses new sockets with a structured `server-overloaded`
    /// line (best effort) and drops them.
    pub max_connections: usize,
    /// Idle cutoff in milliseconds: a connection with no read, write, or
    /// engine-reply progress for this long is reaped by its shard's timer
    /// wheel.  `0` disables idle sweeping.
    pub idle_timeout_ms: u64,
    /// Cap on one request line; longer lines are discarded and answered
    /// with the service's overlong response.
    pub max_line_bytes: usize,
    /// Write-buffer high-water mark in bytes.  Past it the shard stops
    /// reading (and so stops producing responses) for that connection
    /// until the peer drains; a never-reading peer therefore stalls only
    /// itself and is eventually idle-reaped.
    pub write_high_water: usize,
}

impl NetConfig {
    /// Default reactor shape: 2 loop shards, 8192 connections, 60 s idle
    /// cutoff, 1 MiB lines, 256 KiB write high-water.
    pub fn new() -> Self {
        Self::default()
    }

    /// The config the reactor actually runs with: every field clamped into
    /// its servable range (at least one shard, one connection slot, a
    /// 64-byte line cap and a 4 KiB write buffer).
    pub fn normalized(&self) -> Self {
        Self {
            loop_shards: self.loop_shards.max(1),
            max_connections: self.max_connections.max(1),
            idle_timeout_ms: self.idle_timeout_ms,
            max_line_bytes: self.max_line_bytes.max(64),
            write_high_water: self.write_high_water.max(4096),
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            loop_shards: 2,
            max_connections: 8192,
            idle_timeout_ms: 60_000,
            max_line_bytes: 1 << 20,
            write_high_water: 256 << 10,
        }
    }
}
