//! The service seam between the reactor and a protocol implementation,
//! plus the middleware chain that composes admission policy around it.

use polling::Waker;
use std::sync::mpsc;
use std::sync::Arc;

/// Identifies one connection incarnation on one shard: the slab slot plus
/// a per-slot generation bumped at every close, so a reply addressed to a
/// connection that died (and whose slot was reused) is dropped instead of
/// being delivered to the wrong peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CompletionKey {
    pub(crate) slot: usize,
    pub(crate) gen: u64,
}

/// Public identity of one connection incarnation: the owning loop shard
/// plus its slab slot and generation.  Stable for the connection's
/// lifetime, never reused (the generation bumps at close), hashable — the
/// key middleware uses for per-connection state such as rate-limit
/// buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId {
    /// The loop shard that owns the connection.
    pub shard: usize,
    /// The connection's slab slot on that shard.
    pub slot: usize,
    /// The slot's incarnation counter.
    pub gen: u64,
}

/// The route back to a paused connection for a response produced off the
/// loop thread (e.g. by an engine thread).
///
/// A service that returns [`Action::Deferred`] must eventually call
/// [`Completion::respond`] exactly once; the owning connection reads no
/// further requests until then (preserving pipelined response order).
/// Dropping a completion without responding leaks the pause until the
/// idle timeout reaps the connection, so don't.  Responding after the
/// connection died is harmless — the key no longer matches and the line
/// is discarded.
pub struct Completion {
    pub(crate) tx: mpsc::Sender<(CompletionKey, String)>,
    pub(crate) key: CompletionKey,
    pub(crate) shard: usize,
    pub(crate) waker: Arc<Waker>,
}

impl Completion {
    /// The identity of the connection this completion answers.
    pub fn conn_id(&self) -> ConnId {
        ConnId { shard: self.shard, slot: self.key.slot, gen: self.key.gen }
    }

    /// Delivers the response line (no trailing newline) to the connection
    /// and wakes its loop shard.  Callable from any thread.
    pub fn respond(self, line: String) {
        if self.tx.send((self.key, line)).is_ok() {
            let _ = self.waker.wake();
        }
    }
}

/// What the service wants done with one request line.
pub enum Action {
    /// Respond with this line (no trailing newline); keep the connection
    /// open.
    Respond(String),
    /// Respond with this line, then close the connection once the response
    /// has been flushed.
    RespondClose(String),
    /// The service kept the [`Completion`] and will respond through it
    /// later; the connection pauses (reads deregistered) until it does.
    Deferred,
}

/// A line-oriented protocol served by a [`crate::Reactor`].
///
/// `on_line` runs on a loop-shard thread and must not block: anything
/// slow (engine calls, refits) is shipped elsewhere with the
/// [`Completion`] and answered via [`Action::Deferred`].  The two
/// refusal hooks produce the structured lines the reactor itself emits
/// for its robustness policy.
pub trait LineService: Send + Sync + 'static {
    /// Handles one complete request line (terminator and trailing `\r`
    /// already stripped; may be empty — an empty line is still a request).
    fn on_line(&self, line: &[u8], completion: Completion) -> Action;

    /// Response for a request line that exceeded the configured cap (the
    /// reactor has already discarded the line; the connection stays
    /// usable).
    fn overlong_response(&self) -> String;

    /// Line written (best effort) to a socket refused at accept time
    /// because the connection cap was hit.
    fn overloaded_response(&self) -> String;

    /// Called on the loop thread when a connection closes for any reason;
    /// middleware drops per-connection state here.  The id is never
    /// reused, so a late call cannot touch a successor connection.
    fn on_close(&self, conn: ConnId) {
        let _ = conn;
    }
}

/// What one middleware layer wants done with a request line before the
/// inner service sees it.
pub enum Gate {
    /// Admit the line to the next layer (ultimately the service).
    Pass,
    /// Refuse with this response line; the line never reaches the inner
    /// service and the connection stays open.
    Refuse(String),
}

/// One composable admission hook in front of a [`LineService`].
///
/// Layers run on the loop-shard thread in chain order for every framed
/// line; the first [`Gate::Refuse`] wins and short-circuits the rest.
/// Per-connection state is keyed by [`ConnId`] and released in
/// `on_close`.
pub trait LineMiddleware: Send + Sync + 'static {
    /// Inspects one request line before the inner service.  Must not
    /// block.
    fn gate(&self, conn: ConnId, line: &[u8]) -> Gate;

    /// The connection closed; drop any state held under its id.
    fn on_close(&self, conn: ConnId) {
        let _ = conn;
    }
}

/// A [`LineService`] composed of middleware layers around an inner
/// service: the reactor sees one service, the layers see every line
/// first.
pub struct MiddlewareStack<S> {
    layers: Vec<Arc<dyn LineMiddleware>>,
    inner: S,
}

impl<S: LineService> MiddlewareStack<S> {
    /// Chains `layers` (outermost first) in front of `inner`.
    pub fn new(inner: S, layers: Vec<Arc<dyn LineMiddleware>>) -> Self {
        Self { layers, inner }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: LineService> LineService for MiddlewareStack<S> {
    fn on_line(&self, line: &[u8], completion: Completion) -> Action {
        let conn = completion.conn_id();
        for layer in &self.layers {
            match layer.gate(conn, line) {
                Gate::Pass => {}
                Gate::Refuse(response) => return Action::Respond(response),
            }
        }
        self.inner.on_line(line, completion)
    }

    fn overlong_response(&self) -> String {
        self.inner.overlong_response()
    }

    fn overloaded_response(&self) -> String {
        self.inner.overloaded_response()
    }

    fn on_close(&self, conn: ConnId) {
        for layer in &self.layers {
            layer.on_close(conn);
        }
        self.inner.on_close(conn);
    }
}
