//! The service seam between the reactor and a protocol implementation.

use polling::Waker;
use std::sync::mpsc;
use std::sync::Arc;

/// Identifies one connection incarnation on one shard: the slab slot plus
/// a per-slot generation bumped at every close, so a reply addressed to a
/// connection that died (and whose slot was reused) is dropped instead of
/// being delivered to the wrong peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CompletionKey {
    pub(crate) slot: usize,
    pub(crate) gen: u64,
}

/// The route back to a paused connection for a response produced off the
/// loop thread (e.g. by an engine thread).
///
/// A service that returns [`Action::Deferred`] must eventually call
/// [`Completion::respond`] exactly once; the owning connection reads no
/// further requests until then (preserving pipelined response order).
/// Dropping a completion without responding leaks the pause until the
/// idle timeout reaps the connection, so don't.  Responding after the
/// connection died is harmless — the key no longer matches and the line
/// is discarded.
pub struct Completion {
    pub(crate) tx: mpsc::Sender<(CompletionKey, String)>,
    pub(crate) key: CompletionKey,
    pub(crate) waker: Arc<Waker>,
}

impl Completion {
    /// Delivers the response line (no trailing newline) to the connection
    /// and wakes its loop shard.  Callable from any thread.
    pub fn respond(self, line: String) {
        if self.tx.send((self.key, line)).is_ok() {
            let _ = self.waker.wake();
        }
    }
}

/// What the service wants done with one request line.
pub enum Action {
    /// Respond with this line (no trailing newline); keep the connection
    /// open.
    Respond(String),
    /// Respond with this line, then close the connection once the response
    /// has been flushed.
    RespondClose(String),
    /// The service kept the [`Completion`] and will respond through it
    /// later; the connection pauses (reads deregistered) until it does.
    Deferred,
}

/// A line-oriented protocol served by a [`crate::Reactor`].
///
/// `on_line` runs on a loop-shard thread and must not block: anything
/// slow (engine calls, refits) is shipped elsewhere with the
/// [`Completion`] and answered via [`Action::Deferred`].  The two
/// refusal hooks produce the structured lines the reactor itself emits
/// for its robustness policy.
pub trait LineService: Send + Sync + 'static {
    /// Handles one complete request line (terminator and trailing `\r`
    /// already stripped; may be empty — an empty line is still a request).
    fn on_line(&self, line: &[u8], completion: Completion) -> Action;

    /// Response for a request line that exceeded the configured cap (the
    /// reactor has already discarded the line; the connection stays
    /// usable).
    fn overlong_response(&self) -> String;

    /// Line written (best effort) to a socket refused at accept time
    /// because the connection cap was hit.
    fn overloaded_response(&self) -> String;
}
