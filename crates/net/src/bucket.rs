//! A token bucket: the admission primitive behind per-connection and
//! per-method-class rate limiting.
//!
//! The bucket holds up to `burst` tokens and refills continuously at
//! `rate_per_sec`.  Admission takes one token; an empty bucket refuses
//! and reports how long until the next token accrues, which callers turn
//! into a `retry-after-ms` hint on the structured refusal line.
//!
//! Time is injected (`advance` + `try_take`) rather than read inside, so
//! the arithmetic is a pure function of elapsed durations — that is what
//! the property tests in `tests/admission.rs` pin down: tokens are never
//! negative, refill saturates at `burst`, and admission is monotone in
//! elapsed time.  [`TokenBucket::try_acquire`] is the wall-clock
//! convenience wrapper the middleware uses.

use std::time::{Duration, Instant};

/// A continuously-refilling token bucket.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec` with capacity `burst`,
    /// starting full.  Rates and bursts are clamped to a small positive
    /// floor so a zero-configured bucket refuses (with a finite hint)
    /// instead of dividing by zero.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        let rate_per_sec = if rate_per_sec.is_finite() { rate_per_sec.max(1e-6) } else { 1e-6 };
        let burst = if burst.is_finite() { burst.clamp(1.0, 1e12) } else { 1.0 };
        Self { rate_per_sec, burst, tokens: burst, last: Instant::now() }
    }

    /// Current token count (test observability).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// The bucket's capacity.
    pub fn burst(&self) -> f64 {
        self.burst
    }

    /// Accrues `elapsed` worth of refill, saturating at `burst`.
    pub fn advance(&mut self, elapsed: Duration) {
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate_per_sec).min(self.burst);
    }

    /// Takes one token if available; otherwise reports how long until one
    /// accrues at the configured rate.
    pub fn try_take(&mut self) -> Result<(), Duration> {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return Ok(());
        }
        let deficit = 1.0 - self.tokens;
        let wait = (deficit / self.rate_per_sec).min(3600.0);
        Err(Duration::from_secs_f64(wait))
    }

    /// Wall-clock admission: accrues since the last call, then takes one
    /// token or reports the wait.
    pub fn try_acquire(&mut self) -> Result<(), Duration> {
        let now = Instant::now();
        self.advance(now.saturating_duration_since(self.last));
        self.last = now;
        self.try_take()
    }
}
