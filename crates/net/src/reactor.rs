//! The reactor: one acceptor thread plus a fixed set of event-loop
//! shards.
//!
//! ## Shape
//!
//! The acceptor owns the listener, enforces the connection cap (refusing
//! over it with the service's structured overload line), and hands
//! accepted sockets round-robin to the shards over per-shard channels,
//! waking the target shard's poll.  Each shard owns its connections for
//! life: a `Poll` instance, a slab of [`Connection`] state machines, a
//! completion channel for responses produced off-thread, and a lazy
//! timer wheel sweeping idle peers.  Thread count is `loop_shards + 1`,
//! independent of connection count.
//!
//! ## Interest discipline (level-triggered)
//!
//! The poll is level-triggered, so a shard must never hold an interest it
//! will not act on.  Each connection's registration is reconciled after
//! every step to exactly what it can progress on: read interest only
//! while the shard is willing to frame more requests (not paused on an
//! engine reply, not over the write high-water mark, not draining), write
//! interest only while queued output remains.  A paused connection with
//! an empty write buffer is deregistered entirely — its wake-up comes
//! from the completion channel via the shard's waker, not from epoll.
//!
//! ## Shutdown drain
//!
//! When the shared shutdown flag rises, the acceptor stops accepting and
//! every shard stops *reading*: in-flight engine requests finish, queued
//! responses flush, then connections close.  A peer that will not drain
//! its responses is force-closed after a bounded grace, so shutdown
//! always terminates.

use crate::config::NetConfig;
use crate::conn::{Connection, LineStep};
use crate::metrics::{CloseReason, ReactorMetrics};
use crate::service::{Action, Completion, CompletionKey, ConnId, LineService};
use crate::timer::TimerWheel;
use polling::{Events, Interest, Poll, Token, Waker};
use std::io::{self, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token reserved for each shard's waker; connection tokens are slab
/// slots, which can never reach it.
const WAKER_TOKEN: Token = Token(usize::MAX);
/// How long the accept loop sleeps when no connection is pending (and
/// after accept errors such as fd exhaustion — backing off instead of
/// spinning).
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Upper bound on one `epoll_wait`, so a shard notices the shutdown flag
/// promptly even when fully idle.
const MAX_POLL_WAIT: Duration = Duration::from_millis(100);
/// How long a shutdown drain waits for peers to take their final
/// responses before force-closing them.
const DRAIN_GRACE: Duration = Duration::from_secs(5);
/// Per-shard scratch read buffer: one bounded read per readiness event.
const READ_CHUNK: usize = 64 << 10;

/// The reactor constructor namespace.
pub struct Reactor;

impl Reactor {
    /// Spawns the acceptor and `config.loop_shards` loop threads over
    /// `listener` and returns a handle.  Serving starts immediately.
    ///
    /// `shutdown` is shared: the caller (or the service, e.g. on a
    /// protocol-level `shutdown` request) raises it, and every reactor
    /// thread drains and exits.  `metrics` must have been created with
    /// [`ReactorMetrics::new`] for the same (normalized) shard count.
    pub fn start<S: LineService>(
        listener: TcpListener,
        service: Arc<S>,
        config: NetConfig,
        shutdown: Arc<AtomicBool>,
        metrics: Arc<ReactorMetrics>,
    ) -> io::Result<ReactorHandle> {
        let config = config.normalized();
        if metrics.shard_count() != config.loop_shards {
            return Err(io::Error::new(
                ErrorKind::InvalidInput,
                format!(
                    "metrics sized for {} shards, config has {}",
                    metrics.shard_count(),
                    config.loop_shards
                ),
            ));
        }
        listener.set_nonblocking(true)?;

        let mut mailboxes = Vec::with_capacity(config.loop_shards);
        let mut shard_threads = Vec::with_capacity(config.loop_shards);
        for idx in 0..config.loop_shards {
            let poll = Poll::new()?;
            let waker = Arc::new(Waker::new(&poll, WAKER_TOKEN)?);
            let (inject_tx, inject_rx) = mpsc::channel::<TcpStream>();
            let (completion_tx, completion_rx) = mpsc::channel::<(CompletionKey, String)>();
            let shard = Shard {
                idx,
                poll,
                waker: Arc::clone(&waker),
                inject_rx,
                completion_rx,
                completion_tx,
                service: Arc::clone(&service),
                config: config.clone(),
                shutdown: Arc::clone(&shutdown),
                metrics: Arc::clone(&metrics),
                conns: Vec::new(),
                gens: Vec::new(),
                free: Vec::new(),
                in_flight: 0,
                draining_since: None,
            };
            shard_threads.push(
                std::thread::Builder::new()
                    .name(format!("pka-net-loop-{idx}"))
                    .spawn(move || shard.run())?,
            );
            mailboxes.push(Mailbox { inject: inject_tx, waker });
        }

        let acceptor = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            let config = config.clone();
            std::thread::Builder::new().name("pka-net-accept".to_string()).spawn(move || {
                run_acceptor(listener, mailboxes, service, config, shutdown, metrics)
            })?
        };

        Ok(ReactorHandle { shutdown, metrics, acceptor: Some(acceptor), shards: shard_threads })
    }
}

/// A running reactor.  Joining it requires the shutdown flag to rise
/// (via [`ReactorHandle::request_shutdown`] or any other holder of the
/// shared flag).
pub struct ReactorHandle {
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ReactorMetrics>,
    acceptor: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<()>>,
}

impl ReactorHandle {
    /// The reactor's connection telemetry.
    pub fn metrics(&self) -> Arc<ReactorMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Raises the shared shutdown flag (idempotent); every reactor thread
    /// drains and exits.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Joins every reactor thread (idempotent).  Blocks until the
    /// shutdown flag rises and the drain completes; on return all
    /// service `Arc`s held by reactor threads have been dropped.
    pub fn join(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
    }

    /// Shuts down and joins in one call.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        self.join();
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        self.request_shutdown();
        self.join();
    }
}

/// The acceptor's route to one shard.
struct Mailbox {
    inject: mpsc::Sender<TcpStream>,
    waker: Arc<Waker>,
}

fn run_acceptor<S: LineService>(
    listener: TcpListener,
    mailboxes: Vec<Mailbox>,
    service: Arc<S>,
    config: NetConfig,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ReactorMetrics>,
) {
    let mut next = 0usize;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if metrics.open() >= config.max_connections as u64 {
                    metrics.on_refused();
                    refuse(stream, &service.overloaded_response());
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                metrics.on_accept();
                let mailbox = &mailboxes[next];
                next = (next + 1) % mailboxes.len();
                if mailbox.inject.send(stream).is_ok() {
                    let _ = mailbox.waker.wake();
                } else {
                    // Shard gone (panicked); the socket just closes.
                    metrics.on_handoff_failed();
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Wake every shard so none sleeps out its full poll timeout before
    // noticing the flag.
    for mailbox in &mailboxes {
        let _ = mailbox.waker.wake();
    }
}

/// Best-effort structured refusal: one nonblocking write, then drop.  A
/// refused socket must never make the acceptor block.
fn refuse(stream: TcpStream, line: &str) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let mut bytes = Vec::with_capacity(line.len() + 1);
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
    let _ = (&stream).write(&bytes);
}

/// One event-loop shard.
struct Shard<S: LineService> {
    idx: usize,
    poll: Poll,
    waker: Arc<Waker>,
    inject_rx: mpsc::Receiver<TcpStream>,
    completion_rx: mpsc::Receiver<(CompletionKey, String)>,
    completion_tx: mpsc::Sender<(CompletionKey, String)>,
    service: Arc<S>,
    config: NetConfig,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ReactorMetrics>,
    conns: Vec<Option<Connection>>,
    /// Per-slot incarnation counter (bumped at close), mirroring
    /// [`CompletionKey::gen`].
    gens: Vec<u64>,
    free: Vec<usize>,
    /// Connections currently paused on an engine completion.
    in_flight: usize,
    /// `Some(start)` once the shutdown drain began.
    draining_since: Option<Instant>,
}

impl<S: LineService> Shard<S> {
    fn idle_timeout(&self) -> Option<Duration> {
        (self.config.idle_timeout_ms > 0)
            .then(|| Duration::from_millis(self.config.idle_timeout_ms))
    }

    fn run(mut self) {
        let mut events = Events::with_capacity(1024);
        let mut scratch = vec![0u8; READ_CHUNK];
        let mut expired: Vec<(usize, u64)> = Vec::new();
        let (tick, mut wheel) = match self.idle_timeout() {
            Some(idle) => {
                let tick = (idle / 8).clamp(Duration::from_millis(10), Duration::from_secs(1));
                (tick, Some(TimerWheel::new(tick, Instant::now())))
            }
            None => (MAX_POLL_WAIT, None),
        };
        loop {
            let _ = self.poll.poll(&mut events, Some(tick.min(MAX_POLL_WAIT)));
            let mut woke = false;
            for event in events.iter() {
                if event.token() == WAKER_TOKEN {
                    woke = true;
                    continue;
                }
                let slot = event.token().0;
                if self.conns.get(slot).is_none_or(|c| c.is_none()) {
                    continue;
                }
                if event.is_closed() {
                    self.close(slot, CloseReason::Abnormal);
                    continue;
                }
                if event.is_readable() || event.is_read_closed() {
                    self.read_ready(slot, &mut scratch);
                }
                if self.conns[slot].is_some() && event.is_writable() {
                    self.write_ready(slot);
                }
            }
            if woke {
                self.waker.drain();
            }
            self.adopt_injected(wheel.as_mut());
            self.deliver_completions();
            if let (Some(wheel), Some(idle)) = (wheel.as_mut(), self.idle_timeout()) {
                let now = Instant::now();
                wheel.advance(now, &mut expired);
                for (slot, gen) in expired.drain(..) {
                    if self.gens.get(slot) != Some(&gen) {
                        continue;
                    }
                    let Some(conn) = self.conns[slot].as_ref() else { continue };
                    let deadline = conn.last_activity + idle;
                    if deadline <= now {
                        self.close(slot, CloseReason::IdleTimeout);
                    } else {
                        wheel.insert(deadline, slot, gen);
                    }
                }
            }
            if self.shutdown.load(Ordering::SeqCst) && self.drain_step() {
                return;
            }
        }
    }

    /// One step of the shutdown drain.  Returns true when the shard is
    /// done and its thread should exit.
    fn drain_step(&mut self) -> bool {
        let started = match self.draining_since {
            Some(t) => t,
            None => {
                let now = Instant::now();
                self.draining_since = Some(now);
                // Reads off everywhere; close whatever owes nothing.
                for slot in 0..self.conns.len() {
                    if self.conns[slot].is_some() {
                        self.settle(slot);
                    }
                }
                now
            }
        };
        let pending =
            self.in_flight > 0 || self.conns.iter().flatten().any(|c| c.write_backlog() > 0);
        if !pending || started.elapsed() >= DRAIN_GRACE {
            for slot in 0..self.conns.len() {
                if self.conns[slot].is_some() {
                    self.close(slot, CloseReason::Abnormal);
                }
            }
            return true;
        }
        false
    }

    fn adopt_injected(&mut self, mut wheel: Option<&mut TimerWheel>) {
        while let Ok(stream) = self.inject_rx.try_recv() {
            if self.draining_since.is_some() || self.shutdown.load(Ordering::SeqCst) {
                self.metrics.on_handoff_failed();
                continue;
            }
            let now = Instant::now();
            let slot = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.gens.push(0);
                self.conns.len() - 1
            });
            let conn = Connection::new(stream, now);
            if self.poll.register(&conn.stream, Token(slot), Interest::READABLE).is_err() {
                self.free.push(slot);
                self.metrics.on_handoff_failed();
                continue;
            }
            let mut conn = conn;
            conn.interest = Some(Interest::READABLE);
            self.conns[slot] = Some(conn);
            self.metrics.on_adopt(self.idx);
            if let (Some(wheel), Some(idle)) = (wheel.as_deref_mut(), self.idle_timeout()) {
                wheel.insert(now + idle, slot, self.gens[slot]);
            }
        }
    }

    fn deliver_completions(&mut self) {
        while let Ok((key, line)) = self.completion_rx.try_recv() {
            if self.gens.get(key.slot) != Some(&key.gen) {
                continue;
            }
            let Some(conn) = self.conns[key.slot].as_mut() else { continue };
            debug_assert!(conn.await_engine);
            conn.await_engine = false;
            conn.last_activity = Instant::now();
            self.in_flight = self.in_flight.saturating_sub(1);
            conn.queue_response(&line);
            self.process(key.slot);
        }
    }

    fn read_ready(&mut self, slot: usize, scratch: &mut [u8]) {
        let conn = self.conns[slot].as_mut().expect("checked by caller");
        match conn.read_once(scratch) {
            Ok(true) => {
                conn.last_activity = Instant::now();
                self.process(slot);
            }
            Ok(false) => {}
            Err(_) => self.close(slot, CloseReason::Abnormal),
        }
    }

    fn write_ready(&mut self, slot: usize) {
        // Flush first, then resume framing if the backlog dropped below
        // the high-water mark (`process` re-checks and re-arms).
        self.settle(slot);
        if self.conns[slot].is_some() {
            self.process(slot);
        }
    }

    /// Frames and dispatches as many buffered requests as policy allows,
    /// then flushes and reconciles interest.
    fn process(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns[slot].as_mut() else { return };
            if conn.closing
                || conn.await_engine
                || conn.write_backlog() >= self.config.write_high_water
                || self.draining_since.is_some()
            {
                break;
            }
            match conn.next_line(self.config.max_line_bytes) {
                LineStep::Overlong => {
                    let response = self.service.overlong_response();
                    let conn = self.conns[slot].as_mut().expect("slot live");
                    conn.queue_response(&response);
                }
                LineStep::Line { start, end } => {
                    let completion = Completion {
                        tx: self.completion_tx.clone(),
                        key: CompletionKey { slot, gen: self.gens[slot] },
                        shard: self.idx,
                        waker: Arc::clone(&self.waker),
                    };
                    let action = {
                        let conn = self.conns[slot].as_ref().expect("slot live");
                        self.service.on_line(conn.line(start, end), completion)
                    };
                    let conn = self.conns[slot].as_mut().expect("slot live");
                    match action {
                        Action::Respond(response) => conn.queue_response(&response),
                        Action::RespondClose(response) => {
                            conn.queue_response(&response);
                            conn.closing = true;
                        }
                        Action::Deferred => {
                            conn.await_engine = true;
                            self.in_flight += 1;
                        }
                    }
                }
                LineStep::Pending => {
                    if conn.peer_eof {
                        conn.closing = true;
                    }
                    break;
                }
            }
        }
        if let Some(conn) = self.conns[slot].as_mut() {
            conn.compact();
        }
        self.settle(slot);
    }

    /// Flushes queued output and reconciles the connection's registered
    /// interest with what it can currently progress on; closes the
    /// connection if it is finished (or its socket failed).
    fn settle(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else { return };
        match conn.try_flush() {
            Ok(n) => {
                if n > 0 {
                    conn.last_activity = Instant::now();
                }
            }
            Err(_) => {
                self.close(slot, CloseReason::Abnormal);
                return;
            }
        }
        let conn = self.conns[slot].as_mut().expect("slot live");
        // Finished: the service asked to close, or the shutdown drain is on
        // and the connection owes nothing.  Both are orderly closes, not
        // drops (force-closes of peers that won't drain happen in
        // `drain_step` and do count as drops).
        if conn.write_backlog() == 0
            && (conn.closing || (self.draining_since.is_some() && !conn.await_engine))
        {
            self.close(slot, CloseReason::Clean);
            return;
        }
        let wants_read = !conn.closing
            && !conn.await_engine
            && !conn.peer_eof
            && conn.write_backlog() < self.config.write_high_water
            && self.draining_since.is_none();
        let wants_write = conn.write_backlog() > 0;
        let desired = match (wants_read, wants_write) {
            (true, true) => Some(Interest::READABLE.add(Interest::WRITABLE)),
            (true, false) => Some(Interest::READABLE),
            (false, true) => Some(Interest::WRITABLE),
            (false, false) => None,
        };
        if desired == conn.interest {
            return;
        }
        let outcome = match (conn.interest, desired) {
            (None, Some(interest)) => self.poll.register(&conn.stream, Token(slot), interest),
            (Some(_), Some(interest)) => self.poll.reregister(&conn.stream, Token(slot), interest),
            (Some(_), None) => self.poll.deregister(&conn.stream),
            (None, None) => Ok(()),
        };
        match outcome {
            Ok(()) => conn.interest = desired,
            Err(_) => self.close(slot, CloseReason::Abnormal),
        }
    }

    fn close(&mut self, slot: usize, reason: CloseReason) {
        let Some(conn) = self.conns[slot].take() else { return };
        if conn.interest.is_some() {
            let _ = self.poll.deregister(&conn.stream);
        }
        if conn.await_engine {
            self.in_flight = self.in_flight.saturating_sub(1);
        }
        // Middleware releases per-connection state under the id the
        // connection lived as — before the generation bump retires it.
        self.service.on_close(ConnId { shard: self.idx, slot, gen: self.gens[slot] });
        self.gens[slot] += 1;
        self.free.push(slot);
        self.metrics.on_close(self.idx, reason);
        // Dropping `conn` closes the socket.
    }
}
