//! `pka-net`: a readiness-driven reactor front end for line-oriented
//! protocols.
//!
//! PR 5's fabric measurements made the old thread-per-connection front
//! end's ceiling concrete: every idle ingest source, replica pump, and
//! client parked an OS thread on the server, capping coordinator fan-in
//! near ~380 sources.  This crate replaces that shape with a small fixed
//! set of epoll event-loop shards (over the vendored [`polling`] crate):
//! a dedicated acceptor hands nonblocking sockets round-robin to the
//! shards, each shard drives per-connection state machines — read buffer
//! into a length-capped line framer, write buffer with backpressure via
//! `EPOLLOUT` re-arming — and the thread count is `loop_shards + 1`
//! regardless of how many thousand connections are open.
//!
//! Protocol semantics live behind the [`LineService`] trait: the reactor
//! frames request lines and the service answers them, either immediately
//! ([`Action::Respond`]) or later from another thread through a
//! [`Completion`] ([`Action::Deferred`] — how `pka-serve` keeps its
//! single-writer engine thread off the loop shards).  Robustness policy
//! is the reactor's own: a connection cap with structured overload
//! refusals, idle-connection reaping from a per-shard timer wheel, and a
//! bounded graceful drain on shutdown.  See `docs/net.md` for the
//! architecture write-up.

mod bucket;
mod config;
mod conn;
mod metrics;
mod reactor;
mod service;
mod timer;

pub use bucket::TokenBucket;
pub use config::NetConfig;
pub use metrics::ReactorMetrics;
pub use reactor::{Reactor, ReactorHandle};
pub use service::{Action, Completion, ConnId, Gate, LineMiddleware, LineService, MiddlewareStack};

// Crash-restart plumbing from the vendored polling layer, re-exported so
// servers and binaries need no direct `polling` dependency: a
// `SO_REUSEADDR` listener (a killed node can reclaim its port through the
// previous process's TIME_WAIT sockets) and a SIGTERM/SIGINT watch for
// graceful drain + final checkpoint.
pub use polling::net::bind_reuseaddr;
pub use polling::signal::{watch_termination, TerminationWatch};
